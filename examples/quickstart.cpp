// Quickstart: elect a leader on a random interaction graph.
//
//   $ ./example_quickstart [n] [seed]
//
// Builds a connected Erdős–Rényi graph, configures the paper's fast
// space-efficient protocol (Theorem 24) from a measured broadcast-time
// estimate, runs one election and prints what happened.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/fast_election.h"
#include "core/simulator.h"
#include "dynamics/epidemic.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  const pp::node_id n = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  pp::rng gen(seed);
  const pp::graph g = pp::make_connected_erdos_renyi(n, 0.1, gen);
  std::printf("interaction graph: n=%d, m=%lld, degrees in [%d, %d]\n",
              g.num_nodes(), static_cast<long long>(g.num_edges()),
              g.min_degree(), g.max_degree());

  // The protocol is non-uniform: nodes are initialised with parameters
  // derived from an estimate of the worst-case broadcast time B(G).
  const double b = pp::estimate_broadcast_time(g, 0, 50, gen.fork(1));
  const pp::fast_params params = pp::fast_params::practical(g, b);
  std::printf("B(G) estimate: %.0f steps; protocol parameters h=%d L=%d αL=%d "
              "(|Λ| = %llu states)\n",
              b, params.h, params.level_threshold, params.max_level,
              static_cast<unsigned long long>(params.state_space_size()));

  const pp::fast_protocol protocol(params);
  const pp::election_result r = pp::run_until_stable(
      protocol, g, gen.fork(2), {.max_steps = UINT64_MAX, .state_census = true});

  std::printf("stabilized after %llu pairwise interactions\n",
              static_cast<unsigned long long>(r.steps));
  std::printf("leader: node %d (degree %d); %zu distinct states were used\n",
              r.leader, g.degree(r.leader), r.distinct_states_used);
  std::printf("steps per B(G): %.1f, steps per B·lg n: %.1f\n", r.steps / b,
              r.steps / (b * std::log2(static_cast<double>(n))));
  return 0;
}
