// Ring network: why cycles are the hard case (Lemma 37, Table 1).
//
//   $ ./example_ring_network [n]
//
// Cycles are Ω(n²)-renitent: no protocol can elect a stable leader faster
// than information crosses a quarter of the ring, which takes Θ(n²)
// scheduler steps.  This example measures that wall (quarter-arc propagation
// time), then shows the paper's fast protocol tracking it within a log
// factor while the 6-state protocol pays Θ(n³·polylog).
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/experiment.h"
#include "core/fast_election.h"
#include "dynamics/epidemic.h"
#include "graph/generators.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  const pp::node_id n = argc > 1 ? std::atoi(argv[1]) : 96;
  const pp::graph g = pp::make_cycle(n);
  const double nn = static_cast<double>(n);
  std::printf("ring of %d nodes\n\n", n);

  pp::rng seed(13);

  // The renitent wall: information needs Θ(n²) steps to cross n/4 hops.
  const auto dist = pp::bfs_distances(g, 0);
  double quarter = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto r = pp::simulate_broadcast(g, 0, seed.fork(t));
    quarter += static_cast<double>(
        pp::distance_k_propagation_step(r, dist, n / 4));
  }
  quarter /= trials;
  std::printf("quarter-ring propagation time: %.0f steps (= %.2f · n²/16)\n",
              quarter, quarter / (nn * nn / 16.0));
  std::printf("=> any stable leader election on this ring needs Ω(n²) steps "
              "(Theorem 34 + Lemma 37)\n\n");

  const double b = pp::estimate_broadcast_time(g, 0, 60, seed.fork(1000));
  std::printf("broadcast time B ~ %.0f (= %.2f · n²/2)\n", b, b / (nn * nn / 2.0));

  const pp::fast_protocol fast(pp::fast_params::practical(g, b));
  const auto fast_s = pp::measure_election_fast(fast, g, 6, seed.fork(1001));
  std::printf("fast protocol (Thm 24): %.0f steps = %.1f·B = %.2f·B·lg n\n",
              fast_s.steps.mean, fast_s.steps.mean / b,
              fast_s.steps.mean / (b * std::log2(nn)));

  const pp::beauquier_protocol bq(n);
  const auto bq_s =
      pp::measure_beauquier_event_driven(bq, g, 6, seed.fork(1002), UINT64_MAX);
  std::printf("6-state protocol (Thm 16): %.0f steps = %.2f · n³ "
              "(H(G)·n·log n with H = n²/4)\n",
              bq_s.steps.mean, bq_s.steps.mean / (nn * nn * nn));

  std::printf("\nThe ring pins the whole complexity landscape of the paper in\n"
              "one picture: a Θ(n²) information-theoretic wall, a protocol\n"
              "that hugs it up to O(log n), and a constant-memory protocol a\n"
              "factor ~n·log n behind.\n");
  return 0;
}
