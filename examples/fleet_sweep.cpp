// Fleet sweep quickstart (src/fleet/): prepare a sweep once, serialize it as
// a checksummed artifact, and shard the trials across worker processes.
//
// The flow mirrors what `popsim --jobs W --save-artifact F` automates:
//   1. build the protocol + graph and resolve the engine layout once
//      (tuned_runner: closed table, packed snapshot, reorder permutation);
//   2. snapshot it into a sweep_artifact and save/load it — the load
//      validates the rebuild byte-for-byte, so version-skewed workers fail
//      loudly instead of silently diverging;
//   3. run the same seed list serially and through fork-based workers and
//      check the summaries match *exactly* (seed-partition determinism:
//      trial t always runs seed_gen.fork(t), records merge by trial index).
#include <cstdio>
#include <string>

#include "analysis/experiment.h"
#include "core/fast_election.h"
#include "dynamics/epidemic.h"
#include "fleet/artifact.h"
#include "fleet/sweep.h"
#include "graph/generators.h"

int main() {
  const pp::node_id n = 2000;
  const int trials = 16;
  const pp::graph g = pp::make_cycle(n);
  const double b =
      pp::estimate_worst_case_broadcast_time(g, 10, 4, pp::rng(1)).value;
  const pp::fast_protocol proto(pp::fast_params::practical(g, b));
  const pp::tuned_runner<pp::fast_protocol> runner(proto, g);
  std::printf("prepared: ring n=%d, |Lambda|=%zu, pack=u%d\n", n,
              runner.compiled().num_states(), runner.pack_bits());

  // Serialize the prepared sweep and rebuild it from the file, as a worker
  // process (or another host) would.
  const std::string path = "/tmp/fleet_sweep_example.ppaf";
  pp::fleet::save_artifact(
      pp::fleet::make_tuned_artifact(runner, g, "cycle",
                                     pp::fleet::fast_desc(proto.params())),
      path);
  const auto artifact = pp::fleet::load_artifact(path);
  const pp::fast_protocol rebuilt_proto(
      pp::fleet::fast_params_of(artifact.protocol));
  const pp::graph rebuilt_g = pp::fleet::rebuild_graph(*artifact.graph);
  const pp::tuned_runner<pp::fast_protocol> rebuilt(
      rebuilt_proto, rebuilt_g, pp::fleet::tuning_of(artifact));
  pp::fleet::validate_tuned_artifact(artifact, rebuilt);
  std::printf("artifact: %s round-tripped and validated (closed table, "
              "packed snapshot, graph)\n", path.c_str());

  // Same seed list, serial vs two worker processes: identical summaries.
  const auto serial = pp::measure_election_tuned(rebuilt, trials, pp::rng(7));
  const auto fleet = pp::measure_election_fleet(rebuilt, trials, pp::rng(7), {}, 2);
  std::printf("serial: mean %.0f steps over %zu stabilized trials\n",
              serial.steps.mean, serial.steps.count);
  std::printf("fleet (2 workers): mean %.0f steps over %zu stabilized trials\n",
              fleet.steps.mean, fleet.steps.count);
  const bool identical = serial.steps.mean == fleet.steps.mean &&
                         serial.steps.stddev == fleet.steps.stddev &&
                         serial.stabilized_fraction == fleet.stabilized_fraction;
  std::printf("merged summaries identical: %s\n", identical ? "yes" : "NO");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
