// Fleet sweep quickstart (src/fleet/): prepare a sweep once, serialize it as
// a checksummed artifact, and shard the trials across worker processes.
//
// The flow mirrors what `popsim --jobs W --save-artifact F` automates:
//   1. build the protocol + graph and resolve the engine layout once
//      (tuned_runner: closed table, packed snapshot, reorder permutation);
//   2. snapshot it into a sweep_artifact and save/load it — the load
//      validates the rebuild byte-for-byte, so version-skewed workers fail
//      loudly instead of silently diverging;
//   3. run the same seed list serially and through fork-based workers and
//      check the summaries match *exactly* (seed-partition determinism:
//      trial t always runs seed_gen.fork(t), records merge by trial index);
//   4. re-run under the supervisor with the flight recorder attached
//      (src/obs/) — the same hookup `popsim --metrics F --trace F`
//      automates — and write the metrics snapshot + Chrome trace timeline
//      to disk.
#include <cstdio>
#include <string>

#include "analysis/experiment.h"
#include "core/fast_election.h"
#include "dynamics/epidemic.h"
#include "fleet/artifact.h"
#include "fleet/supervisor.h"
#include "fleet/sweep.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"

int main() {
  const pp::node_id n = 2000;
  const int trials = 16;
  const pp::graph g = pp::make_cycle(n);
  const double b =
      pp::estimate_worst_case_broadcast_time(g, 10, 4, pp::rng(1)).value;
  const pp::fast_protocol proto(pp::fast_params::practical(g, b));
  const pp::tuned_runner<pp::fast_protocol> runner(proto, g);
  std::printf("prepared: ring n=%d, |Lambda|=%zu, pack=u%d\n", n,
              runner.compiled().num_states(), runner.pack_bits());

  // Serialize the prepared sweep and rebuild it from the file, as a worker
  // process (or another host) would.
  const std::string path = "/tmp/fleet_sweep_example.ppaf";
  pp::fleet::save_artifact(
      pp::fleet::make_tuned_artifact(runner, g, "cycle",
                                     pp::fleet::fast_desc(proto.params())),
      path);
  const auto artifact = pp::fleet::load_artifact(path);
  const pp::fast_protocol rebuilt_proto(
      pp::fleet::fast_params_of(artifact.protocol));
  const pp::graph rebuilt_g = pp::fleet::rebuild_graph(*artifact.graph);
  const pp::tuned_runner<pp::fast_protocol> rebuilt(
      rebuilt_proto, rebuilt_g, pp::fleet::tuning_of(artifact));
  pp::fleet::validate_tuned_artifact(artifact, rebuilt);
  std::printf("artifact: %s round-tripped and validated (closed table, "
              "packed snapshot, graph)\n", path.c_str());

  // Same seed list, serial vs two worker processes: identical summaries.
  const auto serial = pp::measure_election_tuned(rebuilt, trials, pp::rng(7));
  const auto fleet = pp::measure_election_fleet(rebuilt, trials, pp::rng(7), {}, 2);
  std::printf("serial: mean %.0f steps over %zu stabilized trials\n",
              serial.steps.mean, serial.steps.count);
  std::printf("fleet (2 workers): mean %.0f steps over %zu stabilized trials\n",
              fleet.steps.mean, fleet.steps.count);
  const bool identical = serial.steps.mean == fleet.steps.mean &&
                         serial.steps.stddev == fleet.steps.stddev &&
                         serial.stabilized_fraction == fleet.stabilized_fraction;
  std::printf("merged summaries identical: %s\n", identical ? "yes" : "NO");

  // The same sweep once more, supervised and flight-recorded: the trace
  // collects the supervisor timeline (spawn/assign/record/merge spans and
  // instants, one track per worker slot), the registry the fleet.*
  // counters.  `popsim --metrics F --trace F --jobs W` wires exactly this —
  // plus per-trial worker spans and engine.* probe rollups via exec-worker
  // sidecars, which fork-mode workers don't write.
  pp::obs::metrics_registry metrics;
  pp::obs::trace_writer trace;
  pp::fleet::supervise_options sup;
  sup.metrics = &metrics;
  sup.trace = &trace;
  const auto recorded = pp::summarize_election_results(
      pp::fleet::supervised_fleet_run(
          trials, pp::rng(7),
          [&](std::uint64_t, pp::rng gen) { return rebuilt.run(gen, {}); }, 2,
          sup));
  const bool recorded_identical = serial.steps.mean == recorded.steps.mean;
  const std::string metrics_path = "/tmp/fleet_sweep_example_metrics.json";
  const std::string trace_path = "/tmp/fleet_sweep_example_trace.json";
  const bool wrote = metrics.write_json(metrics_path) &&
                     trace.write_json(trace_path);
  std::printf("recorded sweep: identical again: %s; %llu records received, "
              "%llu workers spawned\n",
              recorded_identical ? "yes" : "NO",
              static_cast<unsigned long long>(
                  metrics.counter("fleet.records_received")),
              static_cast<unsigned long long>(
                  metrics.counter("fleet.workers_spawned")));
  std::printf("metrics snapshot: %s\n", metrics_path.c_str());
  std::printf("trace timeline:   %s  (load in chrome://tracing or "
              "ui.perfetto.dev)\n", trace_path.c_str());

  std::remove(path.c_str());
  return identical && recorded_identical && wrote ? 0 : 1;
}
