// Custom protocol: implementing your own population protocol against the
// library's public API.
//
//   $ ./example_custom_protocol
//
// Defines a three-state "duel" protocol from scratch — undecided nodes fight
// (initiator wins), losers are contagious — shows that it satisfies the
// `population_protocol` concept, runs it through the generic simulator, and
// uses the brute-force reachability checker to demonstrate *why* it is not a
// correct stable-leader-election protocol on general graphs (two leaders can
// deadlock on disjoint edges), echoing the paper's point that the trivial
// star protocol does not generalize.
#include <cstdio>
#include <span>

#include "core/protocol.h"
#include "core/simulator.h"
#include "core/stable_checker.h"
#include "graph/generators.h"

namespace {

// A user-defined protocol only needs a state type, four member functions and
// a tracker; everything else (scheduler, census, stability loop) is generic.
class duel_protocol {
 public:
  enum class state_type : std::uint8_t { undecided, leader, follower };

  pp::node_id num_nodes() const { return 0; }  // uniform protocol

  state_type initial_state(pp::node_id) const { return state_type::undecided; }

  void interact(state_type& a, state_type& b) const {
    if (a == state_type::undecided && b == state_type::undecided) {
      a = state_type::leader;
      b = state_type::follower;
    } else if (a == state_type::leader && b == state_type::leader) {
      b = state_type::follower;  // duels merge leaders along edges
    } else {
      if (a == state_type::undecided) a = state_type::follower;
      if (b == state_type::undecided) b = state_type::follower;
    }
  }

  pp::role output(const state_type& s) const {
    return s == state_type::leader ? pp::role::leader : pp::role::follower;
  }

  std::uint64_t encode(const state_type& s) const {
    return static_cast<std::uint64_t>(s);
  }

  // A deliberately simple tracker: count leaders and undecided nodes.  It is
  // NOT sound for this protocol on general graphs (see main) — the point of
  // the demo.
  class tracker_type {
   public:
    tracker_type(const duel_protocol& proto, const pp::graph&,
                 std::span<const state_type> config) {
      for (const auto& s : config) account(proto, s, +1);
    }
    void on_interaction(const duel_protocol& proto, pp::node_id, pp::node_id,
                        const state_type& ou, const state_type& ov,
                        const state_type& nu, const state_type& nv) {
      account(proto, ou, -1);
      account(proto, ov, -1);
      account(proto, nu, +1);
      account(proto, nv, +1);
    }
    bool is_stable() const { return leaders_ == 1 && undecided_ == 0; }

   private:
    void account(const duel_protocol& proto, const state_type& s, int sign) {
      if (proto.output(s) == pp::role::leader) leaders_ += sign;
      if (s == state_type::undecided) undecided_ += sign;
    }
    std::int64_t leaders_ = 0;
    std::int64_t undecided_ = 0;
  };
};

static_assert(pp::population_protocol<duel_protocol>);

}  // namespace

int main() {
  const duel_protocol proto;

  // On a clique the duel protocol *does* elect a leader (leaders are always
  // adjacent, so they fight until one remains)…
  const pp::graph clique = pp::make_clique(16);
  pp::rng seed(5);
  int ok = 0;
  for (int t = 0; t < 20; ++t) {
    const auto r = pp::run_until_stable(proto, clique, seed.fork(t),
                                        {.max_steps = 1'000'000});
    if (r.stabilized) ++ok;
  }
  std::printf("clique K_16: %d/20 runs elected a unique leader\n", ok);

  // …but on a path two leaders can arise on disjoint edges and never meet.
  const pp::graph path = pp::make_path(4);
  using st = duel_protocol::state_type;
  const std::vector<st> deadlock{st::leader, st::follower, st::follower,
                                 st::leader};
  const auto report = pp::brute_force_stability(proto, path, deadlock);
  std::printf("path P_4 two-leader configuration: output-stable per "
              "exhaustive reachability? %s\n",
              report.stable ? "yes — a real deadlock" : "no");
  std::printf(
      "\nMoral (paper §6.3): local symmetry breaking — like the one-shot\n"
      "star protocol — does not extend to general graphs; correct stable\n"
      "election needs the global machinery of Theorems 16/21/24.  Note the\n"
      "simulator caught this because the naive tracker never fired, while\n"
      "the brute-force checker certified the two-leader deadlock as\n"
      "reachable-and-frozen.\n");
  return 0;
}
