// Epidemic broadcast: one-way rumour spreading in the population model (§3).
//
//   $ ./example_epidemic_broadcast [family] [n]
//
// Measures per-source broadcast times on a chosen graph family, shows the
// Lemma 8 / Lemma 12 envelope, and prints the infection-time profile (which
// fraction of the network knows the rumour after a given number of steps).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/families.h"
#include "dynamics/epidemic.h"
#include "graph/metrics.h"
#include "support/stats.h"
#include "support/table.h"

int main(int argc, char** argv) {
  const std::string family_name = argc > 1 ? argv[1] : "torus";
  const pp::node_id n = argc > 2 ? std::atoi(argv[2]) : 144;

  const pp::graph_family& family = pp::family_by_name(family_name);
  pp::rng gen(11);
  const pp::graph g = family.make(n, gen);
  const double nn = static_cast<double>(g.num_nodes());
  const double m = static_cast<double>(g.num_edges());
  const double d = pp::diameter(g);
  std::printf("%s: n=%d m=%.0f diameter=%.0f\n", family_name.c_str(),
              g.num_nodes(), m, d);

  const auto est = pp::estimate_worst_case_broadcast_time(g, 100, 10, gen.fork(1));
  const double lower = m / g.max_degree() * std::log(nn - 1.0);
  const double upper = m * std::max(6.0 * std::log(nn), d) + 2.0;
  std::printf("B(G) ~ %.0f (worst source: node %d); best source ~ %.0f\n",
              est.value, est.argmax, est.min_value);
  std::printf("Lemma 12 lower bound %.0f <= B <= %.0f Lemma 8 upper bound\n\n",
              lower, upper);

  // Infection-time profile from the worst source, averaged over trials.
  const int trials = 200;
  std::vector<double> completion;
  std::vector<std::vector<double>> quantile_steps(5);
  for (int t = 0; t < trials; ++t) {
    const auto r = pp::simulate_broadcast(g, est.argmax, gen.fork(100 + t));
    completion.push_back(static_cast<double>(r.completion_step));
    std::vector<std::uint64_t> steps = r.infection_step;
    std::sort(steps.begin(), steps.end());
    const double fractions[5] = {0.10, 0.25, 0.50, 0.90, 1.0};
    for (int q = 0; q < 5; ++q) {
      const auto idx = std::min(steps.size() - 1,
                                static_cast<std::size_t>(fractions[q] * (steps.size() - 1)));
      quantile_steps[q].push_back(static_cast<double>(steps[idx]));
    }
  }

  pp::text_table table({"network informed", "mean steps", "fraction of B"});
  const char* labels[5] = {"10%", "25%", "50%", "90%", "100%"};
  for (int q = 0; q < 5; ++q) {
    const auto s = pp::summarize(quantile_steps[q]);
    table.add_row({labels[q], pp::format_number(s.mean),
                   pp::format_number(s.mean / est.value, 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  const auto total = pp::summarize(completion);
  std::printf("\ncompletion time: mean %.0f, sd %.0f, [q10, q90] = [%.0f, %.0f]\n",
              total.mean, total.stddev, total.q10, total.q90);
  return 0;
}
