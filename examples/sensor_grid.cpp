// Sensor grid: leader election in a toroidal wireless sensor network.
//
//   $ ./example_sensor_grid [side] [trials]
//
// The motivating scenario of population protocols on graphs: cheap agents
// with O(1)-ish memory interacting only with spatial neighbours.  On a
// side x side torus this example compares the paper's three protocols —
// time, space, and the trade-off between them — the practical face of
// Table 1 for a low-conductance topology.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/experiment.h"
#include "core/fast_election.h"
#include "core/id_election.h"
#include "dynamics/epidemic.h"
#include "graph/generators.h"
#include "support/table.h"

int main(int argc, char** argv) {
  const pp::node_id side = argc > 1 ? std::atoi(argv[1]) : 10;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 10;

  const pp::graph g = pp::make_grid_2d(side, side, /*torus=*/true);
  const double n = static_cast<double>(g.num_nodes());
  std::printf("sensor network: %dx%d torus (n=%d, m=%lld)\n", side, side,
              g.num_nodes(), static_cast<long long>(g.num_edges()));

  pp::rng seed(7);
  const double b =
      pp::estimate_worst_case_broadcast_time(g, 40, 8, seed.fork(0)).value;
  std::printf("measured broadcast time B(G) ~ %.0f interactions (~n^1.5 = %.0f)\n\n",
              b, std::pow(n, 1.5));

  pp::text_table table(
      {"protocol", "memory (states)", "mean interactions", "x broadcast time"});

  {
    const pp::fast_protocol proto(pp::fast_params::practical(g, b));
    // Compiled engine (src/engine/): same seeded results, ~5x the step rate.
    const auto census = pp::run_until_stable_fast(
        proto, g, seed.fork(1), {.max_steps = UINT64_MAX, .state_census = true});
    const auto s = pp::measure_election_fast(proto, g, trials, seed.fork(2));
    table.add_row({"fast space-efficient (Thm 24)",
                   pp::format_number(static_cast<double>(census.distinct_states_used)),
                   pp::format_number(s.steps.mean),
                   pp::format_number(s.steps.mean / b, 3)});
  }
  {
    const pp::id_protocol proto(pp::id_protocol::suggested_k(g.num_nodes()));
    const auto census = pp::run_until_stable(
        proto, g, seed.fork(3), {.max_steps = UINT64_MAX, .state_census = true});
    const auto s = pp::measure_election(proto, g, trials, seed.fork(4));
    table.add_row({"identifier broadcast (Thm 21)",
                   pp::format_number(static_cast<double>(census.distinct_states_used)),
                   pp::format_number(s.steps.mean),
                   pp::format_number(s.steps.mean / b, 3)});
  }
  {
    const pp::beauquier_protocol proto(g.num_nodes());
    const auto s = pp::measure_beauquier_event_driven(proto, g, trials,
                                                      seed.fork(5), UINT64_MAX);
    table.add_row({"6-state tokens (Thm 16)", "6",
                   pp::format_number(s.steps.mean),
                   pp::format_number(s.steps.mean / b, 3)});
  }

  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nTrade-off: identifiers are fastest but need ~n^4 state values —\n"
      "unrealistic for 8-bit sensors; 6 states always works but pays\n"
      "~H(G)·n·log n time; the paper's fast protocol sits in between with\n"
      "O(log² n) states at ~B(G)·log n time.\n");
  return 0;
}
