// popsim: command-line driver for the library.
//
//   $ ./example_popsim_cli <family> <n> <protocol> [trials] [seed]
//
//   family    clique | cycle | star | torus | er_dense | rr8
//   protocol  fast | id | six | star
//
// Runs the chosen election, prints a summary, and emits the final
// configuration as Graphviz DOT on request via POPSIM_DOT=1 — handy for
// scripting sweeps beyond what the bench binaries cover.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/experiment.h"
#include "core/fast_election.h"
#include "core/id_election.h"
#include "core/star_protocol.h"
#include "dynamics/epidemic.h"
#include "graph/io.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: popsim <family> <n> <protocol> [trials] [seed]\n"
               "  family:   clique cycle star torus er_dense rr8\n"
               "  protocol: fast id six star\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string family_name = argv[1];
  const pp::node_id n = std::atoi(argv[2]);
  const std::string protocol = argv[3];
  const int trials = argc > 4 ? std::atoi(argv[4]) : 5;
  const std::uint64_t seed_value = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
  if (n < 2 || trials < 1) return usage();

  pp::rng seed(seed_value);
  const pp::graph_family* family = nullptr;
  try {
    family = &pp::family_by_name(family_name);
  } catch (const std::invalid_argument&) {
    return usage();
  }
  pp::rng make_gen = seed.fork(0);
  const pp::graph g = family->make(n, make_gen);
  std::printf("graph: %s n=%d m=%lld Δ=%d\n", family_name.c_str(), g.num_nodes(),
              static_cast<long long>(g.num_edges()), g.max_degree());

  pp::election_summary summary;
  pp::node_id sample_leader = -1;
  if (protocol == "fast") {
    const double b = pp::estimate_worst_case_broadcast_time(g, 30, 6, seed.fork(1)).value;
    const pp::fast_protocol proto(pp::fast_params::practical(g, b));
    // Compiled engine (src/engine/): same seeded results, ~5x the step rate.
    summary = pp::measure_election_fast(proto, g, trials, seed.fork(2));
    sample_leader = pp::run_until_stable_fast(proto, g, seed.fork(3)).leader;
  } else if (protocol == "id") {
    const pp::id_protocol proto(pp::id_protocol::suggested_k(g.num_nodes()));
    summary = pp::measure_election(proto, g, trials, seed.fork(2));
    sample_leader = pp::run_until_stable(proto, g, seed.fork(3)).leader;
  } else if (protocol == "six") {
    const pp::beauquier_protocol proto(g.num_nodes());
    summary = pp::measure_beauquier_event_driven(proto, g, trials, seed.fork(2),
                                                 UINT64_MAX);
    sample_leader =
        pp::run_beauquier_event_driven(proto, g, seed.fork(3), UINT64_MAX).leader;
  } else if (protocol == "star") {
    const pp::star_protocol proto;
    summary = pp::measure_election(proto, g, trials, seed.fork(2),
                                   {.max_steps = 1'000'000});
    const auto r = pp::run_until_stable(proto, g, seed.fork(3),
                                        {.max_steps = 1'000'000});
    sample_leader = r.leader;
  } else {
    return usage();
  }

  std::printf("stabilized: %.0f%% of %d trials\n",
              100.0 * summary.stabilized_fraction, trials);
  if (summary.steps.count > 0) {
    std::printf("steps: mean %.0f (sd %.0f, median %.0f, [q10,q90]=[%.0f, %.0f])\n",
                summary.steps.mean, summary.steps.stddev, summary.steps.median,
                summary.steps.q10, summary.steps.q90);
  }
  std::printf("sample leader: node %d\n", sample_leader);

  if (const char* dot = std::getenv("POPSIM_DOT"); dot != nullptr && dot[0] == '1') {
    std::vector<bool> leaders(static_cast<std::size_t>(g.num_nodes()), false);
    if (sample_leader >= 0) leaders[static_cast<std::size_t>(sample_leader)] = true;
    std::fputs(pp::to_dot(g, leaders).c_str(), stdout);
  }
  return 0;
}
