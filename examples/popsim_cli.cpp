// popsim: command-line driver for the library.
//
//   $ ./example_popsim_cli <family> <n> <protocol> [--trials T] [--seed S]
//                          [--engine auto|wellmixed] [--order natural|bfs|rcm]
//                          [--pack auto|8|16|32]
//
//   family    clique | cycle | star | torus | er_dense | rr8
//   protocol  fast | id | six | star
//   --trials  independent elections to aggregate (default 5, >= 1)
//   --seed    master seed; every reported number is reproducible from it
//             (default 1)
//   --engine  auto picks the fastest per-interaction simulator for the
//             protocol; wellmixed runs the O(|Λ|)-memory multiset batch
//             engine (clique family + fast/six protocols only), which never
//             materialises the graph and reaches n = 10⁸
//   --order   vertex order for the compiled engine (protocol fast): natural
//             keeps per-seed reproducibility with the reference simulator;
//             bfs/rcm relabel the graph for cache locality (statistically
//             equivalent, different seeded trajectories)
//   --pack    config word width for the compiled engine (protocol fast):
//             auto picks the narrowest width holding |Λ|; 8/16/32 force one
//             and fail loudly if the state space does not fit
//
// Runs the chosen election, prints a summary, and emits the final
// configuration as Graphviz DOT on request via POPSIM_DOT=1 — handy for
// scripting sweeps beyond what the bench binaries cover.
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/fast_election.h"
#include "core/id_election.h"
#include "core/star_protocol.h"
#include "dynamics/epidemic.h"
#include "graph/io.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: popsim <family> <n> <protocol> [--trials T] [--seed S]"
               " [--engine auto|wellmixed] [--order natural|bfs|rcm]"
               " [--pack auto|8|16|32]\n"
               "  family:   clique cycle star torus er_dense rr8\n"
               "  protocol: fast id six star\n"
               "  --trials  positive trial count (default 5)\n"
               "  --seed    64-bit master seed (default 1)\n"
               "  --engine  wellmixed needs family=clique and protocol"
               " fast|six\n"
               "  --order   vertex relabelling for the compiled engine"
               " (protocol fast only; default natural)\n"
               "  --pack    config word width for the compiled engine"
               " (protocol fast only; default auto)\n");
  return 2;
}

// Strict full-string parse of a non-negative integer; returns false on any
// trailing garbage, sign, or overflow, so typos fail loudly instead of
// silently truncating (atoi accepted "10x" and "1e6" as 10 and 1).
bool parse_u64(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text == '\0' || *text == '-' || *text == '+') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string family_name = argv[1];
  std::uint64_t n_value = 0;
  if (!parse_u64(argv[2], n_value) || n_value < 2 ||
      n_value > static_cast<std::uint64_t>(INT32_MAX)) {
    std::fprintf(stderr, "popsim: n must be an integer in [2, %d]\n", INT32_MAX);
    return usage();
  }
  const std::string protocol = argv[3];

  std::uint64_t trials = 5;
  std::uint64_t seed_value = 1;
  std::string engine = "auto";
  pp::engine_tuning tuning;
  bool tuning_requested = false;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--trials" && i + 1 < argc) {
      if (!parse_u64(argv[++i], trials) || trials < 1 || trials > 1'000'000) {
        std::fprintf(stderr, "popsim: --trials must be in [1, 1000000]\n");
        return usage();
      }
    } else if (flag == "--seed" && i + 1 < argc) {
      if (!parse_u64(argv[++i], seed_value)) {
        std::fprintf(stderr, "popsim: --seed must be a 64-bit integer\n");
        return usage();
      }
    } else if (flag == "--engine" && i + 1 < argc) {
      engine = argv[++i];
      if (engine != "auto" && engine != "wellmixed") {
        std::fprintf(stderr, "popsim: unknown engine '%s'\n", engine.c_str());
        return usage();
      }
    } else if (flag == "--order" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (!pp::parse_vertex_order(name, tuning.order)) {
        std::fprintf(stderr, "popsim: unknown order '%s'\n", name.c_str());
        return usage();
      }
      tuning_requested = true;
    } else if (flag == "--pack" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "auto") {
        tuning.pack_bits = 0;
      } else if (name == "8" || name == "16" || name == "32") {
        tuning.pack_bits = std::atoi(name.c_str());
      } else {
        std::fprintf(stderr, "popsim: --pack must be auto, 8, 16 or 32\n");
        return usage();
      }
      tuning_requested = true;
    } else {
      std::fprintf(stderr, "popsim: unknown or incomplete flag '%s'\n",
                   flag.c_str());
      return usage();
    }
  }

  pp::rng seed(seed_value);
  const int trial_count = static_cast<int>(trials);

  // --- well-mixed multiset engine: no graph object, clique only ---
  if (engine == "wellmixed") {
    if (tuning_requested) {
      std::fprintf(stderr,
                   "popsim: --order/--pack tune the per-interaction compiled "
                   "engine; the wellmixed engine has no node array to pack\n");
      return usage();
    }
    if (family_name != "clique") {
      std::fprintf(stderr,
                   "popsim: --engine wellmixed simulates the well-mixed "
                   "(clique) model only\n");
      return usage();
    }
    const std::uint64_t n = n_value;
    pp::election_summary summary;
    if (protocol == "fast") {
      const pp::fast_protocol proto(pp::fast_params::practical_clique(n));
      summary = pp::measure_election_wellmixed(proto, n, trial_count, seed.fork(2));
    } else if (protocol == "six") {
      const pp::beauquier_protocol proto(static_cast<pp::node_id>(n));
      summary = pp::measure_election_wellmixed(proto, n, trial_count, seed.fork(2));
    } else {
      std::fprintf(stderr,
                   "popsim: --engine wellmixed supports protocols fast|six\n");
      return usage();
    }
    std::printf("well-mixed clique: n=%llu (multiset configuration, no edge list)\n",
                static_cast<unsigned long long>(n));
    std::printf("stabilized: %.0f%% of %d trials\n",
                100.0 * summary.stabilized_fraction, trial_count);
    if (summary.steps.count > 0) {
      std::printf("steps: mean %.3g (sd %.2g, median %.3g, [q10,q90]=[%.3g, %.3g])\n",
                  summary.steps.mean, summary.steps.stddev, summary.steps.median,
                  summary.steps.q10, summary.steps.q90);
    }
    // A stabilized trial has exactly one leader by the tracker's predicate;
    // agents are exchangeable, so there is no node id to report.
    if (summary.stabilized_fraction > 0) {
      std::printf("stabilized trials elected a unique leader\n");
    }
    return 0;
  }

  // Reject tuning flags for non-engine protocols before paying for the
  // graph construction (a dense family at large n is expensive to build).
  if (tuning_requested && protocol != "fast") {
    std::fprintf(stderr,
                 "popsim: --order/--pack apply to the compiled engine, i.e. "
                 "protocol fast\n");
    return usage();
  }

  const pp::node_id n = static_cast<pp::node_id>(n_value);
  const pp::graph_family* family = nullptr;
  try {
    family = &pp::family_by_name(family_name);
  } catch (const std::invalid_argument&) {
    return usage();
  }
  pp::rng make_gen = seed.fork(0);
  const pp::graph g = family->make(n, make_gen);
  std::printf("graph: %s n=%d m=%lld Δ=%d\n", family_name.c_str(), g.num_nodes(),
              static_cast<long long>(g.num_edges()), g.max_degree());

  pp::election_summary summary;
  pp::node_id sample_leader = -1;
  if (protocol == "fast") {
    const double b = pp::estimate_worst_case_broadcast_time(g, 30, 6, seed.fork(1)).value;
    const pp::fast_protocol proto(pp::fast_params::practical(g, b));
    // Tuned compiled engine (src/engine/): the runner resolves the data
    // layout (vertex order, config/table word widths) once and shares it
    // across the trials.  Defaults (natural order, auto width) reproduce the
    // reference simulator's seeded results exactly.
    std::optional<pp::tuned_runner<pp::fast_protocol>> prepared;
    try {
      prepared.emplace(proto, g, tuning);
    } catch (const std::invalid_argument& e) {
      // e.g. --pack 8 when |Λ| > 256, or a forced width on an unclosable
      // table: report instead of aborting.
      std::fprintf(stderr, "popsim: %s\n", e.what());
      return usage();
    }
    const pp::tuned_runner<pp::fast_protocol>& runner = *prepared;
    std::printf("engine: order=%s pack=u%d%s\n", pp::to_string(runner.order()),
                runner.pack_bits(),
                runner.packed() ? "" : " (lazy fallback: |Lambda| beyond the closure budget)");
    summary = pp::measure_election_tuned(runner, trial_count, seed.fork(2));
    sample_leader = runner.run(seed.fork(3)).leader;
  } else if (protocol == "id") {
    const pp::id_protocol proto(pp::id_protocol::suggested_k(g.num_nodes()));
    summary = pp::measure_election(proto, g, trial_count, seed.fork(2));
    sample_leader = pp::run_until_stable(proto, g, seed.fork(3)).leader;
  } else if (protocol == "six") {
    const pp::beauquier_protocol proto(g.num_nodes());
    summary = pp::measure_beauquier_event_driven(proto, g, trial_count,
                                                 seed.fork(2), UINT64_MAX);
    sample_leader =
        pp::run_beauquier_event_driven(proto, g, seed.fork(3), UINT64_MAX).leader;
  } else if (protocol == "star") {
    const pp::star_protocol proto;
    summary = pp::measure_election(proto, g, trial_count, seed.fork(2),
                                   {.max_steps = 1'000'000});
    const auto r = pp::run_until_stable(proto, g, seed.fork(3),
                                        {.max_steps = 1'000'000});
    sample_leader = r.leader;
  } else {
    return usage();
  }

  std::printf("stabilized: %.0f%% of %d trials\n",
              100.0 * summary.stabilized_fraction, trial_count);
  if (summary.steps.count > 0) {
    std::printf("steps: mean %.0f (sd %.0f, median %.0f, [q10,q90]=[%.0f, %.0f])\n",
                summary.steps.mean, summary.steps.stddev, summary.steps.median,
                summary.steps.q10, summary.steps.q90);
  }
  std::printf("sample leader: node %d\n", sample_leader);

  if (const char* dot = std::getenv("POPSIM_DOT"); dot != nullptr && dot[0] == '1') {
    std::vector<bool> leaders(static_cast<std::size_t>(g.num_nodes()), false);
    if (sample_leader >= 0) leaders[static_cast<std::size_t>(sample_leader)] = true;
    std::fputs(pp::to_dot(g, leaders).c_str(), stdout);
  }
  return 0;
}
