// popsim: command-line driver for the library.
//
//   $ ./example_popsim_cli <family> <n> <protocol> [--trials T] [--seed S]
//                          [--engine auto|wellmixed|silent]
//                          [--order natural|bfs|rcm]
//                          [--pack auto|8|16|32] [--jobs W]
//                          [--save-artifact FILE]
//                          [--journal FILE [--resume]] [--retries N]
//                          [--worker-timeout-ms N] [--inject-fault SPECS]
//   $ ./example_popsim_cli --load-artifact FILE [--trials T] [--seed S]
//                          [--jobs W] [--save-artifact FILE] [fleet flags]
//                          [--hosts HOST:PORT,...]
//   $ ./example_popsim_cli --serve PORT [--cache-mb N]
//   $ ./example_popsim_cli --worker MANIFEST INDEX [BASE COUNT [FAULTS]]
//
//   family    clique | cycle | star | torus | er_dense | rr8
//   protocol  fast | id | six | star
//   --trials  independent elections to aggregate (default 5, >= 1)
//   --seed    master seed; every reported number is reproducible from it
//             (default 1)
//   --engine  auto picks the fastest per-interaction simulator for the
//             protocol; wellmixed runs the O(|Λ|)-memory multiset batch
//             engine (clique family + fast/six protocols only), which never
//             materialises the graph and reaches n = 10⁸; silent runs the
//             event-driven scheduler (src/engine/silent/) that draws only
//             non-silent pairs and jumps the step counter over the waiting
//             phase — statistically equivalent to auto, different seeded
//             trajectories.  A runtime knob, not part of the artifact: it
//             is the one --engine value allowed with --load-artifact
//   --order   vertex order for the compiled engine (protocols fast and
//             star): natural keeps per-seed reproducibility with the
//             reference simulator; bfs/rcm relabel the graph for cache
//             locality (statistically equivalent, different seeded
//             trajectories)
//   --pack    config word width for the compiled engine (protocols fast and
//             star): auto picks the narrowest width holding |Λ|; 8/16/32
//             force one and fail loudly if the state space does not fit
//   --jobs    shard the trials across W worker processes (fleet sweep,
//             src/fleet/).  Trial t keeps its serial seed, records are
//             merged by trial index, so the printed summary is identical to
//             the --jobs 1 run — worker bookkeeping goes to stderr
//   --save-artifact  write the prepared sweep (closed table, packed
//             snapshot, graph + reorder permutation or well-mixed multiset)
//             as a versioned, checksummed binary artifact (src/fleet/)
//   --load-artifact  rebuild the sweep from an artifact instead of the
//             positional arguments; the rebuild is validated byte-for-byte
//             against the stored sections before anything runs
//   --journal  spool every completed trial of the sweep to a crash-safe
//             .ppaj journal (src/fleet/journal.h) as it streams in
//   --resume  replay the --journal file first and run only the trials it
//             is missing; the merged summary is identical to a fresh run
//   --retries  worker kill-and-respawn budget across the sweep (default 2);
//             once spent, leftover trials run inline in this process
//   --worker-timeout-ms  kill and respawn a worker that has written nothing
//             for this long (default: no timeout)
//   --inject-fault  deterministic worker faults for testing the supervisor,
//             comma-separated
//             <exit|sigkill|stall|torn|drop|garbage>:w<slot>[:after=<n>]
//             (src/fleet/fault.h); injected into first-generation workers
//             only — with --hosts, into the slot's first connection — so
//             the recovered sweep still matches the serial one
//   --hosts   run the sweep's worker slots over TCP against resident
//             popsimd daemons (src/fleet/net.h) instead of forked local
//             workers; slot i dials the i-th listed host round-robin.
//             Without an explicit --jobs, one slot per listed host
//   --serve   run as a resident popsimd daemon (src/fleet/service.h) on
//             PORT (0 picks an ephemeral port, printed on stdout); serves
//             sweep requests forever, caching verified artifacts
//   --cache-mb  artifact cache budget for --serve in MB (default 256;
//             least-recently-used artifacts are evicted past it)
//   --worker  internal: run one worker's trial block of a fleet manifest,
//             streaming length-prefixed records to stdout; the supervisor
//             appends an explicit BASE COUNT trial range and optionally a
//             fault spec list
//   --metrics  write a deterministic run_metrics.json-style snapshot
//             (src/obs/metrics.h) after the sweep: fleet.* supervisor
//             counters plus engine.* probe counters rolled up from the
//             workers' sidecars
//   --trace   write a Chrome trace-event JSON timeline (src/obs/trace.h) of
//             the sweep — supervisor spans/instants plus per-trial worker
//             spans — loadable in chrome://tracing or ui.perfetto.dev
//   --probe-stride  census-sampling stride for the engine probes riding
//             --metrics/--trace (default 1024 steps)
//   --progress  emit a throttled live status line (trials done/total,
//             per-slot state, EWMA trial rate -> ETA) on stderr from the
//             sweep supervisor; works identically in fork, --hosts and
//             --resume modes, and stdout stays byte-identical to serial
//   --log-level  stderr chattiness: error|warn|info|debug (default info;
//             the POPSIM_LOG env var sets the same threshold)
//
// Every invalid invocation exits nonzero (2 for usage errors, 1 for runtime
// failures) — the fleet CI gates pipe this binary and depend on it.
//
// Runs the chosen election, prints a summary, and emits the final
// configuration as Graphviz DOT on request via POPSIM_DOT=1 — handy for
// scripting sweeps beyond what the bench binaries cover.
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/fast_election.h"
#include "core/id_election.h"
#include "core/star_protocol.h"
#include "dynamics/epidemic.h"
#include "fleet/artifact.h"
#include "fleet/fault.h"
#include "fleet/net.h"
#include "fleet/service.h"
#include "fleet/supervisor.h"
#include "fleet/sweep.h"
#include "graph/io.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "obs/trace.h"
#include "support/parse.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: popsim <family> <n> <protocol> [--trials T] [--seed S]"
               " [--engine auto|wellmixed|silent] [--order natural|bfs|rcm]"
               " [--pack auto|8|16|32] [--jobs W] [--save-artifact FILE]\n"
               "       popsim --load-artifact FILE [--trials T] [--seed S]"
               " [--jobs W] [--save-artifact FILE] [--hosts HOST:PORT,...]\n"
               "       popsim --serve PORT [--cache-mb N]\n"
               "       popsim --worker MANIFEST INDEX\n"
               "  family:   clique cycle star torus er_dense rr8\n"
               "  protocol: fast id six star\n"
               "  --trials  positive trial count (default 5)\n"
               "  --seed    64-bit master seed (default 1)\n"
               "  --engine  wellmixed needs family=clique and protocol"
               " fast|six; silent is the event-driven scheduler"
               " (protocol fast|star, any family)\n"
               "  --order   vertex relabelling for the compiled engine"
               " (protocols fast|star; default natural)\n"
               "  --pack    config word width for the compiled engine"
               " (protocols fast|star; default auto)\n"
               "  --jobs    worker processes for the sweep (default 1;"
               " protocol fast|star or --engine wellmixed)\n"
               "  --save-artifact / --load-artifact  serialize / rebuild the"
               " prepared sweep (src/fleet/)\n"
               "  --journal FILE  spool every completed trial to a crash-safe"
               " .ppaj journal as it streams in\n"
               "  --resume  replay --journal FILE first and run only the"
               " missing trials\n"
               "  --retries N  worker kill-and-respawn budget for the sweep"
               " (default 2)\n"
               "  --worker-timeout-ms N  kill a worker silent for N ms and"
               " respawn it (default: no timeout)\n"
               "  --inject-fault SPECS  deterministic worker faults, comma-"
               "separated <exit|sigkill|stall|torn|drop|garbage>"
               ":w<slot>[:after=<n>]\n"
               "  --hosts HOST:PORT,...  dial resident popsimd daemons for "
               "the sweep's worker slots instead of forking workers\n"
               "  --serve PORT  run as a resident popsimd daemon on PORT "
               "(0 = ephemeral, printed on stdout)\n"
               "  --cache-mb N  --serve artifact cache budget in MB "
               "(default 256, in [1, 1048576])\n"
               "  --metrics FILE  write a JSON metrics snapshot (fleet.* "
               "supervisor + engine.* probe counters) after the sweep\n"
               "  --trace FILE  write a Chrome trace-event JSON timeline of "
               "the sweep (chrome://tracing / ui.perfetto.dev)\n"
               "  --probe-stride N  census-sampling stride for the probes "
               "riding --metrics/--trace (default 1024)\n"
               "  --progress  live sweep status line on stderr (trials done, "
               "rate, ETA, slot states); stdout is untouched\n"
               "  --log-level L  stderr threshold error|warn|info|debug "
               "(default info; POPSIM_LOG sets the same)\n");
  return 2;
}

// Numeric flags go through the strict full-string pp::parse_u64
// (support/parse.h), shared with the fleet manifest reader so the CLI and
// manifests can never drift in what they accept.
using pp::parse_u64;

struct cli_config {
  std::uint64_t trials = 5;
  std::uint64_t seed = 1;
  std::string engine = "auto";
  bool engine_requested = false;
  pp::engine_tuning tuning;
  bool tuning_requested = false;
  std::uint64_t jobs = 1;
  std::string save_path;
  std::string load_path;
  std::string journal_path;
  bool resume = false;
  std::uint64_t retries = 2;
  bool retries_requested = false;
  std::uint64_t worker_timeout_ms = 0;
  std::vector<pp::fleet::fault_spec> faults;
  std::string metrics_path;
  std::string trace_path;
  std::uint64_t probe_stride = pp::obs::run_probe::kDefaultStride;
  bool probe_stride_requested = false;
  bool progress = false;
  std::vector<pp::fleet::net::host_addr> hosts;
  bool serve_requested = false;
  std::uint64_t serve_port = 0;
  std::uint64_t cache_mb = 256;
  bool cache_mb_requested = false;

  // Any supervision or observability flag routes the sweep through the
  // fault-tolerant supervisor (fleet/supervisor.h) even at --jobs 1, so
  // journaling, resume and the flight recorder work for serial sweeps too.
  // A --hosts sweep is always supervised: the socket slots live inside the
  // same loop.
  bool supervised() const {
    return !journal_path.empty() || resume || retries_requested ||
           worker_timeout_ms > 0 || !faults.empty() || observed() ||
           progress || !hosts.empty();
  }

  // Worker slot count the sweep actually runs with: --jobs when explicit,
  // otherwise one slot per --hosts daemon (or the 1-job default locally).
  std::uint64_t effective_jobs() const {
    if (!hosts.empty() && jobs <= 1) return hosts.size();
    return jobs;
  }
  bool observed() const {
    return !metrics_path.empty() || !trace_path.empty();
  }

  pp::fleet::supervise_options supervision() const {
    pp::fleet::supervise_options sup;
    sup.worker_timeout_ms = static_cast<int>(worker_timeout_ms);
    sup.max_retries = static_cast<int>(retries);
    sup.journal_path = journal_path;
    sup.resume = resume;
    sup.journal_tag = seed;
    sup.faults = faults;
    sup.probe_stride = probe_stride;
    sup.progress = progress;
    return sup;
  }
};

// Parses the optional flags from argv[start..).  Returns false — after
// reporting the offending flag on stderr — on any unknown, incomplete or
// out-of-range flag; every caller turns that into a nonzero exit.
bool parse_flags(int argc, char** argv, int start, cli_config& cfg) {
  for (int i = start; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--trials" && i + 1 < argc) {
      if (!parse_u64(argv[++i], cfg.trials) || cfg.trials < 1 ||
          cfg.trials > 1'000'000) {
        std::fprintf(stderr, "popsim: --trials must be in [1, 1000000]\n");
        return false;
      }
    } else if (flag == "--seed" && i + 1 < argc) {
      if (!parse_u64(argv[++i], cfg.seed)) {
        std::fprintf(stderr, "popsim: --seed must be a 64-bit integer\n");
        return false;
      }
    } else if (flag == "--engine" && i + 1 < argc) {
      cfg.engine = argv[++i];
      cfg.engine_requested = true;
      if (cfg.engine != "auto" && cfg.engine != "wellmixed" &&
          cfg.engine != "silent") {
        std::fprintf(stderr, "popsim: unknown engine '%s'\n", cfg.engine.c_str());
        return false;
      }
    } else if (flag == "--order" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (!pp::parse_vertex_order(name, cfg.tuning.order)) {
        std::fprintf(stderr, "popsim: unknown order '%s'\n", name.c_str());
        return false;
      }
      cfg.tuning_requested = true;
    } else if (flag == "--pack" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "auto") {
        cfg.tuning.pack_bits = 0;
      } else if (name == "8" || name == "16" || name == "32") {
        cfg.tuning.pack_bits = std::atoi(name.c_str());
      } else {
        std::fprintf(stderr, "popsim: --pack must be auto, 8, 16 or 32\n");
        return false;
      }
      cfg.tuning_requested = true;
    } else if (flag == "--jobs" && i + 1 < argc) {
      if (!parse_u64(argv[++i], cfg.jobs) || cfg.jobs < 1 || cfg.jobs > 256) {
        std::fprintf(stderr, "popsim: --jobs must be in [1, 256]\n");
        return false;
      }
    } else if (flag == "--save-artifact" && i + 1 < argc) {
      cfg.save_path = argv[++i];
      if (cfg.save_path.empty()) {
        std::fprintf(stderr, "popsim: --save-artifact needs a file path\n");
        return false;
      }
    } else if (flag == "--load-artifact" && i + 1 < argc) {
      cfg.load_path = argv[++i];
      if (cfg.load_path.empty()) {
        std::fprintf(stderr, "popsim: --load-artifact needs a file path\n");
        return false;
      }
    } else if (flag == "--journal" && i + 1 < argc) {
      cfg.journal_path = argv[++i];
      if (cfg.journal_path.empty()) {
        std::fprintf(stderr, "popsim: --journal needs a file path\n");
        return false;
      }
    } else if (flag == "--resume") {
      cfg.resume = true;
    } else if (flag == "--retries" && i + 1 < argc) {
      if (!parse_u64(argv[++i], cfg.retries) || cfg.retries > 1000) {
        std::fprintf(stderr, "popsim: --retries must be in [0, 1000]\n");
        return false;
      }
      cfg.retries_requested = true;
    } else if (flag == "--worker-timeout-ms" && i + 1 < argc) {
      if (!parse_u64(argv[++i], cfg.worker_timeout_ms) ||
          cfg.worker_timeout_ms < 1 || cfg.worker_timeout_ms > 3'600'000) {
        std::fprintf(stderr,
                     "popsim: --worker-timeout-ms must be in [1, 3600000]\n");
        return false;
      }
    } else if (flag == "--metrics" && i + 1 < argc) {
      cfg.metrics_path = argv[++i];
      if (cfg.metrics_path.empty()) {
        std::fprintf(stderr, "popsim: --metrics needs a file path\n");
        return false;
      }
    } else if (flag == "--trace" && i + 1 < argc) {
      cfg.trace_path = argv[++i];
      if (cfg.trace_path.empty()) {
        std::fprintf(stderr, "popsim: --trace needs a file path\n");
        return false;
      }
    } else if (flag == "--probe-stride" && i + 1 < argc) {
      if (!parse_u64(argv[++i], cfg.probe_stride) || cfg.probe_stride < 1 ||
          cfg.probe_stride > 1'000'000'000'000ull) {
        std::fprintf(stderr,
                     "popsim: --probe-stride must be in [1, 10^12]\n");
        return false;
      }
      cfg.probe_stride_requested = true;
    } else if (flag == "--progress") {
      cfg.progress = true;
    } else if (flag == "--log-level" && i + 1 < argc) {
      pp::obs::log_level level = pp::obs::log_level::info;
      const std::string name = argv[++i];
      if (!pp::obs::parse_log_level(name, level)) {
        std::fprintf(stderr,
                     "popsim: --log-level must be error, warn, info or debug\n");
        return false;
      }
      pp::obs::set_log_threshold(level);
    } else if (flag == "--inject-fault" && i + 1 < argc) {
      const std::string specs = argv[++i];
      if (!pp::fleet::parse_fault_specs(specs, cfg.faults)) {
        std::fprintf(stderr,
                     "popsim: bad --inject-fault '%s' (want comma-separated "
                     "<exit|sigkill|stall|torn|drop|garbage>"
                     ":w<slot>[:after=<n>])\n",
                     specs.c_str());
        return false;
      }
    } else if (flag == "--hosts" && i + 1 < argc) {
      const std::string list = argv[++i];
      if (!pp::fleet::net::parse_host_list(list, cfg.hosts)) {
        std::fprintf(stderr,
                     "popsim: bad --hosts '%s' (want comma-separated "
                     "host:port with port in [1, 65535])\n",
                     list.c_str());
        return false;
      }
    } else if (flag == "--serve" && i + 1 < argc) {
      if (!parse_u64(argv[++i], cfg.serve_port) || cfg.serve_port > 65535) {
        std::fprintf(stderr, "popsim: --serve port must be in [0, 65535]\n");
        return false;
      }
      cfg.serve_requested = true;
    } else if (flag == "--cache-mb" && i + 1 < argc) {
      if (!parse_u64(argv[++i], cfg.cache_mb) || cfg.cache_mb < 1 ||
          cfg.cache_mb > 1'048'576) {
        std::fprintf(stderr, "popsim: --cache-mb must be in [1, 1048576]\n");
        return false;
      }
      cfg.cache_mb_requested = true;
    } else {
      std::fprintf(stderr, "popsim: unknown or incomplete flag '%s'\n",
                   flag.c_str());
      return false;
    }
  }
  return true;
}

// Cross-flag validation shared by the classic and artifact entry points.
bool validate_fleet_flags(const cli_config& cfg) {
  if (cfg.resume && cfg.journal_path.empty()) {
    std::fprintf(stderr, "popsim: --resume needs --journal\n");
    return false;
  }
  if (cfg.probe_stride_requested && !cfg.observed()) {
    std::fprintf(stderr,
                 "popsim: --probe-stride needs --metrics or --trace\n");
    return false;
  }
  if (cfg.serve_requested) {
    if (!cfg.hosts.empty()) {
      std::fprintf(stderr,
                   "popsim: --serve runs the daemon side of --hosts; pick "
                   "one per invocation\n");
      return false;
    }
    if (!cfg.load_path.empty() || !cfg.save_path.empty() ||
        !cfg.journal_path.empty() || cfg.resume || cfg.retries_requested ||
        cfg.worker_timeout_ms > 0 || !cfg.faults.empty() || cfg.observed() ||
        cfg.progress || cfg.engine_requested || cfg.tuning_requested ||
        cfg.jobs != 1) {
      std::fprintf(stderr,
                   "popsim: --serve is a resident daemon; it takes only "
                   "--cache-mb and --log-level\n");
      return false;
    }
  } else if (cfg.cache_mb_requested) {
    std::fprintf(stderr, "popsim: --cache-mb needs --serve\n");
    return false;
  }
  for (const pp::fleet::fault_spec& f : cfg.faults) {
    if (static_cast<std::uint64_t>(f.worker) >= cfg.effective_jobs()) {
      std::fprintf(stderr,
                   "popsim: --inject-fault names worker slot w%d beyond the "
                   "%llu-worker fleet\n",
                   f.worker,
                   static_cast<unsigned long long>(cfg.effective_jobs()));
      return false;
    }
  }
  return true;
}

// Temp file path inside a fresh mode-0700 mkdtemp directory: no other local
// user can swap the path for a symlink between creation and the later
// fopen-for-write (the classic /tmp TOCTOU), and cleanup is RAII.
class temp_file {
 public:
  explicit temp_file(const char* name) {
    char buf[] = "/tmp/popsim-XXXXXX";
    pp::expects(::mkdtemp(buf) != nullptr,
                "popsim: cannot create a temporary directory");
    dir_ = buf;
    path_ = dir_ + "/" + name;
  }
  ~temp_file() {
    std::remove(path_.c_str());
    ::rmdir(dir_.c_str());
  }
  temp_file(const temp_file&) = delete;
  temp_file& operator=(const temp_file&) = delete;

  const std::string& path() const { return path_; }
  // The private mkdtemp directory itself — the fleet path reuses it as the
  // worker sidecar directory (supervisor.h), same lifetime and permissions.
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::string path_;
};

// Shards the sweep described by (artifact, cfg) across cfg.jobs worker
// subprocesses of this binary and merges their record streams under the
// fault-tolerant supervisor (fleet/supervisor.h): crashed workers are
// respawned, journaling/resume apply when requested, and `inline_fn` runs
// leftover trials in-process once the retry budget is spent.  The merged
// summary is identical to the serial one (fleet/sweep.h); worker accounting
// goes to stderr so serial and fleet stdout stay diffable.
pp::election_summary run_fleet(const std::string& artifact_path,
                               const cli_config& cfg, const char* argv0,
                               const pp::sim_options& options,
                               const pp::fleet::trial_fn& inline_fn) {
  pp::fleet::worker_manifest manifest;
  manifest.artifact_path = artifact_path;
  manifest.seed = cfg.seed;
  manifest.trials = cfg.trials;
  manifest.jobs = static_cast<int>(cfg.effective_jobs());
  manifest.max_steps = options.max_steps;
  manifest.wellmixed_batch = options.wellmixed_batch;
  manifest.scheduler = options.scheduler;
  const temp_file manifest_file("manifest");
  pp::fleet::write_manifest(manifest, manifest_file.path());
  // Flight recorder (src/obs/): the supervisor fills the borrowed registry
  // and timeline, workers drop sidecars into the manifest's private temp
  // directory, and the snapshots are serialised once the sweep is merged.
  pp::obs::metrics_registry metrics;
  pp::obs::trace_writer trace;
  pp::fleet::supervise_options sup = cfg.supervision();
  if (!cfg.metrics_path.empty()) sup.metrics = &metrics;
  if (!cfg.trace_path.empty()) sup.trace = &trace;
  std::vector<pp::election_result> results;
  if (!cfg.hosts.empty()) {
    // Distributed sweep: the slots are TCP connections to resident popsimd
    // daemons (fleet/net.h); remote workers cannot drop local sidecars, so
    // the flight recorder carries supervisor + fleet.net.* data only.
    std::fprintf(stderr,
                 "popsim: distributed sweep, %d slot(s) across %zu host(s)\n",
                 manifest.jobs, cfg.hosts.size());
    results = pp::fleet::net::supervised_remote_sweep(
        cfg.hosts, manifest.jobs, manifest, sup, inline_fn);
  } else {
    std::fprintf(stderr,
                 "popsim: fleet sweep, %d workers x %llu-trial blocks\n",
                 manifest.jobs,
                 static_cast<unsigned long long>(
                     cfg.trials / cfg.effective_jobs()));
    if (cfg.observed()) sup.sidecar_dir = manifest_file.dir();
    results = pp::fleet::supervised_spawn_sweep(
        pp::fleet::self_exe_path(argv0), manifest_file.path(), manifest, sup,
        inline_fn);
  }
  if (!cfg.metrics_path.empty()) {
    pp::ensure(metrics.write_json(cfg.metrics_path),
               "popsim: cannot write --metrics " + cfg.metrics_path);
    pp::obs::logf(pp::obs::log_level::info, "popsim: metrics -> %s",
                  cfg.metrics_path.c_str());
  }
  if (!cfg.trace_path.empty()) {
    pp::ensure(trace.write_json(cfg.trace_path),
               "popsim: cannot write --trace " + cfg.trace_path);
    pp::obs::logf(pp::obs::log_level::info, "popsim: trace -> %s",
                  cfg.trace_path.c_str());
  }
  return pp::summarize_election_results(results);
}

void print_graph_summary(const pp::election_summary& summary, int trials,
                         pp::node_id sample_leader) {
  std::printf("stabilized: %.0f%% of %d trials\n",
              100.0 * summary.stabilized_fraction, trials);
  if (summary.steps.count > 0) {
    std::printf("steps: mean %.0f (sd %.0f, median %.0f, [q10,q90]=[%.0f, %.0f])\n",
                summary.steps.mean, summary.steps.stddev, summary.steps.median,
                summary.steps.q10, summary.steps.q90);
  }
  std::printf("sample leader: node %d\n", sample_leader);
}

void print_wellmixed_summary(const pp::election_summary& summary, int trials) {
  std::printf("stabilized: %.0f%% of %d trials\n",
              100.0 * summary.stabilized_fraction, trials);
  if (summary.steps.count > 0) {
    std::printf("steps: mean %.3g (sd %.2g, median %.3g, [q10,q90]=[%.3g, %.3g])\n",
                summary.steps.mean, summary.steps.stddev, summary.steps.median,
                summary.steps.q10, summary.steps.q90);
  }
  // A stabilized trial has exactly one leader by the tracker's predicate;
  // agents are exchangeable, so there is no node id to report.
  if (summary.stabilized_fraction > 0) {
    std::printf("stabilized trials elected a unique leader\n");
  }
}

// Serial-or-fleet well-mixed sweep + report, shared by the classic and
// artifact entry points (P is fast_protocol or beauquier_protocol).
template <typename P>
int run_wellmixed_mode(const P& proto, std::uint64_t n, const cli_config& cfg,
                       const char* argv0, const std::string& family,
                       const std::string& loaded_path) {
  pp::rng seed(cfg.seed);
  const int trial_count = static_cast<int>(cfg.trials);
  const pp::sim_options options;
  pp::election_summary summary;
  std::string artifact_path = loaded_path;
  std::optional<temp_file> temp_artifact;
  if (artifact_path.empty() &&
      (cfg.jobs > 1 || cfg.supervised() || !cfg.save_path.empty())) {
    const auto initial = pp::initial_multiset(proto, n);
    pp::fleet::protocol_desc desc;
    if constexpr (std::is_same_v<P, pp::fast_protocol>) {
      desc = pp::fleet::fast_desc(proto.params());
    } else {
      desc = pp::fleet::six_desc(proto.num_nodes());
    }
    const auto artifact =
        pp::fleet::make_wellmixed_artifact(proto, initial, n, family, desc);
    artifact_path = cfg.save_path;
    if (artifact_path.empty()) {
      artifact_path = temp_artifact.emplace("artifact.ppaf").path();
    }
    pp::fleet::save_artifact(artifact, artifact_path);
  }
  if (cfg.jobs > 1 || cfg.supervised()) {
    // Degraded-mode fallback: the sweep object is built lazily so the happy
    // path (no worker ever exhausts the retry budget) pays nothing for it.
    std::optional<pp::wellmixed_sweep<P>> sweep_cache;
    const pp::fleet::trial_fn inline_fn = [&](std::uint64_t, pp::rng gen) {
      if (!sweep_cache) sweep_cache.emplace(proto, n);
      return sweep_cache->run(gen, options);
    };
    summary = run_fleet(artifact_path, cfg, argv0, options, inline_fn);
  } else {
    summary = pp::measure_election_wellmixed(proto, n, trial_count, seed.fork(2));
  }
  std::printf("well-mixed clique: n=%llu (multiset configuration, no edge list)\n",
              static_cast<unsigned long long>(n));
  print_wellmixed_summary(summary, trial_count);
  return 0;
}

// The tuned engine's sim_options per protocol kind: the star protocol can
// deadlock with several leaders on general graphs (the tracker then never
// fires), so its runs are step-capped; the fast protocol always stabilizes.
// Shared by the classic, --load-artifact and --worker paths so a sweep's
// stdout never depends on which of them produced it.
pp::sim_options tuned_options(pp::fleet::protocol_kind kind) {
  pp::sim_options options;
  if (kind == pp::fleet::protocol_kind::star) options.max_steps = 1'000'000;
  return options;
}

// Constructs the tuned-engine protocol a descriptor names and invokes fn
// with it — the single protocol_kind -> type mapping for every artifact
// consumer (--worker and --load-artifact; the classic path builds its
// protocols from the positional arguments instead).
template <typename Fn>
auto with_artifact_protocol(const pp::fleet::protocol_desc& desc, Fn&& fn) {
  using pp::fleet::protocol_kind;
  pp::expects(desc.kind == protocol_kind::fast || desc.kind == protocol_kind::star,
              "popsim: tuned artifacts carry the fast or star protocol");
  if (desc.kind == protocol_kind::star) {
    pp::fleet::expect_star_desc(desc);
    return fn(pp::star_protocol{});
  }
  return fn(pp::fast_protocol(pp::fleet::fast_params_of(desc)));
}

// Serial-or-fleet tuned-engine sweep + report over a prepared runner; the
// artifact (when needed) snapshots exactly this runner.  P is any
// compilable protocol the tuned engine serves (fast_protocol, star_protocol).
template <typename P>
int run_tuned_mode(const pp::tuned_runner<P>& runner,
                   const pp::fleet::protocol_desc& desc, const pp::graph& g,
                   const cli_config& cfg, const char* argv0,
                   const std::string& family, const std::string& loaded_path) {
  pp::rng seed(cfg.seed);
  const int trial_count = static_cast<int>(cfg.trials);
  pp::sim_options options = tuned_options(desc.kind);
  if (cfg.engine == "silent") options.scheduler = pp::scheduler_kind::silent;
  std::printf("graph: %s n=%d m=%lld Δ=%d\n", family.c_str(), g.num_nodes(),
              static_cast<long long>(g.num_edges()), g.max_degree());
  // The scheduler suffix appears only when non-default, so every existing
  // step-scheduler invocation's stdout stays byte-identical (the serial-vs-
  // fleet diff gates depend on that).
  std::printf("engine: order=%s pack=u%d%s%s\n", pp::to_string(runner.order()),
              runner.pack_bits(),
              runner.packed() ? "" : " (lazy fallback: |Lambda| beyond the closure budget)",
              options.scheduler == pp::scheduler_kind::silent
                  ? " scheduler=silent"
                  : "");

  std::string artifact_path = loaded_path;
  std::optional<temp_file> temp_artifact;
  if (artifact_path.empty() &&
      (cfg.jobs > 1 || cfg.supervised() || !cfg.save_path.empty())) {
    const auto artifact = pp::fleet::make_tuned_artifact(runner, g, family, desc);
    artifact_path = cfg.save_path;
    if (artifact_path.empty()) {
      artifact_path = temp_artifact.emplace("artifact.ppaf").path();
    }
    pp::fleet::save_artifact(artifact, artifact_path);
  }
  pp::election_summary summary;
  if (cfg.jobs > 1 || cfg.supervised()) {
    const pp::fleet::trial_fn inline_fn = [&](std::uint64_t, pp::rng gen) {
      return runner.run(gen, options);
    };
    summary = run_fleet(artifact_path, cfg, argv0, options, inline_fn);
  } else {
    summary = pp::measure_election_tuned(runner, trial_count, seed.fork(2), options);
  }
  const pp::node_id sample_leader = runner.run(seed.fork(3), options).leader;
  print_graph_summary(summary, trial_count, sample_leader);

  if (const char* dot = std::getenv("POPSIM_DOT"); dot != nullptr && dot[0] == '1') {
    std::vector<bool> leaders(static_cast<std::size_t>(g.num_nodes()), false);
    if (sample_leader >= 0) leaders[static_cast<std::size_t>(sample_leader)] = true;
    std::fputs(pp::to_dot(g, leaders).c_str(), stdout);
  }
  return 0;
}

// Worker-side flight recorder: the supervisor's exec launcher sets
// POPSIM_OBS_SIDECAR / POPSIM_TRACE_SIDECAR / POPSIM_PROBE_STRIDE
// (fleet/supervisor.cpp) to request per-trial probe metrics and trace
// spans.  Both sidecars are rewritten after every completed trial, so a
// worker SIGKILLed mid-chunk leaves the last completed trial's snapshot
// behind — the same lose-only-the-tail contract as the .ppaj journal — and
// the supervisor merges whatever survived.
struct worker_obs {
  std::string metrics_path;
  std::string trace_path;
  std::uint64_t stride = pp::obs::run_probe::kDefaultStride;
  pp::obs::metrics_registry metrics;
  pp::obs::trace_writer trace;

  worker_obs() {
    if (const char* p = std::getenv("POPSIM_OBS_SIDECAR")) metrics_path = p;
    if (const char* p = std::getenv("POPSIM_TRACE_SIDECAR")) trace_path = p;
    if (const char* p = std::getenv("POPSIM_PROBE_STRIDE")) {
      std::uint64_t v = 0;
      if (parse_u64(p, v) && v >= 1) stride = v;
    }
    if (!trace_path.empty()) {
      trace.name_process("popsim worker");
      trace.name_thread(0, "trials");
    }
  }
  bool on() const { return !metrics_path.empty() || !trace_path.empty(); }

  // Runs one trial through `run(gen, probe)`; `run` must accept either a
  // null_probe* (observability off: the engines' zero-cost path) or a
  // run_probe* whose stats are rolled into the sidecars.
  template <typename RunFn>
  pp::election_result trial(std::uint64_t t, pp::rng gen, RunFn&& run) {
    if (!on()) return run(gen, static_cast<pp::obs::null_probe*>(nullptr));
    // Windows close every 64 strides of steps — boundaries live on the
    // deterministic step counter, so the ring is bit-identical across reruns.
    pp::obs::run_probe probe(stride, stride * 64);
    const std::int64_t t0 = pp::obs::trace_now_us();
    const pp::election_result r = run(gen, &probe);
    const std::int64_t t1 = pp::obs::trace_now_us();
    probe.finish();
    const pp::obs::probe_stats& st = probe.stats();
    if (!trace_path.empty()) {
      trace.begin_at("trial", 0, t0, {pp::obs::trace_arg::num("trial", t)});
      trace.end_at(
          "trial", 0, t1,
          {pp::obs::trace_arg::num("steps", st.steps),
           pp::obs::trace_arg::num("active_steps", st.active_steps),
           pp::obs::trace_arg::num(
               "leader", static_cast<std::int64_t>(r.leader))});
      trace.write_sidecar(trace_path);
    }
    if (!metrics_path.empty()) {
      metrics.add("engine.trials");
      metrics.add("engine.steps", st.steps);
      metrics.add("engine.active_steps", st.active_steps);
      metrics.add("engine.predicate_evals", st.predicate_evals);
      metrics.add("engine.rng_draws", st.rng_draws);
      metrics.add("engine.table_fills", st.table_fills);
      metrics.add("engine.batches", st.batches);
      metrics.add("engine.batch_retries", st.batch_retries);
      metrics.add("engine.census_samples",
                  static_cast<std::uint64_t>(st.census.size()));
      metrics.add("engine.active_set_samples",
                  static_cast<std::uint64_t>(st.active_sets.size()));
      metrics.add("engine.windows_closed", st.windows_closed);
      metrics.observe("engine.steps_per_trial", st.steps);
      metrics.observe("engine.silent_steps_per_trial", st.silent_steps());
      metrics.observe("engine.trial_duration_us",
                      static_cast<std::uint64_t>(t1 - t0));
      metrics.write_text(metrics_path);
    }
    return r;
  }
};

// popsim --worker MANIFEST INDEX [BASE COUNT [FAULTS]]: load the manifest +
// artifact, rebuild and validate the sweep, and stream a trial block to
// stdout as length-prefixed records.  Nothing else may touch stdout here.
// The 2-argument form runs the worker_range block of a plain fleet sweep;
// the supervisor (fleet/supervisor.h) passes an explicit [BASE, BASE+COUNT)
// range — reassigned chunks are arbitrary — and, for a slot's first
// worker only, a fault spec list to inject.
int worker_main(int argc, char** argv) {
  if (argc != 4 && argc != 6 && argc != 7) {
    std::fprintf(stderr,
                 "popsim: --worker needs <manifest> <index> "
                 "[<base> <count> [<faults>]]\n");
    return 2;
  }
  std::uint64_t index = 0;
  if (!parse_u64(argv[3], index)) {
    std::fprintf(stderr, "popsim: --worker index must be a non-negative integer\n");
    return 2;
  }
  std::uint64_t base = 0;
  std::uint64_t count = 0;
  if (argc >= 6 &&
      (!parse_u64(argv[4], base) || !parse_u64(argv[5], count))) {
    std::fprintf(stderr,
                 "popsim: --worker base/count must be non-negative integers\n");
    return 2;
  }
  std::vector<pp::fleet::fault_spec> faults;
  if (argc == 7 && !pp::fleet::parse_fault_specs(argv[6], faults)) {
    std::fprintf(stderr, "popsim: --worker got a malformed fault spec list\n");
    return 2;
  }
  try {
    // A worker whose supervisor died mid-sweep must fail loudly (EPIPE ->
    // stderr + exit 1), not die silently of SIGPIPE.
    pp::fleet::ignore_sigpipe();
    const auto manifest = pp::fleet::read_manifest(argv[2]);
    pp::expects(index < static_cast<std::uint64_t>(manifest.jobs),
                "popsim --worker: index exceeds the manifest's job count");
    if (argc >= 6) {
      pp::expects(base <= manifest.trials && count <= manifest.trials - base,
                  "popsim --worker: trial range exceeds the manifest's trials");
    }
    const pp::fleet::trial_range range =
        argc >= 6 ? pp::fleet::trial_range{base, count}
                  : pp::fleet::worker_range(manifest.trials, manifest.jobs,
                                            static_cast<int>(index));
    const pp::fleet::fault_injector injector(faults, static_cast<int>(index));
    worker_obs obs;
    const auto artifact = pp::fleet::load_artifact(manifest.artifact_path);
    pp::sim_options options;
    options.max_steps = manifest.max_steps;
    options.wellmixed_batch = manifest.wellmixed_batch;
    options.scheduler = manifest.scheduler;
    // Trial t of the sweep uses rng(seed).fork(2).fork(t) — the exact
    // generator the serial measure_election_* call hands it.
    const pp::rng trial_gen = pp::rng(manifest.seed).fork(2);

    if (artifact.engine == pp::fleet::artifact_engine::tuned) {
      pp::expects(artifact.graph.has_value(),
                  "popsim --worker: tuned artifact without a graph section");
      const pp::graph g = pp::fleet::rebuild_graph(*artifact.graph);
      with_artifact_protocol(artifact.protocol, [&]<typename P>(const P& proto) {
        const pp::tuned_runner<P> runner(proto, g, pp::fleet::tuning_of(artifact));
        pp::fleet::validate_tuned_artifact(artifact, runner);
        pp::fleet::run_trial_block(
            range, STDOUT_FILENO,
            [&](std::uint64_t t, pp::rng gen) {
              return obs.trial(t, gen, [&](pp::rng g, auto* probe) {
                return runner.run(g, options, probe);
              });
            },
            trial_gen, injector);
      });
      return 0;
    }

    pp::expects(artifact.wellmixed.has_value(),
                "popsim --worker: well-mixed artifact without a multiset section");
    const std::uint64_t n = artifact.wellmixed->population;
    const auto run_wm = [&]<typename P>(const P& proto) {
      const pp::wellmixed_sweep<P> sweep(proto, n);
      pp::fleet::validate_wellmixed_artifact(artifact, proto, sweep.initial());
      pp::fleet::run_trial_block(
          range, STDOUT_FILENO,
          [&](std::uint64_t t, pp::rng gen) {
            return obs.trial(t, gen, [&](pp::rng g, auto* probe) {
              return sweep.run(g, options, probe);
            });
          },
          trial_gen, injector);
    };
    if (artifact.protocol.kind == pp::fleet::protocol_kind::fast) {
      run_wm(pp::fast_protocol(pp::fleet::fast_params_of(artifact.protocol)));
    } else {
      run_wm(pp::beauquier_protocol(pp::fleet::six_population_of(artifact.protocol)));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "popsim --worker: %s\n", e.what());
    return 1;
  }
}

// popsim --load-artifact FILE ...: rebuild the sweep from the artifact
// (validating the rebuild against the stored sections) and run it.
int artifact_main(const cli_config& cfg, const char* argv0) {
  const auto artifact = pp::fleet::load_artifact(cfg.load_path);
  if (!cfg.save_path.empty()) {
    // Round-trip re-save of the *loaded* struct: byte-identical to the input
    // by construction (the CI round-trip gate `cmp`s the two files).
    pp::fleet::save_artifact(artifact, cfg.save_path);
  }
  if (artifact.engine == pp::fleet::artifact_engine::tuned) {
    pp::expects(artifact.graph.has_value(),
                "popsim: tuned artifact without a graph section");
    const pp::graph g = pp::fleet::rebuild_graph(*artifact.graph);
    return with_artifact_protocol(
        artifact.protocol, [&]<typename P>(const P& proto) {
          const pp::tuned_runner<P> runner(proto, g, pp::fleet::tuning_of(artifact));
          pp::fleet::validate_tuned_artifact(artifact, runner);
          return run_tuned_mode(runner, artifact.protocol, g, cfg, argv0,
                                artifact.family, cfg.load_path);
        });
  }
  pp::expects(artifact.wellmixed.has_value(),
              "popsim: well-mixed artifact without a multiset section");
  if (cfg.engine == "silent") {
    std::fprintf(stderr,
                 "popsim: --engine silent schedules graph interactions; this "
                 "artifact carries the well-mixed multiset engine\n");
    return usage();
  }
  const std::uint64_t n = artifact.wellmixed->population;
  if (artifact.protocol.kind == pp::fleet::protocol_kind::fast) {
    const pp::fast_protocol proto(pp::fleet::fast_params_of(artifact.protocol));
    pp::fleet::validate_wellmixed_artifact(artifact, proto,
                                           pp::initial_multiset(proto, n));
    return run_wellmixed_mode(proto, n, cfg, argv0, artifact.family, cfg.load_path);
  }
  const pp::beauquier_protocol proto(pp::fleet::six_population_of(artifact.protocol));
  pp::fleet::validate_wellmixed_artifact(artifact, proto,
                                         pp::initial_multiset(proto, n));
  return run_wellmixed_mode(proto, n, cfg, argv0, artifact.family, cfg.load_path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--worker") {
    return worker_main(argc, argv);
  }
  try {
    if (argc >= 2 && argv[1][0] == '-') {
      // Flag-only invocation: the sweep comes from an artifact.
      cli_config cfg;
      if (!parse_flags(argc, argv, 1, cfg)) return usage();
      if (!validate_fleet_flags(cfg)) return usage();
      if (cfg.serve_requested) {
        // Resident popsimd daemon: print the bound port (ephemeral when
        // --serve 0) as the one stdout line, then serve forever.
        pp::fleet::service_options options;
        options.port = static_cast<std::uint16_t>(cfg.serve_port);
        options.cache_mb = cfg.cache_mb;
        pp::fleet::sweep_service service(options);
        std::printf("popsimd listening port=%u\n", service.port());
        std::fflush(stdout);
        service.run();
      }
      if (cfg.load_path.empty()) return usage();
      // The engine choice and data layout are recorded in the artifact.  The
      // silent scheduler is the exception: a runtime knob like max_steps, it
      // never changes what the artifact validates against.
      if ((cfg.engine_requested && cfg.engine != "silent") ||
          cfg.tuning_requested) {
        std::fprintf(stderr,
                     "popsim: --engine/--order/--pack are recorded in the "
                     "artifact; only --engine silent (a runtime scheduler "
                     "knob) may be set at load time\n");
        return usage();
      }
      return artifact_main(cfg, argv[0]);
    }

    if (argc < 4) return usage();
    const std::string family_name = argv[1];
    std::uint64_t n_value = 0;
    if (!parse_u64(argv[2], n_value) || n_value < 2 ||
        n_value > static_cast<std::uint64_t>(INT32_MAX)) {
      std::fprintf(stderr, "popsim: n must be an integer in [2, %d]\n", INT32_MAX);
      return usage();
    }
    const std::string protocol = argv[3];

    cli_config cfg;
    if (!parse_flags(argc, argv, 4, cfg)) return usage();
    if (!validate_fleet_flags(cfg)) return usage();
    if (!cfg.load_path.empty()) {
      std::fprintf(stderr,
                   "popsim: --load-artifact replaces the positional "
                   "<family> <n> <protocol> arguments\n");
      return usage();
    }
    if (cfg.serve_requested) {
      std::fprintf(stderr,
                   "popsim: --serve takes no positional arguments (the "
                   "daemon's sweeps arrive over the socket)\n");
      return usage();
    }

    pp::rng seed(cfg.seed);
    const int trial_count = static_cast<int>(cfg.trials);

    // --- well-mixed multiset engine: no graph object, clique only ---
    if (cfg.engine == "wellmixed") {
      if (cfg.tuning_requested) {
        std::fprintf(stderr,
                     "popsim: --order/--pack tune the per-interaction compiled "
                     "engine; the wellmixed engine has no node array to pack\n");
        return usage();
      }
      if (family_name != "clique") {
        std::fprintf(stderr,
                     "popsim: --engine wellmixed simulates the well-mixed "
                     "(clique) model only\n");
        return usage();
      }
      const std::uint64_t n = n_value;
      if (protocol == "fast") {
        const pp::fast_protocol proto(pp::fast_params::practical_clique(n));
        return run_wellmixed_mode(proto, n, cfg, argv[0], family_name, "");
      }
      if (protocol == "six") {
        const pp::beauquier_protocol proto(static_cast<pp::node_id>(n));
        return run_wellmixed_mode(proto, n, cfg, argv[0], family_name, "");
      }
      std::fprintf(stderr,
                   "popsim: --engine wellmixed supports protocols fast|six\n");
      return usage();
    }

    // Reject tuning/fleet flags for non-engine protocols before paying for
    // the graph construction (a dense family at large n is expensive).
    const bool compiled_engine = protocol == "fast" || protocol == "star";
    if (cfg.engine == "silent" && !compiled_engine) {
      std::fprintf(stderr,
                   "popsim: --engine silent schedules the compiled engine, "
                   "i.e. protocol fast or star\n");
      return usage();
    }
    if (cfg.tuning_requested && !compiled_engine) {
      std::fprintf(stderr,
                   "popsim: --order/--pack apply to the compiled engine, i.e. "
                   "protocol fast or star\n");
      return usage();
    }
    if ((cfg.jobs > 1 || cfg.supervised() || !cfg.save_path.empty()) &&
        !compiled_engine) {
      std::fprintf(stderr,
                   "popsim: --jobs/--save-artifact/--journal/--inject-fault/"
                   "--metrics/--trace/--progress need the compiled engine "
                   "(protocol fast or star, or --engine wellmixed)\n");
      return usage();
    }

    const pp::node_id n = static_cast<pp::node_id>(n_value);
    const pp::graph_family* family = nullptr;
    try {
      family = &pp::family_by_name(family_name);
    } catch (const std::invalid_argument&) {
      return usage();
    }
    pp::rng make_gen = seed.fork(0);
    const pp::graph g = family->make(n, make_gen);

    if (compiled_engine) {
      // Tuned compiled engine (src/engine/): the runner resolves the data
      // layout (vertex order, config/table word widths) once and shares it
      // across the trials.  Defaults (natural order, auto width) reproduce
      // the reference simulator's seeded results exactly.  The star protocol
      // runs in the engine's edge-census mode (engine/edgecensus/): its
      // stability predicate counts undecided-undecided edges, maintained
      // incrementally alongside the node census.
      const auto tuned = [&]<typename P>(const P& proto,
                                         const pp::fleet::protocol_desc& desc) {
        std::optional<pp::tuned_runner<P>> prepared;
        try {
          prepared.emplace(proto, g, cfg.tuning);
        } catch (const std::invalid_argument& e) {
          // e.g. --pack 8 when |Λ| > 256, or a forced width on an unclosable
          // table: report instead of aborting.
          std::fprintf(stderr, "popsim: %s\n", e.what());
          return usage();
        }
        return run_tuned_mode(*prepared, desc, g, cfg, argv[0], family_name, "");
      };
      if (protocol == "star") {
        return tuned(pp::star_protocol{}, pp::fleet::star_desc());
      }
      const double b =
          pp::estimate_worst_case_broadcast_time(g, 30, 6, seed.fork(1)).value;
      const pp::fast_protocol proto(pp::fast_params::practical(g, b));
      return tuned(proto, pp::fleet::fast_desc(proto.params()));
    }

    std::printf("graph: %s n=%d m=%lld Δ=%d\n", family_name.c_str(), g.num_nodes(),
                static_cast<long long>(g.num_edges()), g.max_degree());
    pp::election_summary summary;
    pp::node_id sample_leader = -1;
    if (protocol == "id") {
      const pp::id_protocol proto(pp::id_protocol::suggested_k(g.num_nodes()));
      summary = pp::measure_election(proto, g, trial_count, seed.fork(2));
      sample_leader = pp::run_until_stable(proto, g, seed.fork(3)).leader;
    } else if (protocol == "six") {
      const pp::beauquier_protocol proto(g.num_nodes());
      summary = pp::measure_beauquier_event_driven(proto, g, trial_count,
                                                   seed.fork(2), UINT64_MAX);
      sample_leader =
          pp::run_beauquier_event_driven(proto, g, seed.fork(3), UINT64_MAX).leader;
    } else {
      return usage();
    }

    print_graph_summary(summary, trial_count, sample_leader);

    if (const char* dot = std::getenv("POPSIM_DOT"); dot != nullptr && dot[0] == '1') {
      std::vector<bool> leaders(static_cast<std::size_t>(g.num_nodes()), false);
      if (sample_leader >= 0) leaders[static_cast<std::size_t>(sample_leader)] = true;
      std::fputs(pp::to_dot(g, leaders).c_str(), stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "popsim: %s\n", e.what());
    return 1;
  }
}
