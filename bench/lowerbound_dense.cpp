// E10 — §7.1, Lemmas 41/42/44: the machinery behind the Theorem 46
// constant-state lower bound on dense random graphs.
//
// At t = c·n·ln n steps on dense graphs:
//   * Lemma 41: |I_t(v)| <= n^ε — influence sets grow polynomially slowly;
//   * Lemma 42: >= N^{1-ε} nodes have not interacted at all;
//   * Lemma 44: the reverse influence multigraph J_t(v) contains only
//     O(log n) internal interactions (it is almost a tree — the property that
//     lets leader-generating patterns be unfolded and re-embedded into the
//     untouched part of the graph, manufacturing a second leader).
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "dynamics/influence.h"
#include "graph/generators.h"

namespace pp {
namespace {

void run() {
  bench::banner("E10", "Lemmas 41/42/44 (surgery machinery on dense graphs)",
                "influence sets ~ n^ε, survivors ~ n^{1-ε}, internal "
                "interactions ~ log n\nat t = c·n·ln n on dense G(n,p).");

  text_table table({"n", "c", "t", "max |I_t(v)|", "log_n(maxI)", "survivors",
                    "log_n(surv)", "max internal", "/ln n", "tree n^.4 embeds"});

  rng seed(16);
  std::uint64_t stream = 0;
  for (const node_id n : {128, 256, 512}) {
    rng make_gen = seed.fork(stream++);
    const graph g = make_connected_erdos_renyi(n, 0.5, make_gen);
    const double nn = static_cast<double>(n);
    for (const double c : {0.05, 0.15}) {
      const auto t = static_cast<std::uint64_t>(c * nn * std::log(nn));
      const auto sched = record_schedule(g, t, seed.fork(stream++));

      std::size_t max_influencers = 0;
      std::size_t max_internal = 0;
      for (node_id v = 0; v < n; v += std::max(1, n / 32)) {
        const auto stats = influencers_of(sched, n, v);
        max_influencers = std::max(max_influencers, stats.influencer_count);
        max_internal = std::max(max_internal, stats.internal_interactions);
      }
      const auto first = first_interaction_steps(sched, n);
      const auto survivors = count_non_interacted(first, t);

      // Lemma 43: the survivor-induced subgraph holds any tree of
      // polynomial size — try a binary tree of n^0.4 nodes greedily.
      std::vector<bool> alive(static_cast<std::size_t>(n), false);
      for (node_id v = 0; v < n; ++v) {
        alive[static_cast<std::size_t>(v)] =
            first[static_cast<std::size_t>(v)] == 0 ||
            first[static_cast<std::size_t>(v)] > t;
      }
      const auto tree_size =
          std::max<node_id>(2, static_cast<node_id>(std::pow(nn, 0.4)));
      const bool embeds =
          !embed_tree_greedy(g, alive, make_binary_tree(tree_size)).empty();

      table.add_row(
          {format_number(nn), format_number(c, 2), format_number(static_cast<double>(t)),
           format_number(static_cast<double>(max_influencers)),
           format_number(std::log(static_cast<double>(max_influencers)) / std::log(nn), 3),
           format_number(static_cast<double>(survivors)),
           format_number(survivors > 0
                             ? std::log(static_cast<double>(survivors)) / std::log(nn)
                             : 0.0,
                         3),
           format_number(static_cast<double>(max_internal)),
           format_number(static_cast<double>(max_internal) / std::log(nn), 3),
           embeds ? "yes" : "NO"});
    }
  }

  bench::print_table(table);
  std::printf(
      "Reading: the log_n(maxI) column stays bounded below 1 (Lemma 41's ε),\n"
      "log_n(survivors) stays near 1 (Lemma 42), internal interactions stay\n"
      "within a small multiple of ln n (Lemma 44), and the survivor set\n"
      "holds polynomial-size trees (Lemma 43) — together these are the\n"
      "ingredients that forbid o(n²) constant-state stabilization\n"
      "(Theorem 46): any small, almost-tree leader-generating pattern can be\n"
      "unfolded and re-embedded among the untouched nodes, minting a second\n"
      "leader.\n");
}

}  // namespace
}  // namespace pp

int main() {
  pp::run();
  return 0;
}
