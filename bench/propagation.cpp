// E3 — Theorem 15 and Lemmas 13/14: information-propagation lower bounds.
//
// (a) distance-k propagation times on the cycle: T_k grows linearly in k and
//     stays above the Lemma 14 threshold k·m/(Δ·e³) in all but a 1/n
//     fraction of runs;
// (b) Theorem 15 for bounded-degree graphs: B(G) = Θ(n·max{D, log n}),
//     checked on cycles (D = n/2) and on √n-tori (D = √n).
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "support/fit.h"

namespace pp {
namespace {

void propagation_profile() {
  const node_id n = 128;
  const graph g = make_cycle(n);
  const auto dist = bfs_distances(g, 0);
  const int trials = bench::scaled(200);

  text_table table({"k", "mean T_k", "q10 T_k", "Lemma 14 bound", "below bound %"});
  rng seed(1);
  for (const int k : {8, 16, 32, 64}) {
    std::vector<double> samples;
    const double bound =
        static_cast<double>(k) * g.num_edges() / (g.max_degree() * std::exp(3.0));
    int below = 0;
    for (int t = 0; t < trials; ++t) {
      const auto r = simulate_broadcast(g, 0, seed.fork(static_cast<std::uint64_t>(k) * 10000 + t));
      const double tk = static_cast<double>(distance_k_propagation_step(r, dist, k));
      samples.push_back(tk);
      if (tk < bound) ++below;
    }
    const auto s = summarize(samples);
    table.add_row({format_number(k), format_number(s.mean), format_number(s.q10),
                   format_number(bound),
                   format_number(100.0 * below / trials, 3)});
  }
  std::printf("Cycle C_%d: distance-k propagation time (Lemma 13/14)\n", n);
  bench::print_table(table);
}

void theorem15_profile() {
  text_table table({"family", "n", "D", "B measured", "n·max(D, lg n)", "ratio"});
  rng seed(2);
  std::uint64_t stream = 0;
  const int trials = bench::scaled(60);

  const auto add_row = [&](const std::string& name, const graph& g) {
    const double nn = static_cast<double>(g.num_nodes());
    const double d = diameter(g);
    const auto est =
        estimate_worst_case_broadcast_time(g, trials, 8, seed.fork(stream++));
    const double shape = nn * std::max(d, std::log2(nn));
    table.add_row({name, format_number(nn), format_number(d),
                   format_number(est.value), format_number(shape),
                   format_number(est.value / shape, 3)});
  };

  for (const node_id n : {64, 144, 256}) {
    add_row("cycle", make_cycle(n));
    add_row("torus", make_grid_2d(static_cast<node_id>(std::sqrt(n)),
                                  static_cast<node_id>(std::sqrt(n)), true));
  }
  // §6.2 remark: k-dimensional tori are Ω(n^{1+1/k})-renitent; B tracks
  // n·D = n^{1+1/3} in three dimensions.
  for (const node_id side : {4, 5, 6}) {
    add_row("torus3d", make_grid_3d(side));
  }
  std::printf("Theorem 15: bounded-degree graphs have B(G) = Θ(n·max{D, log n})\n");
  bench::print_table(table);
  std::printf(
      "Reading: the ratio column should be flat in n within each family;\n"
      "the 3-d torus rows realise the §6.2 family with D = Θ(n^{1/3}) and\n"
      "hence B = Θ(n^{4/3}).\n");
}

}  // namespace
}  // namespace pp

int main() {
  pp::bench::banner("E3", "Lemmas 13/14 + Theorem 15 (propagation times)",
                    "T_k ≳ k·m/(Δe³) w.h.p.; B = Θ(n·max{D, log n}) for bounded degree.");
  pp::propagation_profile();
  pp::theorem15_profile();
  return 0;
}
