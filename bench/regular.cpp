// E12 — the regular-graph rows of Table 1 (Theorem 24 / Corollary 25).
//
// On Δ-regular graphs with conductance φ = β/Δ, the fast protocol stabilizes
// in O(φ⁻¹·n·log² n) steps using O(log n·(log log n − log φ)) states.  The
// bench runs the Corollary 25 parameterisation — derived from structural
// knowledge (m, β) only, no measured B(G) — across regular families spanning
// three orders of magnitude in conductance (clique, hypercube, random
// 8-regular, torus, cycle), and reports measured/shape ratios for both time
// and states.  Flat ratios across this φ range reproduce the corollary.
#include <cmath>

#include "analysis/bounds.h"
#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "graph/generators.h"
#include "graph/metrics.h"

namespace pp {
namespace {

struct regular_case {
  std::string name;
  graph g;
  double beta;  // exact or closed-form edge expansion
};

void run() {
  bench::banner("E12", "Table 1 regular rows (Corollary 25)",
                "fast protocol on Δ-regular graphs: O(φ⁻¹·n·log² n) steps,\n"
                "O(log n·(log log n − log φ)) states, parameters from (m, β) only.");

  rng make_gen(17);
  std::vector<regular_case> cases;
  {
    const node_id n = 128;
    cases.push_back({"clique", make_clique(n), std::floor(n / 2.0)});
    cases.push_back({"hypercube", make_hypercube(7),
                     // β(Q_d) = 1 (dimension cut is the minimiser).
                     1.0});
    cases.push_back({"rr8", make_random_regular(n, 8, make_gen),
                     // Expander: β = Θ(d); estimated below via BFS sweep cuts.
                     0.0});
    cases.push_back({"torus", make_grid_2d(12, 12, true),
                     // β(torus) ~ 2·side/(side²/2) = 4/side.
                     4.0 / 12.0});
    cases.push_back({"cycle", make_cycle(n), 2.0 / std::floor(n / 2.0)});
  }
  // Fill in the sweep-estimated expansion where no closed form was given.
  for (auto& c : cases) {
    if (c.beta == 0.0) {
      rng sweep_gen(23);
      c.beta = edge_expansion_sweep(c.g, 12, sweep_gen);
    }
  }

  const int trials = bench::scaled(8);
  text_table table({"family", "n", "Δ", "φ=β/Δ", "h", "steps", "shape φ⁻¹n lg²n",
                    "steps/shape", "states", "state shape", "states/shape"});

  rng seed(29);
  std::uint64_t stream = 0;
  for (const auto& c : cases) {
    const graph& g = c.g;
    const double n = static_cast<double>(g.num_nodes());
    const double phi = conductance_from_expansion(g, c.beta);

    const fast_params params = fast_params::for_regular(g, c.beta);
    const fast_protocol proto(params);
    // Compiled engine: identical seeded results; the census is a byte-mark
    // per interned state id instead of a hash-set probe per step.
    const auto census = run_until_stable_fast(proto, g, seed.fork(stream++),
                                              {.max_steps = UINT64_MAX, .state_census = true});
    const auto s = measure_election_fast(proto, g, trials, seed.fork(stream++));

    const double time_shape = bounds::corollary25_shape(n, phi);
    const double state_shape = bounds::corollary25_state_shape(n, phi);
    table.add_row({c.name, format_number(n), format_number(static_cast<double>(g.max_degree())),
                   format_number(phi, 3), format_number(params.h),
                   format_number(s.steps.mean), format_number(time_shape),
                   format_number(s.steps.mean / time_shape, 3),
                   format_number(static_cast<double>(census.distinct_states_used)),
                   format_number(state_shape),
                   format_number(census.distinct_states_used / state_shape, 3)});
  }

  bench::print_table(table);
  std::printf(
      "Reading: conductance spans ~%0.4f (cycle) to ~0.5 (clique) yet the\n"
      "steps/shape column stays O(1): time degrades exactly as φ⁻¹, the\n"
      "linear-in-1/φ improvement over the φ⁻² of prior work [5].  The states\n"
      "column grows only with log n·(log log n + log 1/φ).\n",
      2.0 / 64.0 / 2.0);
}

}  // namespace
}  // namespace pp

int main() {
  pp::run();
  return 0;
}
