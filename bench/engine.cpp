// E14 — compiled-engine throughput versus the reference simulator.
//
// Runs the same seeded election twice — once through the reference
// run_until_stable (per-step scheduler + protocol logic + tracker), once
// through the compiled engine (src/engine/: interned transition table,
// doubled endpoint arrays, block-buffered RNG) — and reports steps/sec for
// each plus the speedup.  Because the engine is draw-for-draw equivalent to
// the reference path, both runs execute *exactly* the same interaction
// sequence, so the comparison is step-for-step fair; the `eq` column
// re-checks that the two step counts agree.
//
// Emits BENCH_engine.json (machine-readable rows) next to the table.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/majority.h"
#include "core/simulator.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace pp {
namespace {

struct cell {
  std::string protocol;
  std::string graph_name;
  node_id n = 0;
  std::int64_t m = 0;
  std::uint64_t steps = 0;
  double ref_sps = 0;
  double engine_sps = 0;
  bool equal_steps = false;
  // Resident hot-loop bytes of the engine run (u32 config + lazy table +
  // doubled endpoint pairs) and the bytes one step touches (one pair, one
  // table entry, two config words) — recorded so locality changes across
  // PRs are attributable to layout, not just observed (bench/locality.cpp
  // reports the same accounting for the packed widths).
  std::size_t working_set = 0;
  std::size_t step_bytes = 0;
  double speedup() const { return ref_sps > 0 ? engine_sps / ref_sps : 0; }
};

fast_params bench_fast_params(const graph& g) {
  const double n = static_cast<double>(g.num_nodes());
  fast_params p;
  p.h = 6;
  p.level_threshold = std::max(1, static_cast<int>(std::ceil(2.0 * std::log2(n))));
  p.max_level = 4 * p.level_threshold;
  return p;
}

// Times the steady-state step rate of both paths on the same seeded run.
// Each path executes the run twice and the second execution is timed: for
// the engine that amortises the one-time table/endpoint-array construction
// exactly as measure_election_fast does across the trials of a sweep, and
// both paths get equally warm caches.  The untimed first executions double
// as the end-to-end equivalence check.
template <typename P>
cell run_cell(const std::string& protocol, const std::string& graph_name,
              const P& proto, const graph& g, std::uint64_t max_steps,
              std::uint64_t seed) {
  cell c;
  c.protocol = protocol;
  c.graph_name = graph_name;
  c.n = g.num_nodes();
  c.m = g.num_edges();
  const sim_options options{.max_steps = max_steps};

  const auto ref = run_until_stable(proto, g, rng(seed), options);
  bench::stopwatch ref_clock;
  const auto ref2 = run_until_stable(proto, g, rng(seed), options);
  const double ref_seconds = ref_clock.seconds();

  compiled_protocol<P> compiled(proto);
  const edge_endpoints edges(g);
  const auto fast = run_compiled(compiled, edges, g, rng(seed), options);
  bench::stopwatch engine_clock;
  const auto fast2 = run_compiled(compiled, edges, g, rng(seed), options);
  const double engine_seconds = engine_clock.seconds();

  c.steps = ref.steps;
  c.equal_steps = ref.steps == fast.steps && ref.leader == fast.leader &&
                  ref2.steps == fast2.steps;
  if (ref_seconds > 0) c.ref_sps = static_cast<double>(ref2.steps) / ref_seconds;
  if (engine_seconds > 0) {
    c.engine_sps = static_cast<double>(fast2.steps) / engine_seconds;
  }
  c.working_set = static_cast<std::size_t>(c.n) * sizeof(std::uint32_t) +
                  compiled.table_bytes() +
                  edges.pairs.size() * sizeof(interaction);
  c.step_bytes = sizeof(interaction) +
                 sizeof(typename compiled_protocol<P>::entry) +
                 2 * sizeof(std::uint32_t);
  return c;
}

// Returns false if any cell broke seeded equivalence (CI fails on it).
bool run() {
  bench::banner("E14", "engine microbenchmark (compiled tables, src/engine/)",
                "compiled transition table + batched scheduling vs the\n"
                "reference simulator, same seeded interaction sequence.");

  const auto budget = static_cast<std::uint64_t>(bench::scaled(4'000'000));

  std::vector<std::pair<std::string, graph>> graphs;
  graphs.emplace_back("clique", make_clique(1024));
  graphs.emplace_back("ring", make_cycle(4096));
  {
    rng gen(12);
    graphs.emplace_back("dense-random", make_connected_erdos_renyi(10'000, 0.01, gen));
  }

  std::vector<cell> cells;
  std::uint64_t seed = 100;
  for (const auto& [name, g] : graphs) {
    cells.push_back(run_cell("fast", name, fast_protocol(bench_fast_params(g)), g,
                             budget, seed++));
    cells.push_back(
        run_cell("beauquier", name, beauquier_protocol(g.num_nodes()), g, budget,
                 seed++));
    rng votes_gen(seed);
    const auto votes =
        random_vote_assignment(g.num_nodes(), (3 * g.num_nodes()) / 5, votes_gen);
    cells.push_back(
        run_cell("majority", name, majority_protocol(votes), g, budget, seed++));
  }

  text_table table({"protocol", "graph", "n", "m", "steps", "ref steps/s",
                    "engine steps/s", "speedup", "ws MB", "B/step", "eq"});
  for (const cell& c : cells) {
    table.add_row({c.protocol, c.graph_name, format_number(c.n),
                   format_number(static_cast<double>(c.m)),
                   format_number(static_cast<double>(c.steps)),
                   format_number(c.ref_sps, 3), format_number(c.engine_sps, 3),
                   format_number(c.speedup(), 3),
                   format_number(static_cast<double>(c.working_set) / 1e6, 3),
                   format_number(static_cast<double>(c.step_bytes)),
                   c.equal_steps ? "yes" : "NO"});
  }
  bench::print_table(table);

  bench::json_writer json;
  json.begin_object();
  json.key("bench").value("engine");
  json.key("step_budget").value(budget);
  json.key("results").begin_array();
  for (const cell& c : cells) {
    json.begin_object();
    json.key("protocol").value(c.protocol);
    json.key("graph").value(c.graph_name);
    json.key("n").value(static_cast<std::int64_t>(c.n));
    json.key("m").value(static_cast<std::int64_t>(c.m));
    json.key("steps").value(c.steps);
    json.key("ref_steps_per_sec").value(c.ref_sps);
    json.key("engine_steps_per_sec").value(c.engine_sps);
    json.key("speedup").value(c.speedup());
    json.key("working_set_bytes").value(static_cast<std::uint64_t>(c.working_set));
    json.key("bytes_per_step").value(static_cast<std::uint64_t>(c.step_bytes));
    json.key("equal_steps").value(c.equal_steps);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.write_file("BENCH_engine.json");

  std::printf(
      "Reading: the engine runs the identical interaction sequence (eq = yes)\n"
      "at a multiple of the reference step rate; the dense-random fast row is\n"
      "the ISSUE acceptance cell (>= 5x on 10k nodes).\n"
      "Wrote BENCH_engine.json.\n");

  bool all_equal = true;
  for (const cell& c : cells) all_equal = all_equal && c.equal_steps;
  if (!all_equal) {
    std::fprintf(stderr,
                 "FAIL: at least one cell broke engine/reference seeded "
                 "equivalence (eq = NO above).\n");
  }
  return all_equal;
}

}  // namespace
}  // namespace pp

int main() { return pp::run() ? 0 : 1; }
