// E4 — the clique rows of Table 1: Θ(n log n)-to-polylog-states versus
// Θ(n²)-to-constant-states.
//
// On cliques the fast protocol stabilizes in O(B·log n) = O(n log² n) steps
// with O(log² n) states, the identifier protocol in O(n log n) steps with
// poly(n) states, and the constant-state protocol in Θ(n²)·O(log n) steps.
// The bench sweeps n and prints normalised columns: flat steps/(n·log n),
// steps/(n·log² n) and steps/n² confirm the scaling; the widening gap column
// reproduces the space-time separation.
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "graph/generators.h"
#include "core/id_election.h"
#include "support/fit.h"

namespace pp {
namespace {

void run() {
  bench::banner("E4", "Table 1 clique rows (time-space trade-off on cliques)",
                "fast ~ n·log² n (polylog states), id ~ n·log n (poly states),\n"
                "6-state ~ n² up to log factors; gap 6-state/fast grows ~ n/log n.");

  const int trials = bench::scaled(8);
  text_table table({"n", "fast steps", "/n lg^2 n", "id steps", "/n lg n",
                    "6-state steps", "/n^2", "gap 6st/fast"});

  rng seed(4);
  std::uint64_t stream = 0;
  std::vector<double> sizes;
  std::vector<double> fast_means;
  std::vector<double> bq_means;
  for (const node_id n : {64, 128, 256, 512}) {
    const graph g = make_clique(n);
    const double nn = static_cast<double>(n);
    const double lg = std::log2(nn);
    const double b_measured =
        estimate_worst_case_broadcast_time(g, bench::scaled(30), 4, seed.fork(stream++))
            .value;

    const fast_protocol fast(fast_params::practical(g, b_measured));
    // Compiled engine: same fork(t) seeds, identical results, ~5x the rate.
    const auto fast_s = measure_election_fast(fast, g, trials, seed.fork(stream++));

    const id_protocol ident(id_protocol::suggested_k(n));
    const auto id_s = measure_election(ident, g, trials, seed.fork(stream++));

    const beauquier_protocol bq(n);
    const auto bq_s = measure_beauquier_event_driven(bq, g, trials,
                                                     seed.fork(stream++), UINT64_MAX);

    sizes.push_back(nn);
    fast_means.push_back(fast_s.steps.mean);
    bq_means.push_back(bq_s.steps.mean);
    table.add_row({format_number(nn), format_number(fast_s.steps.mean),
                   format_number(fast_s.steps.mean / (nn * lg * lg), 3),
                   format_number(id_s.steps.mean),
                   format_number(id_s.steps.mean / (nn * lg), 3),
                   format_number(bq_s.steps.mean),
                   format_number(bq_s.steps.mean / (nn * nn), 3),
                   format_number(bq_s.steps.mean / fast_s.steps.mean, 3)});
  }

  const auto fast_fit = fit_loglog(sizes, fast_means);
  const auto bq_fit = fit_loglog(sizes, bq_means);
  bench::print_table(table);
  std::printf("log-log slopes: fast %.2f (expect ~1.1-1.4), 6-state %.2f "
              "(expect ~2±0.2).\n",
              fast_fit.slope, bq_fit.slope);
}

}  // namespace
}  // namespace pp

int main() {
  pp::run();
  return 0;
}
