// E17 — fleet sweep scaling (src/fleet/): trials/sec vs worker processes.
//
// Two claims are pinned here:
//
//   1. Determinism: the merged summary of a fleet sweep is *identical* —
//      every statistic, bit for bit — to the serial sweep over the same seed
//      list, for every worker count, on both the per-interaction tuned
//      engine and the well-mixed batch engine.  This is the seed-partition
//      contract of fleet_run (records merged by trial index; trial t always
//      runs seed_gen.fork(t)) and CI fails if it breaks at any W.
//
//   2. Scaling: independent trials shard embarrassingly, so trials/sec
//      should grow near-linearly with W until the host runs out of cores.
//      On a >= 2-core host at PP_BENCH_SCALE >= 1 the W = 2 row must reach
//      >= 1.7x the W = 1 rate; on 1-core hosts (like the reference machine,
//      where the next multiplier is horizontal across *hosts*) the rows are
//      informational.
//
//   3. Journal overhead: spooling every completed trial to the crash-safe
//      .ppaj journal (fleet/journal.h) under the supervisor must cost at
//      most 5% of trials/sec vs the same supervised sweep with journaling
//      off — crash resilience is meant to be cheap enough to leave on.
//      Enforced at PP_BENCH_SCALE >= 1, informational below.
//
//   4. Remote overhead: the same W=2 supervised sweep over loopback TCP to
//      a warm resident popsimd (fleet/net.h + service.h) must stay within
//      15% of the fork path — the socket transport is meant to make more
//      hosts nearly free, not to tax each one.  Enforced at scale >= 1.
//
// Emits BENCH_fleet.json next to the table.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "fleet/artifact.h"
#include "fleet/net.h"
#include "fleet/service.h"
#include "fleet/sweep.h"
#include "graph/generators.h"
#include "support/parallel.h"

namespace pp {
namespace {

struct fleet_cell {
  std::string engine;
  std::uint64_t n = 0;
  int trials = 0;
  int jobs = 0;
  double seconds = 0;
  bool equal_summary = true;  // vs the jobs = 1 sweep
  double trials_per_sec() const { return seconds > 0 ? trials / seconds : 0.0; }
};

bool same_summary(const election_summary& a, const election_summary& b) {
  return a.stabilized_fraction == b.stabilized_fraction &&
         a.max_states_used == b.max_states_used &&
         a.steps.count == b.steps.count && a.steps.mean == b.steps.mean &&
         a.steps.stddev == b.steps.stddev && a.steps.median == b.steps.median &&
         a.steps.q10 == b.steps.q10 && a.steps.q90 == b.steps.q90;
}

int run() {
  const double scale = bench_scale();
  bench::banner(
      "E17", "fleet sweep scaling (process sharding, src/fleet/)",
      "Independent trials shard across worker processes with disjoint seed\n"
      "blocks; the merged summary must be byte-identical to the serial sweep\n"
      "at every worker count, and trials/sec should scale with cores.");

  const std::vector<int> job_counts = {1, 2, 4};
  std::vector<fleet_cell> cells;
  bool determinism_ok = true;

  // --- per-interaction tuned engine on a ring ---
  const node_id n_ring = static_cast<node_id>(4000 * scale) + 64;
  const int trials_ring = bench::scaled(24);
  {
    const graph g = make_cycle(n_ring);
    const double b = estimate_worst_case_broadcast_time(g, 10, 4, rng(11)).value;
    const fast_protocol proto(fast_params::practical(g, b));
    const tuned_runner<fast_protocol> runner(proto, g);
    election_summary baseline;
    for (const int jobs : job_counts) {
      fleet_cell c;
      c.engine = "tuned";
      c.n = static_cast<std::uint64_t>(n_ring);
      c.trials = trials_ring;
      c.jobs = jobs;
      bench::stopwatch timer;
      const auto summary = measure_election_fleet(runner, trials_ring, rng(7), {}, jobs);
      c.seconds = timer.seconds();
      if (jobs == 1) baseline = summary;
      c.equal_summary = same_summary(summary, baseline);
      determinism_ok = determinism_ok && c.equal_summary;
      cells.push_back(c);
    }
  }

  // --- well-mixed batch engine on a clique ---
  const std::uint64_t n_wm = static_cast<std::uint64_t>(30000 * scale) + 1000;
  const int trials_wm = bench::scaled(16);
  {
    const fast_protocol proto(fast_params::practical_clique(n_wm));
    election_summary baseline;
    for (const int jobs : job_counts) {
      fleet_cell c;
      c.engine = "wellmixed";
      c.n = n_wm;
      c.trials = trials_wm;
      c.jobs = jobs;
      bench::stopwatch timer;
      const auto summary =
          measure_election_fleet_wellmixed(proto, n_wm, trials_wm, rng(13), {}, jobs);
      c.seconds = timer.seconds();
      if (jobs == 1) baseline = summary;
      c.equal_summary = same_summary(summary, baseline);
      determinism_ok = determinism_ok && c.equal_summary;
      cells.push_back(c);
    }
  }

  // --- journal overhead: supervised W=2 sweep, journaling off vs on ---
  // Same workload as the tuned rows; each variant is timed twice and the
  // faster rep is kept, so transient scheduler noise does not read as
  // journal cost.
  double journal_overhead = 0;
  bool journal_equal = true;
  double sup_plain_s = 0, sup_journal_s = 0;
  {
    const graph g = make_cycle(n_ring);
    const double b = estimate_worst_case_broadcast_time(g, 10, 4, rng(11)).value;
    const fast_protocol proto(fast_params::practical(g, b));
    const tuned_runner<fast_protocol> runner(proto, g);
    const std::string journal_path = "BENCH_fleet.ppaj";
    election_summary plain, journaled;
    for (int rep = 0; rep < 2; ++rep) {
      bench::stopwatch plain_timer;
      plain = measure_election_fleet(runner, trials_ring, rng(7), {}, 2,
                                     fleet::supervise_options{});
      const double ps = plain_timer.seconds();
      if (rep == 0 || ps < sup_plain_s) sup_plain_s = ps;

      fleet::supervise_options with_journal;
      with_journal.journal_path = journal_path;
      with_journal.journal_tag = 7;
      bench::stopwatch journal_timer;
      journaled = measure_election_fleet(runner, trials_ring, rng(7), {}, 2,
                                         with_journal);
      const double js = journal_timer.seconds();
      if (rep == 0 || js < sup_journal_s) sup_journal_s = js;
    }
    std::remove(journal_path.c_str());
    journal_equal = same_summary(journaled, plain);
    determinism_ok = determinism_ok && journal_equal;
    journal_overhead =
        sup_plain_s > 0 ? (sup_journal_s - sup_plain_s) / sup_plain_s : 0.0;
  }

  // --- remote overhead: W=2 supervised fork sweep vs the same sweep over
  // loopback sockets to a resident popsimd (fleet/net.h + service.h) ---
  // Fastest of two reps again: the first remote rep ships the artifact and
  // warms the daemon's cache, so the kept rep measures the resident steady
  // state — connection handshakes plus TCP record streaming.
  double remote_overhead = 0;
  bool remote_equal = true;
  double fork_s = 0, remote_s = 0;
  {
    // Fixed n regardless of scale: the sweep must serialize into a .ppaf
    // artifact, and the fast protocol's reachable space on a cycle stops
    // closing into a packed table somewhere past n ≈ 2000 (the scaling
    // rows above don't artifact, so they can grow with scale).  1200
    // matches the CI fleet-determinism artifact.
    const node_id n_net = 1200;
    const graph g = make_cycle(n_net);
    const double b = estimate_worst_case_broadcast_time(g, 10, 4, rng(11)).value;
    const fast_protocol proto(fast_params::practical(g, b));
    const tuned_runner<fast_protocol> runner(proto, g);
    const std::string artifact_path = "BENCH_fleet_net.ppaf";
    fleet::save_artifact(
        fleet::make_tuned_artifact(runner, g, "cycle", fleet::fast_desc(proto.params())),
        artifact_path);
    const fleet::service_process daemon(fleet::service_options{});
    const std::vector<fleet::net::host_addr> hosts(
        2, fleet::net::host_addr{"127.0.0.1", daemon.port()});
    fleet::worker_manifest manifest;
    manifest.artifact_path = artifact_path;
    manifest.seed = 7;
    manifest.trials = static_cast<std::uint64_t>(trials_ring);
    election_summary forked, remote;
    for (int rep = 0; rep < 2; ++rep) {
      bench::stopwatch fork_timer;
      // Same trial seeds as the remote path: supervised_remote_sweep derives
      // its seed generator as rng(manifest.seed).fork(2) (worker_manifest
      // contract), so the fork baseline must start from the same generator
      // for the summaries to be byte-identical.
      forked = measure_election_fleet(runner, trials_ring, rng(7).fork(2), {},
                                      2, fleet::supervise_options{});
      const double fs = fork_timer.seconds();
      if (rep == 0 || fs < fork_s) fork_s = fs;

      bench::stopwatch remote_timer;
      remote = summarize_election_results(
          fleet::net::supervised_remote_sweep(hosts, 2, manifest, {}));
      const double rs = remote_timer.seconds();
      if (rep == 0 || rs < remote_s) remote_s = rs;
    }
    std::remove(artifact_path.c_str());
    remote_equal = same_summary(remote, forked);
    determinism_ok = determinism_ok && remote_equal;
    remote_overhead = fork_s > 0 ? (remote_s - fork_s) / fork_s : 0.0;
  }

  text_table table({"engine", "n", "trials", "W", "seconds", "trials/s",
                    "speedup", "eq"});
  double tuned_w1 = 0, tuned_w2 = 0;
  for (const fleet_cell& c : cells) {
    double base_rate = 0;
    for (const fleet_cell& b : cells) {
      if (b.engine == c.engine && b.jobs == 1) base_rate = b.trials_per_sec();
    }
    const double speedup = base_rate > 0 ? c.trials_per_sec() / base_rate : 0.0;
    if (c.engine == "tuned" && c.jobs == 1) tuned_w1 = c.trials_per_sec();
    if (c.engine == "tuned" && c.jobs == 2) tuned_w2 = c.trials_per_sec();
    table.add_row({c.engine, std::to_string(c.n), std::to_string(c.trials),
                   std::to_string(c.jobs), format_number(c.seconds, 3),
                   format_number(c.trials_per_sec(), 3),
                   format_number(speedup, 3), c.equal_summary ? "yes" : "NO"});
  }
  bench::print_table(table);
  std::printf(
      "journal overhead (supervised W=2, %d trials): off %.3fs, on %.3fs "
      "-> %+.1f%% (eq %s)\n",
      trials_ring, sup_plain_s, sup_journal_s, 100.0 * journal_overhead,
      journal_equal ? "yes" : "NO");
  std::printf(
      "remote overhead (W=2 loopback popsimd vs fork, %d trials): fork "
      "%.3fs, remote %.3fs -> %+.1f%% (eq %s)\n",
      trials_ring, fork_s, remote_s, 100.0 * remote_overhead,
      remote_equal ? "yes" : "NO");

  const std::size_t cores = hardware_threads();
  const double w2_speedup = tuned_w1 > 0 ? tuned_w2 / tuned_w1 : 0.0;
  // The scaling gate needs real parallel hardware and a workload big enough
  // to amortise the fork: enforced at scale >= 1 on >= 2 cores, else
  // informational (the reference host has 1 core).
  const bool enforce_scaling = cores >= 2 && scale >= 1.0;
  const bool scaling_ok = !enforce_scaling || w2_speedup >= 1.7;
  const bool enforce_journal = scale >= 1.0;
  const bool journal_ok = !enforce_journal || journal_overhead <= 0.05;
  // Socket transport is allowed a little more than the journal (handshake +
  // TCP framing on every reconnect-free stream), but a warm resident daemon
  // on loopback must stay within 15% of the fork path.
  const bool enforce_remote = scale >= 1.0;
  const bool remote_ok = !enforce_remote || remote_overhead <= 0.15;

  bench::json_writer json;
  json.begin_object();
  json.key("bench").value("fleet");
  json.key("scale").value(scale);
  json.key("cores").value(static_cast<std::uint64_t>(cores));
  json.key("results").begin_array();
  for (const fleet_cell& c : cells) {
    json.begin_object();
    json.key("engine").value(c.engine);
    json.key("n").value(c.n);
    json.key("trials").value(c.trials);
    json.key("jobs").value(c.jobs);
    json.key("seconds").value(c.seconds);
    json.key("trials_per_sec").value(c.trials_per_sec());
    json.key("equal_summary").value(c.equal_summary);
    json.end_object();
  }
  json.end_array();
  json.key("w2_speedup_tuned").value(w2_speedup);
  json.key("determinism_pass").value(determinism_ok);
  json.key("scaling_enforced").value(enforce_scaling);
  json.key("scaling_pass").value(scaling_ok);
  json.key("journal_overhead_frac").value(journal_overhead);
  json.key("journal_enforced").value(enforce_journal);
  json.key("journal_overhead_pass").value(journal_ok);
  json.key("remote_overhead_frac").value(remote_overhead);
  json.key("remote_enforced").value(enforce_remote);
  json.key("remote_overhead_pass").value(remote_ok);
  json.end_object();
  json.write_file("BENCH_fleet.json");

  std::printf(
      "Reading: `eq` is the hard gate — a fleet sweep must merge to exactly\n"
      "the serial summary at every W (seed-partition determinism).  The\n"
      "speedup column is the horizontal-scaling story; it is enforced\n"
      "(>= 1.7x at W=2) only on >= 2-core hosts at full scale.  Journal\n"
      "spooling must cost <= 5%% trials/sec (enforced at full scale), and a\n"
      "warm loopback popsimd must stay within 15%% of the fork path.\n"
      "Wrote BENCH_fleet.json.\n");

  if (!determinism_ok) {
    std::fprintf(stderr,
                 "FAIL: a fleet sweep diverged from the serial summary.\n");
  }
  if (!scaling_ok) {
    std::fprintf(stderr,
                 "FAIL: W=2 fleet speedup %.2fx below the 1.7x acceptance "
                 "threshold on a %zu-core host.\n",
                 w2_speedup, cores);
  }
  if (!journal_ok) {
    std::fprintf(stderr,
                 "FAIL: journal spooling cost %.1f%% of trials/sec, above "
                 "the 5%% acceptance threshold.\n",
                 100.0 * journal_overhead);
  }
  if (!remote_ok) {
    std::fprintf(stderr,
                 "FAIL: the loopback socket sweep cost %.1f%% vs the fork "
                 "path, above the 15%% acceptance threshold.\n",
                 100.0 * remote_overhead);
  }
  return determinism_ok && scaling_ok && journal_ok && remote_ok ? 0 : 1;
}

}  // namespace
}  // namespace pp

int main() { return pp::run(); }
