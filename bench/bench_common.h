// Shared helpers for the experiment binaries (bench/).
//
// Each binary regenerates one paper artefact (DESIGN.md §6) and prints
// paper-style rows.  Absolute step counts are not expected to match the
// paper's constants — only the shapes (who wins, growth exponents,
// crossovers); EXPERIMENTS.md records the comparison.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "analysis/experiment.h"
#include "support/table.h"

namespace pp::bench {

// Prints the experiment banner: id, paper artefact, and what is reproduced.
inline void banner(const std::string& id, const std::string& artefact,
                   const std::string& claim) {
  std::printf("=== %s — %s ===\n%s\n\n", id.c_str(), artefact.c_str(),
              claim.c_str());
}

inline void print_table(const text_table& t) {
  std::fputs(t.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
}

// Scales an integer budget by PP_BENCH_SCALE (min 1).
inline int scaled(int base) {
  const double s = bench_scale();
  const int v = static_cast<int>(base * s);
  return v < 1 ? 1 : v;
}

class stopwatch {
 public:
  stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pp::bench
