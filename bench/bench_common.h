// Shared helpers for the experiment binaries (bench/).
//
// Each binary regenerates one paper artefact (DESIGN.md §6) and prints
// paper-style rows.  Absolute step counts are not expected to match the
// paper's constants — only the shapes (who wins, growth exponents,
// crossovers); EXPERIMENTS.md records the comparison.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

#include "analysis/experiment.h"
#include "support/table.h"

namespace pp::bench {

// Prints the experiment banner: id, paper artefact, and what is reproduced.
inline void banner(const std::string& id, const std::string& artefact,
                   const std::string& claim) {
  std::printf("=== %s — %s ===\n%s\n\n", id.c_str(), artefact.c_str(),
              claim.c_str());
}

inline void print_table(const text_table& t) {
  std::fputs(t.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
}

// Scales an integer budget by PP_BENCH_SCALE (min 1).
inline int scaled(int base) {
  const double s = bench_scale();
  const int v = static_cast<int>(base * s);
  return v < 1 ? 1 : v;
}

class stopwatch {
 public:
  stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Minimal streaming JSON emitter for machine-readable bench artefacts
// (BENCH_*.json).  Call sequence mirrors the document structure:
//   begin_object().key("results").begin_array() ... end_array().end_object()
// Commas are managed automatically; the caller is responsible for well-formed
// nesting.
class json_writer {
 public:
  json_writer& begin_object() { return open('{'); }
  json_writer& end_object() { return close('}'); }
  json_writer& begin_array() { return open('['); }
  json_writer& end_array() { return close(']'); }

  json_writer& key(std::string_view k) {
    comma();
    quote(k);
    out_ += ':';
    need_comma_ = false;
    return *this;
  }

  json_writer& value(std::string_view v) {
    comma();
    quote(v);
    need_comma_ = true;
    return *this;
  }
  json_writer& value(const char* v) { return value(std::string_view(v)); }
  json_writer& value(bool v) { return raw(v ? "true" : "false"); }
  json_writer& value(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return raw(buf);
  }
  json_writer& value(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    return raw(buf);
  }
  json_writer& value(std::int64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return raw(buf);
  }
  json_writer& value(int v) { return value(static_cast<std::int64_t>(v)); }

  const std::string& str() const { return out_; }

  // Writes the document to `path`; returns false (and reports on stderr) on
  // I/O failure so benches can keep printing their tables regardless.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json_writer: cannot open %s\n", path.c_str());
      return false;
    }
    const bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "json_writer: short write to %s\n", path.c_str());
    return ok;
  }

 private:
  json_writer& open(char bracket) {
    comma();
    out_ += bracket;
    need_comma_ = false;
    return *this;
  }
  json_writer& close(char bracket) {
    out_ += bracket;
    need_comma_ = true;
    return *this;
  }
  json_writer& raw(std::string_view text) {
    comma();
    out_ += text;
    need_comma_ = true;
    return *this;
  }
  void comma() {
    if (need_comma_) out_ += ',';
  }
  void quote(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace pp::bench
