// E18 — edge-census engine: O(1) star elections at scale (src/engine/edgecensus/).
//
// Table 1's constant-state star protocol stabilizes after a *single*
// interaction, so the cost of a star election is entirely setup + stability
// detection — exactly what the edge-census engine compiles away: the
// reference simulator walks every edge to seed its undecided-edge tracker
// per trial, while tuned_runner precomputes the initial class census once
// and each trial's setup collapses to a few memcpys.
//
// Three sections pin the PR's claims:
//
//   1. Equivalence gate (every scale): star × {star, cycle, grid, ER} where
//      the lazy u32 and u8/u16/u32 packed paths must reproduce the reference
//      simulator's seeded results *bit-identically* — same steps, leader,
//      stabilization and state census, i.e. stability declared on the same
//      scheduler step as star_protocol::tracker_type.
//
//   2. Star elections (the acceptance gate): full elections/sec on star
//      graphs at n = 10⁵ (10⁶ at scale ≥ 1, 10⁷ at scale ≥ 2), engine vs
//      reference.  The ≥ 5× gate is enforced at n = 10⁵ at every scale (the
//      cells are cheap — each election is one interaction).
//
//   3. Sustained step rate (informational): max_steps-bounded star-protocol
//      runs on cycle and random 8-regular graphs, where multi-leader
//      deadlocks keep the run alive — the regime that exercises the O(deg)
//      class-flip walks up front and the zero-delta fast path afterwards.
//
// Emits BENCH_star.json next to the tables.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/simulator.h"
#include "core/star_protocol.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace pp {
namespace {

// ---------------------------------------------------------------------------
// Section 1: seeded bit-identity across families.

struct eq_cell {
  std::string family;
  node_id n = 0;
  std::uint64_t steps = 0;
  bool equal = false;  // lazy u32 and packed u8/u16/u32 all match reference
};

eq_cell run_equivalence(const std::string& family, const graph& g,
                        std::uint64_t seed) {
  const star_protocol proto;
  eq_cell c;
  c.family = family;
  c.n = g.num_nodes();
  const sim_options options{.max_steps = 20000, .state_census = true};
  const auto ref = run_until_stable(proto, g, rng(seed), options);
  c.steps = ref.steps;
  const auto match = [&](const election_result& r) {
    return r.stabilized == ref.stabilized && r.steps == ref.steps &&
           r.leader == ref.leader &&
           r.distinct_states_used == ref.distinct_states_used;
  };
  c.equal = match(run_until_stable_fast(proto, g, rng(seed), options));
  for (const int bits : {8, 16, 32}) {
    const tuned_runner<star_protocol> runner(proto, g,
                                             {vertex_order::natural, bits});
    c.equal = c.equal && match(runner.run(rng(seed), options));
  }
  return c;
}

// ---------------------------------------------------------------------------
// Section 2: full star-graph elections per second.

struct rate {
  double per_sec = 0;
  std::uint64_t trials = 0;
};

// Times run(t) for increasing t until both floors are met; the per-election
// rate divides out the trial count, so reference and engine can use
// different trial budgets.
template <typename RunFn>
rate time_elections(RunFn&& run, double min_seconds, std::uint64_t min_trials) {
  bench::stopwatch clock;
  std::uint64_t t = 0;
  double elapsed = 0;
  while (t < min_trials || elapsed < min_seconds) {
    run(t);
    ++t;
    elapsed = clock.seconds();
    if (t >= 200000) break;  // hard cap: keep degenerate hosts bounded
  }
  return {static_cast<double>(t) / elapsed, t};
}

struct star_cell {
  node_id n = 0;
  double ref_per_sec = 0;
  std::uint64_t ref_trials = 0;
  double engine_per_sec = 0;
  std::uint64_t engine_trials = 0;
  double speedup() const {
    return ref_per_sec > 0 ? engine_per_sec / ref_per_sec : 0;
  }
};

star_cell star_elections(node_id n, std::uint64_t seed) {
  const star_protocol proto;
  const graph g = make_star(n);
  star_cell c;
  c.n = n;

  rng ref_seed(seed);
  const auto ref = time_elections(
      [&](std::uint64_t t) {
        const auto r = run_until_stable(proto, g, ref_seed.fork(t));
        if (!r.stabilized || r.steps != 1) std::abort();  // Table 1 broken
      },
      0.25, 20);
  c.ref_per_sec = ref.per_sec;
  c.ref_trials = ref.trials;

  const tuned_runner<star_protocol> runner(proto, g);  // untimed, shared setup
  rng eng_seed(seed);
  const auto engine = time_elections(
      [&](std::uint64_t t) {
        const auto r = runner.run(eng_seed.fork(t));
        if (!r.stabilized || r.steps != 1) std::abort();
      },
      0.25, 20);
  c.engine_per_sec = engine.per_sec;
  c.engine_trials = engine.trials;
  return c;
}

// ---------------------------------------------------------------------------
// Section 3: sustained step rates on non-stabilizing sparse workloads.

struct sustained_cell {
  std::string family;
  std::string layout;  // "reference" / "natural/uW" / "rcm/uW"
  node_id n = 0;
  std::int64_t m = 0;
  std::uint64_t steps = 0;
  double seconds = 0;
  double sps() const { return seconds > 0 ? static_cast<double>(steps) / seconds : 0; }
};

graph make_sustained_family(const std::string& family, node_id n, rng& gen) {
  if (family == "cycle") return make_cycle(n);
  // Random 8-regular: the expander-shaped sparse workload (generation is
  // O(n·d); sparse Erdős–Rényi at this n is both disconnection-prone and
  // quadratic to decode, so the regular family stands in for it).
  return make_random_regular(n, 8, gen);
}

sustained_cell reference_cell(const std::string& family, const graph& g,
                              std::uint64_t budget, std::uint64_t seed) {
  const star_protocol proto;
  sustained_cell c;
  c.family = family;
  c.layout = "reference";
  c.n = g.num_nodes();
  c.m = g.num_edges();
  run_until_stable(proto, g, rng(seed), {.max_steps = budget / 8});
  bench::stopwatch clock;
  const auto r = run_until_stable(proto, g, rng(seed + 1), {.max_steps = budget});
  c.seconds = clock.seconds();
  c.steps = r.steps;
  return c;
}

sustained_cell engine_cell(const std::string& family, const graph& g,
                           vertex_order order, std::uint64_t budget,
                           std::uint64_t seed) {
  const star_protocol proto;
  sustained_cell c;
  c.family = family;
  c.n = g.num_nodes();
  c.m = g.num_edges();
  const tuned_runner<star_protocol> runner(proto, g, {order, 0});
  c.layout = std::string(to_string(order)) + "/u" + std::to_string(runner.pack_bits());
  runner.run(rng(seed), {.max_steps = budget / 8});
  bench::stopwatch clock;
  const auto r = runner.run(rng(seed + 1), {.max_steps = budget});
  c.seconds = clock.seconds();
  c.steps = r.steps;
  return c;
}

bool run() {
  bench::banner(
      "E18", "edge-census engine: O(1) star elections at scale (Table 1, last row)",
      "star_protocol compiled onto the packed engine: per-edge stability\n"
      "predicates (undecided-undecided edge counters, O(deg) incremental\n"
      "maintenance) vs the reference simulator's per-trial tracker rebuild.");

  const double scale = bench_scale();

  // ---- 1. equivalence gate ----
  std::vector<eq_cell> equivalence;
  {
    rng gen(7);
    equivalence.push_back(run_equivalence("star", make_star(512), 1800));
    equivalence.push_back(run_equivalence("cycle", make_cycle(512), 1801));
    equivalence.push_back(run_equivalence("grid", make_grid_2d(23, 23, false), 1802));
    equivalence.push_back(run_equivalence(
        "erdos-renyi", make_connected_erdos_renyi(400, 0.02, gen), 1803));
  }
  text_table eq_table({"family", "n", "steps", "eq(ref,u8,u16,u32)"});
  bool equivalence_ok = true;
  for (const auto& c : equivalence) {
    equivalence_ok = equivalence_ok && c.equal;
    eq_table.add_row({c.family, format_number(c.n),
                      format_number(static_cast<double>(c.steps)),
                      c.equal ? "yes" : "NO"});
  }
  bench::print_table(eq_table);

  // ---- 2. star elections per second ----
  std::vector<node_id> star_sizes{100'000};
  if (scale >= 1.0) star_sizes.push_back(1'000'000);
  if (scale >= 2.0) star_sizes.push_back(10'000'000);

  std::vector<star_cell> star_cells;
  for (const node_id n : star_sizes) {
    star_cells.push_back(star_elections(n, 2000 + static_cast<std::uint64_t>(n)));
  }
  // The acceptance cell; a single retry absorbs scheduler noise on shared
  // runners (the structural margin is large, see the table).
  if (!star_cells.empty() && star_cells.front().speedup() < 5.0) {
    star_cells.front() = star_elections(star_sizes.front(), 2999);
  }

  text_table star_table(
      {"n", "ref elections/s", "engine elections/s", "speedup"});
  for (const auto& c : star_cells) {
    star_table.add_row({format_number(c.n), format_number(c.ref_per_sec, 3),
                        format_number(c.engine_per_sec, 3),
                        format_number(c.speedup(), 3)});
  }
  bench::print_table(star_table);

  const double star_speedup = star_cells.front().speedup();
  const bool speedup_ok = star_speedup >= 5.0;
  std::printf(
      "acceptance: engine/reference election rate on the star at n = 1e5 is "
      "%.2fx (>= 5x enforced): %s\n\n",
      star_speedup, speedup_ok ? "PASS" : "FAIL");

  // ---- 3. sustained step rate ----
  const node_id n_sustained =
      scale >= 1.0 ? 1'000'000 : std::max(20'000, bench::scaled(1'000'000));
  const auto budget = static_cast<std::uint64_t>(bench::scaled(100'000'000));
  const std::uint64_t ref_budget = std::max<std::uint64_t>(budget / 10, 1'000'000);

  std::vector<sustained_cell> sustained;
  std::uint64_t seed = 3000;
  std::vector<std::pair<std::string, node_id>> sustained_rows{
      {"cycle", n_sustained}, {"rr8", n_sustained}};
  if (scale >= 2.0) sustained_rows.push_back({"cycle", 10'000'000});
  for (const auto& [family, n] : sustained_rows) {
    rng gen(seed);
    const graph g = make_sustained_family(family, n, gen);
    sustained.push_back(reference_cell(family, g, ref_budget, seed));
    seed += 2;
    sustained.push_back(engine_cell(family, g, vertex_order::natural, budget, seed));
    seed += 2;
    sustained.push_back(engine_cell(family, g, vertex_order::rcm, budget, seed));
    seed += 2;
  }

  text_table su_table({"family", "n", "layout", "steps", "steps/s", "vs ref"});
  const auto ref_sps = [&](const sustained_cell& c) {
    for (const auto& r : sustained) {
      if (r.layout == "reference" && r.family == c.family && r.n == c.n) {
        return r.sps();
      }
    }
    return 0.0;
  };
  for (const auto& c : sustained) {
    const double base = ref_sps(c);
    su_table.add_row({c.family, format_number(c.n), c.layout,
                      format_number(static_cast<double>(c.steps)),
                      format_number(c.sps(), 3),
                      c.layout == "reference" || base <= 0
                          ? "-"
                          : format_number(c.sps() / base, 3)});
  }
  bench::print_table(su_table);

  // ---- JSON ----
  bench::json_writer json;
  json.begin_object();
  json.key("bench").value("star");
  json.key("scale").value(scale);
  json.key("equivalence").begin_array();
  for (const auto& c : equivalence) {
    json.begin_object();
    json.key("family").value(c.family);
    json.key("n").value(static_cast<std::int64_t>(c.n));
    json.key("steps").value(c.steps);
    json.key("equal").value(c.equal);
    json.end_object();
  }
  json.end_array();
  json.key("star_elections").begin_array();
  for (const auto& c : star_cells) {
    json.begin_object();
    json.key("n").value(static_cast<std::int64_t>(c.n));
    json.key("ref_elections_per_sec").value(c.ref_per_sec);
    json.key("ref_trials").value(c.ref_trials);
    json.key("engine_elections_per_sec").value(c.engine_per_sec);
    json.key("engine_trials").value(c.engine_trials);
    json.key("speedup").value(c.speedup());
    json.end_object();
  }
  json.end_array();
  json.key("sustained").begin_array();
  for (const auto& c : sustained) {
    json.begin_object();
    json.key("family").value(c.family);
    json.key("n").value(static_cast<std::int64_t>(c.n));
    json.key("m").value(c.m);
    json.key("layout").value(c.layout);
    json.key("steps").value(c.steps);
    json.key("seconds").value(c.seconds);
    json.key("steps_per_sec").value(c.sps());
    const double base = ref_sps(c);
    json.key("speedup_vs_reference").value(base > 0 ? c.sps() / base : 0.0);
    json.end_object();
  }
  json.end_array();
  json.key("star_speedup").value(star_speedup);
  json.key("equivalence_pass").value(equivalence_ok);
  json.key("speedup_pass").value(speedup_ok);
  json.end_object();
  json.write_file("BENCH_star.json");

  std::printf(
      "Reading: the equivalence rows gate step-identical stability detection\n"
      "(engine vs reference tracker); star elections are setup-bound (one\n"
      "interaction each), so the speedup is the edge-census engine's shared\n"
      "warm start vs the reference's per-trial O(n + m) tracker rebuild.\n"
      "Wrote BENCH_star.json.\n");

  if (!equivalence_ok) {
    std::fprintf(stderr,
                 "FAIL: an engine path broke bit-identity with the reference "
                 "simulator (eq = NO above).\n");
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: the engine did not reach 5x the reference election "
                 "rate on the n = 1e5 star.\n");
  }
  return equivalence_ok && speedup_ok;
}

}  // namespace
}  // namespace pp

int main() { return pp::run() ? 0 : 1; }
