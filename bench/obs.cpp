// E18 — flight recorder overhead (src/obs/): the probes' zero-cost contract.
//
// Two claims are pinned here:
//
//   1. Disabled cost: every engine loop takes a Probe template parameter
//      defaulting to null_probe, with each hook site behind
//      `if constexpr (Probe::enabled)`.  The compiled loop must therefore be
//      the pre-probe loop: a run with probes disabled (either the default
//      call or an explicit null_probe* argument) may cost at most 1% of
//      steps/sec vs itself across variants.  Enforced at PP_BENCH_SCALE >= 1,
//      informational below (CI benches at scale 0.1).
//
//   2. Enabled cost: a full run_probe at the default census stride (1024)
//      counts every step, predicate evaluation and rng draw, and samples the
//      census trajectory — for at most 10% of the uninstrumented steps/sec.
//
//   3. Window-ring cost: the same probe with the fixed-interval window ring
//      on (window_len 65536, the CLI's stride*64 default) stays inside the
//      same 10% enabled budget, and the ring of closed windows is
//      bit-identical across reps of the same seed.
//
//   4. --progress cost: a supervised W=2 sweep with the live status line
//      enabled (fleet/supervisor.h progress) costs at most 10% of trials/sec
//      vs the same sweep with it off, and the merged summary is unchanged —
//      the line is throttled stderr, never part of the data path.
//
// Determinism is a hard gate at every scale: the probed run must be
// bit-identical (stabilized/steps/leader) to the unprobed run per seed —
// probes observe, they never steer (tests/test_obs.cpp has the full matrix;
// this pins it on the bench workload too).
//
// Emits BENCH_obs.json next to the table.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "obs/probe.h"

namespace pp {
namespace {

struct obs_cell {
  std::string variant;
  int trials = 0;
  std::uint64_t steps = 0;
  double seconds = 0;
  double steps_per_sec() const { return seconds > 0 ? steps / seconds : 0.0; }
};

int run() {
  const double scale = bench_scale();
  bench::banner(
      "E18", "flight recorder overhead (engine probes, src/obs/)",
      "Compile-time-gated probes must cost nothing when disabled (the hooks\n"
      "are if-constexpr dead branches) and <= 10% when fully enabled, and\n"
      "must never change a seeded run's steps/leader.");

  const node_id n = static_cast<node_id>(6000 * scale) + 128;
  const int trials = bench::scaled(16);
  const int reps = 3;  // fastest-of: scheduler noise must not read as cost
  const graph g = make_cycle(n);
  const double b = estimate_worst_case_broadcast_time(g, 10, 4, rng(11)).value;
  const fast_protocol proto(fast_params::practical(g, b));
  const tuned_runner<fast_protocol> runner(proto, g);
  const sim_options options;
  const rng seed(7);

  // Per-trial results of the unprobed run, the determinism reference.
  std::vector<election_result> reference(static_cast<std::size_t>(trials));

  // default:   the pre-existing call, probe type null_probe by default
  // null-ptr:  an explicit disabled-probe pointer through the new overload
  // probed:    a full run_probe at the default stride
  // windowed:  the same probe with the fixed-interval window ring on
  obs_cell base{"default", trials, 0, 0};
  obs_cell disabled{"null-ptr", trials, 0, 0};
  obs_cell probed{"probed-1024", trials, 0, 0};
  obs_cell windowed{"windowed-65536", trials, 0, 0};
  bool determinism_ok = true;
  bool window_determinism_ok = true;
  std::uint64_t census_samples = 0;
  std::uint64_t silent_steps = 0;
  std::uint64_t windows_closed = 0;
  constexpr std::uint64_t kWindowLen = 65536;  // the CLI's stride*64 default
  std::vector<std::vector<obs::probe_window>> ring_reference(
      static_cast<std::size_t>(trials));

  for (int rep = 0; rep < reps; ++rep) {
    std::uint64_t steps = 0;
    bench::stopwatch t_base;
    for (int t = 0; t < trials; ++t) {
      const election_result r =
          runner.run(seed.fork(static_cast<std::uint64_t>(t)), options);
      steps += r.steps;
      reference[static_cast<std::size_t>(t)] = r;
    }
    const double s = t_base.seconds();
    if (rep == 0 || s < base.seconds) base.seconds = s;
    base.steps = steps;

    steps = 0;
    bench::stopwatch t_disabled;
    for (int t = 0; t < trials; ++t) {
      steps += runner
                   .run(seed.fork(static_cast<std::uint64_t>(t)), options,
                        static_cast<obs::null_probe*>(nullptr))
                   .steps;
    }
    const double ds = t_disabled.seconds();
    if (rep == 0 || ds < disabled.seconds) disabled.seconds = ds;
    disabled.steps = steps;

    steps = 0;
    census_samples = 0;
    silent_steps = 0;
    bench::stopwatch t_probed;
    for (int t = 0; t < trials; ++t) {
      obs::run_probe probe;
      const election_result r =
          runner.run(seed.fork(static_cast<std::uint64_t>(t)), options, &probe);
      steps += r.steps;
      census_samples += probe.stats().census.size();
      silent_steps += probe.stats().silent_steps();
      const election_result& ref = reference[static_cast<std::size_t>(t)];
      determinism_ok = determinism_ok && r.stabilized == ref.stabilized &&
                       r.steps == ref.steps && r.leader == ref.leader &&
                       probe.stats().steps == r.steps;
    }
    const double ps = t_probed.seconds();
    if (rep == 0 || ps < probed.seconds) probed.seconds = ps;
    probed.steps = steps;

    steps = 0;
    windows_closed = 0;
    bench::stopwatch t_windowed;
    for (int t = 0; t < trials; ++t) {
      obs::run_probe probe(obs::run_probe::kDefaultStride, kWindowLen);
      const election_result r =
          runner.run(seed.fork(static_cast<std::uint64_t>(t)), options, &probe);
      probe.finish();
      steps += r.steps;
      windows_closed += probe.stats().windows_closed;
      const election_result& ref = reference[static_cast<std::size_t>(t)];
      determinism_ok = determinism_ok && r.stabilized == ref.stabilized &&
                       r.steps == ref.steps && r.leader == ref.leader;
      // Window boundaries live on the step counter, so the ring must be
      // bit-identical rep over rep (probe_window:: operator== skips wall_ns).
      auto& ring = ring_reference[static_cast<std::size_t>(t)];
      if (rep == 0) {
        ring = probe.windows();
      } else {
        window_determinism_ok =
            window_determinism_ok && probe.windows() == ring;
      }
    }
    const double ws = t_windowed.seconds();
    if (rep == 0 || ws < windowed.seconds) windowed.seconds = ws;
    windowed.steps = steps;
  }

  // --- --progress overhead: supervised W=2 sweep, status line off vs on ---
  // Fastest of two reps, like the engine rows; the line is throttled to the
  // supervisor's poll cadence, so its cost must vanish against real trials.
  double progress_overhead = 0;
  double sup_plain_s = 0, sup_progress_s = 0;
  {
    const int sup_trials = bench::scaled(16);
    election_summary plain_sum, progressed_sum;
    for (int rep = 0; rep < 2; ++rep) {
      bench::stopwatch plain_timer;
      plain_sum = measure_election_fleet(runner, sup_trials, rng(7), options,
                                         2, fleet::supervise_options{});
      const double s = plain_timer.seconds();
      if (rep == 0 || s < sup_plain_s) sup_plain_s = s;

      fleet::supervise_options with_progress;
      with_progress.progress = true;
      with_progress.progress_interval_ms = 200;
      bench::stopwatch progress_timer;
      progressed_sum = measure_election_fleet(runner, sup_trials, rng(7),
                                              options, 2, with_progress);
      const double gs = progress_timer.seconds();
      if (rep == 0 || gs < sup_progress_s) sup_progress_s = gs;
    }
    determinism_ok = determinism_ok &&
                     plain_sum.stabilized_fraction ==
                         progressed_sum.stabilized_fraction &&
                     plain_sum.steps.mean == progressed_sum.steps.mean &&
                     plain_sum.steps.count == progressed_sum.steps.count;
    progress_overhead =
        sup_plain_s > 0
            ? std::max(0.0, (sup_progress_s - sup_plain_s) / sup_plain_s)
            : 0.0;
  }

  const auto overhead = [&](const obs_cell& c) {
    return base.steps_per_sec() > 0
               ? std::max(0.0, 1.0 - c.steps_per_sec() / base.steps_per_sec())
               : 0.0;
  };
  const double disabled_frac = overhead(disabled);
  const double enabled_frac = overhead(probed);
  const double windowed_frac = overhead(windowed);

  text_table table({"variant", "trials", "steps", "seconds", "steps/s",
                    "overhead"});
  for (const obs_cell* c : {&base, &disabled, &probed, &windowed}) {
    table.add_row({c->variant, std::to_string(c->trials),
                   std::to_string(c->steps), format_number(c->seconds, 3),
                   format_number(c->steps_per_sec(), 4),
                   c == &base ? "-" : format_number(overhead(*c), 4)});
  }
  bench::print_table(table);
  std::printf("probed runs: %llu census samples, %llu silent steps, "
              "%llu windows closed (determinism %s, window ring %s)\n",
              static_cast<unsigned long long>(census_samples),
              static_cast<unsigned long long>(silent_steps),
              static_cast<unsigned long long>(windows_closed),
              determinism_ok ? "yes" : "NO",
              window_determinism_ok ? "bit-identical" : "DIVERGED");
  std::printf("--progress (supervised W=2): off %.3fs, on %.3fs "
              "(overhead %.2f%%)\n",
              sup_plain_s, sup_progress_s, 100.0 * progress_overhead);

  // The overhead gates need the full workload to drown out per-trial setup;
  // at CI's scale 0.1 they are informational.  Determinism — engine results
  // and the window ring alike — is always a gate.
  const bool enforce = scale >= 1.0;
  const bool disabled_ok = !enforce || disabled_frac <= 0.01;
  const bool enabled_ok = !enforce || enabled_frac <= 0.10;
  const bool windowed_ok = !enforce || windowed_frac <= 0.10;
  const bool progress_ok = !enforce || progress_overhead <= 0.10;

  bench::json_writer json;
  json.begin_object();
  json.key("bench").value("obs");
  json.key("scale").value(scale);
  json.key("n").value(static_cast<std::uint64_t>(n));
  json.key("results").begin_array();
  for (const obs_cell* c : {&base, &disabled, &probed, &windowed}) {
    json.begin_object();
    json.key("variant").value(c->variant);
    json.key("trials").value(c->trials);
    json.key("steps").value(c->steps);
    json.key("seconds").value(c->seconds);
    json.key("steps_per_sec").value(c->steps_per_sec());
    json.end_object();
  }
  json.end_array();
  json.key("census_samples").value(census_samples);
  json.key("silent_steps").value(silent_steps);
  json.key("windows_closed").value(windows_closed);
  json.key("overhead_disabled_frac").value(disabled_frac);
  json.key("overhead_enabled_frac").value(enabled_frac);
  json.key("overhead_windowed_frac").value(windowed_frac);
  json.key("progress_overhead_frac").value(progress_overhead);
  json.key("overhead_enforced").value(enforce);
  json.key("disabled_pass").value(disabled_ok);
  json.key("enabled_pass").value(enabled_ok);
  json.key("windowed_pass").value(windowed_ok);
  json.key("progress_pass").value(progress_ok);
  json.key("determinism_pass").value(determinism_ok);
  json.key("window_determinism_pass").value(window_determinism_ok);
  json.end_object();
  json.write_file("BENCH_obs.json");

  std::printf(
      "Reading: `probed-1024` carries a full run_probe (census stride 1024);\n"
      "`windowed-65536` adds the fixed-interval window ring on top (same 10%%\n"
      "budget); `null-ptr` goes through the probe-templated overload with the\n"
      "probe type disabled and must be free (<= 1%%, the zero-cost contract).\n"
      "Determinism is a hard gate at every scale.  Wrote BENCH_obs.json.\n");

  if (!determinism_ok) {
    std::fprintf(stderr, "FAIL: a probed run diverged from the unprobed run.\n");
  }
  if (!window_determinism_ok) {
    std::fprintf(stderr,
                 "FAIL: the window ring diverged between reps of the same "
                 "seed.\n");
  }
  if (!disabled_ok) {
    std::fprintf(stderr,
                 "FAIL: disabled probes cost %.2f%%, above the 1%% zero-cost "
                 "threshold.\n",
                 100.0 * disabled_frac);
  }
  if (!enabled_ok) {
    std::fprintf(stderr,
                 "FAIL: enabled probes cost %.2f%%, above the 10%% "
                 "threshold.\n",
                 100.0 * enabled_frac);
  }
  if (!windowed_ok) {
    std::fprintf(stderr,
                 "FAIL: the window ring costs %.2f%%, above the 10%% "
                 "threshold.\n",
                 100.0 * windowed_frac);
  }
  if (!progress_ok) {
    std::fprintf(stderr,
                 "FAIL: --progress costs %.2f%%, above the 10%% threshold.\n",
                 100.0 * progress_overhead);
  }
  return determinism_ok && window_determinism_ok && disabled_ok &&
                 enabled_ok && windowed_ok && progress_ok
             ? 0
             : 1;
}

}  // namespace
}  // namespace pp

int main() { return pp::run(); }
