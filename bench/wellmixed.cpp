// E15 — well-mixed multiset batch engine (src/engine/wellmixed/).
//
// Two claims are pinned here:
//
//   1. Agreement: at n where both engines run, the batch engine's mean
//      stabilization step count matches the per-interaction compiled engine
//      within 3σ (standard errors combined) — the batching approximation is
//      invisible at experiment resolution.  CI fails if this gate breaks.
//
//   2. Scale: the batch engine's step rate on cliques is decoupled from n.
//      The per-interaction engine's Θ(n²) endpoint arrays stop fitting in
//      memory around n ≈ 1.6·10⁴ (its frontier row below, where its rate is
//      already falling with n); the multiset engine keeps O(|Λ|) state, runs
//      a full n = 10⁶ election outright, and at n = 10⁷ sustains ≥ 50× the
//      engine's frontier steps/sec (enforced at PP_BENCH_SCALE >= 1).  A
//      complete n = 10⁸ election (~6·10¹¹ interactions — the fast
//      protocol's waiting phase costs ~2^h·L interactions per agent) is the
//      PP_BENCH_SCALE >= 4 headline row; on the 1-core reference host it
//      takes minutes, where the per-interaction engines cannot represent
//      the graph at all.
//
// Emits BENCH_wellmixed.json next to the table.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace pp {
namespace {

struct agreement_cell {
  node_id n = 0;
  int trials = 0;
  double engine_mean = 0, engine_se = 0;
  double wm_mean = 0, wm_se = 0;
  double sigma() const { return std::sqrt(engine_se * engine_se + wm_se * wm_se); }
  double deviation_sigmas() const {
    const double s = sigma();
    return s > 0 ? std::fabs(wm_mean - engine_mean) / s : 0.0;
  }
  bool pass() const { return deviation_sigmas() <= 3.0; }
};

// Mean stabilization steps, engine vs wellmixed, same protocol and n.
agreement_cell run_agreement(node_id n, int trials, std::uint64_t seed) {
  agreement_cell c;
  c.n = n;
  c.trials = trials;
  const fast_protocol proto(fast_params::practical_clique(static_cast<std::uint64_t>(n)));
  const graph g = make_clique(n);

  const auto engine = measure_election_fast(proto, g, trials, rng(seed));
  const auto wm = measure_election_wellmixed(
      proto, static_cast<std::uint64_t>(n), trials, rng(seed + 1));
  c.engine_mean = engine.steps.mean;
  c.engine_se = engine.steps.stddev / std::sqrt(static_cast<double>(engine.steps.count));
  c.wm_mean = wm.steps.mean;
  c.wm_se = wm.steps.stddev / std::sqrt(static_cast<double>(wm.steps.count));
  return c;
}

struct rate_cell {
  std::string engine;
  std::uint64_t n = 0;
  std::uint64_t steps = 0;
  double seconds = 0;
  bool full_election = false;
  bool stabilized = false;
  double sps() const { return seconds > 0 ? static_cast<double>(steps) / seconds : 0; }
};

// Steps/sec of the per-interaction compiled engine on a clique (bounded step
// budget; rates are steady-state, election completion is not required).
rate_cell engine_rate(node_id n, std::uint64_t budget, std::uint64_t seed) {
  rate_cell c;
  c.engine = "engine";
  c.n = static_cast<std::uint64_t>(n);
  const fast_protocol proto(fast_params::practical_clique(c.n));
  const graph g = make_clique(n);
  compiled_protocol<fast_protocol> compiled(proto);
  const edge_endpoints edges(g);
  const sim_options opts{.max_steps = budget};
  run_compiled(compiled, edges, g, rng(seed), opts);  // warm table + caches
  bench::stopwatch clock;
  const auto r = run_compiled(compiled, edges, g, rng(seed + 1), opts);
  c.seconds = clock.seconds();
  c.steps = r.steps;
  c.stabilized = r.stabilized;
  return c;
}

// Steps/sec of the well-mixed batch engine; with max_steps == UINT64_MAX
// this times a complete election (stabilization detection included).
rate_cell wellmixed_rate(std::uint64_t n, std::uint64_t max_steps,
                         std::uint64_t seed) {
  rate_cell c;
  c.engine = "wellmixed";
  c.n = n;
  c.full_election = max_steps == UINT64_MAX;
  const fast_protocol proto(fast_params::practical_clique(n));
  const auto init = initial_multiset(proto, n);
  compiled_protocol<fast_protocol> compiled(proto);
  const sim_options opts{.max_steps = max_steps};
  // The initial multiset is prebuilt above, so the timed region is the
  // simulation itself — the same accounting as the engine cells, whose
  // graph/endpoint construction is also untimed.
  bench::stopwatch clock;
  const auto r = run_wellmixed(compiled, init, n, rng(seed), opts);
  c.seconds = clock.seconds();
  c.steps = r.steps;
  c.stabilized = r.stabilized;
  return c;
}

bool run() {
  bench::banner(
      "E15", "well-mixed batch engine (multiset cliques, src/engine/wellmixed/)",
      "O(|Lambda|)-memory multinomial batching vs the per-interaction\n"
      "compiled engine: statistical agreement at overlapping n, then clique\n"
      "elections at n the edge-list engines cannot represent.");

  const double scale = bench_scale();
  const bool full = scale >= 1.0;

  // ---- 1. agreement gate ----
  const int trials = std::max(8, bench::scaled(32));
  std::vector<agreement_cell> agreement;
  agreement.push_back(run_agreement(512, trials, 500));
  agreement.push_back(run_agreement(1024, trials, 700));

  text_table agree_table(
      {"n", "trials", "engine mean", "wellmixed mean", "|dev|/sigma", "pass"});
  bool agreement_ok = true;
  for (const auto& c : agreement) {
    agreement_ok = agreement_ok && c.pass();
    agree_table.add_row({format_number(c.n), format_number(c.trials),
                         format_number(c.engine_mean, 4),
                         format_number(c.wm_mean, 4),
                         format_number(c.deviation_sigmas(), 2),
                         c.pass() ? "yes" : "NO"});
  }
  bench::print_table(agree_table);

  // ---- 2. throughput scaling ----
  std::vector<rate_cell> rates;
  // The engine's feasible frontier: n = 16384 is the largest clique whose
  // doubled endpoint array (~2.1 GB) plus graph comfortably fits here; its
  // step rate is already falling with n (cache misses on the Θ(n²) array),
  // so it upper-bounds what the per-interaction path could do at 10⁶.
  rates.push_back(engine_rate(1024, static_cast<std::uint64_t>(bench::scaled(4'000'000)), 31));
  if (full) {
    rates.push_back(engine_rate(16384, 20'000'000, 37));
    // Full election at n = 10⁶ — a graph the per-interaction path cannot
    // represent (its endpoint arrays alone would be ~8 TB).
    rates.push_back(wellmixed_rate(1'000'000, UINT64_MAX, 41));
    // Rate cells: a 2·10⁹-interaction budget each, long enough to run
    // thousands of batches of the real large-n regime.
    rates.push_back(wellmixed_rate(10'000'000, 2'000'000'000, 43));
    rates.push_back(wellmixed_rate(100'000'000, 4'000'000'000, 47));
    if (scale >= 4.0) {
      // Headline: a complete n = 10⁸ clique election, wall-clock (minutes).
      rates.push_back(wellmixed_rate(100'000'000, UINT64_MAX, 53));
    }
  } else {
    // CI scale: exercise the code paths without the multi-minute cells.
    rates.push_back(wellmixed_rate(1'000'000,
                                   static_cast<std::uint64_t>(bench::scaled(200'000'000)),
                                   41));
  }

  text_table rate_table({"engine", "n", "steps", "time (s)", "steps/s",
                         "full election"});
  for (const auto& c : rates) {
    rate_table.add_row({c.engine, format_number(static_cast<double>(c.n)),
                        format_number(static_cast<double>(c.steps)),
                        format_number(c.seconds, 3), format_number(c.sps(), 3),
                        c.full_election ? (c.stabilized ? "yes" : "NO") : "-"});
  }
  bench::print_table(rate_table);

  // ---- acceptance checks (full scale only) ----
  // Enforced: the full n = 10⁶ election completes in multiset memory, and
  // the sustained rate at n = 10⁷ is >= 50× the engine's memory frontier.
  // (At n = 10⁶ the light-class mass still forces pick-by-pick sampling, so
  // the full-run multiple over the frontier is ~2–3×; the rate decouples a
  // decade later — both numbers are recorded in the JSON.)
  bool scale_ok = true;
  double speedup_at_1e6 = 0;
  double speedup_at_1e7 = 0;
  if (full) {
    const rate_cell* frontier = nullptr;
    const rate_cell* wm1e6 = nullptr;
    const rate_cell* wm1e7 = nullptr;
    for (const auto& c : rates) {
      if (c.engine == "engine" && c.n == 16384) frontier = &c;
      if (c.engine == "wellmixed" && c.n == 1'000'000) wm1e6 = &c;
      if (c.engine == "wellmixed" && c.n == 10'000'000) wm1e7 = &c;
    }
    if (frontier != nullptr && frontier->sps() > 0) {
      if (wm1e6 != nullptr) {
        speedup_at_1e6 = wm1e6->sps() / frontier->sps();
        scale_ok = scale_ok && wm1e6->stabilized;
      }
      if (wm1e7 != nullptr) {
        speedup_at_1e7 = wm1e7->sps() / frontier->sps();
        scale_ok = scale_ok && speedup_at_1e7 >= 50.0;
      }
    }
    std::printf(
        "acceptance: full n=1e6 election %s in O(|Lambda|) memory at %.1fx "
        "the engine frontier rate;\nwellmixed@1e7 = %.1fx the frontier "
        "(>= 50 enforced): %s\n",
        (wm1e6 != nullptr && wm1e6->stabilized) ? "completed" : "DID NOT complete",
        speedup_at_1e6, speedup_at_1e7, scale_ok ? "PASS" : "FAIL");
  }

  bench::json_writer json;
  json.begin_object();
  json.key("bench").value("wellmixed");
  json.key("scale").value(scale);
  json.key("agreement").begin_array();
  for (const auto& c : agreement) {
    json.begin_object();
    json.key("n").value(static_cast<std::int64_t>(c.n));
    json.key("trials").value(c.trials);
    json.key("engine_mean_steps").value(c.engine_mean);
    json.key("wellmixed_mean_steps").value(c.wm_mean);
    json.key("deviation_sigmas").value(c.deviation_sigmas());
    json.key("pass").value(c.pass());
    json.end_object();
  }
  json.end_array();
  json.key("rates").begin_array();
  for (const auto& c : rates) {
    json.begin_object();
    json.key("engine").value(c.engine);
    json.key("n").value(c.n);
    json.key("steps").value(c.steps);
    json.key("seconds").value(c.seconds);
    json.key("steps_per_sec").value(c.sps());
    json.key("full_election").value(c.full_election);
    json.key("stabilized").value(c.stabilized);
    json.end_object();
  }
  json.end_array();
  if (full) {
    json.key("speedup_wellmixed_1e6_vs_engine_frontier").value(speedup_at_1e6);
    json.key("speedup_wellmixed_1e7_vs_engine_frontier").value(speedup_at_1e7);
  }
  json.key("agreement_pass").value(agreement_ok);
  json.key("scale_pass").value(scale_ok);
  json.end_object();
  json.write_file("BENCH_wellmixed.json");

  std::printf(
      "Reading: the agreement rows are the correctness gate (batching must\n"
      "be statistically invisible); the rate rows show the step rate\n"
      "decoupling from n once the Theta(n^2) edge arrays are gone.\n"
      "Wrote BENCH_wellmixed.json.\n");

  if (!agreement_ok) {
    std::fprintf(stderr,
                 "FAIL: wellmixed/engine mean stabilization steps disagree "
                 "beyond 3 sigma.\n");
  }
  if (!scale_ok) {
    std::fprintf(stderr,
                 "FAIL: scale acceptance not met (full n=1e6 election must "
                 "complete and wellmixed@1e7 must sustain >= 50x the engine "
                 "frontier).\n");
  }
  return agreement_ok && scale_ok;
}

}  // namespace
}  // namespace pp

int main() { return pp::run() ? 0 : 1; }
