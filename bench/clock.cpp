// E8 — §5.1, Lemmas 26-29: the streak clock.
//
// (a) E[K] = 2^{h+1} - 2 per tick (Lemma 27a) with the Lemma 26 geometric
//     sandwich on the tails;
// (b) E[X(d)] = E[K]·m/d: steps per tick scale inversely with degree
//     (Lemma 27b) — the mechanism that filters out low-degree leaders;
// (c) concentration of the ℓ-streak completion count (Lemma 28): the
//     [E/2, 4E] window captures almost all runs.
#include <cmath>

#include "bench_common.h"
#include "core/streak_clock.h"
#include "graph/generators.h"
#include "sched/scheduler.h"
#include "support/stats.h"

namespace pp {
namespace {

void expected_ticks() {
  text_table table({"h", "E[K] formula", "K sampled", "ratio",
                    "P[K>=4E] (tail)", "Geom sandwich ok"});
  rng seed(11);
  const int trials = bench::scaled(60000);
  for (const int h : {1, 2, 3, 4, 6, 8}) {
    rng gen = seed.fork(static_cast<std::uint64_t>(h));
    const double expected = streak_clock::expected_interactions_per_tick(h);
    double total = 0.0;
    int tail = 0;
    int sandwich_violations = 0;
    const double ph = std::pow(2.0, -h);
    const double ph1 = std::pow(2.0, -(h + 1));
    for (int t = 0; t < trials; ++t) {
      const auto k = static_cast<double>(sample_streak_interactions(h, gen));
      total += k;
      if (k >= 4 * expected) ++tail;
      // Lemma 26 support check: K >= 1 always; the distributional sandwich
      // is checked via tails below.
      if (k < 1) ++sandwich_violations;
    }
    const double mean = total / trials;
    const double upper_tail = std::pow(1.0 - ph1, 4 * expected - h);
    const double lower_tail = std::pow(1.0 - ph, 4 * expected);
    const double measured_tail = static_cast<double>(tail) / trials;
    const bool ok = sandwich_violations == 0 &&
                    measured_tail <= upper_tail + 0.01 &&
                    measured_tail >= lower_tail - 0.01;
    table.add_row({format_number(h), format_number(expected), format_number(mean),
                   format_number(mean / expected, 3),
                   format_number(measured_tail, 3), ok ? "yes" : "NO"});
  }
  std::printf("Lemma 26/27a: interactions per tick\n");
  bench::print_table(table);
}

void steps_per_tick_by_degree() {
  // On a star, the centre has degree n-1 and leaves degree 1: the measured
  // steps-per-tick ratio must be ~(n-1), Lemma 27b.
  const node_id n = 33;
  const graph g = make_star(n);
  const int h = 3;
  const int ticks_wanted = bench::scaled(2000);

  rng gen(12);
  edge_scheduler sched(g, gen);
  std::vector<streak_clock> clocks(static_cast<std::size_t>(n), streak_clock(h));
  std::vector<std::uint64_t> ticks(static_cast<std::size_t>(n), 0);
  int centre_ticks = 0;
  while (centre_ticks < ticks_wanted) {
    const interaction it = sched.next();
    if (clocks[static_cast<std::size_t>(it.initiator)].on_interaction(true)) {
      ++ticks[static_cast<std::size_t>(it.initiator)];
      if (it.initiator == 0) ++centre_ticks;
    }
    clocks[static_cast<std::size_t>(it.responder)].on_interaction(false);
  }
  const double steps = static_cast<double>(sched.steps());
  double leaf_ticks = 0.0;
  for (node_id v = 1; v < n; ++v) leaf_ticks += static_cast<double>(ticks[static_cast<std::size_t>(v)]);
  leaf_ticks /= (n - 1);

  const double centre_rate = steps / centre_ticks;
  const double leaf_rate = leaf_ticks > 0 ? steps / leaf_ticks : 0.0;
  const double expected_centre =
      streak_clock::expected_steps_per_tick(h, n - 1.0, static_cast<double>(g.num_edges()));
  const double expected_leaf =
      streak_clock::expected_steps_per_tick(h, 1.0, static_cast<double>(g.num_edges()));

  std::printf("Lemma 27b: steps per tick on the star S_%d (h=%d)\n", n, h);
  text_table table({"node", "degree", "steps/tick measured", "E[X(d)] formula", "ratio"});
  table.add_row({"centre", format_number(n - 1.0), format_number(centre_rate),
                 format_number(expected_centre), format_number(centre_rate / expected_centre, 3)});
  table.add_row({"leaf avg", "1", format_number(leaf_rate),
                 format_number(expected_leaf),
                 format_number(leaf_rate > 0 ? leaf_rate / expected_leaf : 0.0, 3)});
  bench::print_table(table);
}

void completion_concentration() {
  // Lemma 28: R = interactions to complete ℓ streaks concentrates in
  // [E[R]/2, 4·E[R]] for ℓ >= ln n.
  const int h = 4;
  const int ell = 12;
  const double expected = streak_clock::expected_interactions_per_tick(h) * ell;
  rng gen(13);
  const int trials = bench::scaled(20000);
  int below = 0;
  int above = 0;
  running_stats stats;
  for (int t = 0; t < trials; ++t) {
    double r = 0.0;
    for (int i = 0; i < ell; ++i) {
      r += static_cast<double>(sample_streak_interactions(h, gen));
    }
    stats.add(r);
    if (r <= expected / 2) ++below;
    if (r >= 4 * expected) ++above;
  }
  std::printf("Lemma 28: R over %d streaks (h=%d): E[R]=%s, mean=%s,\n"
              "P[R <= E/2] = %s, P[R >= 4E] = %s (both should be tiny)\n\n",
              ell, h, format_number(expected).c_str(),
              format_number(stats.mean()).c_str(),
              format_number(static_cast<double>(below) / trials, 3).c_str(),
              format_number(static_cast<double>(above) / trials, 3).c_str());
}

}  // namespace
}  // namespace pp

int main() {
  pp::bench::banner("E8", "§5.1 streak clocks (Lemmas 26-29)",
                    "E[K]=2^{h+1}-2; E[X(d)]=E[K]·m/d; R concentrates in [E/2, 4E].");
  pp::expected_ticks();
  pp::steps_per_tick_by_degree();
  pp::completion_concentration();
  return 0;
}
