// E9 — Lemmas 22/23: identifier generation for the Theorem 21 protocol.
//
// (a) Lemma 22: two fixed nodes generate equal k-bit identifiers with
//     probability at most 2^-k.  Measured on the ends of a path P_3 (the
//     generators never interact directly — the non-trivial case) for a sweep
//     of k.
// (b) Lemma 23: the time T until every node runs the maximum-id instance
//     satisfies E[T] <= k·n + 2·B(G); measured on cliques and cycles.
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/id_election.h"
#include "graph/generators.h"
#include "sched/scheduler.h"

namespace pp {
namespace {

void lemma22_collisions() {
  text_table table({"k", "trials", "collisions", "rate", "bound 2^-k"});
  rng seed(14);
  const graph path = make_path(3);
  for (const int k : {2, 4, 6, 8}) {
    const id_protocol proto(k);
    const int trials = bench::scaled(static_cast<int>(4000 * std::pow(2.0, k / 2)));
    int collisions = 0;
    rng gen = seed.fork(static_cast<std::uint64_t>(k));
    for (int t = 0; t < trials; ++t) {
      std::uint64_t gen_id[3] = {1, 1, 1};
      edge_scheduler sched(path, gen.fork(t));
      while (gen_id[0] < proto.id_threshold() || gen_id[2] < proto.id_threshold()) {
        const interaction it = sched.next();
        if (gen_id[it.initiator] < proto.id_threshold()) {
          gen_id[it.initiator] *= 2;
        }
        if (gen_id[it.responder] < proto.id_threshold()) {
          gen_id[it.responder] = 2 * gen_id[it.responder] + 1;
        }
      }
      if (gen_id[0] == gen_id[2]) ++collisions;
    }
    table.add_row({format_number(k), format_number(trials), format_number(collisions),
                   format_number(static_cast<double>(collisions) / trials, 3),
                   format_number(std::pow(2.0, -k), 3)});
  }
  std::printf("Lemma 22: pairwise identifier collision probability\n");
  bench::print_table(table);
}

void lemma23_settling_time() {
  text_table table({"family", "n", "k", "T measured", "k·n + 2B", "ratio"});
  rng seed(15);
  std::uint64_t stream = 0;
  const int trials = bench::scaled(20);
  for (const bool clique : {true, false}) {
    for (const node_id n : {32, 64, 128}) {
      const graph g = clique ? make_clique(n) : make_cycle(n);
      const int k = id_protocol::suggested_k(n);
      const id_protocol proto(k);
      const double b = estimate_worst_case_broadcast_time(g, bench::scaled(30), 6,
                                                          seed.fork(stream++))
                           .value;

      // T: first step at which all nodes carry the same id >= 2^k.
      rng gen = seed.fork(stream++);
      double total = 0.0;
      for (int t = 0; t < trials; ++t) {
        std::vector<id_protocol::state_type> config(static_cast<std::size_t>(n));
        for (node_id v = 0; v < n; ++v) {
          config[static_cast<std::size_t>(v)] = proto.initial_state(v);
        }
        edge_scheduler sched(g, gen.fork(t));
        for (;;) {
          const interaction it = sched.next();
          proto.interact(config[static_cast<std::size_t>(it.initiator)],
                         config[static_cast<std::size_t>(it.responder)]);
          // Cheap check every n steps.
          if (sched.steps() % static_cast<std::uint64_t>(n) == 0) {
            std::uint64_t lo = UINT64_MAX;
            std::uint64_t hi = 0;
            for (const auto& s : config) {
              lo = std::min(lo, s.id);
              hi = std::max(hi, s.id);
            }
            if (lo == hi && lo >= proto.id_threshold()) break;
          }
        }
        total += static_cast<double>(sched.steps());
      }
      const double measured = total / trials;
      const double bound = static_cast<double>(k) * n + 2.0 * b;
      table.add_row({clique ? "clique" : "cycle", format_number(n), format_number(k),
                     format_number(measured), format_number(bound),
                     format_number(measured / bound, 3)});
    }
  }
  std::printf("Lemma 23: time until a single maximum instance reigns\n");
  bench::print_table(table);
  std::printf("Reading: ratio <= 1 (the bound holds; it is loose on cliques\n"
              "where broadcast dominates generation).\n");
}

}  // namespace
}  // namespace pp

int main() {
  pp::bench::banner("E9", "Lemmas 22/23 (identifier generation)",
                    "collision rate <= 2^-k; settling time E[T] <= k·n + 2·B(G).");
  pp::lemma22_collisions();
  pp::lemma23_settling_time();
  return 0;
}
