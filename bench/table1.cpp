// E1 — Table 1: stable leader election on graphs, all protocol rows.
//
// For every graph family of Table 1 and every protocol implemented from the
// paper, reports the measured expected stabilization time, the number of
// distinct states actually used, the paper's predicted bound (Θ-shape with
// unit constants), and the measured/shape ratio.  The paper's claims are
// reproduced if, per family, the ratio column is O(1)-flat and the protocol
// ordering matches Table 1 (fast < id < constant-state in time; the reverse
// in states).
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "graph/generators.h"
#include "core/id_election.h"
#include "core/star_protocol.h"
#include "graph/metrics.h"

namespace pp {
namespace {

struct family_setup {
  std::string name;
  node_id n;
};

void run() {
  bench::banner(
      "E1", "Table 1 (stabilization time and states per protocol and family)",
      "fast protocol ~ O(B(G)·log n), identifier protocol ~ O(B(G) + n·log n),\n"
      "constant-state protocol ~ O(H(G)·n·log n); stars elect in O(1).");

  const int trials = bench::scaled(10);

  text_table table({"family", "n", "protocol", "mean steps", "states used",
                    "predicted shape", "steps/shape"});

  const std::vector<family_setup> setups{
      {"clique", 128}, {"cycle", 96}, {"star", 128},
      {"torus", 100},  {"er_dense", 128}, {"rr8", 128},
  };

  rng seed(20220725);
  std::uint64_t stream = 0;
  for (const auto& setup : setups) {
    const graph_family& family = family_by_name(setup.name);
    rng make_gen = seed.fork(stream++);
    const graph g = family.make(setup.n, make_gen);
    const double n = static_cast<double>(g.num_nodes());
    const double log_n = std::log2(n);

    const double b_measured =
        estimate_worst_case_broadcast_time(g, bench::scaled(40), 12, seed.fork(stream++))
            .value;
    const double h_shape = family.hitting_shape(g);

    // --- fast space-efficient protocol (Theorem 24) ---
    {
      const fast_protocol proto(fast_params::practical(g, b_measured));
      // Compiled engine: identical seeded results at ~5x the step rate.
      const auto census = run_until_stable_fast(proto, g, seed.fork(stream++),
                                                {.max_steps = UINT64_MAX, .state_census = true});
      const auto s = measure_election_fast(proto, g, trials, seed.fork(stream++));
      const double shape = b_measured * log_n;
      table.add_row({setup.name, format_number(n), "fast (Thm 24)",
                     format_number(s.steps.mean),
                     format_number(static_cast<double>(census.distinct_states_used)),
                     format_number(shape), format_number(s.steps.mean / shape, 3)});
    }

    // --- identifier protocol (Theorem 21) ---
    {
      const id_protocol proto(id_protocol::suggested_k(g.num_nodes()));
      const auto census = run_until_stable(proto, g, seed.fork(stream++),
                                           {.max_steps = UINT64_MAX, .state_census = true});
      const auto s = measure_election(proto, g, trials, seed.fork(stream++));
      const double shape = b_measured + n * log_n;
      table.add_row({setup.name, format_number(n), "identifier (Thm 21)",
                     format_number(s.steps.mean),
                     format_number(static_cast<double>(census.distinct_states_used)),
                     format_number(shape), format_number(s.steps.mean / shape, 3)});
    }

    // --- constant-state protocol (Theorem 16) ---
    {
      const beauquier_protocol proto(g.num_nodes());
      const auto s = measure_beauquier_event_driven(proto, g, trials,
                                                    seed.fork(stream++), UINT64_MAX);
      const double shape = h_shape * n * log_n;
      table.add_row({setup.name, format_number(n), "6-state (Thm 16)",
                     format_number(s.steps.mean), "6", format_number(shape),
                     format_number(s.steps.mean / shape, 3)});
    }

    // --- trivial star protocol (Table 1, last row) ---
    if (setup.name == "star") {
      const star_protocol proto;
      const auto s = measure_election(proto, g, trials, seed.fork(stream++));
      table.add_row({setup.name, format_number(n), "star one-shot",
                     format_number(s.steps.mean), "3", "1",
                     format_number(s.steps.mean, 3)});
    }
  }

  bench::print_table(table);
  std::printf(
      "Reading: the identifier protocol is the *time* baseline\n"
      "(O(B + n log n), near its shape with ratio ~1) but pays poly(n)\n"
      "states; the fast protocol stays within an O(log n)-flavoured constant\n"
      "of B(G)·log n with only O(log² n) states; the 6-state protocol pays\n"
      "H(G)·n·log n time for 6 states.  Time: id <= fast << 6-state as n\n"
      "grows; states: 6 << fast << id — exactly Table 1's trade-off.\n");
}

}  // namespace
}  // namespace pp

int main() {
  pp::run();
  return 0;
}
