// E6 — Theorem 39 / Lemmas 37/38: renitent graphs, where leader election is
// as slow as broadcast.
//
// The Lemma 38 construction (four base copies joined into a ring by paths of
// length 2ℓ) is Ω(ℓm)-renitent: *any* protocol needs Ω(ℓm) expected steps,
// and B(G) = Θ(ℓm).  The bench sweeps ℓ, measures B(G) and the stabilization
// time of the fast protocol (our best upper bound, O(B·log n)), and shows
// that (a) both grow as Θ(ℓm), and (b) election time / B(G) stays within a
// logarithmic factor — i.e. on these graphs the Theorem 34 lower bound and
// the Theorem 24 upper bound pinch the true complexity to Θ̃(B(G)).
// A Theorem 39 instance with target T(n) = n² is included.
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "support/fit.h"

namespace pp {
namespace {

void lemma38_sweep() {
  const int trials = bench::scaled(6);
  text_table table({"ell", "n", "m", "B measured", "B/(ell*m)", "fast steps",
                    "fast/B", "fast/(B lg n)"});

  rng seed(6);
  std::uint64_t stream = 0;
  std::vector<double> ells;
  std::vector<double> broadcast;
  std::vector<double> election;
  const graph base = make_clique(8);
  for (const node_id ell : {4, 8, 16, 32}) {
    const graph g = make_renitent(base, 0, ell);
    const double n = static_cast<double>(g.num_nodes());
    const double m = static_cast<double>(g.num_edges());

    const auto b = estimate_worst_case_broadcast_time(g, bench::scaled(30), 8,
                                                      seed.fork(stream++));
    const fast_protocol proto(fast_params::practical(g, b.value));
    const auto s = measure_election_fast(proto, g, trials, seed.fork(stream++));

    ells.push_back(static_cast<double>(ell));
    broadcast.push_back(b.value);
    election.push_back(s.steps.mean);
    table.add_row({format_number(ell), format_number(n), format_number(m),
                   format_number(b.value), format_number(b.value / (ell * m), 3),
                   format_number(s.steps.mean), format_number(s.steps.mean / b.value, 3),
                   format_number(s.steps.mean / (b.value * std::log2(n)), 3)});
  }

  std::printf("Lemma 38 renitent graphs (base K_8, ring of four copies):\n");
  bench::print_table(table);
  const auto bfit = fit_loglog(ells, broadcast);
  const auto efit = fit_loglog(ells, election);
  std::printf(
      "growth in ell: B slope %.2f, election slope %.2f.  Both quantities\n"
      "are Θ(ℓ·m) with m = 112 + 8ℓ, so the slope drifts from 1 towards 2 as\n"
      "the paths dominate; the flat B/(ℓ·m) column is the sharp check.  The\n"
      "fast/(B·lg n) column is flat: election time matches the Ω(B) lower\n"
      "bound up to the protocol's L·2^{h+1}Δ/m ≈ 16·lg n constant.\n\n",
      bfit.slope, efit.slope);
}

void theorem39_instance() {
  rng seed(7);
  theorem39_spec spec;
  rng make_gen = seed.fork(0);
  const auto target = [](double n) { return n * n; };
  const graph g = theorem39_graph(64, target, make_gen, &spec);

  const auto b = estimate_worst_case_broadcast_time(g, bench::scaled(30), 8,
                                                    seed.fork(1));
  const fast_protocol proto(fast_params::practical(g, b.value));
  const auto s = measure_election_fast(proto, g, bench::scaled(6), seed.fork(2));

  // Theorem 39 promises Θ(T(n)) at the size n of the *constructed* graph.
  const double n_total = static_cast<double>(g.num_nodes());
  const double t_target = target(n_total);
  const double log_n = std::log2(n_total);
  std::printf("Theorem 39 instance, target T(n)=n² (base size 64, star base: %s,"
              " ell=%d, extra edges=%lld):\n",
              spec.clique_base ? "no" : "yes", spec.ell,
              static_cast<long long>(spec.extra_edges));
  std::printf("  graph: n=%d m=%lld diameter=%d, T(n)=%s\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()), diameter(g),
              format_number(t_target).c_str());
  std::printf("  B measured = %s, B/T = %s (Θ(1) expected)\n",
              format_number(b.value).c_str(),
              format_number(b.value / t_target, 3).c_str());
  std::printf("  election steps = %s, election/(T·lg n) = %s "
              "(flat O(1)·protocol-constant expected)\n\n",
              format_number(s.steps.mean).c_str(),
              format_number(s.steps.mean / (t_target * log_n), 3).c_str());
}

void lemma37_cycle_isolation() {
  // Cycles are Ω(n²)-renitent: information needs Ω(ℓ·m) = Ω(n²) steps to
  // cross a quarter arc.  Measure the distance-(n/4) propagation time.
  text_table table({"n", "mean T_{n/4}", "T/(n^2/16)"});
  rng seed(8);
  for (const node_id n : {64, 128, 256}) {
    const graph g = make_cycle(n);
    const auto dist = bfs_distances(g, 0);
    const int k = n / 4;
    double total = 0.0;
    const int trials = bench::scaled(100);
    for (int t = 0; t < trials; ++t) {
      const auto r = simulate_broadcast(g, 0, seed.fork(static_cast<std::uint64_t>(n) * 1000 + t));
      total += static_cast<double>(distance_k_propagation_step(r, dist, k));
    }
    const double mean = total / trials;
    table.add_row({format_number(n), format_number(mean),
                   format_number(mean / (n * n / 16.0), 3)});
  }
  std::printf("Lemma 37: quarter-arc isolation on cycles (Θ(n²)):\n");
  bench::print_table(table);
}

}  // namespace
}  // namespace pp

int main() {
  pp::bench::banner("E6", "Theorem 39 / Lemmas 37-38 (renitent constructions)",
                    "election time ≍ B(G) ≍ Θ(ℓ·m) on renitent graphs — the\n"
                    "lower bound of Theorem 34 is matched by Theorem 24 up to log n.");
  pp::lemma38_sweep();
  pp::theorem39_instance();
  pp::lemma37_cycle_isolation();
  return 0;
}
