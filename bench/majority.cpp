// E13 — §8 future work: exact majority on graphs.
//
// The paper's conclusion proposes majority as the next problem for the
// graphical population model and suggests the same machinery applies.  This
// bench runs the always-correct four-state protocol (strong opinions cancel,
// random-walk and convert — the §4.1 token machinery verbatim) across
// families, margins and sizes: correctness is 100%, and the stabilization
// time scales with the hitting-time shape H(G)·n·log n exactly as the
// Theorem 16 analysis predicts for token-cancellation protocols, with the
// familiar clique/cycle separation.
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/majority.h"
#include "graph/generators.h"

namespace pp {
namespace {

void run() {
  bench::banner("E13", "§8 extension: exact 4-state majority on graphs",
                "always correct on every connected graph; time ~ H(G)·n·log n\n"
                "(token meeting/hitting machinery of §4.1), margin-sensitive.");

  const int trials = bench::scaled(10);
  text_table table({"family", "n", "margin", "correct", "mean steps",
                    "/H n lg n shape"});

  rng seed(18);
  std::uint64_t stream = 0;
  for (const auto& family : standard_families()) {
    for (const node_id n : {64, 128}) {
      rng make_gen = seed.fork(stream++);
      const graph g = family.make(n, make_gen);
      const node_id nodes = g.num_nodes();
      const double shape = family.hitting_shape(g) *
                           static_cast<double>(nodes) *
                           std::log2(static_cast<double>(nodes));
      for (const int margin : {2, nodes / 4}) {
        const node_id plus = static_cast<node_id>((nodes + margin) / 2);
        int correct = 0;
        double total_steps = 0.0;
        rng gen = seed.fork(stream++);
        for (int t = 0; t < trials; ++t) {
          rng trial_gen = gen.fork(t);
          const auto votes = random_vote_assignment(nodes, plus, trial_gen);
          const majority_protocol proto(votes);
          // Compiled engine, seeded like run_majority: identical trajectory
          // and winner (a stabilized run has a leader-output node iff plus
          // won), at a multiple of the step rate.
          const auto r = run_until_stable_fast(proto, g, trial_gen.fork(1));
          const auto winner =
              r.leader >= 0 ? majority_vote::plus : majority_vote::minus;
          if (r.stabilized &&
              winner == (plus > nodes - plus ? majority_vote::plus
                                             : majority_vote::minus)) {
            ++correct;
          }
          total_steps += static_cast<double>(r.steps);
        }
        table.add_row({family.name, format_number(nodes),
                       format_number(2 * plus - nodes),
                       format_number(correct) + "/" + format_number(trials),
                       format_number(total_steps / trials),
                       format_number(total_steps / trials / shape, 3)});
      }
    }
  }

  bench::print_table(table);
  std::printf(
      "Reading: correctness is exact at every margin (the protocol is\n"
      "always-correct, like Theorem 16's election); small margins cost more\n"
      "(more cancellations, each a token meeting); the /shape column stays\n"
      "O(1) within each family while absolute times separate clique vs\n"
      "cycle by the same H(G) factor as leader election.\n");
}

}  // namespace
}  // namespace pp

int main() {
  pp::run();
  return 0;
}
