// E16 — cache-locality engine overhaul (packed configurations + reordering).
//
// Two sections pin the PR's claims:
//
//   1. Equivalence gate (every scale): full elections at small n where the
//      u8/u16/u32 packed paths must reproduce the lazy u32 engine's seeded
//      results *bit-identically* at natural order — same steps, leader and
//      stabilization — across beauquier/majority × clique/ring/grid.  CI
//      fails if any cell breaks (the ISSUE's "equal_steps stays true").
//
//   2. Locality matrix (the scale proof): steps/sec of the tuned engine over
//      the (config width × vertex order) grid on the sparse families the
//      paper targets — ring, grid, torus — at n = 10⁶ (and 10⁷ at
//      PP_BENCH_SCALE >= 2), against the PR 2 lazy u32 engine as baseline.
//      Each cell reports its working-set bytes (config + table + pairs),
//      bytes touched per step and the graph bandwidth of its order, so wins
//      are attributable to layout, not just observed.  At full scale the
//      acceptance gate requires the packed+RCM cell to reach >= 1.5x the
//      baseline step rate on at least one family at n >= 10⁶.
//
// Emits BENCH_locality.json next to the tables.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/beauquier.h"
#include "core/majority.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "graph/reorder.h"

namespace pp {
namespace {

// ---------------------------------------------------------------------------
// Section 1: packed-width bit-identity on full elections.

struct eq_cell {
  std::string protocol;
  std::string family;
  node_id n = 0;
  std::uint64_t steps = 0;
  bool equal_steps = false;  // u8, u16 and u32 all match the lazy engine
};

template <typename P>
eq_cell run_equivalence(const std::string& protocol, const std::string& family,
                        const P& proto, const graph& g, std::uint64_t seed) {
  eq_cell c;
  c.protocol = protocol;
  c.family = family;
  c.n = g.num_nodes();
  const sim_options options{.state_census = true};
  const auto ref = run_until_stable_fast(proto, g, rng(seed), options);
  c.steps = ref.steps;
  c.equal_steps = true;
  for (const int bits : {8, 16, 32}) {
    const tuned_runner<P> runner(proto, g, {vertex_order::natural, bits});
    const auto packed = runner.run(rng(seed), options);
    c.equal_steps = c.equal_steps && packed.stabilized == ref.stabilized &&
                    packed.steps == ref.steps && packed.leader == ref.leader &&
                    packed.distinct_states_used == ref.distinct_states_used;
  }
  return c;
}

// ---------------------------------------------------------------------------
// Section 2: the (width × order × family) throughput matrix.

struct matrix_cell {
  std::string family;
  std::string order;
  int pack_bits = 0;   // 0 marks the PR 2 lazy-engine baseline row
  node_id n = 0;
  std::int64_t m = 0;
  node_id bw = 0;      // graph bandwidth under this order
  std::uint64_t steps = 0;
  double seconds = 0;
  std::size_t working_set = 0;
  std::size_t step_bytes = 0;
  double sps() const { return seconds > 0 ? static_cast<double>(steps) / seconds : 0; }
};

graph make_family(const std::string& family, node_id n) {
  if (family == "ring") return make_cycle(n);
  const auto side = static_cast<node_id>(std::llround(std::sqrt(static_cast<double>(n))));
  return make_grid_2d(side, side, family == "torus");
}

// PR 2 baseline: the lazy u32 engine on the natural order (run_compiled over
// the doubled endpoint array).  Warm run untimed, as in bench/engine.cpp.
matrix_cell baseline_cell(const std::string& family, const graph& g,
                          std::uint64_t budget, std::uint64_t seed) {
  matrix_cell c;
  c.family = family;
  c.order = "natural";
  c.pack_bits = 0;
  c.n = g.num_nodes();
  c.m = g.num_edges();
  c.bw = bandwidth(g);
  const beauquier_protocol proto(g.num_nodes());
  compiled_protocol<beauquier_protocol> compiled(proto);
  const edge_endpoints edges(g);
  run_compiled(compiled, edges, g, rng(seed), {.max_steps = budget / 8});
  bench::stopwatch clock;
  const auto r = run_compiled(compiled, edges, g, rng(seed + 1), {.max_steps = budget});
  c.seconds = clock.seconds();
  c.steps = r.steps;
  c.working_set = static_cast<std::size_t>(c.n) * 4 + compiled.table_bytes() +
                  edges.pairs.size() * sizeof(interaction);
  c.step_bytes = sizeof(interaction) +
                 sizeof(compiled_protocol<beauquier_protocol>::entry) + 2 * 4;
  return c;
}

matrix_cell tuned_cell(const std::string& family, const graph& g,
                       vertex_order order, int pack_bits, std::uint64_t budget,
                       std::uint64_t seed) {
  matrix_cell c;
  c.family = family;
  c.order = to_string(order);
  c.pack_bits = pack_bits;
  c.n = g.num_nodes();
  c.m = g.num_edges();
  const beauquier_protocol proto(g.num_nodes());
  const tuned_runner<beauquier_protocol> runner(proto, g, {order, pack_bits});
  c.bw = bandwidth(runner.run_graph());
  c.working_set = runner.working_set_bytes();
  c.step_bytes = runner.bytes_per_step();
  runner.run(rng(seed), {.max_steps = budget / 8});
  bench::stopwatch clock;
  const auto r = runner.run(rng(seed + 1), {.max_steps = budget});
  c.seconds = clock.seconds();
  c.steps = r.steps;
  return c;
}

bool run() {
  bench::banner(
      "E16", "cache-locality matrix (packed widths x vertex orders, src/engine/)",
      "packed configurations (u8/u16/u32 + 4/8/12-byte entries), halved\n"
      "endpoint arrays and BFS/RCM reordering vs the PR 2 lazy u32 engine\n"
      "on the sparse families the paper targets.");

  const double scale = bench_scale();
  const bool full = scale >= 1.0;

  // ---- 1. equivalence gate ----
  std::vector<eq_cell> equivalence;
  {
    const graph clique = make_clique(256);
    const graph ring = make_cycle(512);
    const graph grid = make_grid_2d(23, 23, false);
    equivalence.push_back(run_equivalence(
        "beauquier", "clique", beauquier_protocol(256), clique, 900));
    equivalence.push_back(run_equivalence(
        "beauquier", "ring", beauquier_protocol(512), ring, 901));
    equivalence.push_back(run_equivalence(
        "beauquier", "grid", beauquier_protocol(529), grid, 902));
    rng votes_gen(903);
    equivalence.push_back(run_equivalence(
        "majority", "ring",
        majority_protocol(random_vote_assignment(512, 320, votes_gen)), ring,
        904));
  }

  text_table eq_table({"protocol", "family", "n", "steps", "eq(u8,u16,u32)"});
  bool equivalence_ok = true;
  for (const auto& c : equivalence) {
    equivalence_ok = equivalence_ok && c.equal_steps;
    eq_table.add_row({c.protocol, c.family, format_number(c.n),
                      format_number(static_cast<double>(c.steps)),
                      c.equal_steps ? "yes" : "NO"});
  }
  bench::print_table(eq_table);

  // ---- 2. locality matrix ----
  // Below full scale the matrix shrinks with the budget so CI exercises
  // every (width, order) code path without the multi-minute cells.
  const node_id n_matrix = full ? 1'000'000 : std::max(4096, bench::scaled(1'000'000));
  const auto budget = static_cast<std::uint64_t>(bench::scaled(200'000'000));
  const std::vector<std::string> families{"ring", "grid", "torus"};
  const vertex_order orders[] = {vertex_order::natural, vertex_order::bfs,
                                 vertex_order::rcm};

  std::vector<matrix_cell> matrix;
  std::uint64_t seed = 1000;
  for (const auto& family : families) {
    const graph g = make_family(family, n_matrix);
    matrix.push_back(baseline_cell(family, g, budget, seed));
    seed += 2;
    for (const auto order : orders) {
      for (const int bits : {8, 16, 32}) {
        matrix.push_back(tuned_cell(family, g, order, bits, budget, seed));
        seed += 2;
      }
    }
  }
  if (scale >= 2.0) {
    // The 10⁷ rows: the regime where the baseline's working set (~200 MB on
    // the ring: 160 MB doubled pairs + 40 MB u32 config) outgrows this
    // host's caches while the packed+RCM layout (~90 MB) does not.
    for (const auto& family : {std::string("ring"), std::string("torus")}) {
      const graph g = make_family(family, 10'000'000);
      matrix.push_back(baseline_cell(family, g, budget, seed));
      seed += 2;
      matrix.push_back(tuned_cell(family, g, vertex_order::natural, 8, budget, seed));
      seed += 2;
      matrix.push_back(tuned_cell(family, g, vertex_order::rcm, 8, budget, seed));
      seed += 2;
      matrix.push_back(tuned_cell(family, g, vertex_order::rcm, 32, budget, seed));
      seed += 2;
    }
  }

  text_table mx_table({"family", "n", "order", "pack", "bandwidth", "ws MB",
                       "B/step", "steps/s", "vs base"});
  // The baseline row each cell is normalised against: same family, same n.
  const auto base_sps = [&](const matrix_cell& c) {
    for (const auto& b : matrix) {
      if (b.pack_bits == 0 && b.family == c.family && b.n == c.n) return b.sps();
    }
    return 0.0;
  };
  for (const auto& c : matrix) {
    const double base = base_sps(c);
    mx_table.add_row(
        {c.family, format_number(static_cast<double>(c.n)),
         c.pack_bits == 0 ? "baseline" : c.order,
         c.pack_bits == 0 ? "u32x2" : ("u" + std::to_string(c.pack_bits)),
         format_number(static_cast<double>(c.bw)),
         format_number(static_cast<double>(c.working_set) / 1e6, 3),
         format_number(static_cast<double>(c.step_bytes)),
         format_number(c.sps(), 3),
         base > 0 ? format_number(c.sps() / base, 3) : "-"});
  }
  bench::print_table(mx_table);

  // ---- acceptance (full scale only) ----
  // Packed width + RCM combined must reach >= 1.5x the PR 2 engine on at
  // least one sparse family at n >= 10⁶.
  bool locality_ok = true;
  double best_speedup = 0;
  std::string best_label;
  if (full) {
    for (const auto& c : matrix) {
      if (c.pack_bits == 0 || c.n < 1'000'000) continue;
      if (c.order != "rcm" || c.pack_bits == 32) continue;
      const double base = base_sps(c);
      if (base <= 0) continue;
      const double speedup = c.sps() / base;
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_label = c.family + "@" + std::to_string(c.n) + " rcm/u" +
                     std::to_string(c.pack_bits);
      }
    }
    locality_ok = best_speedup >= 1.5;
    std::printf(
        "acceptance: best packed+RCM cell %s = %.2fx the PR 2 engine "
        "(>= 1.5x enforced at n >= 1e6): %s\n",
        best_label.c_str(), best_speedup, locality_ok ? "PASS" : "FAIL");
  }

  bench::json_writer json;
  json.begin_object();
  json.key("bench").value("locality");
  json.key("scale").value(scale);
  json.key("equivalence").begin_array();
  for (const auto& c : equivalence) {
    json.begin_object();
    json.key("protocol").value(c.protocol);
    json.key("family").value(c.family);
    json.key("n").value(static_cast<std::int64_t>(c.n));
    json.key("steps").value(c.steps);
    json.key("equal_steps").value(c.equal_steps);
    json.end_object();
  }
  json.end_array();
  json.key("matrix").begin_array();
  for (const auto& c : matrix) {
    json.begin_object();
    json.key("family").value(c.family);
    json.key("n").value(static_cast<std::int64_t>(c.n));
    json.key("m").value(c.m);
    json.key("order").value(c.pack_bits == 0 ? "baseline" : c.order);
    json.key("pack_bits").value(c.pack_bits);
    json.key("bandwidth").value(static_cast<std::int64_t>(c.bw));
    json.key("steps").value(c.steps);
    json.key("seconds").value(c.seconds);
    json.key("steps_per_sec").value(c.sps());
    json.key("working_set_bytes").value(static_cast<std::uint64_t>(c.working_set));
    json.key("bytes_per_step").value(static_cast<std::uint64_t>(c.step_bytes));
    const double base = base_sps(c);
    json.key("speedup_vs_baseline").value(base > 0 ? c.sps() / base : 0.0);
    json.end_object();
  }
  json.end_array();
  if (full) {
    json.key("best_packed_rcm_speedup").value(best_speedup);
    json.key("best_packed_rcm_cell").value(best_label);
  }
  json.key("equivalence_pass").value(equivalence_ok);
  json.key("locality_pass").value(locality_ok);
  json.end_object();
  json.write_file("BENCH_locality.json");

  std::printf(
      "Reading: the equivalence rows gate bit-identity of the packed widths;\n"
      "the matrix attributes step-rate changes to working-set bytes (config\n"
      "width, halved pairs, entry packing) and bandwidth (BFS/RCM orders).\n"
      "Wrote BENCH_locality.json.\n");

  if (!equivalence_ok) {
    std::fprintf(stderr,
                 "FAIL: a packed width broke bit-identity with the lazy u32 "
                 "engine (eq = NO above).\n");
  }
  if (!locality_ok) {
    std::fprintf(stderr,
                 "FAIL: packed+RCM did not reach 1.5x the PR 2 engine on any "
                 "sparse family at n >= 1e6.\n");
  }
  return equivalence_ok && locality_ok;
}

}  // namespace
}  // namespace pp

int main() { return pp::run() ? 0 : 1; }
