// E5 — the dense-random rows of Table 1 and the shapes behind Theorems 40/46.
//
// On connected G(n,p) with constant p: B(G) = O(n log n) w.h.p. (Lemma 11),
// so the fast protocol runs in O(n log² n); the 6-state protocol needs
// ~H(G)·n·log n = Θ(n² log n) (Proposition 20: H = O(n)); and by Theorem 46
// *no* constant-state protocol can beat n² on these graphs — the measured
// 6-state/fast gap growing linearly in n is the empirical face of that
// separation.  Theorem 40's Ω(n log n) bound for any protocol on dense
// graphs shows in the fast protocol's normalised column staying >= order 1.
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "core/id_election.h"
#include "graph/generators.h"

namespace pp {
namespace {

void run() {
  bench::banner("E5", "Table 1 dense-random rows + Theorems 40/46 shapes",
                "fast ~ n log² n; id ~ n log n (>= Ω(n log n), Thm 40);\n"
                "6-state ~ n² log n (o(n²) impossible for constant state, Thm 46).");

  const int trials = bench::scaled(8);
  text_table table({"p", "n", "fast steps", "/n lg^2 n", "id steps", "/n lg n",
                    "6-state steps", "/n^2 lg n", "gap 6st/fast"});

  rng seed(5);
  std::uint64_t stream = 0;
  for (const double p : {0.5, 0.25}) {
    for (const node_id n : {64, 128, 256}) {
      rng make_gen = seed.fork(stream++);
      const graph g = make_connected_erdos_renyi(n, p, make_gen);
      const double nn = static_cast<double>(n);
      const double lg = std::log2(nn);

      const double b_measured =
          estimate_worst_case_broadcast_time(g, bench::scaled(30), 6,
                                             seed.fork(stream++))
              .value;

      const fast_protocol fast(fast_params::practical(g, b_measured));
      // Compiled engine: same fork(t) seeds, identical results, ~5x the rate.
      const auto fast_s = measure_election_fast(fast, g, trials, seed.fork(stream++));

      const id_protocol ident(id_protocol::suggested_k(n));
      const auto id_s = measure_election(ident, g, trials, seed.fork(stream++));

      const beauquier_protocol bq(n);
      const auto bq_s = measure_beauquier_event_driven(bq, g, trials,
                                                       seed.fork(stream++),
                                                       UINT64_MAX);

      table.add_row({format_number(p, 2), format_number(nn),
                     format_number(fast_s.steps.mean),
                     format_number(fast_s.steps.mean / (nn * lg * lg), 3),
                     format_number(id_s.steps.mean),
                     format_number(id_s.steps.mean / (nn * lg), 3),
                     format_number(bq_s.steps.mean),
                     format_number(bq_s.steps.mean / (nn * nn * lg), 3),
                     format_number(bq_s.steps.mean / fast_s.steps.mean, 3)});
    }
  }

  bench::print_table(table);
  std::printf(
      "Reading: normalised columns flat in n reproduce the asymptotic rows;\n"
      "the final gap column growing roughly linearly in n is the measured\n"
      "face of the Theorem 46 constant-state lower bound.\n");
}

}  // namespace
}  // namespace pp

int main() {
  pp::run();
  return 0;
}
