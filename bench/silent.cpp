// E19 — event-driven silent-edge scheduler (src/engine/silent/).
//
// Two claims are pinned here:
//
//   1. Agreement: on the same tuned runner, the silent scheduler's mean
//      stabilization step count AND mean elected-leader id match the step
//      scheduler's within 3σ (standard errors combined) — skipping silent
//      runs analytically is statistically invisible in when the election
//      ends and in who wins.  Checked in the fast protocol's two extreme
//      regimes (default parameters: almost every step active; the
//      backup-dominated regime: almost every step silent) and always
//      enforced, at every PP_BENCH_SCALE.
//
//   2. Rate: in the backup-dominated regime the election endgame is two
//      tokens meeting on the graph — Θ(n²) scheduler steps of which only
//      O(active) change state.  At n = 10⁶ the silent scheduler runs the
//      complete election outright; the step scheduler's projected wall
//      clock for the same election (its measured steps/sec over a bounded
//      budget, extrapolated to the silent run's step count) must be
//      >= 3× the silent scheduler's actual wall clock (enforced at
//      PP_BENCH_SCALE >= 1; the measured margin is orders of magnitude).
//
// Emits BENCH_silent.json next to the tables.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace pp {
namespace {

// The backup-dominated regime: a low elimination threshold hands the fast
// protocol off to the Beauquier backup quickly, leaving the silent-rich
// two-token endgame as the entire wall clock — the regime the scheduler
// exists for.  (Default parameters keep elections inside the fast phase,
// where every interaction ticks a streak clock and no step is silent.)
fast_params backup_regime_params() {
  fast_params p;
  p.h = 4;
  p.level_threshold = 8;
  p.max_level = 9;
  return p;
}

sim_options silent_options(std::uint64_t max_steps = UINT64_MAX) {
  sim_options o;
  o.scheduler = scheduler_kind::silent;
  o.max_steps = max_steps;
  return o;
}

struct mean_se {
  double mean = 0, se = 0;
};

mean_se summarize(const std::vector<double>& xs) {
  mean_se s;
  const auto n = static_cast<double>(xs.size());
  for (const double x : xs) s.mean += x;
  s.mean /= n;
  double ss = 0;
  for (const double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.se = n > 1 ? std::sqrt(ss / (n - 1) / n) : 0.0;
  return s;
}

double deviation_sigmas(const mean_se& a, const mean_se& b) {
  const double sigma = std::sqrt(a.se * a.se + b.se * b.se);
  return sigma > 0 ? std::fabs(a.mean - b.mean) / sigma : 0.0;
}

struct agreement_cell {
  std::string regime;
  node_id n = 0;
  int trials = 0;
  mean_se step_steps, silent_steps;
  mean_se step_leader, silent_leader;
  double steps_dev_sigmas() const {
    return deviation_sigmas(step_steps, silent_steps);
  }
  // On these node-symmetric graphs the elected leader id is close to
  // uniform over [0, n); agreement of its mean is the distributional check
  // on *which* leader wins, complementing the step-count check on *when*.
  double leader_dev_sigmas() const {
    return deviation_sigmas(step_leader, silent_leader);
  }
  bool pass() const {
    return steps_dev_sigmas() <= 3.0 && leader_dev_sigmas() <= 3.0;
  }
};

// Stabilization-step and elected-leader distributions, step vs silent
// scheduler, on one shared runner (independent seeds: the schedulers
// consume draws differently by design).
agreement_cell run_agreement(const std::string& regime, const fast_params& p,
                             const graph& g, int trials, std::uint64_t seed) {
  agreement_cell c;
  c.regime = regime;
  c.n = g.num_nodes();
  c.trials = trials;
  const fast_protocol proto(p);
  const tuned_runner<fast_protocol> runner(proto, g);
  std::vector<double> step_steps, silent_steps, step_leader, silent_leader;
  rng step_gen(seed), silent_gen(seed + 1);
  for (int t = 0; t < trials; ++t) {
    const auto s = runner.run(step_gen.fork(static_cast<std::uint64_t>(t)));
    const auto q = runner.run(silent_gen.fork(static_cast<std::uint64_t>(t)),
                              silent_options());
    if (s.stabilized) {
      step_steps.push_back(static_cast<double>(s.steps));
      step_leader.push_back(static_cast<double>(s.leader));
    }
    if (q.stabilized) {
      silent_steps.push_back(static_cast<double>(q.steps));
      silent_leader.push_back(static_cast<double>(q.leader));
    }
  }
  c.step_steps = summarize(step_steps);
  c.silent_steps = summarize(silent_steps);
  c.step_leader = summarize(step_leader);
  c.silent_leader = summarize(silent_leader);
  return c;
}

struct rate_cell {
  std::string scheduler;
  std::uint64_t n = 0;
  std::uint64_t steps = 0;
  double seconds = 0;
  bool full_election = false;
  bool stabilized = false;
  double sps() const {
    return seconds > 0 ? static_cast<double>(steps) / seconds : 0;
  }
};

// A complete backup-regime election under the silent scheduler.  The
// incidence rows are built by an untimed 0-step run first, mirroring the
// untimed graph/endpoint construction of the other engine benches.
rate_cell silent_full(const tuned_runner<fast_protocol>& runner,
                      std::uint64_t n, std::uint64_t seed) {
  rate_cell c;
  c.scheduler = "silent";
  c.n = n;
  c.full_election = true;
  runner.run(rng(seed), silent_options(0));  // warm incidence + table
  bench::stopwatch clock;
  const auto r = runner.run(rng(seed), silent_options());
  c.seconds = clock.seconds();
  c.steps = r.steps;
  c.stabilized = r.stabilized;
  return c;
}

// Steps/sec of the step scheduler on the same runner over a bounded budget
// (steady-state rate; the full backup-regime election would take hours at
// full scale — that projection is the point of the acceptance gate).
rate_cell packed_capped(const tuned_runner<fast_protocol>& runner,
                        std::uint64_t n, std::uint64_t budget,
                        std::uint64_t seed) {
  rate_cell c;
  c.scheduler = "step";
  c.n = n;
  const sim_options opts{.max_steps = budget};
  runner.run(rng(seed), sim_options{.max_steps = budget / 8});  // warm caches
  bench::stopwatch clock;
  const auto r = runner.run(rng(seed + 1), opts);
  c.seconds = clock.seconds();
  c.steps = r.steps;
  c.stabilized = r.stabilized;
  return c;
}

bool run() {
  bench::banner(
      "E19", "silent-edge scheduler (event-driven engine, src/engine/silent/)",
      "Maintaining the active oriented-pair set and jumping silent runs\n"
      "geometrically: statistical agreement with the step scheduler in both\n"
      "activity regimes, then a full backup-regime election at n = 1e6\n"
      "against the step scheduler's projected wall clock.");

  const double scale = bench_scale();
  const bool full = scale >= 1.0;

  // ---- 1. agreement gate (always on) ----
  const int trials = std::max(8, bench::scaled(24));
  rng graph_gen(19);
  std::vector<agreement_cell> agreement;
  agreement.push_back(run_agreement("fast-phase (default params)",
                                    fast_params::practical_clique(128),
                                    make_cycle(128), trials, 900));
  agreement.push_back(run_agreement(
      "backup-dominated", backup_regime_params(),
      make_random_regular(256, 8, graph_gen), trials, 1100));

  text_table agree_table({"regime", "n", "trials", "step mean", "silent mean",
                          "steps |dev|/sigma", "leader |dev|/sigma", "pass"});
  bool agreement_ok = true;
  for (const auto& c : agreement) {
    agreement_ok = agreement_ok && c.pass();
    agree_table.add_row({c.regime, format_number(c.n), format_number(c.trials),
                         format_number(c.step_steps.mean, 4),
                         format_number(c.silent_steps.mean, 4),
                         format_number(c.steps_dev_sigmas(), 2),
                         format_number(c.leader_dev_sigmas(), 2),
                         c.pass() ? "yes" : "NO"});
  }
  bench::print_table(agree_table);

  // ---- 2. rate cells ----
  // Full scale: the headline n = 10⁶ regular graph.  CI scale: n = 2·10⁴,
  // where the endgame is short enough for the step scheduler to sample —
  // the cells exercise both code paths without the acceptance margin.
  const std::uint64_t n = full ? 1'000'000 : 20'000;
  const std::uint64_t packed_budget =
      full ? 2'000'000'000ull
           : static_cast<std::uint64_t>(bench::scaled(200'000'000));
  const fast_protocol proto(backup_regime_params());
  rng gg(99);
  const graph g = make_random_regular(static_cast<node_id>(n), 8, gg);
  const tuned_runner<fast_protocol> runner(proto, g);

  std::vector<rate_cell> rates;
  rates.push_back(silent_full(runner, n, 7));
  rates.push_back(packed_capped(runner, n, packed_budget, 11));

  text_table rate_table({"scheduler", "n", "steps", "time (s)", "steps/s",
                         "full election"});
  for (const auto& c : rates) {
    rate_table.add_row({c.scheduler, format_number(static_cast<double>(c.n)),
                        format_number(static_cast<double>(c.steps)),
                        format_number(c.seconds, 3), format_number(c.sps(), 3),
                        c.full_election ? (c.stabilized ? "yes" : "NO") : "-"});
  }
  bench::print_table(rate_table);

  // ---- acceptance (full scale only) ----
  // The step scheduler pays every silent step; its projected wall clock for
  // the silent run's step count must be >= 3x the silent scheduler's actual
  // one, and the silent election must have completed.
  const rate_cell& silent_cell = rates[0];
  const rate_cell& packed_cell = rates[1];
  const double projected_packed_seconds =
      packed_cell.sps() > 0
          ? static_cast<double>(silent_cell.steps) / packed_cell.sps()
          : 0.0;
  const double speedup = silent_cell.seconds > 0
                             ? projected_packed_seconds / silent_cell.seconds
                             : 0.0;
  bool scale_ok = true;
  if (full) {
    scale_ok = silent_cell.stabilized && speedup >= 3.0;
    std::printf(
        "acceptance: full n=1e6 backup-regime election %s under the silent\n"
        "scheduler in %.1fs; step scheduler projected %.0fs for the same\n"
        "steps = %.1fx (>= 3 enforced): %s\n",
        silent_cell.stabilized ? "completed" : "DID NOT complete",
        silent_cell.seconds, projected_packed_seconds, speedup,
        scale_ok ? "PASS" : "FAIL");
  } else {
    std::printf(
        "informational (scale < 1): silent %.3fs for %llu steps; step\n"
        "scheduler projected %.1fs = %.2fx (gate enforced at scale >= 1).\n",
        silent_cell.seconds,
        static_cast<unsigned long long>(silent_cell.steps),
        projected_packed_seconds, speedup);
  }

  bench::json_writer json;
  json.begin_object();
  json.key("bench").value("silent");
  json.key("scale").value(scale);
  json.key("agreement").begin_array();
  for (const auto& c : agreement) {
    json.begin_object();
    json.key("regime").value(c.regime);
    json.key("n").value(static_cast<std::int64_t>(c.n));
    json.key("trials").value(c.trials);
    json.key("step_mean_steps").value(c.step_steps.mean);
    json.key("silent_mean_steps").value(c.silent_steps.mean);
    json.key("step_mean_leader").value(c.step_leader.mean);
    json.key("silent_mean_leader").value(c.silent_leader.mean);
    json.key("steps_deviation_sigmas").value(c.steps_dev_sigmas());
    json.key("leader_deviation_sigmas").value(c.leader_dev_sigmas());
    json.key("pass").value(c.pass());
    json.end_object();
  }
  json.end_array();
  json.key("rates").begin_array();
  for (const auto& c : rates) {
    json.begin_object();
    json.key("scheduler").value(c.scheduler);
    json.key("n").value(c.n);
    json.key("steps").value(c.steps);
    json.key("seconds").value(c.seconds);
    json.key("steps_per_sec").value(c.sps());
    json.key("full_election").value(c.full_election);
    json.key("stabilized").value(c.stabilized);
    json.end_object();
  }
  json.end_array();
  json.key("projected_step_seconds").value(projected_packed_seconds);
  json.key("speedup_projected").value(speedup);
  json.key("agreement_pass").value(agreement_ok);
  json.key("scale_pass").value(scale_ok);
  json.end_object();
  json.write_file("BENCH_silent.json");

  std::printf(
      "Reading: the agreement rows are the correctness gate (the jump must\n"
      "be statistically invisible in both activity regimes); the rate rows\n"
      "show the endgame cost collapsing from Theta(n^2) scheduler steps to\n"
      "O(active) executed ones.\nWrote BENCH_silent.json.\n");

  if (!agreement_ok) {
    std::fprintf(stderr,
                 "FAIL: silent/step mean stabilization steps disagree beyond "
                 "3 sigma.\n");
  }
  if (!scale_ok) {
    std::fprintf(stderr,
                 "FAIL: scale acceptance not met (full n=1e6 election must "
                 "complete and the projected step-scheduler wall clock must "
                 "be >= 3x the silent one).\n");
  }
  return agreement_ok && scale_ok;
}

}  // namespace
}  // namespace pp

int main() { return pp::run() ? 0 : 1; }
