// E11 — engineering micro-benchmarks (google-benchmark).
//
// Throughput of the hot paths: the scheduler, raw protocol transitions, the
// naive versus event-driven epidemic and Beauquier simulators.  These do not
// reproduce a paper claim; they document why the event-driven simulators
// exist (orders of magnitude on sparse graphs) and what step rates the
// experiment binaries sustain.
#include <benchmark/benchmark.h>

#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/id_election.h"
#include "core/simulator.h"
#include "dynamics/epidemic.h"
#include "graph/generators.h"
#include "sched/scheduler.h"

namespace pp {
namespace {

void bm_scheduler_next(benchmark::State& state) {
  const graph g = make_clique(static_cast<node_id>(state.range(0)));
  edge_scheduler sched(g, rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_scheduler_next)->Arg(64)->Arg(1024);

void bm_bq_interact(benchmark::State& state) {
  bq_state a{true, bq_token::black};
  bq_state b{false, bq_token::white};
  for (auto _ : state) {
    bq_interact(a, b);
    benchmark::DoNotOptimize(a);
    a.candidate = true;
    a.token = bq_token::black;
    b.token = bq_token::white;
    b.candidate = false;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_bq_interact);

void bm_fast_interact(benchmark::State& state) {
  fast_params p;
  p.h = 6;
  p.level_threshold = 14;
  p.max_level = 56;
  const fast_protocol proto(p);
  auto a = proto.initial_state(0);
  auto b = proto.initial_state(1);
  for (auto _ : state) {
    proto.interact(a, b);
    benchmark::DoNotOptimize(a);
    if (a.in_backup) {
      a = proto.initial_state(0);
      b = proto.initial_state(1);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_fast_interact);

void bm_id_interact(benchmark::State& state) {
  const id_protocol proto(24);
  auto a = proto.initial_state(0);
  auto b = proto.initial_state(1);
  for (auto _ : state) {
    proto.interact(a, b);
    benchmark::DoNotOptimize(a);
    if (a.id >= proto.id_threshold() && b.id >= proto.id_threshold()) {
      a = proto.initial_state(0);
      b = proto.initial_state(1);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_id_interact);

void bm_broadcast_naive(benchmark::State& state) {
  const graph g = make_cycle(static_cast<node_id>(state.range(0)));
  std::uint64_t trial = 0;
  rng seed(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_broadcast_naive(g, 0, seed.fork(trial++)).completion_step);
  }
}
BENCHMARK(bm_broadcast_naive)->Arg(128)->Unit(benchmark::kMicrosecond);

void bm_broadcast_event_driven(benchmark::State& state) {
  const graph g = make_cycle(static_cast<node_id>(state.range(0)));
  std::uint64_t trial = 0;
  rng seed(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_broadcast(g, 0, seed.fork(trial++)).completion_step);
  }
}
BENCHMARK(bm_broadcast_event_driven)->Arg(128)->Arg(4096)->Unit(benchmark::kMicrosecond);

void bm_beauquier_naive(benchmark::State& state) {
  const graph g = make_cycle(static_cast<node_id>(state.range(0)));
  const beauquier_protocol proto(g.num_nodes());
  std::uint64_t trial = 0;
  rng seed(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_until_stable(proto, g, seed.fork(trial++)).steps);
  }
}
BENCHMARK(bm_beauquier_naive)->Arg(32)->Unit(benchmark::kMicrosecond);

void bm_beauquier_event_driven(benchmark::State& state) {
  const graph g = make_cycle(static_cast<node_id>(state.range(0)));
  const beauquier_protocol proto(g.num_nodes());
  std::uint64_t trial = 0;
  rng seed(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_beauquier_event_driven(proto, g, seed.fork(trial++), UINT64_MAX).steps);
  }
}
BENCHMARK(bm_beauquier_event_driven)->Arg(32)->Arg(256)->Unit(benchmark::kMicrosecond);

void bm_make_random_regular(benchmark::State& state) {
  rng gen(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_random_regular(static_cast<node_id>(state.range(0)), 8, gen).num_edges());
  }
}
BENCHMARK(bm_make_random_regular)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pp

BENCHMARK_MAIN();
