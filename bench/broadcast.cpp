// E2 — Theorem 6, Lemmas 8/10/11/12: bounds on the broadcast time B(G).
//
// For every family and a sweep of sizes, measures B(G) and compares it with:
//   * the Lemma 8 upper bound  m·max{6·ln n, D} + 2,
//   * the Lemma 12 lower bound (m/Δ)·ln(n-1),
//   * the family's Θ-shape (flat measured/shape ratio = reproduced claim),
// and fits the log-log growth exponent of B(G) per family.
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "graph/metrics.h"
#include "support/fit.h"

namespace pp {
namespace {

void run() {
  bench::banner("E2", "Theorem 6 + Lemmas 8/11/12 (broadcast time bounds)",
                "lower (m/Δ)·ln(n-1)  <=  measured B(G)  <=  upper m·max{6 ln n, D}+2;\n"
                "measured/shape flat in n per family.");

  const int trials = bench::scaled(60);
  text_table table({"family", "n", "m", "D", "B measured", "lower bnd",
                    "upper bnd", "shape", "B/shape"});

  rng seed(20220206);
  std::uint64_t stream = 0;
  for (const auto& family : standard_families()) {
    std::vector<double> sizes;
    std::vector<double> values;
    for (const node_id n : {32, 64, 128, 256}) {
      rng make_gen = seed.fork(stream++);
      const graph g = family.make(n, make_gen);
      const double nn = static_cast<double>(g.num_nodes());
      const double m = static_cast<double>(g.num_edges());
      const double d = diameter(g);

      const auto est = estimate_worst_case_broadcast_time(g, trials, 10,
                                                          seed.fork(stream++));
      const double lower = m / g.max_degree() * std::log(nn - 1.0);
      const double upper = m * std::max(6.0 * std::log(nn), d) + 2.0;
      const double shape = family.broadcast_shape(g);

      sizes.push_back(nn);
      values.push_back(est.value);
      table.add_row({family.name, format_number(nn), format_number(m),
                     format_number(d), format_number(est.value),
                     format_number(lower), format_number(upper),
                     format_number(shape), format_number(est.value / shape, 3)});
    }
    const auto fit = fit_loglog(sizes, values);
    table.add_row({family.name + " fit", "", "", "",
                   "slope " + format_number(fit.slope, 3), "", "",
                   "R2 " + format_number(fit.r_squared, 3), ""});
  }

  bench::print_table(table);
  std::printf(
      "Expected slopes: clique/star/er_dense/rr8 ~ 1.1-1.3 (n log n),\n"
      "cycle ~ 2 (n² = mD), torus ~ 1.5 (n^1.5).  Every measured B must sit\n"
      "between its lower and upper bound columns.\n");
}

}  // namespace
}  // namespace pp

int main() {
  pp::run();
  return 0;
}
