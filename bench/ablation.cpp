// E14 — ablation of the fast protocol's design constants (DESIGN.md §4).
//
// Theorem 24 fixes h = 8 + ⌈log₂(BΔ/m)⌉ so that a maximum-degree node's
// streak clock ticks no faster than ~Θ(B(G)) — slow enough that level
// broadcasts outrun level climbs and the union bounds go through.  This
// bench sweeps the streak offset (0, 1, 2, 4, 8=paper) and the backup
// multiplier α and reports, per setting, the stabilization time and how
// often the run had to fall through to the constant-state backup (the
// fast-path failure probability the constants control).  It makes the
// calibration trade-off measurable: small offsets are fast but lean on the
// backup; the paper's offset never does, at ~2^6x the waiting cost.
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "core/fast_election.h"
#include "graph/generators.h"
#include "sched/scheduler.h"

namespace pp {
namespace {

struct ablation_outcome {
  double mean_steps = 0.0;
  double backup_fraction = 0.0;  // runs in which any node reached α·L
};

ablation_outcome run_setting(const graph& g, const fast_params& params,
                             int trials, rng seed) {
  const fast_protocol proto(params);
  ablation_outcome out;
  for (int t = 0; t < trials; ++t) {
    const node_id n = g.num_nodes();
    std::vector<fast_protocol::state_type> config(static_cast<std::size_t>(n));
    for (node_id v = 0; v < n; ++v) {
      config[static_cast<std::size_t>(v)] = proto.initial_state(v);
    }
    fast_protocol::tracker_type tracker(proto, g, config);
    edge_scheduler sched(g, seed.fork(t));
    bool used_backup = false;
    while (!tracker.is_stable()) {
      const interaction it = sched.next();
      auto& a = config[static_cast<std::size_t>(it.initiator)];
      auto& b = config[static_cast<std::size_t>(it.responder)];
      const auto oa = a;
      const auto ob = b;
      proto.interact(a, b);
      tracker.on_interaction(proto, it.initiator, it.responder, oa, ob, a, b);
      if (!used_backup && (a.in_backup || b.in_backup)) used_backup = true;
    }
    out.mean_steps += static_cast<double>(sched.steps());
    if (used_backup) out.backup_fraction += 1.0;
  }
  out.mean_steps /= trials;
  out.backup_fraction /= trials;
  return out;
}

void sweep_offset(const graph& g, const std::string& name, double b, rng seed) {
  const int trials = bench::scaled(10);
  text_table table({"graph", "h offset", "h", "alpha", "mean steps", "/B lg n",
                    "backup used"});
  const double lg = std::log2(static_cast<double>(g.num_nodes()));
  std::uint64_t stream = 0;
  for (const int offset : {-8, 0, 1, 2, 4, 8}) {  // -8 clamps to h = 1
    fast_params p = fast_params::practical(g, b);
    const int base_h = p.h - 2;  // practical() bakes in offset 2
    p.h = std::max(1, base_h + offset);
    const auto out = run_setting(g, p, trials, seed.fork(stream++));
    table.add_row({name, format_number(offset), format_number(p.h), "4",
                   format_number(out.mean_steps),
                   format_number(out.mean_steps / (b * lg), 3),
                   format_number(100.0 * out.backup_fraction, 3) + "%"});
  }
  // α ablation at the calibrated offset.
  for (const int alpha : {2, 8}) {
    fast_params p = fast_params::practical(g, b);
    p.max_level = alpha * p.level_threshold;
    const auto out = run_setting(g, p, trials, seed.fork(stream++));
    table.add_row({name, "2", format_number(p.h), format_number(alpha),
                   format_number(out.mean_steps),
                   format_number(out.mean_steps / (b * lg), 3),
                   format_number(100.0 * out.backup_fraction, 3) + "%"});
  }
  // Degenerate levels (L = 1, α·L = 2): the tournament cannot separate
  // candidates, so nearly every run crosses into the backup — demonstrating
  // that the backup column is live and the hand-off works.
  {
    fast_params p;
    p.h = 1;
    p.level_threshold = 1;
    p.max_level = 2;
    const auto out = run_setting(g, p, trials, seed.fork(stream++));
    table.add_row({name, "(L=1)", "1", "2", format_number(out.mean_steps),
                   format_number(out.mean_steps / (b * lg), 3),
                   format_number(100.0 * out.backup_fraction, 3) + "%"});
  }
  bench::print_table(table);
}

void run() {
  bench::banner("E14", "ablation: Theorem 24 constants (h offset, α)",
                "larger h: slower clocks, fewer backup fall-throughs, more\n"
                "waiting-phase steps; the calibrated offset 2 balances both.");
  rng seed(19);
  {
    const graph g = make_clique(128);
    const double b = estimate_broadcast_time(g, 0, bench::scaled(40), seed.fork(0));
    sweep_offset(g, "clique-128", b, seed.fork(1));
  }
  {
    const graph g = make_grid_2d(10, 10, true);
    const double b = estimate_broadcast_time(g, 0, bench::scaled(40), seed.fork(2));
    sweep_offset(g, "torus-100", b, seed.fork(3));
  }
  std::printf(
      "Reading: steps grow ~2^offset through the waiting phase while the\n"
      "fast path succeeds at every offset — even h = 1 keeps the failure\n"
      "probability below measurement at n ~ 100, showing how much slack the\n"
      "paper's offset-8 union bounds leave; only the degenerate (L=1) row\n"
      "forces the backup, confirming the hand-off path is exercised.\n"
      "Offset 2 is the calibrated default used by the other benches (same\n"
      "asymptotic shape — see DESIGN.md §4).\n");
}

}  // namespace
}  // namespace pp

int main() {
  pp::run();
  return 0;
}
