// E7 — Theorem 16 and Lemmas 17/18/19: the constant-state protocol through
// random-walk quantities.
//
// Per family: exact worst-case classic hitting time H(G) (linear solve),
// sampled population-model hitting time H_P and meeting time M, and the
// measured 6-state stabilization time.  The paper's chain of bounds —
// H_P <= 27·n·H (Lemma 17), M <= 2·H_P (Lemma 18), stabilization
// O(H·n·log n) (Theorem 16) — shows up as every ratio column staying <= 1
// (or O(1) for the last).
#include <cmath>

#include "analysis/experiment.h"
#include "bench_common.h"
#include "dynamics/random_walk.h"
#include "graph/generators.h"

namespace pp {
namespace {

void run() {
  bench::banner("E7", "Theorem 16 + Lemmas 17/18 (hitting/meeting times)",
                "H_P/27nH <= 1;  M/2H_P <= 1;  6-state steps / H·n·lg n = O(1).");

  text_table table({"family", "n", "H exact", "H_P sampled", "H_P/27nH",
                    "M sampled", "M/2H_P", "cover_P", "/54H n lg n",
                    "6-state steps", "/H n lg n"});

  struct family_case {
    std::string name;
    graph g;
  };
  std::vector<family_case> cases;
  rng make_gen(9);
  cases.push_back({"clique", make_clique(48)});
  cases.push_back({"cycle", make_cycle(48)});
  cases.push_back({"star", make_star(48)});
  cases.push_back({"torus", make_grid_2d(7, 7, true)});
  cases.push_back({"lollipop", make_lollipop(24, 24)});
  cases.push_back({"er_dense", make_connected_erdos_renyi(48, 0.5, make_gen)});

  rng seed(10);
  std::uint64_t stream = 0;
  const int pairs = bench::scaled(12);
  const int walk_trials = bench::scaled(30);
  for (auto& fc : cases) {
    const graph& g = fc.g;
    const double n = static_cast<double>(g.num_nodes());
    const double h = exact_worst_case_hitting_time(g);

    const double hp = estimate_worst_case_population_hitting_time(
        g, pairs, walk_trials, seed.fork(stream++));

    // Meeting time of two walks at (approximately) antipodal starts.
    rng meet_gen = seed.fork(stream++);
    double m_total = 0.0;
    const int m_trials = bench::scaled(60);
    for (int t = 0; t < m_trials; ++t) {
      m_total += static_cast<double>(sample_population_meeting_time(
          g, 0, g.num_nodes() / 2, meet_gen));
    }
    const double meeting = m_total / m_trials;

    // Lemma 19: a population-model walk visits every node within
    // O(H·n·log n) steps (explicit 54·H·n·log n envelope from the proof).
    rng cover_gen = seed.fork(stream++);
    double cover_total = 0.0;
    const int cover_trials = bench::scaled(40);
    for (int t = 0; t < cover_trials; ++t) {
      cover_total +=
          static_cast<double>(sample_population_cover_time(g, 0, cover_gen));
    }
    const double cover = cover_total / cover_trials;

    const beauquier_protocol proto(g.num_nodes());
    const auto s = measure_beauquier_event_driven(proto, g, bench::scaled(10),
                                                  seed.fork(stream++), UINT64_MAX);

    const double theorem16_shape = h * n * std::log2(n);
    table.add_row({fc.name, format_number(n), format_number(h), format_number(hp),
                   format_number(hp / (27.0 * n * h), 3), format_number(meeting),
                   format_number(meeting / (2.0 * hp), 3), format_number(cover),
                   format_number(cover / (54.0 * theorem16_shape), 3),
                   format_number(s.steps.mean),
                   format_number(s.steps.mean / theorem16_shape, 3)});
  }

  bench::print_table(table);
  std::printf(
      "Note: H_P/27nH far below 1 shows Lemma 17 is loose but safe; the\n"
      "lollipop row exhibits the Θ(n³) worst case of classic hitting times.\n");
}

}  // namespace
}  // namespace pp

int main() {
  pp::run();
  return 0;
}
