#include "sched/scheduler.h"

#include "support/expects.h"

namespace pp {

edge_scheduler::edge_scheduler(const graph& g, rng gen)
    : graph_(&g), gen_(gen) {
  expects(g.num_edges() >= 1, "edge_scheduler: graph must have at least one edge");
}

interaction edge_scheduler::next() {
  ++steps_;
  const auto m = static_cast<std::uint64_t>(graph_->num_edges());
  // One draw picks both the edge and the orientation: ids in [0, m) keep the
  // stored orientation, ids in [m, 2m) flip it.
  const std::uint64_t pick = gen_.uniform_below(2 * m);
  const edge& e = graph_->edges()[static_cast<std::size_t>(pick % m)];
  if (pick < m) return {e.u, e.v};
  return {e.v, e.u};
}

}  // namespace pp
