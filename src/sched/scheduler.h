// The stochastic scheduler of the population model (§1.1, §2.2).
//
// In every discrete step the scheduler samples an *ordered* pair (u, v)
// uniformly at random among the 2m pairs of nodes joined by an edge; u is the
// initiator, v the responder.  `edge_scheduler` produces exactly this
// distribution.  It also exposes geometric skip-sampling, which lets
// event-driven dynamics advance the step counter past irrelevant
// interactions without changing the distribution of anything observable
// (each step is i.i.d., so the wait for the next "active" step is geometric).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "support/rng.h"

namespace pp {

// An ordered interaction: `initiator` contacted `responder`.
struct interaction {
  node_id initiator = 0;
  node_id responder = 0;
};

class edge_scheduler {
 public:
  // The scheduler borrows `g`, which must outlive it, and owns its generator.
  edge_scheduler(const graph& g, rng gen);

  // Samples the next interaction and advances the step counter by one.
  interaction next();

  // Number of steps sampled so far (the paper's time t).
  std::uint64_t steps() const { return steps_; }

  // Advances the step counter by `k` without sampling (used by event-driven
  // simulations after a geometric skip).
  void skip(std::uint64_t k) { steps_ += k; }

  // Samples Geometric(p): the number of additional steps up to and including
  // the first success of a per-step Bernoulli(p) event.  Does not advance the
  // counter; callers skip() by the returned amount.
  std::uint64_t geometric_steps(double p) { return gen_.geometric(p); }

  rng& generator() { return gen_; }
  const graph& interaction_graph() const { return *graph_; }

 private:
  const graph* graph_;
  rng gen_;
  std::uint64_t steps_ = 0;
};

}  // namespace pp
