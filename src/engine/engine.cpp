#include "engine/engine.h"

namespace pp {

edge_endpoints::edge_endpoints(const graph& g) {
  const auto m = static_cast<std::size_t>(g.num_edges());
  pairs.resize(2 * m);
  for (std::size_t k = 0; k < m; ++k) {
    const edge& e = g.edges()[k];
    pairs[k] = {e.u, e.v};
    pairs[m + k] = {e.v, e.u};
  }
}

}  // namespace pp
