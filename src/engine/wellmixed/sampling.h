// Exact discrete samplers for the well-mixed batch engine.
//
// The multiset simulator (wellmixed.h) advances a clique election B
// interactions at a time.  The composition of a batch — how many of the B
// draws hit each ordered state pair — is a multinomial over the current
// count vector, sampled as a chain of conditional binomials; locating the
// exact stabilization step inside a batch splits that composition with
// multivariate hypergeometric draws.  Both scalar samplers below are exact
// (rejection / sequential without-replacement, no normal approximation), so
// the batch engine's law differs from the per-interaction process only
// through the batching itself, never through the samplers.
//
// The samplers are templated over the generator so the batch engine can
// drive them from the inline block-buffered block_rng (the hot path) while
// tests use pp::rng directly; any type with uniform_below / uniform01 /
// geometric works.
#pragma once

#include <cmath>
#include <cstdint>

#include "support/expects.h"

namespace pp {

namespace sampling_detail {

// Inversion by geometric skips: X counts how many successes fit before the
// waiting times overshoot n trials.  Exact for any n; expected cost n·p + 1
// geometric draws, so it is used only when n·p is small.
template <typename Gen>
std::uint64_t binomial_inversion(Gen& gen, std::uint64_t n, double p) {
  std::uint64_t successes = 0;
  std::uint64_t position = 0;
  while (true) {
    position += gen.geometric(p);
    if (position > n) return successes;
    ++successes;
  }
}

// Hörmann's BTRS transformed rejection (1993), the standard exact sampler
// for the bulk regime.  Requires p in (0, 0.5] and n·p >= 10; the envelope
// constants below are Hörmann's.  The acceptance test is exact (log of the
// true ratio via lgamma), so the output law is exactly Binomial(n, p).
template <typename Gen>
std::uint64_t binomial_btrs(Gen& gen, std::uint64_t n, double p) {
  const double dn = static_cast<double>(n);
  const double np = dn * p;
  const double q = 1.0 - p;
  const double spq = std::sqrt(np * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = np + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double u_rv_r = 0.86 * v_r;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(p / q);
  const double m = std::floor((dn + 1.0) * p);
  const double h = std::lgamma(m + 1.0) + std::lgamma(dn - m + 1.0);

  while (true) {
    double v = gen.uniform01();
    double u;
    if (v <= u_rv_r) {
      // Fast path: inside the central region the candidate is accepted
      // without evaluating the density.
      u = v / v_r - 0.43;
      const double us = 0.5 - std::fabs(u);
      return static_cast<std::uint64_t>(
          std::floor((2.0 * a / us + b) * u + c));
    }
    if (v >= v_r) {
      u = gen.uniform01() - 0.5;
    } else {
      u = v / v_r - 0.93;
      u = (u < 0 ? -0.5 : 0.5) - u;
      v = gen.uniform01() * v_r;
    }
    const double us = 0.5 - std::fabs(u);
    if (us < 0.013 && v > us) continue;  // numerical guard on the tails
    const double k = std::floor((2.0 * a / us + b) * u + c);
    if (k < 0.0 || k > dn) continue;
    const double log_accept = h - std::lgamma(k + 1.0) -
                              std::lgamma(dn - k + 1.0) + (k - m) * lpq;
    v = std::log(v * alpha / (a / (us * us) + b));
    if (v <= log_accept) return static_cast<std::uint64_t>(k);
  }
}

}  // namespace sampling_detail

// Binomial(n, p) draw.  Exact for all n and p in [0, 1]: inversion by
// geometric skips when n·min(p, 1-p) is small, Hörmann's BTRS transformed
// rejection otherwise.  Expected cost O(1) amortised; consumes a variable
// number of draws from `gen`.
template <typename Gen>
std::uint64_t sample_binomial(Gen& gen, std::uint64_t n, double p) {
  expects(p >= 0.0 && p <= 1.0, "sample_binomial: p must be in [0, 1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - sample_binomial(gen, n, 1.0 - p);
  if (static_cast<double>(n) * p < 10.0) {
    return sampling_detail::binomial_inversion(gen, n, p);
  }
  return sampling_detail::binomial_btrs(gen, n, p);
}

// Hypergeometric draw: number of marked items in a uniform `draws`-subset of
// a `total`-item population containing `marked` marked items.  Exact
// (sequential sampling without replacement, using the (marked, draws)
// symmetry), cost O(min(marked, draws)) calls to gen.uniform_below.
template <typename Gen>
std::uint64_t sample_hypergeometric(Gen& gen, std::uint64_t total,
                                    std::uint64_t marked, std::uint64_t draws) {
  expects(marked <= total && draws <= total,
          "sample_hypergeometric: marked and draws must not exceed total");
  // |A ∩ B| for a uniform draws-subset A and fixed marked-subset B is
  // symmetric in the two sizes; walk the smaller one.
  if (marked < draws) {
    const std::uint64_t tmp = marked;
    marked = draws;
    draws = tmp;
  }
  if (draws == 0) return 0;
  if (marked == total) return draws;
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < draws; ++i) {
    if (gen.uniform_below(total - i) < marked - hits) ++hits;
  }
  return hits;
}

}  // namespace pp
