// Well-mixed batch engine: O(|Λ|)-memory multiset simulation on cliques.
//
// On a complete graph the scheduler's pick distribution depends only on the
// *state counts*, never on node identity: an interaction is an ordered pair
// of distinct agents chosen uniformly, so the probability that it realises
// the ordered state pair (a, b) is
//
//     P[a, b] = count[a] · (count[b] − [a = b]) / (n · (n − 1)).
//
// This engine therefore keeps the configuration as a count vector over the
// compiled dense state ids — O(|Λ|) words instead of Θ(n) node states and
// Θ(n²) edge endpoints — and advances time in batches of B interactions:
//
//   1. sample the batch composition (how many of the B draws hit each
//      occupied ordered pair class) as a chain of conditional binomials —
//      a multinomial over the pre-batch counts;
//   2. apply each pair class's compiled transition and census delta in bulk
//      (k identical interactions are four counter updates and one fused
//      k·delta census add);
//   3. if the stability predicate flips across the batch, binary-search the
//      batch for the exact stabilization step: split the composition with
//      multivariate hypergeometric draws (the composition of a uniformly
//      ordered prefix), test the predicate on each half, and recurse.
//
// The per-batch cost is O(occupied pair classes + |Λ|), independent of n, so
// the step rate decouples from the graph size: cliques at n = 10⁷–10⁸ —
// whose edge lists (Θ(n²)) cannot even be materialised — simulate billions
// of interactions per second on one core.
//
// Approximation caveat (why this is opt-in): within one batch every draw is
// taken from the *pre-batch* counts, i.e. the composition is multinomial
// where the exact process is a Markov chain over interactions.  The bias per
// batch scales with how much the composition actually moves, so the default
// leap is *error-controlled*: B starts at n/64 and is retuned after every
// batch toward a moved-mass target of ~n/16, growing to n in quiet phases
// (where nearly every draw is silent and larger leaps cost no accuracy) and
// shrinking back when the composition drifts.  The simulated law stays
// indistinguishable from the exact one at the resolution of our experiments
// (bench/wellmixed.cpp enforces 3σ agreement of mean stabilization steps
// against the per-interaction engine at overlapping n); an explicit
// sim_options::wellmixed_batch pins B fixed.
// A batch whose bulk application would drive a counter negative — possible
// because the multinomial can over-draw a near-empty class — is resampled at
// half the batch size, falling back to an exact per-interaction step at
// B = 1, so counts stay valid unconditionally.  Per-edge seeded equivalence
// with the reference simulator is intentionally NOT preserved (there are no
// edges); determinism for a fixed (seed, batch size) is.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/simulator.h"
#include "engine/block_rng.h"
#include "engine/compiled_protocol.h"
#include "engine/engine.h"  // kEngineClosureBudget, shared with the sweeps
#include "engine/wellmixed/sampling.h"
#include "obs/probe.h"
#include "support/expects.h"
#include "support/rng.h"

namespace pp {

// The initial configuration as a state multiset: (state, multiplicity) pairs
// with multiplicities summing to n.  Building it is the only O(n) work in a
// well-mixed run; sweeps build it once and share it across trials.
template <node_census_protocol P>
using wellmixed_multiset =
    std::vector<std::pair<typename P::state_type, std::uint64_t>>;

template <node_census_protocol P>
wellmixed_multiset<P> initial_multiset(const P& proto, std::uint64_t n) {
  expects(n >= 2, "initial_multiset: population must have at least 2 agents");
  expects(n <= static_cast<std::uint64_t>(std::numeric_limits<node_id>::max()),
          "initial_multiset: population exceeds node_id range");
  wellmixed_multiset<P> classes;
  std::unordered_map<std::uint64_t, std::size_t> index;  // encode(s) -> class
  // Uniform protocols hit the cache on every node after the first.
  std::uint64_t last_code = 0;
  std::size_t last_class = SIZE_MAX;
  for (std::uint64_t v = 0; v < n; ++v) {
    const auto s = proto.initial_state(static_cast<node_id>(v));
    const std::uint64_t code = proto.encode(s);
    if (last_class != SIZE_MAX && code == last_code) {
      ++classes[last_class].second;
      continue;
    }
    auto [it, inserted] = index.emplace(code, classes.size());
    if (inserted) classes.emplace_back(s, 1);
    else ++classes[it->second].second;
    last_code = code;
    last_class = it->second;
  }
  return classes;
}

namespace wellmixed_detail {

// One pair class of a batch composition: k interactions whose pre-batch
// ordered state pair is (a, b).
struct pair_class {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t k = 0;
};

}  // namespace wellmixed_detail

// Runs one well-mixed (clique) election over the state multiset `initial`
// (multiplicities summing to n) on a prepared compiled table.  As with
// run_compiled, a closed() table is never mutated, so one table can be
// shared read-only by concurrent trials.
//
// Result semantics match run_until_stable except where node identity is
// meaningless in a multiset configuration: `leader` is 0 if any agent
// outputs leader in the final configuration (agents on a clique are
// exchangeable) and -1 otherwise, and `distinct_states_used` counts states
// whose multiplicity was ever positive (transient states that would only
// exist inside an unordered batch are not observable and not counted).
// `probe` (obs/probe.h): phase telemetry under the same zero-cost contract
// as run_compiled — with the default null_probe every hook is an
// `if constexpr` dead branch, and an enabled probe never alters the draw
// stream or the result.  Batch semantics: steps are credited batch-wise
// (on_steps), batch retries (the multinomial over-drew) are counted, and
// rng draws are tracked only on the exact per-interaction path (the batch
// samplers' internal draw counts are distribution-dependent).
template <node_census_protocol P, typename Probe = obs::null_probe>
election_result run_wellmixed(compiled_protocol<P>& compiled,
                              const wellmixed_multiset<P>& initial,
                              std::uint64_t n, rng gen,
                              const sim_options& options = {},
                              [[maybe_unused]] Probe* probe = nullptr) {
  using traits = census_traits<P>;
  using wellmixed_detail::pair_class;
  expects(n >= 2, "run_wellmixed: population must have at least 2 agents");
  if constexpr (Probe::enabled) {
    expects(probe != nullptr, "run_wellmixed: enabled probe type needs a probe");
  }
  [[maybe_unused]] const std::uint64_t fills_at_start = compiled.lazy_fills();

  // ---- configuration: counts over interned ids, O(|Λ|) ----
  std::vector<std::uint64_t> counts;
  std::vector<std::uint8_t> seen;  // census marks, aligned with counts
  std::vector<std::int64_t> net;
  std::vector<std::uint8_t> in_touched;
  std::vector<std::uint8_t> in_occupied;
  const bool census = options.state_census;
  auto ensure_sized = [&] {
    if (counts.size() < compiled.num_states()) {
      counts.resize(compiled.num_states(), 0);
      seen.resize(compiled.num_states(), 0);
      net.resize(compiled.num_states(), 0);
      in_touched.resize(compiled.num_states(), 0);
      in_occupied.resize(compiled.num_states(), 0);
    }
  };

  std::int64_t totals[kMaxCensusCounters] = {};
  {
    std::uint64_t mass = 0;
    for (const auto& [state, k] : initial) {
      const auto id = compiled.intern(state);
      ensure_sized();
      counts[id] += k;
      seen[id] = 1;
      mass += k;
      const auto& c = compiled.contribution(id);
      for (int i = 0; i < traits::kCounters; ++i) {
        totals[i] += static_cast<std::int64_t>(k) * c[static_cast<std::size_t>(i)];
      }
    }
    expects(mass == n, "run_wellmixed: initial multiplicities must sum to n");
  }

  // Batch size: the knob is clamped to [1, n] — a leap past n interactions
  // makes no sense for the approximation (and the pick-count bookkeeping
  // assumes B <= n <= 2^31 so products with counts stay in u64 and per-cell
  // pick counts fit u32).
  //
  // With the knob at 0 the leap is *error-controlled* rather than fixed:
  // the within-batch bias comes from sampling every draw against the
  // pre-batch counts, so it scales with how much the composition moves per
  // batch, not with B itself.  The controller targets a moved mass (Σ|net
  // per-state change|) of ~n/16 per batch: after each applied batch B is
  // rescaled by target/moved, clamped to a factor-2 step and [1, n].  In
  // fully active phases this recovers the old conservative B ≈ n/64; in
  // quiet phases (waiting-phase elections, where nearly every interaction
  // is silent) B grows to n and the engine advances time analytically —
  // the same "skip the quiet phase" shape as the silent-edge scheduler.
  // The controller is a deterministic function of the sampled trajectory,
  // so fixed-seed determinism is preserved; an explicit knob pins B fixed
  // (the tests' determinism/contract cases rely on that).
  const std::uint64_t auto_batch = n / 64 > 0 ? n / 64 : 1;
  const bool adaptive = options.wellmixed_batch == 0;
  const std::uint64_t requested =
      options.wellmixed_batch > 0 ? options.wellmixed_batch : auto_batch;
  const std::uint64_t batch_size = requested < n ? requested : n;
  std::uint64_t adaptive_batch = batch_size;
  const std::uint64_t moved_target = n / 16 > 0 ? n / 16 : 1;

  // All batch randomness flows through the block-buffered generator: one
  // rng::fill call per 1024 raw words and inline Lemire reduction, instead
  // of a non-inlined rng call per draw.
  block_rng draw(gen);

  // The compiled flat table spans *all* interned states (capacity² entries);
  // at well-mixed scales |Λ| runs to thousands, so that table is hundreds of
  // megabytes and every transition lookup is a cache miss.  The batch loop
  // only touches the occupied-pair working set (a few thousand pairs at a
  // time), so a small direct-mapped cache in front of the table keeps hot
  // lookups in L2; collisions simply evict (it is a cache, not a map).
  struct cached_pair {
    std::uint64_t key;
    typename compiled_protocol<P>::entry e;
  };
  std::vector<cached_pair> pair_cache(std::size_t{1} << 14,
                                      cached_pair{UINT64_MAX, {}});
  auto xition = [&](std::uint32_t a, std::uint32_t b) {
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    cached_pair& c = pair_cache[(key * 0x9e3779b97f4a7c15ull) >> 50];
    if (c.key != key) {
      c.e = compiled.transition(a, b);
      c.key = key;
    }
    return c.e;
  };

  // Scratch reused across batches; all O(|Λ|) or O(occupied classes).
  std::vector<pair_class> classes, prefix, seg, left, right;
  std::vector<std::uint32_t> touched;
  std::int64_t batch_delta[kMaxCensusCounters];
  // Probe only: non-silent steps of the last accumulated composition.
  [[maybe_unused]] std::uint64_t batch_active = 0;

  // Occupied ids (count > 0), maintained incrementally across batches and
  // compacted + sorted by descending count at each batch start, so batch
  // sampling never scans the full id space.  `cum[i]` is the total count of
  // occupied[0..i); the chains below walk the heavy states first and almost
  // always drain before reaching the tail.
  std::vector<std::uint32_t> occupied;
  std::vector<std::uint64_t> cum;
  std::vector<std::uint64_t> ka;  // initiator picks per occupied index
  auto occupy = [&](std::uint32_t id) {
    if (!in_occupied[id]) {
      in_occupied[id] = 1;
      occupied.push_back(id);
    }
  };
  for (std::uint32_t id = 0; id < counts.size(); ++id) {
    if (counts[id] > 0) occupy(id);
  }

  // Accumulates `cls` into the net per-state count change and the census
  // delta.  Returns false if applying the net change would drive a counter
  // negative (the multinomial over-drew a near-empty class).
  auto accumulate_net = [&](const std::vector<pair_class>& cls) {
    for (const auto t : touched) {
      net[t] = 0;
      in_touched[t] = 0;
    }
    touched.clear();
    for (int c = 0; c < traits::kCounters; ++c) batch_delta[c] = 0;
    auto bump = [&](std::uint32_t id, std::int64_t d) {
      if (!in_touched[id]) {
        in_touched[id] = 1;
        touched.push_back(id);
      }
      net[id] += d;
    };
    if constexpr (Probe::enabled) batch_active = 0;
    for (const auto& pc : cls) {
      const auto e = xition(pc.a, pc.b);
      ensure_sized();  // the transition may have interned new states
      const auto k = static_cast<std::int64_t>(pc.k);
      if constexpr (Probe::enabled) {
        if (e.a2 != pc.a || e.b2 != pc.b) batch_active += pc.k;
      }
      bump(pc.a, -k);
      bump(pc.b, -k);
      bump(e.a2, +k);
      bump(e.b2, +k);
      for (int c = 0; c < traits::kCounters; ++c) {
        batch_delta[c] += k * e.delta[static_cast<std::size_t>(c)];
      }
    }
    for (const auto t : touched) {
      if (static_cast<std::int64_t>(counts[t]) + net[t] < 0) return false;
    }
    return true;
  };

  // Applies the accumulated net change; returns the moved mass Σ|net| (the
  // adaptive controller's error signal — zero iff the batch was all-silent).
  auto apply_net = [&] {
    std::uint64_t moved = 0;
    for (const auto t : touched) {
      moved += static_cast<std::uint64_t>(net[t] < 0 ? -net[t] : net[t]);
      counts[t] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(counts[t]) + net[t]);
      if (counts[t] > 0) {
        occupy(t);
        if (census) seen[t] = 1;
      }
    }
    for (int c = 0; c < traits::kCounters; ++c) totals[c] += batch_delta[c];
    return moved;
  };

  // Error-controlled leap update: rescale the next batch toward the moved-
  // mass target, at most doubling/halving per batch and clamped to [1, n].
  // (applied_B <= n <= 2^31 and moved_target <= n, so the product fits u64;
  // pure integer arithmetic keeps the trajectory machine-independent.)
  auto retune_batch = [&](std::uint64_t moved, std::uint64_t applied_B) {
    if (!adaptive) return;
    std::uint64_t next;
    if (moved == 0) {
      next = adaptive_batch * 2;
    } else {
      next = applied_B * moved_target / moved;
      if (next < applied_B / 2) next = applied_B / 2;
      if (next > applied_B * 2) next = applied_B * 2;
    }
    if (next < 1) next = 1;
    if (next > n) next = n;
    adaptive_batch = next;
  };

  // Drops emptied ids, re-sorts the survivors by descending count and
  // rebuilds the prefix sums.  O(occ log occ) per batch.
  auto compact_occupied = [&] {
    std::size_t out = 0;
    for (const auto id : occupied) {
      if (counts[id] > 0) occupied[out++] = id;
      else in_occupied[id] = 0;
    }
    occupied.resize(out);
    std::sort(occupied.begin(), occupied.end(),
              [&](std::uint32_t x, std::uint32_t y) { return counts[x] > counts[y]; });
    cum.resize(occupied.size() + 1);
    cum[0] = 0;
    for (std::size_t i = 0; i < occupied.size(); ++i) {
      cum[i + 1] = cum[i] + counts[occupied[i]];
    }
    ensure(cum[occupied.size()] == n, "run_wellmixed: counts must sum to n");
  };

  // Vose alias tables over a contiguous range of occupied indices: one O(1)
  // categorical draw costs two buffered uniforms and two L1 loads, which is
  // what makes the light-class picks affordable.  Rebuilt per batch in
  // O(range) from the frozen batch-start counts.
  struct alias_table {
    std::vector<double> prob;
    std::vector<std::uint32_t> target;
    std::size_t base = 0;
  };
  alias_table full_alias, tail_alias;
  std::vector<std::uint32_t> alias_small, alias_large;  // build scratch
  auto build_alias = [&](alias_table& t, std::size_t lo, std::size_t hi) {
    const std::size_t k = hi - lo;
    t.base = lo;
    t.prob.assign(k, 1.0);
    t.target.resize(k);
    const double scale =
        static_cast<double>(k) / static_cast<double>(cum[hi] - cum[lo]);
    alias_small.clear();
    alias_large.clear();
    for (std::size_t i = 0; i < k; ++i) {
      t.prob[i] = static_cast<double>(counts[occupied[lo + i]]) * scale;
      t.target[i] = static_cast<std::uint32_t>(i);
      (t.prob[i] < 1.0 ? alias_small : alias_large)
          .push_back(static_cast<std::uint32_t>(i));
    }
    while (!alias_small.empty() && !alias_large.empty()) {
      const auto s = alias_small.back();
      const auto l = alias_large.back();
      alias_small.pop_back();
      t.target[s] = l;
      t.prob[l] -= 1.0 - t.prob[s];
      if (t.prob[l] < 1.0) {
        alias_large.pop_back();
        alias_small.push_back(l);
      }
    }
  };
  auto alias_draw = [&](const alias_table& t) -> std::size_t {
    const std::size_t i =
        static_cast<std::size_t>(draw.uniform_below(t.prob.size()));
    return t.base + (draw.uniform01() < t.prob[i] ? i : t.target[i]);
  };

  // Pick-count matrix over occupied-index pairs: kmat[i * occ + j] is the
  // number of the batch's interactions whose ordered state pair is
  // (occupied[i], occupied[j]).  Chains add in bulk, alias picks increment —
  // no per-pick allocation — and one sweep turns it into pair classes.
  std::vector<std::uint32_t> kmat;

  // A conditional-binomial chain is worth running for a class only while it
  // expects at least this many picks; below that, O(1) alias draws are
  // cheaper.  Chains and individual draws are exact regroupings of the same
  // iid multinomial draws — only the grouping adapts, never the law.
  constexpr double kChainCutoff = 10.0;

  // Samples the composition of the next B interactions from the current
  // counts: initiator-state marginals are a multinomial over counts/n, and
  // responder states within each initiator class follow the conditional
  // leave-one-out weights (count[b] − [b = a])/(n − 1).  Heavy classes
  // (expecting >= kChainCutoff picks) are drawn with conditional binomials;
  // everything else is drawn pick-by-pick through the alias tables, with a
  // proposal b = a re-drawn with probability 1/count[a] (rejection makes the
  // accepted law exactly the leave-one-out distribution).
  auto sample_batch = [&](std::uint64_t B) {
    classes.clear();
    compact_occupied();
    const std::size_t occ = occupied.size();
    // Heavy prefix: initiator chains expect B·count/n picks, so a class is
    // heavy when count·B >= kChainCutoff·n (counts and B are both <= n <=
    // 2^31, so the product fits u64).
    std::size_t heavy = 0;
    while (heavy < occ &&
           counts[occupied[heavy]] * B >=
               static_cast<std::uint64_t>(kChainCutoff) * n) {
      ++heavy;
    }
    build_alias(full_alias, 0, occ);
    if (heavy < occ) build_alias(tail_alias, heavy, occ);
    ka.assign(occ, 0);
    // The matrix is all-zero here: the sweep below clears every cell it
    // emits, so only growth needs a fill — no O(occ²) zeroing per batch.
    if (kmat.size() < occ * occ) kmat.resize(occ * occ, 0);

    // ---- initiator marginals ----
    std::uint64_t rem = B;
    for (std::size_t i = 0; i < heavy && rem > 0; ++i) {
      const std::uint64_t ca = counts[occupied[i]];
      const std::uint64_t mass = n - cum[i];
      if (ca >= mass) {
        ka[i] += rem;
        rem = 0;
        break;
      }
      const std::uint64_t k = sample_binomial(
          draw, rem, static_cast<double>(ca) / static_cast<double>(mass));
      ka[i] += k;
      rem -= k;
    }
    for (; rem > 0; --rem) ++ka[alias_draw(tail_alias)];

    // ---- responders within each initiator class ----
    const std::uint64_t chain_min = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(kChainCutoff), 2 * heavy);
    for (std::size_t ia = 0; ia < occ; ++ia) {
      if (ka[ia] == 0) continue;
      const std::uint32_t a = occupied[ia];
      const std::uint64_t ca = counts[a];
      std::uint64_t rem2 = ka[ia];
      std::uint32_t* const row = kmat.data() + ia * occ;
      if (rem2 >= chain_min) {
        // Heavy prefix by conditional binomials over the leave-one-out
        // weights; one agent of state a is excluded wherever a sits.
        for (std::size_t j = 0; j < heavy && rem2 > 0; ++j) {
          const std::uint64_t mass2 = (n - 1) - (cum[j] - (ia < j ? 1 : 0));
          const std::uint64_t w = counts[occupied[j]] - (j == ia ? 1 : 0);
          if (w >= mass2) {
            row[j] += static_cast<std::uint32_t>(rem2);
            rem2 = 0;
            break;
          }
          const std::uint64_t kab = sample_binomial(
              draw, rem2, static_cast<double>(w) / static_cast<double>(mass2));
          row[j] += static_cast<std::uint32_t>(kab);
          rem2 -= kab;
        }
        // Remainder goes to the tail classes.
        for (; rem2 > 0; --rem2) {
          std::size_t j;
          do {
            j = alias_draw(tail_alias);
          } while (j == ia && draw.uniform_below(ca) == 0);
          ++row[j];
        }
      } else {
        // Light class: every pick through the full-distribution alias.
        for (; rem2 > 0; --rem2) {
          std::size_t j;
          do {
            j = alias_draw(full_alias);
          } while (j == ia && draw.uniform_below(ca) == 0);
          ++row[j];
        }
      }
    }

    // ---- sweep the matrix into pair classes (clearing as it goes) ----
    for (std::size_t ia = 0; ia < occ; ++ia) {
      if (ka[ia] == 0) continue;
      std::uint32_t* const row = kmat.data() + ia * occ;
      for (std::size_t j = 0; j < occ; ++j) {
        if (row[j] > 0) {
          classes.push_back({occupied[ia], occupied[j], row[j]});
          row[j] = 0;
        }
      }
    }
  };

  // One exact per-interaction step (the B = 1 fallback): inverse-CDF walk
  // over the counts for the initiator, then over the leave-one-out counts
  // for the responder.  Never rejects.
  auto single_step = [&] {
    std::uint64_t r = draw.uniform_below(n);
    std::uint32_t a = 0;
    while (r >= counts[a]) r -= counts[a], ++a;
    std::uint64_t r2 = draw.uniform_below(n - 1);
    std::uint32_t b = 0;
    while (true) {
      const std::uint64_t w = counts[b] - (b == a ? 1 : 0);
      if (r2 < w) break;
      r2 -= w;
      ++b;
    }
    const auto e = xition(a, b);
    if constexpr (Probe::enabled) {
      probe->on_draws(2);
      probe->on_step(e.a2 != a || e.b2 != b);
    }
    ensure_sized();
    --counts[a];
    --counts[b];
    ++counts[e.a2];
    ++counts[e.b2];
    occupy(e.a2);
    occupy(e.b2);
    if (census) {
      seen[e.a2] = 1;
      seen[e.b2] = 1;
    }
    for (int c = 0; c < traits::kCounters; ++c) {
      totals[c] += e.delta[static_cast<std::size_t>(c)];
    }
  };

  // Locates the first stable step inside a batch whose endpoint flipped the
  // predicate.  `seg` holds the composition of the still-unsearched segment;
  // a uniformly ordered prefix of t of its K interactions has a multivariate
  // hypergeometric composition, so each bisection level splits every class
  // with one hypergeometric draw.  Precondition: the predicate is false at
  // the segment start and true at its end; stability is absorbing (the
  // trackers' predicates are sound), so the flip point is unique and the
  // bisection is well-defined.  Appends the prefix composition to `prefix`
  // and returns its length.
  auto first_stable_prefix = [&](std::int64_t start[kMaxCensusCounters],
                                 std::uint64_t seg_total) -> std::uint64_t {
    std::uint64_t done = 0;
    while (seg_total > 1) {
      const std::uint64_t left_total = seg_total / 2;
      left.clear();
      right.clear();
      std::uint64_t rem_total = seg_total;
      std::uint64_t rem_left = left_total;
      std::int64_t left_delta[kMaxCensusCounters] = {};
      for (const auto& pc : seg) {
        const std::uint64_t kl =
            sample_hypergeometric(draw, rem_total, pc.k, rem_left);
        rem_total -= pc.k;
        rem_left -= kl;
        if (kl > 0) {
          left.push_back({pc.a, pc.b, kl});
          const auto e = xition(pc.a, pc.b);
          for (int c = 0; c < traits::kCounters; ++c) {
            left_delta[c] += static_cast<std::int64_t>(kl) *
                             e.delta[static_cast<std::size_t>(c)];
          }
        }
        if (pc.k > kl) right.push_back({pc.a, pc.b, pc.k - kl});
      }
      std::int64_t after_left[kMaxCensusCounters];
      for (int c = 0; c < traits::kCounters; ++c) {
        after_left[c] = start[c] + left_delta[c];
      }
      if constexpr (Probe::enabled) probe->on_predicate_evals(1);
      if (traits::stable(after_left)) {
        seg.swap(left);
        seg_total = left_total;
      } else {
        prefix.insert(prefix.end(), left.begin(), left.end());
        for (int c = 0; c < traits::kCounters; ++c) start[c] = after_left[c];
        done += left_total;
        seg.swap(right);
        seg_total -= left_total;
      }
    }
    prefix.insert(prefix.end(), seg.begin(), seg.end());
    return done + 1;
  };

  // Probe-only epilogue per advance: credit the steps and sample the census
  // trajectory at stride crossings (totals are already post-advance here).
  const auto probe_advance = [&]([[maybe_unused]] std::uint64_t applied,
                                 [[maybe_unused]] std::uint64_t active,
                                 [[maybe_unused]] std::uint64_t now) {
    if constexpr (Probe::enabled) {
      if (applied > 0) {
        probe->on_steps(applied, active);
        probe->on_batch();
      }
      if (probe->want_census(now)) {
        probe->on_census(now, totals, traits::kCounters);
      }
    }
  };
  const auto stable_totals = [&] {
    if constexpr (Probe::enabled) probe->on_predicate_evals(1);
    return traits::stable(totals);
  };

  election_result result;
  std::uint64_t steps = 0;
  while (!stable_totals()) {
    if (steps >= options.max_steps) {
      result.steps = steps;
      if (census) {
        for (const auto s : seen) result.distinct_states_used += s;
      }
      if constexpr (Probe::enabled) {
        probe->on_table_fills(compiled.lazy_fills() - fills_at_start);
      }
      return result;
    }
    std::uint64_t B = adaptive ? adaptive_batch : batch_size;
    if (options.max_steps - steps < B) B = options.max_steps - steps;
    while (true) {
      if (B <= 1) {
        single_step();  // records its own on_step/on_draws
        ++steps;
        probe_advance(0, 0, steps);
        // Grow back out of the exact regime so one over-drawn batch does
        // not pin the adaptive leap at per-interaction cost forever.
        if (adaptive && adaptive_batch < n) adaptive_batch *= 2;
        break;
      }
      sample_batch(B);
      if (!accumulate_net(classes)) {
        B /= 2;  // over-drew a near-empty class: retry at half the leap
        // Persist the damping so the next outer batch starts smaller too.
        if (adaptive && adaptive_batch > 1) adaptive_batch /= 2;
        if constexpr (Probe::enabled) probe->on_batch_retry();
        continue;
      }
      std::int64_t after[kMaxCensusCounters];
      for (int c = 0; c < traits::kCounters; ++c) {
        after[c] = totals[c] + batch_delta[c];
      }
      if constexpr (Probe::enabled) probe->on_predicate_evals(1);
      if (!traits::stable(after)) {
        retune_batch(apply_net(), B);
        steps += B;
        probe_advance(B, batch_active, steps);
        break;
      }
      // The predicate flips inside this batch: bisect for the exact step.
      prefix.clear();
      seg = classes;
      std::int64_t start[kMaxCensusCounters];
      for (int c = 0; c < traits::kCounters; ++c) start[c] = totals[c];
      const std::uint64_t t = first_stable_prefix(start, B);
      if (!accumulate_net(prefix)) {
        B /= 2;
        if (adaptive && adaptive_batch > 1) adaptive_batch /= 2;
        if constexpr (Probe::enabled) probe->on_batch_retry();
        continue;
      }
      apply_net();
      steps += t;
      probe_advance(t, batch_active, steps);
      break;
    }
  }

  result.stabilized = true;
  result.steps = steps;
  if (census) {
    for (const auto s : seen) result.distinct_states_used += s;
  }
  for (std::uint32_t id = 0; id < counts.size(); ++id) {
    if (counts[id] > 0 && compiled.output(id) == role::leader) {
      result.leader = 0;  // exchangeable representative; see the contract above
      break;
    }
  }
  if constexpr (Probe::enabled) {
    probe->on_table_fills(compiled.lazy_fills() - fills_at_start);
  }
  return result;
}

// Convenience wrapper: compiles the protocol lazily and runs one well-mixed
// election on a clique of n agents from the protocol's initial states.
template <node_census_protocol P, typename Probe = obs::null_probe>
election_result run_wellmixed(const P& proto, std::uint64_t n, rng gen,
                              const sim_options& options = {},
                              Probe* probe = nullptr) {
  compiled_protocol<P> compiled(proto);
  const auto initial = initial_multiset(proto, n);
  return run_wellmixed(compiled, initial, n, gen, options, probe);
}

// Prepared multi-trial well-mixed sweep: the shared initial multiset plus a
// compiled table closed within the engine budget.  When the closure succeeds
// the table is immutable and every trial shares it (safe across threads and
// forked processes); otherwise each trial compiles its own lazy table.  This
// is the one home of that policy — measure_election_wellmixed, the fleet
// sweeps and popsim's worker mode all run trials through it.
template <node_census_protocol P>
class wellmixed_sweep {
 public:
  wellmixed_sweep(const P& proto, wellmixed_multiset<P> initial, std::uint64_t n)
      : proto_(&proto), initial_(std::move(initial)), n_(n), compiled_(proto) {
    for (const auto& [state, count] : initial_) compiled_.intern(state);
    shared_ = compiled_.close(kEngineClosureBudget);
  }

  wellmixed_sweep(const P& proto, std::uint64_t n)
      : wellmixed_sweep(proto, initial_multiset(proto, n), n) {}

  // One trial.  const because trials of a sweep run concurrently: when
  // shared, the closed table is never mutated; otherwise the trial runs on
  // its own local table.
  election_result run(rng gen, const sim_options& options = {}) const {
    return run(gen, options, static_cast<obs::null_probe*>(nullptr));
  }

  // Probed variant: same trial, same trajectory (the probe only reads).
  template <typename Probe>
  election_result run(rng gen, const sim_options& options, Probe* probe) const {
    if (shared_) {
      return run_wellmixed(compiled_, initial_, n_, gen, options, probe);
    }
    compiled_protocol<P> local(*proto_);
    return run_wellmixed(local, initial_, n_, gen, options, probe);
  }

  const wellmixed_multiset<P>& initial() const { return initial_; }
  std::uint64_t population() const { return n_; }
  // True iff the reachable space closed and the table is shared read-only.
  bool shared() const { return shared_; }
  // The prepared table (closed iff shared()) — what the fleet artifact
  // snapshots and validates.
  const compiled_protocol<P>& compiled() const { return compiled_; }

 private:
  const P* proto_;
  wellmixed_multiset<P> initial_;
  std::uint64_t n_;
  mutable compiled_protocol<P> compiled_;  // immutable once closed (shared)
  bool shared_ = false;
};

}  // namespace pp
