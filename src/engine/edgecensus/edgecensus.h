// Edge-census machinery for the compiled engine.
//
// Counter-shaped protocols reduce their stability predicate to a handful of
// state counts (census_traits); star-style protocols additionally count edge
// *classes* — how many edges currently join two undecided nodes — which
// depends on node identity, not state multiplicities.  This header supplies
// the pieces the engine fuses into its hot loops for such protocols
// (edge_census_protocol<P>, compiled_protocol.h):
//
//   * class_pair_index(a, b)   — flat index of the unordered class pair
//                                (compiled_protocol.h, shared with the traits);
//   * edge_class_census        — the per-run incremental state: one class
//                                byte per node plus kMaxClassPairs int64
//                                counters, maintained in O(deg(v)) per class
//                                flip by walking v's adjacency row;
//   * packed_csr<N>            — the read-only CSR adjacency view those walks
//                                load, at node word width N (u16/u32, matching
//                                packed_endpoints), built once per
//                                tuned_runner and shared across trials;
//   * graph_rows               — the same row interface over a plain graph,
//                                for the lazy u32 path and the tests.
//
// Cost model: a scheduler step whose transition changes no state (the
// overwhelming majority once a star-style protocol has settled) pays nothing
// — the zero-delta fast path of run_compiled/run_packed covers the edge
// census too.  A step that flips a node's class pays O(deg(v)) counter
// updates; on bounded-degree families that is O(1), and every node flips at
// most (kClasses - 1) times over a run of monotone protocols like
// star_protocol, so the total maintenance cost is O(Σ deg) = O(m) per run.
// The stability predicate itself stays O(1): a pure function of the node
// totals and the kMaxClassPairs counters, evaluated only when either moved —
// so it fires on exactly the same scheduler step as the reference tracker.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "engine/compiled_protocol.h"
#include "graph/graph.h"
#include "support/expects.h"

namespace pp {

// Read-only CSR adjacency at node word width N: row offsets (u32 — 2m must
// fit, which any materialisable edge list does) plus the concatenated sorted
// neighbour rows.  Mirrors graph's internal adjacency but at the packed node
// width, so a class-flip walk touches 2 or 4 bytes per neighbour instead
// of 8 (span + int32), and the rows sit in one contiguous array the hardware
// prefetcher streams.
template <typename N>
struct packed_csr {
  explicit packed_csr(const graph& g) {
    const auto n = static_cast<std::size_t>(g.num_nodes());
    const auto two_m = 2 * static_cast<std::uint64_t>(g.num_edges());
    expects(g.num_nodes() == 0 ||
                static_cast<std::uint64_t>(g.num_nodes() - 1) <=
                    static_cast<std::uint64_t>(std::numeric_limits<N>::max()),
            "packed_csr: node ids do not fit the word width");
    expects(two_m <= std::numeric_limits<std::uint32_t>::max(),
            "packed_csr: adjacency exceeds u32 row offsets");
    offsets.reserve(n + 1);
    neighbors.reserve(static_cast<std::size_t>(two_m));
    offsets.push_back(0);
    for (node_id v = 0; v < g.num_nodes(); ++v) {
      for (const node_id w : g.neighbors(v)) {
        neighbors.push_back(static_cast<N>(w));
      }
      offsets.push_back(static_cast<std::uint32_t>(neighbors.size()));
    }
  }

  std::span<const N> row(std::size_t v) const {
    return {neighbors.data() + offsets[v], offsets[v + 1] - offsets[v]};
  }

  std::vector<std::uint32_t> offsets;  // size n + 1
  std::vector<N> neighbors;            // size 2m
  std::size_t bytes() const {
    return offsets.size() * sizeof(std::uint32_t) +
           neighbors.size() * sizeof(N);
  }
};

// Adjacency-row view over a plain graph — the same `row(v)` interface as
// packed_csr, for contexts (lazy u32 engine, property tests) that already
// hold the graph and need no extra arrays.
struct graph_rows {
  const graph* g = nullptr;
  std::span<const node_id> row(std::size_t v) const {
    return g->neighbors(static_cast<node_id>(v));
  }
};

// The incremental edge-class census: cls[v] is node v's current class and
// pairs[class_pair_index(c1, c2)] the number of edges whose endpoint classes
// form the unordered pair {c1, c2} — always exactly the from-scratch recount
// of the current class vector (the invariant tests/test_edgecensus.cpp
// property-tests against random flip sequences).
//
// When an interaction flips both endpoints, callers reclass() them in
// initiator-then-responder order; the first walk sees the responder's old
// class and the second sees the initiator's new one, so the shared edge is
// retagged exactly once — the same settle-u-before-v discipline as
// star_protocol::tracker_type.
class edge_class_census {
 public:
  // O(n + m) from-scratch initialisation: adopt the class vector and count
  // every edge's class pair.
  void reset(std::span<const std::uint8_t> cls, const std::vector<edge>& edges) {
    cls_.assign(cls.begin(), cls.end());
    pairs_ = {};
    for (const edge& e : edges) {
      ++pairs_[static_cast<std::size_t>(
          class_pair_index(cls_[static_cast<std::size_t>(e.u)],
                           cls_[static_cast<std::size_t>(e.v)]))];
    }
  }

  // Moves node v to class c, retagging its incident pair counters in
  // O(deg(v)); returns whether anything moved (false when c is already v's
  // class — the engine skips the stability re-check in that case).
  //
  // Every retag of the walk moves counts between the same two counter rows
  // (old_c, ·) and (c, ·), so rather than 2·deg dependent read-modify-writes
  // on pairs_ (a serialized latency chain that makes a star centre's flip
  // ~7 cycles per neighbour), high-degree flips count neighbours per class
  // into four independent accumulator lanes and apply one bulk update per
  // class — same final counters, ~5× faster on the degree-n star centre.
  template <typename Rows>
  bool reclass(const Rows& rows, std::size_t v, std::uint8_t c) {
    const std::uint8_t old_c = cls_[v];
    if (old_c == c) return false;
    const auto row = rows.row(v);
    const std::size_t deg = row.size();
    if (deg < 16) {
      for (const auto w : row) {
        const std::uint8_t cw = cls_[static_cast<std::size_t>(w)];
        --pairs_[static_cast<std::size_t>(class_pair_index(old_c, cw))];
        ++pairs_[static_cast<std::size_t>(class_pair_index(c, cw))];
      }
    } else {
      std::int64_t cnt[4][kMaxEdgeClasses] = {};
      std::size_t i = 0;
      for (; i + 4 <= deg; i += 4) {
        ++cnt[0][cls_[static_cast<std::size_t>(row[i])]];
        ++cnt[1][cls_[static_cast<std::size_t>(row[i + 1])]];
        ++cnt[2][cls_[static_cast<std::size_t>(row[i + 2])]];
        ++cnt[3][cls_[static_cast<std::size_t>(row[i + 3])]];
      }
      for (; i < deg; ++i) ++cnt[0][cls_[static_cast<std::size_t>(row[i])]];
      for (int cw = 0; cw < kMaxEdgeClasses; ++cw) {
        const std::int64_t k = cnt[0][cw] + cnt[1][cw] + cnt[2][cw] + cnt[3][cw];
        pairs_[static_cast<std::size_t>(class_pair_index(old_c, cw))] -= k;
        pairs_[static_cast<std::size_t>(class_pair_index(c, cw))] += k;
      }
    }
    cls_[v] = c;
    return true;
  }

  // The flat unordered-pair counters, indexed by class_pair_index.
  const std::int64_t* pairs() const { return pairs_.data(); }
  std::span<const std::uint8_t> classes() const { return cls_; }

 private:
  std::vector<std::uint8_t> cls_;
  std::array<std::int64_t, kMaxClassPairs> pairs_{};
};

}  // namespace pp
