// edge_census_traits specialisations for the library's edge-class-shaped
// protocols, mirroring their trackers exactly (same counters, same joint
// predicate) so a compiled run declares stability on precisely the same
// scheduler step as the reference simulator — the property the
// engine/reference seeded-equivalence tests pin down (tests/test_edgecensus.cpp).
//
// As in engine/census.h, every accumulate() contributes 0 or 1 per counter
// per state, so census deltas lie in [-2, 2] and the u8 nibble packing
// applies (re-checked dynamically via deltas_fit_nibble at pack time).
#pragma once

#include <cstdint>

#include "core/star_protocol.h"
#include "engine/compiled_protocol.h"

namespace pp {

// Mirrors star_protocol::tracker_type: exactly one leader and zero
// undecided-undecided edges.  Two classes — undecided (0) and decided (1) —
// make the tracker's undecided-edge count the (0,0) pair counter; leaders
// are the single node counter.  Leaders are never demoted and a decided node
// never becomes undecided, so each node's class flips at most once per run:
// the O(deg) retag walks total O(m) over a whole election.
template <>
struct edge_census_traits<star_protocol> {
  static constexpr int kCounters = 1;
  static constexpr int kClasses = 2;
  static void accumulate(const star_protocol& proto,
                         const star_protocol::state_type& s, std::int64_t* t,
                         std::int64_t sign) {
    if (proto.output(s) == role::leader) t[0] += sign;
  }
  static int class_of(const star_protocol&, const star_protocol::state_type& s) {
    return s == star_protocol::state_type::undecided ? 0 : 1;
  }
  static bool stable(const std::int64_t* t, const std::int64_t* pairs) {
    return t[0] == 1 && pairs[class_pair_index(0, 0)] == 0;
  }
};

static_assert(edge_census_protocol<star_protocol>);
static_assert(compilable_protocol<star_protocol>);
static_assert(!node_census_protocol<star_protocol>);

}  // namespace pp
