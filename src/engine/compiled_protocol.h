// Compiled transition tables for population protocols.
//
// Protocols in this library have small finite state spaces (the fast
// protocol's |Λ| is O(log² n), Theorem 24), so the classic speedup applies:
// intern every reachable state into a dense uint32 id and memoise the pair
// transition (a, b) -> (a', b') in a flat table.  After compilation one
// scheduler step is two array loads, one 12-byte table load and two stores —
// no protocol logic, no branches on state contents.
//
// Each table entry also carries the interaction's effect on a small integer
// census (leaders / tokens / opinion counts, see census_traits below), so the
// per-protocol stability trackers of the reference simulator collapse to
// "add 4 small ints, test a predicate" — and the state census that the
// reference simulator pays an unordered_set probe for becomes a byte-array
// mark on the interned id.
//
// The table is filled lazily: a pair is compiled the first time the scheduler
// produces it, so huge products of *representable* states cost nothing —
// only pairs that actually occur are materialised.  For protocols whose
// reachable space is small, `close()` runs the pairwise reachability closure
// from the initial states and precomputes every entry; a closed table is
// immutable, which lets one compiled_protocol be shared read-only across the
// threads of a parameter sweep.
#pragma once

#include <algorithm>
#include <array>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/protocol.h"
#include "support/expects.h"

namespace pp {

// census_traits<P>: a flat-integer mirror of P::tracker_type.
//
// A specialisation describes the protocol's stability predicate as a pure
// function of a small vector of state counts:
//   * kCounters                 — number of counters (<= kMaxCensusCounters);
//   * accumulate(proto, s, t, sign) — add `sign` times state s's contribution
//                                 to the counter array t (must mirror the
//                                 tracker's add() exactly, so the compiled
//                                 predicate fires on the same step);
//   * stable(t)                 — the tracker's is_stable() over the totals.
template <typename P>
struct census_traits;

inline constexpr int kMaxCensusCounters = 4;

// edge_census_traits<P>: the edge-aware generalisation (engine/edgecensus/).
//
// Some trackers — star_protocol's "no undecided-undecided edge" — count edge
// *classes*, which no flat state-count vector can express.  An edge-census
// specialisation maps every state to one of kClasses small class ids and
// declares stability as a joint predicate over the node-census totals and
// the per-unordered-class-pair edge counters:
//   * kCounters / accumulate    — the node-census mirror, as census_traits;
//   * kClasses                  — edge classes (<= kMaxEdgeClasses);
//   * class_of(proto, s)        — class id of state s in [0, kClasses);
//   * stable(t, pairs)          — is_stable() over the node totals t and the
//                                 edge counters pairs, where pairs[p] counts
//                                 the edges whose endpoint classes form the
//                                 unordered pair with class_pair_index p.
// The engine maintains the pair counters incrementally (O(deg) per class
// flip, engine/edgecensus/edgecensus.h); protocols whose trackers need more
// than state counts plus edge-class counts (id_protocol's hash census) stay
// on the reference simulator.
template <typename P>
struct edge_census_traits;

inline constexpr int kMaxEdgeClasses = 4;
inline constexpr int kMaxClassPairs = kMaxEdgeClasses * (kMaxEdgeClasses + 1) / 2;

// Index of the unordered class pair {a, b} in the flat edge-counter array:
// triangular row-major over lo = min(a, b), so (0,0) is 0 and class pairs of
// a trait with kClasses < kMaxEdgeClasses occupy a stable prefix-independent
// subset (the indexing never depends on the trait's own class count).
constexpr int class_pair_index(int a, int b) {
  const int lo = a < b ? a : b;
  const int hi = a < b ? b : a;
  return lo * (2 * kMaxEdgeClasses - lo + 1) / 2 + (hi - lo);
}

// Counter-shaped protocols: the tracker is a pure predicate on state counts.
template <typename P>
concept node_census_protocol =
    population_protocol<P> &&
    requires(const P proto, const typename P::state_type& s, std::int64_t* t) {
      { census_traits<P>::kCounters } -> std::convertible_to<int>;
      { census_traits<P>::accumulate(proto, s, t, std::int64_t{1}) };
      { census_traits<P>::stable(t) } -> std::same_as<bool>;
    };

// Edge-census protocols: the tracker additionally counts edge classes.
template <typename P>
concept edge_census_protocol =
    population_protocol<P> &&
    requires(const P proto, const typename P::state_type& s, std::int64_t* t) {
      { edge_census_traits<P>::kCounters } -> std::convertible_to<int>;
      { edge_census_traits<P>::kClasses } -> std::convertible_to<int>;
      { edge_census_traits<P>::accumulate(proto, s, t, std::int64_t{1}) };
      { edge_census_traits<P>::class_of(proto, s) } -> std::convertible_to<int>;
      { edge_census_traits<P>::stable(t, t) } -> std::same_as<bool>;
    };

// Anything the engine can compile: either census model works — the node
// counters, contributions and deltas below are resolved through
// census_model_t, so one compiled_protocol serves both.
template <typename P>
concept compilable_protocol = node_census_protocol<P> || edge_census_protocol<P>;

// The trait that supplies P's node counters (kCounters / accumulate): the
// edge-census trait when P declares one, census_traits otherwise.
template <typename P>
using census_model_t =
    std::conditional_t<edge_census_protocol<P>, edge_census_traits<P>,
                       census_traits<P>>;

// kClasses of an edge-census protocol, 0 for counter-shaped ones (usable in
// static_asserts without naming an undefined trait specialisation).
template <typename P>
constexpr int edge_classes_of() {
  if constexpr (edge_census_protocol<P>) {
    return edge_census_traits<P>::kClasses;
  } else {
    return 0;
  }
}

template <compilable_protocol P>
class compiled_protocol {
 public:
  using state_type = typename P::state_type;
  using state_id = std::uint32_t;
  static constexpr state_id kNotCompiled = UINT32_MAX;
  static constexpr int kCounters = census_model_t<P>::kCounters;
  static_assert(kCounters >= 1 && kCounters <= kMaxCensusCounters);
  static_assert(edge_classes_of<P>() <= kMaxEdgeClasses);

  // One compiled transition.  `a2` doubles as the fill sentinel: a real entry
  // can never map the initiator to kNotCompiled.
  struct entry {
    state_id a2 = kNotCompiled;
    state_id b2 = 0;
    // Census change of applying the transition:
    //   contribution(a2) + contribution(b2) - contribution(a) - contribution(b).
    std::array<std::int8_t, kMaxCensusCounters> delta{};
  };
  static_assert(sizeof(entry) == 12);

  // Borrows `proto`, which must outlive the compiled table.
  explicit compiled_protocol(const P& proto) : proto_(&proto) {}

  const P& protocol() const { return *proto_; }

  // Dense id of `s`, interning it on first sight.  On a closed table every
  // reachable state is already present, so this never mutates (and is safe
  // to call concurrently); an unreachable state on a closed table is a
  // contract violation and fails loudly.
  state_id intern(const state_type& s) {
    const auto found = index_.find(proto_->encode(s));
    if (found != index_.end()) return found->second;
    ensure(!closed_, "compiled_protocol: state outside the closed reachable set");
    const auto id = static_cast<state_id>(states_.size());
    index_.emplace(proto_->encode(s), id);
    states_.push_back(s);
    roles_.push_back(proto_->output(s));
    contrib_.push_back(contribution_of(s));
    if constexpr (edge_census_protocol<P>) {
      const int c = edge_census_traits<P>::class_of(*proto_, s);
      ensure(c >= 0 && c < edge_census_traits<P>::kClasses,
             "compiled_protocol: edge class out of the trait's declared range");
      classes_.push_back(static_cast<std::uint8_t>(c));
    }
    if (states_.size() > cap_) grow();
    return id;
  }

  std::size_t num_states() const { return states_.size(); }
  const state_type& decode(state_id id) const {
    return states_[static_cast<std::size_t>(id)];
  }
  role output(state_id id) const { return roles_[static_cast<std::size_t>(id)]; }

  // Per-counter census contribution of one state (mirrors tracker add()).
  const std::array<std::int8_t, kMaxCensusCounters>& contribution(state_id id) const {
    return contrib_[static_cast<std::size_t>(id)];
  }

  // Edge class of an interned state (edge-census protocols only; mirrors
  // edge_census_traits<P>::class_of, computed once at intern time so the hot
  // loop's class lookups are a byte load from a |Λ|-entry table).
  std::uint8_t state_class(state_id id) const
    requires edge_census_protocol<P>
  {
    return classes_[static_cast<std::size_t>(id)];
  }

  // The compiled transition for the ordered pair (a, b), compiling it on
  // first use.  Returned by value: a lazy compile may grow the table and
  // relocate entries.
  entry transition(state_id a, state_id b) {
    const entry e = table_[static_cast<std::size_t>(a) * cap_ + b];
    if (e.a2 != kNotCompiled) [[likely]] return e;
    return compile_pair(a, b);
  }

  // Read-only transition lookup; only valid on a closed table, where every
  // pair is already compiled.
  const entry& closed_transition(state_id a, state_id b) const {
    ensure(closed_, "compiled_protocol: closed_transition on an open table");
    return table_[static_cast<std::size_t>(a) * cap_ + b];
  }

  // Dense id of an already-interned state; never interns (usable through a
  // const reference shared across sweep threads).  An unknown state is a
  // contract violation.
  state_id id_of(const state_type& s) const {
    const auto found = index_.find(proto_->encode(s));
    expects(found != index_.end(), "compiled_protocol: id_of on an unknown state");
    return found->second;
  }

  // True iff every compiled census delta component fits a signed nibble
  // ([-8, 7]) — the precondition for the 4-byte packed_entry<uint8_t> below.
  // All census_traits in this library contribute 0/1 flags per counter, so
  // deltas live in [-2, 2] and this holds; a future trait with weighted
  // contributions degrades to the u16 packing instead of miscompiling.
  // Requires a closed table.
  bool deltas_fit_nibble() const {
    ensure(closed_, "compiled_protocol: deltas_fit_nibble on an open table");
    const std::size_t k = states_.size();
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) {
        const entry& e = table_[a * cap_ + b];
        for (int c = 0; c < kCounters; ++c) {
          const int d = e.delta[static_cast<std::size_t>(c)];
          if (d < -8 || d > 7) return false;
        }
      }
    }
    return true;
  }

  // Resident bytes of the flat transition table (capacity, not just the
  // interned prefix) — the table term of the engine's working set.
  std::size_t table_bytes() const { return cap_ * cap_ * sizeof(entry); }

  // Runs the pairwise reachability closure from the currently interned states
  // and fills every (a, b) entry.  Returns false — leaving the table usable
  // but lazy — if the closure would exceed `max_states`; returns true and
  // freezes the table otherwise.
  bool close(std::size_t max_states) {
    std::size_t done = 0;  // all pairs over ids < done are compiled
    while (done < states_.size()) {
      if (states_.size() > max_states) return false;
      const std::size_t k = states_.size();
      for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < k; ++b) {
          if (a >= done || b >= done) {
            transition(static_cast<state_id>(a), static_cast<state_id>(b));
          }
        }
      }
      done = k;
    }
    closed_ = states_.size() <= max_states;
    return closed_;
  }

  bool closed() const { return closed_; }

  // Lazily compiled pairs so far (monotone; frozen once the table closes).
  // Engine probes (obs/probe.h) difference this across a run to report how
  // much of the run's table was materialised on demand — the cost a closed
  // table amortises away.  Maintained unconditionally: compile_pair is the
  // cold path (each pair compiles once), so the increment is free.
  std::uint64_t lazy_fills() const { return fills_; }

 private:
  std::array<std::int8_t, kMaxCensusCounters> contribution_of(const state_type& s) const {
    std::int64_t t[kMaxCensusCounters] = {};
    census_model_t<P>::accumulate(*proto_, s, t, +1);
    std::array<std::int8_t, kMaxCensusCounters> c{};
    for (int i = 0; i < kCounters; ++i) c[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(t[i]);
    return c;
  }

  entry compile_pair(state_id a, state_id b) {
    state_type sa = decode(a);
    state_type sb = decode(b);
    proto_->interact(sa, sb);
    entry e;
    e.a2 = intern(sa);  // may grow the table; index (a, b) is recomputed below
    e.b2 = intern(sb);
    for (int c = 0; c < kCounters; ++c) {
      const auto i = static_cast<std::size_t>(c);
      e.delta[i] = static_cast<std::int8_t>(contrib_[e.a2][i] + contrib_[e.b2][i] -
                                            contrib_[a][i] - contrib_[b][i]);
    }
    table_[static_cast<std::size_t>(a) * cap_ + b] = e;
    ++fills_;
    return e;
  }

  // Doubles the id capacity and re-lays the flat table out at the new pitch.
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 64 : cap_ * 2;
    std::vector<entry> new_table(new_cap * new_cap);
    const std::size_t old = std::min(states_.size() - 1, cap_);
    for (std::size_t a = 0; a < old; ++a) {
      for (std::size_t b = 0; b < old; ++b) {
        new_table[a * new_cap + b] = table_[a * cap_ + b];
      }
    }
    cap_ = new_cap;
    table_ = std::move(new_table);
  }

  const P* proto_;
  std::size_t cap_ = 0;
  std::vector<entry> table_;  // cap_² entries, index a * cap_ + b
  std::vector<state_type> states_;
  std::vector<role> roles_;
  std::vector<std::array<std::int8_t, kMaxCensusCounters>> contrib_;
  std::vector<std::uint8_t> classes_;  // edge-census protocols only
  std::unordered_map<std::uint64_t, state_id> index_;  // encode(s) -> id
  std::uint64_t fills_ = 0;  // pairs compiled lazily (see lazy_fills())
  bool closed_ = false;
};

// ----------------------------------------------------------------------------
// Packed transition entries.
//
// Once a table is closed, |Λ| is known, so state ids can be stored at the
// narrowest width that holds them: u8 when |Λ| <= 256, u16 when <= 65536, u32
// otherwise.  The per-step table load shrinks with the ids — 4 bytes (u8,
// census delta re-encoded as four signed nibbles), 8 bytes (u16) or the
// original 12 (u32) — and, more importantly, so does the n-word config array
// the engine's two random touches per step land in.  packed_entry<W> mirrors
// compiled_protocol::entry's semantics exactly: delta_nonzero() is false iff
// the wide entry's delta word is all-zero, and delta_of(c) returns the same
// int8 value, so a packed run declares stability on the same step as the
// wide run (the bit-identity the engine tests pin).

// Primary template: W-wide ids + the wide entry's int8 delta array (8 bytes
// at u16, 12 at u32).  The u8 specialization below compresses further.
template <typename W>
struct packed_entry {
  W a2 = 0;
  W b2 = 0;
  std::array<std::int8_t, kMaxCensusCounters> delta{};

  bool delta_nonzero() const {
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(delta));
    std::memcpy(&bits, delta.data(), sizeof(bits));
    return bits != 0;
  }
  std::int64_t delta_of(int c) const { return delta[static_cast<std::size_t>(c)]; }
};

template <>
struct packed_entry<std::uint8_t> {
  std::uint8_t a2 = 0;
  std::uint8_t b2 = 0;
  // Census delta as four signed nibbles (counter c occupies bits [4c, 4c+4)).
  // A zero word means "no census change" — the same test as the wide entry's
  // delta_bits != 0, because a nibble encodes 0 iff the delta is 0.  Nibble
  // range is checked at pack time via deltas_fit_nibble().
  std::uint16_t delta = 0;

  static bool delta_fits(int d) { return d >= -8 && d <= 7; }
  static std::uint16_t encode_delta(
      const std::array<std::int8_t, kMaxCensusCounters>& d) {
    std::uint16_t word = 0;
    for (int c = 0; c < kMaxCensusCounters; ++c) {
      word = static_cast<std::uint16_t>(
          word | static_cast<std::uint16_t>(
                     (static_cast<std::uint16_t>(d[static_cast<std::size_t>(c)]) & 0xF)
                     << (4 * c)));
    }
    return word;
  }

  bool delta_nonzero() const { return delta != 0; }
  std::int64_t delta_of(int c) const {
    // Place the nibble in a byte's high half, then sign-extend with an
    // arithmetic shift (well-defined since C++20).
    const auto high = static_cast<std::uint8_t>((delta >> (4 * c)) << 4);
    return static_cast<std::int8_t>(high) >> 4;
  }
};
static_assert(sizeof(packed_entry<std::uint8_t>) == 4);
static_assert(sizeof(packed_entry<std::uint16_t>) == 8);
static_assert(sizeof(packed_entry<std::uint32_t>) == 12);

// Immutable snapshot of a closed compiled table at word width W, laid out as
// a dense k×k array of packed entries (k = |Λ|, no capacity padding — the
// rows sit back to back, so the table's cache footprint is exactly
// k²·sizeof(packed_entry<W>)).  Built once per (protocol, width) and shared
// read-only across the trials of a sweep, like the closed table it snapshots.
template <typename W, compilable_protocol P>
class packed_table {
 public:
  explicit packed_table(const compiled_protocol<P>& compiled) {
    expects(compiled.closed(), "packed_table: requires a closed compiled table");
    k_ = compiled.num_states();
    expects(k_ <= static_cast<std::size_t>(std::numeric_limits<W>::max()) + 1,
            "packed_table: state ids do not fit the word width");
    if constexpr (std::is_same_v<W, std::uint8_t>) {
      expects(compiled.deltas_fit_nibble(),
              "packed_table: census deltas do not fit the u8 nibble encoding");
    }
    entries_.resize(k_ * k_);
    using state_id = typename compiled_protocol<P>::state_id;
    for (std::size_t a = 0; a < k_; ++a) {
      for (std::size_t b = 0; b < k_; ++b) {
        const auto& e = compiled.closed_transition(static_cast<state_id>(a),
                                                   static_cast<state_id>(b));
        packed_entry<W>& p = entries_[a * k_ + b];
        p.a2 = static_cast<W>(e.a2);
        p.b2 = static_cast<W>(e.b2);
        if constexpr (std::is_same_v<W, std::uint8_t>) {
          p.delta = packed_entry<std::uint8_t>::encode_delta(e.delta);
        } else {
          p.delta = e.delta;
        }
      }
    }
  }

  packed_entry<W> at(std::size_t a, std::size_t b) const {
    return entries_[a * k_ + b];
  }
  std::size_t num_states() const { return k_; }
  std::size_t bytes() const { return entries_.size() * sizeof(packed_entry<W>); }
  // Raw row-major entries (k² of them, padding-free per the static_asserts
  // above) — the bytes the fleet artifact snapshots and byte-compares.
  std::span<const packed_entry<W>> entries() const { return entries_; }

 private:
  std::size_t k_ = 0;
  std::vector<packed_entry<W>> entries_;
};

}  // namespace pp
