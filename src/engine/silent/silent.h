// Event-driven silent-edge scheduler (the ROADMAP's "skip the quiet phase
// entirely" item; cost model and math in README.md next to this file).
//
// Late in an election almost every scheduler step is *silent*: the drawn
// oriented pair's transition changes neither endpoint.  run_packed's fast
// path makes those steps cheap (one draw, two loads) but still pays for each
// one; on the waiting phase (~2^h·L steps per agent) that is the entire wall
// clock.  run_silent instead maintains the set of active (non-silent)
// oriented pairs incrementally:
//
//   * a pair k ∈ [0, 2m) is active iff its transition would change a config
//     word; activity only depends on the two endpoint words, so it can only
//     change when one of them flips — an O(deg(u) + deg(v)) re-evaluation
//     walk over silent_adjacency per executed step;
//   * the step counter advances over silent runs by one geometric jump
//     (jump.h): with A active pairs of 2m, the silent run before the next
//     active step is Geometric(A/2m), and the active step itself is a
//     uniform draw from the active list;
//   * stability is re-checked exactly when run_packed would re-check it
//     (census delta nonzero, or an edge-census class flip) — silent steps
//     cannot move the predicate, so skipping them analytically leaves the
//     stopping rule's trigger set untouched.
//
// The executed process is distributed identically to run_packed's: the same
// per-configuration law for (next active pair, silent run length), hence the
// same distribution of (steps-to-stabilization, elected leader, census).
// Draw *consumption* differs (one uniform01 + one pick per active step
// instead of one pick per step), so equality is statistical — the 3σ
// contract of the wellmixed/RCM precedent (tests/test_silent.cpp,
// bench/silent.cpp) — not per-seed.
//
// If the active set empties while the predicate is false the configuration
// can never change again: the run jumps straight to max_steps and reports
// unstabilized, which is the reference engine's t → max_steps behaviour
// delivered in O(1).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/simulator.h"
#include "engine/block_rng.h"
#include "engine/census.h"
#include "engine/compiled_protocol.h"
#include "engine/edgecensus/census.h"
#include "engine/edgecensus/edgecensus.h"
#include "engine/silent/jump.h"
#include "graph/graph.h"
#include "obs/probe.h"
#include "support/expects.h"

// This header is included by engine/engine.h (after the packed_endpoints /
// packed_start / elected_leader definitions it builds on, and before the
// tuned_runner that dispatches into it).  Include "engine/engine.h" to use
// run_silent.

namespace pp {

// Incidence view for the activity re-evaluation walks: for every node, the
// indices of its incident edges (row v lists each edge exactly once; both
// oriented pairs j and j + m of edge j are re-evaluated when either endpoint
// flips, so no orientation flag is stored).  Width-independent — neighbor
// ids come from the packed_endpoints array — and built once per tuned_runner
// (lazily, first silent run), then shared read-only across trials.
struct silent_adjacency {
  explicit silent_adjacency(const graph& g) {
    const auto n = static_cast<std::size_t>(g.num_nodes());
    const auto m = static_cast<std::uint64_t>(g.num_edges());
    expects(2 * m <= std::numeric_limits<std::uint32_t>::max(),
            "silent_adjacency: oriented pair indices exceed u32");
    offsets.assign(n + 1, 0);
    for (const edge& e : g.edges()) {
      ++offsets[static_cast<std::size_t>(e.u) + 1];
      ++offsets[static_cast<std::size_t>(e.v) + 1];
    }
    for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    entries.resize(static_cast<std::size_t>(2 * m));
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    std::uint32_t j = 0;
    for (const edge& e : g.edges()) {
      entries[cursor[static_cast<std::size_t>(e.u)]++] = j;
      entries[cursor[static_cast<std::size_t>(e.v)]++] = j;
      ++j;
    }
  }

  std::span<const std::uint32_t> row(std::size_t v) const {
    return {entries.data() + offsets[v], offsets[v + 1] - offsets[v]};
  }

  std::vector<std::uint32_t> offsets;  // size n + 1
  std::vector<std::uint32_t> entries;  // size 2m, edge indices
  std::size_t bytes() const {
    return offsets.size() * sizeof(std::uint32_t) +
           entries.size() * sizeof(std::uint32_t);
  }
};

// The active oriented-pair set: O(1) membership toggle (swap-with-last
// removal through a position index), uniform draw by index.  Sized for
// 2m oriented pairs.
class active_pair_set {
 public:
  explicit active_pair_set(std::uint64_t two_m)
      : pos_(static_cast<std::size_t>(two_m), kNone) {}

  std::uint64_t size() const { return list_.size(); }
  std::uint32_t at(std::uint64_t i) const {
    return list_[static_cast<std::size_t>(i)];
  }

  void set(std::uint32_t k, bool active) {
    std::uint32_t& p = pos_[k];
    if (active) {
      if (p != kNone) return;
      p = static_cast<std::uint32_t>(list_.size());
      list_.push_back(k);
    } else {
      if (p == kNone) return;
      const std::uint32_t last = list_.back();
      list_[p] = last;
      pos_[last] = p;
      list_.pop_back();
      p = kNone;
    }
  }

 private:
  static constexpr std::uint32_t kNone = UINT32_MAX;
  std::vector<std::uint32_t> list_;
  std::vector<std::uint32_t> pos_;
};

// run_silent: the event-driven counterpart of run_packed over the same
// packed table / endpoint / CSR views plus the silent_adjacency incidence
// rows.  Same signature conventions as run_packed: `adjacency` is required
// for edge-census protocols, `start` (when given) replaces the per-trial
// initial-state computation, `probe` only reads the run.
template <typename W, typename N, compilable_protocol P,
          typename Probe = obs::null_probe>
election_result run_silent(const compiled_protocol<P>& compiled,
                           const packed_table<W, P>& table,
                           const packed_endpoints<N>& edges,
                           const silent_adjacency& adj, const graph& g,
                           rng gen, const sim_options& options = {},
                           const std::vector<node_id>* old_of_new = nullptr,
                           const packed_csr<N>* adjacency = nullptr,
                           const packed_start<W>* start = nullptr,
                           [[maybe_unused]] Probe* probe = nullptr) {
  using traits = census_model_t<P>;
  constexpr bool kEdgeCensus = edge_census_protocol<P>;
  const node_id n = g.num_nodes();
  expects(edges.pairs.size() == static_cast<std::size_t>(g.num_edges()),
          "run_silent: endpoint array does not match the graph");
  expects(g.num_edges() >= 1, "run_silent: graph must have at least one edge");
  expects(table.num_states() == compiled.num_states(),
          "run_silent: packed table does not match the compiled table");
  expects(adj.offsets.size() == static_cast<std::size_t>(n) + 1,
          "run_silent: incidence rows do not match the graph");
  expects(old_of_new == nullptr ||
              old_of_new->size() == static_cast<std::size_t>(n),
          "run_silent: node map does not match the graph");
  if constexpr (kEdgeCensus) {
    expects(adjacency != nullptr &&
                adjacency->offsets.size() == static_cast<std::size_t>(n) + 1,
            "run_silent: edge-census protocols need the graph's CSR adjacency "
            "view");
  }

  std::optional<packed_start<W>> local_start;
  if (start == nullptr) {
    start = &local_start.emplace(make_packed_start<W>(compiled, g, old_of_new));
  }
  expects(start->config.size() == static_cast<std::size_t>(n),
          "run_silent: shared initial state does not match the graph");
  std::vector<W> config = start->config;
  std::int64_t totals[kMaxCensusCounters] = {};
  for (int i = 0; i < traits::kCounters; ++i) {
    totals[i] = start->totals[static_cast<std::size_t>(i)];
  }
  edge_class_census ecensus;
  if constexpr (kEdgeCensus) ecensus = start->ecensus;
  if constexpr (Probe::enabled) {
    expects(probe != nullptr, "run_silent: enabled probe type needs a probe");
  }
  const auto stable_now = [&] {
    if constexpr (Probe::enabled) probe->on_predicate_evals(1);
    if constexpr (kEdgeCensus) {
      return traits::stable(totals, ecensus.pairs());
    } else {
      return traits::stable(totals);
    }
  };

  std::vector<std::uint8_t> seen;
  const bool census = options.state_census;
  if (census) {
    seen.assign(table.num_states(), 0);
    for (const auto id : config) seen[id] = 1;
  }

  const std::uint64_t m = static_cast<std::uint64_t>(edges.pairs.size());
  const std::uint64_t two_m = 2 * m;
  const auto* const pairs = edges.pairs.data();

  // Activity of oriented pair k under the *current* config: k < m is edge k
  // in stored orientation (initiator = a), k >= m is edge k - m flipped.
  const auto pair_active = [&](std::uint64_t k) {
    const bool flip = k >= m;
    const auto pr = pairs[flip ? k - m : k];
    const W ca = config[static_cast<std::size_t>(flip ? pr.b : pr.a)];
    const W cb = config[static_cast<std::size_t>(flip ? pr.a : pr.b)];
    const packed_entry<W> e = table.at(ca, cb);
    return e.a2 != ca || e.b2 != cb;
  };

  active_pair_set active(two_m);
  for (std::uint64_t k = 0; k < two_m; ++k) {
    active.set(static_cast<std::uint32_t>(k), pair_active(k));
  }
  // Re-evaluates both orientations of every edge incident to v.  An edge
  // whose other endpoint also flipped this step gets walked twice; the
  // evaluation reads the current config, so the second pass is a no-op.
  const auto reeval_node = [&](std::size_t v) {
    for (const std::uint32_t j : adj.row(v)) {
      active.set(j, pair_active(j));
      active.set(j + static_cast<std::uint32_t>(m),
                 pair_active(j + static_cast<std::uint64_t>(m)));
    }
  };

  block_rng draw(gen);
  election_result result;
  std::uint64_t steps = 0;
  const auto capped = [&](std::uint64_t at) {
    result.steps = at;
    if (census) {
      for (const auto s : seen) result.distinct_states_used += s;
    }
    return result;
  };

  while (!stable_now()) {
    if (steps >= options.max_steps) return capped(steps);
    const std::uint64_t remaining = options.max_steps - steps;
    const std::uint64_t a = active.size();
    if (a == 0) {
      // No transition can ever fire again; the remaining budget is all
      // silent.  (With the default unbounded budget this is the reference
      // engine's forever-spin, delivered in O(1).)
      if constexpr (Probe::enabled) probe->on_steps(remaining, 0);
      return capped(options.max_steps);
    }
    const std::uint64_t skip = sample_silent_run(
        [&] { return draw.uniform01(); }, a, two_m, remaining);
    if constexpr (Probe::enabled) probe->on_draws(1);
    if (skip >= remaining) {
      if constexpr (Probe::enabled) probe->on_steps(remaining, 0);
      return capped(options.max_steps);
    }
    // The active step after the silent run: uniform over the active list.
    const std::uint32_t k = active.at(draw.uniform_below(a));
    if constexpr (Probe::enabled) probe->on_draws(1);
    const bool flip = k >= m;
    const auto pr = pairs[flip ? k - m : k];
    const auto u = static_cast<std::size_t>(flip ? pr.b : pr.a);
    const auto v = static_cast<std::size_t>(flip ? pr.a : pr.b);
    const W ca = config[u];
    const W cb = config[v];
    const packed_entry<W> e = table.at(ca, cb);
    config[u] = e.a2;
    config[v] = e.b2;
    steps += skip + 1;
    if constexpr (Probe::enabled) probe->on_steps(skip + 1, 1);
    if (census) {
      if (e.a2 != ca) seen[e.a2] = 1;
      if (e.b2 != cb) seen[e.b2] = 1;
    }
    bool moved = e.delta_nonzero();
    if constexpr (kEdgeCensus) {
      if (e.a2 != ca) {
        moved |= ecensus.reclass(*adjacency, u, compiled.state_class(e.a2));
      }
      if (e.b2 != cb) {
        moved |= ecensus.reclass(*adjacency, v, compiled.state_class(e.b2));
      }
    }
    if (e.delta_nonzero()) {
      for (int c = 0; c < traits::kCounters; ++c) {
        totals[c] += e.delta_of(c);
      }
    }
    // Membership re-evaluation after both words are stored; the drawn pair
    // itself is covered by its endpoints' walks.
    if (e.a2 != ca) reeval_node(u);
    if (e.b2 != cb) reeval_node(v);
    if constexpr (Probe::enabled) {
      if (probe->want_census(steps)) {
        probe->on_census(steps, totals, traits::kCounters);
      }
      if (probe->want_active_set(steps)) {
        probe->on_active_set(steps, active.size());
      }
    }
    if (moved && stable_now()) break;
    // Loop condition re-checks stability; `moved == false` steps (pure
    // state swaps) cannot flip the predicate, and the while-condition's
    // extra evaluation keeps the loop structure simple.
  }

  result.stabilized = true;
  result.steps = steps;
  if (census) {
    for (const auto s : seen) result.distinct_states_used += s;
  }
  result.leader = elected_leader_compiled(config, compiled, old_of_new);
  return result;
}

}  // namespace pp
