// Geometric jump sampling over silent scheduler steps.
//
// With A active oriented pairs out of 2m, each per-step scheduler draw is an
// independent Bernoulli(p = A/2m) trial for "hits an active pair".  The
// number of consecutive silent steps before the next active one is therefore
// Geometric(p) on {0, 1, 2, ...}: P(skip = s) = (1 - p)^s · p.  The silent
// scheduler samples that run length in O(1) by inversion —
// floor(log(U) / log(1 - p)) with U ~ Uniform(0, 1] — instead of paying one
// RNG draw plus two config loads per silent step.
//
// (When the active set is frozen between events this is exactly geometric —
// draws are with replacement from the pair set.  The negative-hypergeometric
// shape would arise only for draws *without* replacement, which the uniform
// scheduler never does; see src/engine/silent/README.md.)
//
// Correctness at the boundaries (tests/test_silent.cpp pins each):
//   * active == total: every draw is active, skip is identically 0 (no
//     floating point involved);
//   * active == 0: no draw can ever be active; the run is capped at `cap`
//     (the caller's remaining step budget) — the configuration can never
//     change again, so jumping to the cap is exact;
//   * the inversion overflowing or reaching `cap` returns `cap`: the caller
//     stops at max_steps anyway, and a clamped jump consumes the same one
//     uniform draw.
#pragma once

#include <cmath>
#include <cstdint>

#include "support/expects.h"

namespace pp {

// Samples the number of silent scheduler steps preceding the next active
// one, clamped to `cap`.  `u01` is any callable yielding doubles in [0, 1)
// (block_rng::uniform01, rng::uniform01, or a deterministic stub in tests);
// exactly one value is consumed unless the active/total shortcut fires.
template <typename U01>
std::uint64_t sample_silent_run(U01&& u01, std::uint64_t active,
                                std::uint64_t total, std::uint64_t cap) {
  expects(total >= 1, "sample_silent_run: total pair count must be >= 1");
  expects(active <= total,
          "sample_silent_run: active pairs cannot exceed the total");
  if (active == 0) return cap;
  if (active == total) return 0;
  const double p = static_cast<double>(active) / static_cast<double>(total);
  // U in (0, 1]: log(0) would be -inf, and uniform01 yields [0, 1).
  const double u = 1.0 - u01();
  const double skip = std::floor(std::log(u) / std::log1p(-p));
  // log(1) == -0.0 gives skip == -0.0; anything non-finite or negative means
  // the inversion degenerated, and 0 (an immediate active step) is the
  // distribution's mode — never an overshoot.
  if (!(skip > 0.0)) return 0;
  if (skip >= static_cast<double>(cap)) return cap;
  return static_cast<std::uint64_t>(skip);
}

}  // namespace pp
