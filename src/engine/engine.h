// The batched simulation engine: compiled transition tables + a branch-free
// scheduler fast path.
//
// `run_until_stable_fast` computes exactly the same election_result as the
// reference run_until_stable (same seed ⇒ same steps, leader, stabilized and
// census — tested step-for-step in tests/test_engine.cpp) but executes each
// scheduler step as:
//   * one buffered Lemire draw in [0, 2m) (block_rng — no call, no modulo);
//   * two loads from the doubled endpoint arrays (orientation is part of the
//     index, so there is no flip branch);
//   * one 12-byte compiled-table load and two config stores;
//   * four integer adds onto the census totals and the stability predicate,
//     both skipped entirely on zero-delta steps (the predicate cannot flip
//     when the totals do not move).
// The reference path instead pays two non-inlined calls (scheduler + rng), a
// 64-bit modulo, the full protocol transition logic and four tracker updates
// per step; bench/engine.cpp measures the resulting speedup (≥5× on the
// fast protocol across clique / ring / dense-random graphs).
//
// On top of that lazy u32 path, `run_packed` + `tuned_runner` rebuild the hot
// loop's data layout around cache locality (bench/locality.cpp measures the
// effect; src/engine/README.md documents the layout):
//   * config words packed to the narrowest width holding |Λ| (u8/u16/u32),
//     with correspondingly packed 4/8/12-byte table entries (packed_table);
//   * a single-orientation endpoint array (half the memory of the doubled
//     one; the draw's orientation bit becomes two conditional moves);
//   * a two-level software-prefetch pipeline: endpoint pairs a batch-lag
//     ahead, then the two config words of each upcoming pair;
//   * optional BFS/RCM vertex reordering (graph/reorder.h) so the two config
//     touches of mesh-like families land on nearby cache lines.
// At equal (seed, graph, natural order) a packed run is bit-identical to
// run_compiled at every width — tests/test_engine_packed.cpp pins u8/u16/u32
// against the reference.  Reordered runs execute the identical process on an
// isomorphic graph (initial states and the reported leader ride the
// permutation), so they agree statistically — the wellmixed 3σ contract —
// but not per seed.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <limits>
#include <mutex>
#include <optional>
#include <variant>
#include <vector>

#include "core/simulator.h"
#include "engine/block_rng.h"
#include "engine/census.h"
#include "engine/compiled_protocol.h"
#include "engine/edgecensus/census.h"
#include "engine/edgecensus/edgecensus.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "obs/probe.h"
#include "sched/scheduler.h"
#include "support/expects.h"

namespace pp {

// The doubled edge list as one flat array of ordered pairs: index k < m is
// edge k in its stored orientation, k in [m, 2m) is edge k - m flipped.  A
// scheduler draw in [0, 2m) maps straight to pairs[k] — the same
// pick-to-interaction mapping as edge_scheduler::next, made branch-free (no
// modulo, no orientation flip) and one cache line per step instead of two.
struct edge_endpoints {
  explicit edge_endpoints(const graph& g);

  std::vector<interaction> pairs;  // size 2m
  std::uint64_t doubled() const { return static_cast<std::uint64_t>(pairs.size()); }
};

// Smallest-id node with leader output in `config` — original ids when
// `old_of_new` is given (reordered runs), run-graph ids otherwise.  Shared by
// run_compiled and run_packed so the two epilogues cannot drift apart and
// silently break their bit-identity contract.
template <typename W, typename OutputFn>
node_id elected_leader(const std::vector<W>& config, OutputFn&& output,
                       const std::vector<node_id>* old_of_new) {
  const auto n = static_cast<node_id>(config.size());
  if (old_of_new == nullptr) {
    for (node_id v = 0; v < n; ++v) {
      if (output(config[static_cast<std::size_t>(v)]) == role::leader) return v;
    }
    return -1;
  }
  node_id leader = -1;
  for (node_id v = 0; v < n; ++v) {
    if (output(config[static_cast<std::size_t>(v)]) == role::leader) {
      const node_id original = (*old_of_new)[static_cast<std::size_t>(v)];
      if (leader < 0 || original < leader) leader = original;
    }
  }
  return leader;
}

// elected_leader through the compiled role table, with a SIMD shortcut: at
// u8 word width with exactly one leader-role state id the scan is a memchr
// for that byte — first occurrence == smallest node id with leader output,
// so the result is identical to the generic loop.  This matters for
// one-interaction elections (star graphs), where the O(n) epilogue scan,
// not the run, dominates a trial.
template <typename W, compilable_protocol P>
node_id elected_leader_compiled(const std::vector<W>& config,
                                const compiled_protocol<P>& compiled,
                                const std::vector<node_id>* old_of_new) {
  if constexpr (std::is_same_v<W, std::uint8_t>) {
    if (old_of_new == nullptr) {
      int leader_states = 0;
      std::uint8_t leader_id = 0;
      const auto k = static_cast<std::uint32_t>(compiled.num_states());
      for (std::uint32_t id = 0; id < k; ++id) {
        if (compiled.output(id) == role::leader) {
          ++leader_states;
          leader_id = static_cast<std::uint8_t>(id);
        }
      }
      if (leader_states == 0) return -1;
      if (leader_states == 1) {
        const void* hit = std::memchr(config.data(), leader_id, config.size());
        if (hit == nullptr) return -1;
        return static_cast<node_id>(static_cast<const std::uint8_t*>(hit) -
                                    config.data());
      }
    }
  }
  return elected_leader(
      config, [&](W id) { return compiled.output(id); }, old_of_new);
}

// Runs one election on a prepared compiled table and endpoint arrays.
// `compiled` fills lazily during the run; if it is closed() the run never
// mutates it, so a single closed table (and one edge_endpoints) can be shared
// by concurrent trials of a parameter sweep.
//
// `old_of_new`, when given, maps the run's node ids back to the caller's
// (pre-relabelling) ids: node v starts in initial_state(old_of_new[v]) and
// the reported leader is the smallest *original* id with leader output, so a
// run on a relabelled graph is the exact original process under an
// isomorphism.  nullptr (the default) leaves behaviour — and the PR 2
// bit-identity with the reference simulator — untouched.
//
// `probe` (obs/probe.h) collects phase telemetry when Probe::enabled; with
// the default null_probe every hook is an `if constexpr` dead branch, so the
// instrumented loop compiles to the uninstrumented one.  Probes only read
// the run — they never alter the draw stream, the stopping step or the
// result (the zero-cost/determinism contract bench/obs.cpp and
// tests/test_obs.cpp enforce).
template <compilable_protocol P, typename Probe = obs::null_probe>
election_result run_compiled(compiled_protocol<P>& compiled,
                             const edge_endpoints& edges, const graph& g,
                             rng gen, const sim_options& options = {},
                             const std::vector<node_id>* old_of_new = nullptr,
                             [[maybe_unused]] Probe* probe = nullptr) {
  using traits = census_model_t<P>;
  constexpr bool kEdgeCensus = edge_census_protocol<P>;
  const P& proto = compiled.protocol();
  const node_id n = g.num_nodes();
  expects(edges.doubled() == 2 * static_cast<std::uint64_t>(g.num_edges()),
          "run_compiled: endpoint arrays do not match the graph");
  expects(g.num_edges() >= 1, "run_compiled: graph must have at least one edge");
  expects(old_of_new == nullptr ||
              old_of_new->size() == static_cast<std::size_t>(n),
          "run_compiled: node map does not match the graph");

  std::vector<std::uint32_t> config(static_cast<std::size_t>(n));
  std::int64_t totals[kMaxCensusCounters] = {};
  for (node_id v = 0; v < n; ++v) {
    const node_id src = old_of_new ? (*old_of_new)[static_cast<std::size_t>(v)] : v;
    const auto id = compiled.intern(proto.initial_state(src));
    config[static_cast<std::size_t>(v)] = id;
    const auto& c = compiled.contribution(id);
    for (int i = 0; i < traits::kCounters; ++i) totals[i] += c[static_cast<std::size_t>(i)];
  }

  // Edge-census protocols track a class byte per node and the per-class-pair
  // edge counters alongside the node totals; stability is the traits' joint
  // predicate over both.  Counter-shaped protocols skip all of it (constexpr).
  edge_class_census ecensus;
  const graph_rows rows{&g};
  if constexpr (kEdgeCensus) {
    std::vector<std::uint8_t> cls(static_cast<std::size_t>(n));
    for (node_id v = 0; v < n; ++v) {
      cls[static_cast<std::size_t>(v)] =
          compiled.state_class(config[static_cast<std::size_t>(v)]);
    }
    ecensus.reset(cls, g.edges());
  }
  if constexpr (Probe::enabled) {
    expects(probe != nullptr, "run_compiled: enabled probe type needs a probe");
  }
  [[maybe_unused]] const std::uint64_t fills_at_start = compiled.lazy_fills();
  const auto stable_now = [&] {
    if constexpr (Probe::enabled) probe->on_predicate_evals(1);
    if constexpr (kEdgeCensus) {
      return traits::stable(totals, ecensus.pairs());
    } else {
      return traits::stable(totals);
    }
  };

  // With the census on, distinct states are a byte-mark per interned id:
  // every id ever written into `config` gets marked, which is exactly the
  // set the reference simulator's unordered_set accumulates.
  std::vector<std::uint8_t> seen;
  const bool census = options.state_census;
  auto mark = [&](std::uint32_t id) {
    if (id >= seen.size()) seen.resize(compiled.num_states(), 0);
    seen[id] = 1;
  };
  if (census) {
    for (const auto id : config) mark(id);
  }

  const std::uint64_t two_m = edges.doubled();
  const interaction* const pairs = edges.pairs.data();
  block_rng draw(gen);

  // Picks are generated a batch ahead of their use: the draw stream does not
  // depend on the configuration, so upcoming pair-array lines can be
  // software-prefetched while earlier steps execute, hiding the per-step
  // cache miss on large edge lists.  The draw *order* is unchanged, so runs
  // stay bit-identical to the reference simulator; draws generated past the
  // stopping step are simply discarded (the generator is owned by value).
  constexpr std::size_t kBatch = 256;
  constexpr std::size_t kAhead = 16;
  std::uint64_t picks[kBatch];

  election_result result;
  std::uint64_t steps = 0;
  while (!stable_now()) {
    if (steps >= options.max_steps) {
      result.steps = steps;
      if (census) {
        for (const auto s : seen) result.distinct_states_used += s;
      }
      if constexpr (Probe::enabled) {
        probe->on_table_fills(compiled.lazy_fills() - fills_at_start);
      }
      return result;
    }
    // The max_steps bound is folded into the block length, and the stability
    // predicate is only re-evaluated after a step whose census delta is
    // nonzero — on zero-delta steps (the overwhelming majority on
    // sparse-token protocols) the totals cannot move, so neither the four
    // counter adds nor the predicate run.  Edge-census protocols extend the
    // fast path's trigger to class flips: a step that changes neither the
    // node totals nor any node's class cannot move the pair counters either,
    // so the joint predicate is equally skippable.  Census marks fire only
    // for ids that actually changed: an unchanged id was marked when it was
    // written into `config`.  All of this is observationally identical to
    // the per-step checks (same stopping step, same marks), so seeded
    // equivalence with the reference simulator is preserved.
    const std::uint64_t remaining = options.max_steps - steps;
    const std::size_t len =
        remaining < kBatch ? static_cast<std::size_t>(remaining) : kBatch;
    for (std::size_t i = 0; i < len; ++i) picks[i] = draw.uniform_below(two_m);
    if constexpr (Probe::enabled) probe->on_draws(len);
    // Step/active counts accumulate in locals and flush once per batch: a
    // per-step read-modify-write through the probe pointer is measurable at
    // this loop's step rate, a register add is not (bench/obs.cpp gates the
    // enabled path at <= 10%).
    [[maybe_unused]] const std::uint64_t probe_base = steps;
    [[maybe_unused]] std::uint64_t probe_active = 0;
    for (std::size_t i = 0; i < len; ++i) {
      if (i + kAhead < len) {
        __builtin_prefetch(&pairs[picks[i + kAhead]], /*rw=*/0, /*locality=*/1);
      }
      const interaction it = pairs[picks[i]];
      const auto u = static_cast<std::size_t>(it.initiator);
      const auto v = static_cast<std::size_t>(it.responder);
      const auto ca = config[u];
      const auto cb = config[v];
      const auto e = compiled.transition(ca, cb);
      config[u] = e.a2;
      config[v] = e.b2;
      ++steps;
      if constexpr (Probe::enabled) {
        probe_active += (e.a2 != ca || e.b2 != cb) ? 1u : 0u;
      }
      if (census) {
        if (e.a2 != ca) mark(e.a2);
        if (e.b2 != cb) mark(e.b2);
      }
      std::uint32_t delta_bits;
      static_assert(sizeof(delta_bits) == sizeof(e.delta));
      std::memcpy(&delta_bits, e.delta.data(), sizeof(delta_bits));
      if constexpr (kEdgeCensus) {
        bool moved = delta_bits != 0;
        if (e.a2 != ca) {
          moved |= ecensus.reclass(rows, u, compiled.state_class(e.a2));
        }
        if (e.b2 != cb) {
          moved |= ecensus.reclass(rows, v, compiled.state_class(e.b2));
        }
        if (delta_bits != 0) {
          for (int c = 0; c < traits::kCounters; ++c) {
            totals[c] += e.delta[static_cast<std::size_t>(c)];
          }
        }
        if (moved && stable_now()) break;
      } else {
        if (delta_bits != 0) {
          for (int c = 0; c < traits::kCounters; ++c) {
            totals[c] += e.delta[static_cast<std::size_t>(c)];
          }
          if (stable_now()) break;
        }
      }
      // Sampled after the delta lands, so a sample at step s reports the
      // census *after* s steps; the stabilizing step breaks above and is
      // reported by the result instead.
      if constexpr (Probe::enabled) {
        if (probe->want_census(steps)) {
          probe->on_census(steps, totals, traits::kCounters);
        }
      }
    }
    if constexpr (Probe::enabled) {
      probe->on_steps(steps - probe_base, probe_active);
    }
  }

  result.stabilized = true;
  result.steps = steps;
  if (census) {
    for (const auto s : seen) result.distinct_states_used += s;
  }
  result.leader = elected_leader_compiled(config, compiled, old_of_new);
  if constexpr (Probe::enabled) {
    probe->on_table_fills(compiled.lazy_fills() - fills_at_start);
  }
  return result;
}

// Drop-in fast replacement for run_until_stable on compilable protocols:
// compiles the protocol lazily and runs one election.  Same result as the
// reference simulator for the same seed.
template <compilable_protocol P>
election_result run_until_stable_fast(const P& proto, const graph& g, rng gen,
                                      const sim_options& options = {}) {
  compiled_protocol<P> compiled(proto);
  const edge_endpoints edges(g);
  return run_compiled(compiled, edges, g, gen, options);
}

// ----------------------------------------------------------------------------
// Packed configurations (the cache-locality fast path).

// Single-orientation endpoint array at node word width N (u16 when n fits,
// u32 otherwise).  Each edge is stored once in its canonical u < v
// orientation; run_packed folds the orientation half of the scheduler draw
// k ∈ [0, 2m) into two conditional moves (k >= m swaps the endpoints), which
// halves the randomly-accessed endpoint working set relative to
// edge_endpoints' doubled array — the dominant term on sparse graphs, where
// the pair array is 4×–8× the config array.
template <typename N>
struct packed_endpoints {
  struct pair_type {
    N a;
    N b;
  };

  explicit packed_endpoints(const graph& g) {
    expects(g.num_edges() >= 1,
            "packed_endpoints: graph must have at least one edge");
    expects(static_cast<std::uint64_t>(g.num_nodes() - 1) <=
                static_cast<std::uint64_t>(std::numeric_limits<N>::max()),
            "packed_endpoints: node ids do not fit the word width");
    pairs.reserve(static_cast<std::size_t>(g.num_edges()));
    for (const edge& e : g.edges()) {
      pairs.push_back({static_cast<N>(e.u), static_cast<N>(e.v)});
    }
  }

  std::vector<pair_type> pairs;  // size m, stored (u < v) orientation
  std::size_t bytes() const { return pairs.size() * sizeof(pair_type); }
};

// Sweep-shared initial state for run_packed: the initial config at word
// width W, the census totals it implies and — for edge-census protocols —
// the initial edge-class census.  The initial configuration of a sweep is
// deterministic, so tuned_runner computes this once and every trial's setup
// collapses to a few memcpys instead of n intern lookups plus an O(m) pair
// recount — the term that dominates one-interaction elections like
// star-on-star (bench/star.cpp).
template <typename W>
struct packed_start {
  std::vector<W> config;
  std::array<std::int64_t, kMaxCensusCounters> totals{};
  edge_class_census ecensus;  // empty for counter-shaped protocols
};

// Builds the initial state a run on (compiled, g, old_of_new) starts from.
// The single definition serves tuned_runner's per-sweep precompute AND
// run_packed's no-start fallback, so the two can never drift — the
// "identical by construction" half of the bit-identity contract.  Requires
// every initial state to be interned already (id_of), i.e. a prepared table.
template <typename W, compilable_protocol P>
packed_start<W> make_packed_start(const compiled_protocol<P>& compiled,
                                  const graph& g,
                                  const std::vector<node_id>* old_of_new) {
  using traits = census_model_t<P>;
  const P& proto = compiled.protocol();
  const node_id n = g.num_nodes();
  packed_start<W> s;
  s.config.resize(static_cast<std::size_t>(n));
  for (node_id v = 0; v < n; ++v) {
    const node_id src = old_of_new ? (*old_of_new)[static_cast<std::size_t>(v)] : v;
    const auto id = compiled.id_of(proto.initial_state(src));
    s.config[static_cast<std::size_t>(v)] = static_cast<W>(id);
    const auto& c = compiled.contribution(id);
    for (int i = 0; i < traits::kCounters; ++i) {
      s.totals[static_cast<std::size_t>(i)] += c[static_cast<std::size_t>(i)];
    }
  }
  if constexpr (edge_census_protocol<P>) {
    std::vector<std::uint8_t> cls(s.config.size());
    for (std::size_t v = 0; v < cls.size(); ++v) {
      cls[v] = compiled.state_class(s.config[v]);
    }
    s.ecensus.reset(cls, g.edges());
  }
  return s;
}

// run_packed: the run_compiled loop over a width-packed closed table, packed
// endpoint array and W-word config.  For the same (seed, graph, nullptr map)
// it is bit-identical to run_compiled at every width: the draw stream, the
// pick-to-interaction mapping, the census marks and the stability predicate
// are all unchanged — only the bytes per touch shrink.  Requires the closed
// table the packed_table snapshot was taken from.
//
// Edge-census protocols additionally need `adjacency` — the packed CSR view
// their class-flip walks load (edgecensus/edgecensus.h).  `start`, when
// given, replaces the per-trial initial-state computation with copies of the
// precomputed values (identical by construction, so bit-identity holds
// either way).
template <typename W, typename N, compilable_protocol P,
          typename Probe = obs::null_probe>
election_result run_packed(const compiled_protocol<P>& compiled,
                           const packed_table<W, P>& table,
                           const packed_endpoints<N>& edges, const graph& g,
                           rng gen, const sim_options& options = {},
                           const std::vector<node_id>* old_of_new = nullptr,
                           const packed_csr<N>* adjacency = nullptr,
                           const packed_start<W>* start = nullptr,
                           [[maybe_unused]] Probe* probe = nullptr) {
  using traits = census_model_t<P>;
  constexpr bool kEdgeCensus = edge_census_protocol<P>;
  const node_id n = g.num_nodes();
  expects(edges.pairs.size() == static_cast<std::size_t>(g.num_edges()),
          "run_packed: endpoint array does not match the graph");
  expects(g.num_edges() >= 1, "run_packed: graph must have at least one edge");
  expects(table.num_states() == compiled.num_states(),
          "run_packed: packed table does not match the compiled table");
  expects(old_of_new == nullptr ||
              old_of_new->size() == static_cast<std::size_t>(n),
          "run_packed: node map does not match the graph");
  if constexpr (kEdgeCensus) {
    expects(adjacency != nullptr &&
                adjacency->offsets.size() == static_cast<std::size_t>(n) + 1,
            "run_packed: edge-census protocols need the graph's CSR adjacency "
            "view");
  }

  // Without a caller-provided start, build the identical one locally.
  std::optional<packed_start<W>> local_start;
  if (start == nullptr) {
    start = &local_start.emplace(make_packed_start<W>(compiled, g, old_of_new));
  }
  expects(start->config.size() == static_cast<std::size_t>(n),
          "run_packed: shared initial state does not match the graph");
  std::vector<W> config = start->config;
  std::int64_t totals[kMaxCensusCounters] = {};
  for (int i = 0; i < traits::kCounters; ++i) {
    totals[i] = start->totals[static_cast<std::size_t>(i)];
  }
  edge_class_census ecensus;
  if constexpr (kEdgeCensus) ecensus = start->ecensus;
  if constexpr (Probe::enabled) {
    expects(probe != nullptr, "run_packed: enabled probe type needs a probe");
  }
  const auto stable_now = [&] {
    if constexpr (Probe::enabled) probe->on_predicate_evals(1);
    if constexpr (kEdgeCensus) {
      return traits::stable(totals, ecensus.pairs());
    } else {
      return traits::stable(totals);
    }
  };

  // The table is closed, so the id space is fixed: the census byte-marks can
  // be sized once up front (same marks as run_compiled's lazy resize).
  std::vector<std::uint8_t> seen;
  const bool census = options.state_census;
  if (census) {
    seen.assign(table.num_states(), 0);
    for (const auto id : config) seen[id] = 1;
  }

  const std::uint64_t m = static_cast<std::uint64_t>(edges.pairs.size());
  const std::uint64_t two_m = 2 * m;
  const auto* const pairs = edges.pairs.data();
  block_rng draw(gen);

  // Two-level prefetch pipeline over the precomputed pick batch: the pair
  // line is requested kPairAhead steps early; once it has (likely) arrived —
  // kConfAhead steps out — it is loaded and the two config words it names
  // are requested in turn.  Everything here is loads and hints, so the
  // executed trajectory is untouched; in particular prefetching a config
  // word that an intervening step will overwrite is harmless (the real load
  // at step time sees the stored value).
  constexpr std::size_t kBatch = 256;
  constexpr std::size_t kPairAhead = 16;
  constexpr std::size_t kConfAhead = 8;
  std::uint64_t picks[kBatch];

  election_result result;
  std::uint64_t steps = 0;
  while (!stable_now()) {
    if (steps >= options.max_steps) {
      result.steps = steps;
      if (census) {
        for (const auto s : seen) result.distinct_states_used += s;
      }
      return result;
    }
    const std::uint64_t remaining = options.max_steps - steps;
    const std::size_t len =
        remaining < kBatch ? static_cast<std::size_t>(remaining) : kBatch;
    for (std::size_t i = 0; i < len; ++i) picks[i] = draw.uniform_below(two_m);
    if constexpr (Probe::enabled) probe->on_draws(len);
    // Same batched probe accumulation as run_compiled: locals in registers,
    // one on_steps flush per batch.
    [[maybe_unused]] const std::uint64_t probe_base = steps;
    [[maybe_unused]] std::uint64_t probe_active = 0;
    for (std::size_t i = 0; i < len; ++i) {
      if (i + kPairAhead < len) {
        const std::uint64_t k = picks[i + kPairAhead];
        __builtin_prefetch(&pairs[k >= m ? k - m : k], /*rw=*/0, /*locality=*/1);
      }
      if (i + kConfAhead < len) {
        const std::uint64_t k = picks[i + kConfAhead];
        // Orientation is irrelevant for the hint: both config words are
        // touched either way.
        const auto pr = pairs[k >= m ? k - m : k];
        __builtin_prefetch(&config[pr.a], /*rw=*/1, /*locality=*/1);
        __builtin_prefetch(&config[pr.b], /*rw=*/1, /*locality=*/1);
      }
      const std::uint64_t k = picks[i];
      const bool flip = k >= m;
      const auto pr = pairs[flip ? k - m : k];
      const auto u = static_cast<std::size_t>(flip ? pr.b : pr.a);
      const auto v = static_cast<std::size_t>(flip ? pr.a : pr.b);
      const W ca = config[u];
      const W cb = config[v];
      const packed_entry<W> e = table.at(ca, cb);
      config[u] = e.a2;
      config[v] = e.b2;
      ++steps;
      if constexpr (Probe::enabled) {
        probe_active += (e.a2 != ca || e.b2 != cb) ? 1u : 0u;
      }
      if (census) {
        if (e.a2 != ca) seen[e.a2] = 1;
        if (e.b2 != cb) seen[e.b2] = 1;
      }
      if constexpr (kEdgeCensus) {
        bool moved = e.delta_nonzero();
        if (e.a2 != ca) {
          moved |= ecensus.reclass(*adjacency, u, compiled.state_class(e.a2));
        }
        if (e.b2 != cb) {
          moved |= ecensus.reclass(*adjacency, v, compiled.state_class(e.b2));
        }
        if (e.delta_nonzero()) {
          for (int c = 0; c < traits::kCounters; ++c) {
            totals[c] += e.delta_of(c);
          }
        }
        if (moved && stable_now()) break;
      } else {
        if (e.delta_nonzero()) {
          for (int c = 0; c < traits::kCounters; ++c) {
            totals[c] += e.delta_of(c);
          }
          if (stable_now()) break;
        }
      }
      if constexpr (Probe::enabled) {
        if (probe->want_census(steps)) {
          probe->on_census(steps, totals, traits::kCounters);
        }
      }
    }
    if constexpr (Probe::enabled) {
      probe->on_steps(steps - probe_base, probe_active);
    }
  }

  result.stabilized = true;
  result.steps = steps;
  if (census) {
    for (const auto s : seen) result.distinct_states_used += s;
  }
  result.leader = elected_leader_compiled(config, compiled, old_of_new);
  return result;
}

}  // namespace pp

// The event-driven silent-edge scheduler (run_silent + silent_adjacency)
// builds on the packed views defined above; tuned_runner below dispatches
// into it when sim_options::scheduler == scheduler_kind::silent.
#include "engine/silent/silent.h"  // NOLINT(build/include_order)

namespace pp {

// States the reachable closure may intern before tuned/sweep runners fall
// back to per-trial lazy u32 tables (a closed table of k states is k²
// entries; 2048² packed u16 entries are ~34 MB).
inline constexpr std::size_t kEngineClosureBudget = 2048;

// Data-layout knobs for tuned_runner / measure_election_tuned.
struct engine_tuning {
  // Vertex relabelling applied to the graph before the run (graph/reorder.h).
  // natural preserves per-seed bit-identity with the reference simulator;
  // bfs/rcm trade it for 3σ statistical agreement.
  vertex_order order = vertex_order::natural;
  // Config word width: 0 picks the narrowest width that holds |Λ| (and, for
  // u8, whose census deltas fit the nibble encoding); 8/16/32 force a width
  // and fail loudly if the closed table does not fit it.
  int pack_bits = 0;
};

// tuned_runner resolves the engine data layout once — vertex order, config
// word width, endpoint node width — and then serves any number of runs
// through the branch-free loop instantiated for that layout.  Construction
// does all the heavy setup (reorder + relabel, reachability closure, packed
// table + endpoint snapshots); run() only dispatches on the stored widths,
// so trials of a sweep share every byte of read-only state.  If the
// reachable space exceeds the closure budget the runner degrades to the lazy
// u32 path (packed widths need a closed table) with per-run tables,
// preserving the measure_election_fast fallback semantics.
template <compilable_protocol P>
class tuned_runner {
 public:
  tuned_runner(const P& proto, const graph& g, const engine_tuning& tuning = {},
               std::size_t closure_budget = kEngineClosureBudget)
      : proto_(&proto), tuning_(tuning), original_(&g), compiled_(proto) {
    expects(tuning.pack_bits == 0 || tuning.pack_bits == 8 ||
                tuning.pack_bits == 16 || tuning.pack_bits == 32,
            "tuned_runner: pack_bits must be 0 (auto), 8, 16 or 32");
    if (tuning_.order != vertex_order::natural) {
      const auto perm = order_permutation(g, tuning_.order);
      relabeled_ = g.relabel(perm);
      old_of_new_ = invert_permutation(perm);
    }
    for (node_id v = 0; v < g.num_nodes(); ++v) {
      compiled_.intern(proto.initial_state(v));
    }
    closed_ = compiled_.close(closure_budget);
    if (!closed_) {
      expects(tuning_.pack_bits == 0 || tuning_.pack_bits == 32,
              "tuned_runner: packed widths need a closed table (reachable "
              "space exceeded the closure budget)");
      pack_bits_ = 32;
      // The failed closure left a partially-grown table (tens of MB at the
      // default budget) that run() never reads — every fallback run compiles
      // its own lazy table.  Record its footprint for the accounting, then
      // release it for the runner's lifetime.
      fallback_table_bytes_ = compiled_.table_bytes();
      compiled_ = compiled_protocol<P>(proto);
      fallback_edges_.emplace(run_graph());
      return;
    }
    const std::size_t k = compiled_.num_states();
    if (tuning_.pack_bits == 0) {
      pack_bits_ = (k <= 256 && compiled_.deltas_fit_nibble()) ? 8
                   : k <= 65536                                ? 16
                                                               : 32;
    } else {
      pack_bits_ = tuning_.pack_bits;
    }
    if (static_cast<std::uint64_t>(run_graph().num_nodes()) <= 65536) {
      pairs_.template emplace<packed_endpoints<std::uint16_t>>(run_graph());
      if constexpr (edge_census_protocol<P>) {
        csr_.template emplace<packed_csr<std::uint16_t>>(run_graph());
      }
    } else {
      pairs_.template emplace<packed_endpoints<std::uint32_t>>(run_graph());
      if constexpr (edge_census_protocol<P>) {
        csr_.template emplace<packed_csr<std::uint32_t>>(run_graph());
      }
    }
    switch (pack_bits_) {
      case 8:
        table_.template emplace<packed_table<std::uint8_t, P>>(compiled_);
        build_start<std::uint8_t>();
        break;
      case 16:
        table_.template emplace<packed_table<std::uint16_t, P>>(compiled_);
        build_start<std::uint16_t>();
        break;
      default:
        table_.template emplace<packed_table<std::uint32_t, P>>(compiled_);
        build_start<std::uint32_t>();
        break;
    }
  }

  // One election through the resolved layout.  Thread-safe for concurrent
  // calls: packed state is read-only, and the lazy fallback compiles a local
  // table per call.
  election_result run(rng gen, const sim_options& options = {}) const {
    return run(gen, options, static_cast<obs::null_probe*>(nullptr));
  }

  // Probed variant: same dispatch, same trajectory (the probe only reads).
  template <typename Probe>
  election_result run(rng gen, const sim_options& options, Probe* probe) const {
    const auto* map = old_of_new_.empty() ? nullptr : &old_of_new_;
    if (!closed_) {
      expects(options.scheduler != scheduler_kind::silent,
              "tuned_runner: the silent scheduler needs a closed table "
              "(reachable space exceeded the closure budget)");
      compiled_protocol<P> local(*proto_);
      return run_compiled(local, *fallback_edges_, run_graph(), gen, options,
                          map, probe);
    }
    switch (pack_bits_) {
      case 8: return run_width<std::uint8_t>(gen, options, map, probe);
      case 16: return run_width<std::uint16_t>(gen, options, map, probe);
      default: return run_width<std::uint32_t>(gen, options, map, probe);
    }
  }

  // The graph the hot loop actually runs on (relabelled unless natural).
  const graph& run_graph() const {
    return old_of_new_.empty() ? *original_ : relabeled_;
  }

  vertex_order order() const { return tuning_.order; }
  // Resolved config word width (8/16/32; 32 on the lazy fallback).
  int pack_bits() const { return pack_bits_; }
  // False iff the closure budget was exceeded and runs use lazy u32 tables.
  bool packed() const { return closed_; }
  // The shared closed table; empty on the lazy fallback (each run owns one).
  const compiled_protocol<P>& compiled() const { return compiled_; }
  // Maps run-graph node ids back to original ids; empty for natural order.
  const std::vector<node_id>& old_of_new() const { return old_of_new_; }

  // Resident bytes of the hot loop: config array + transition table +
  // endpoint pairs (the quantities bench/locality.cpp attributes wins to).
  std::size_t working_set_bytes() const {
    const auto n = static_cast<std::size_t>(run_graph().num_nodes());
    std::size_t total = n * static_cast<std::size_t>(pack_bits_ / 8);
    if (!closed_) {
      total += fallback_table_bytes_;
      total += fallback_edges_->pairs.size() * sizeof(interaction);
      return total;
    }
    std::visit(
        [&](const auto& t) {
          if constexpr (!std::is_same_v<std::decay_t<decltype(t)>, std::monostate>) {
            total += t.bytes();
          }
        },
        table_);
    std::visit(
        [&](const auto& e) {
          if constexpr (!std::is_same_v<std::decay_t<decltype(e)>, std::monostate>) {
            total += e.bytes();
          }
        },
        pairs_);
    std::visit(
        [&](const auto& c) {
          if constexpr (!std::is_same_v<std::decay_t<decltype(c)>, std::monostate>) {
            total += c.bytes();
          }
        },
        csr_);
    // Edge-census runs also touch the class byte per node on flip walks.
    if constexpr (edge_census_protocol<P>) {
      total += static_cast<std::size_t>(run_graph().num_nodes());
    }
    return total;
  }

  // Bytes one scheduler step touches: one endpoint pair, one table entry and
  // two config words (each word's load and store hit the same line).
  std::size_t bytes_per_step() const {
    const std::size_t word = static_cast<std::size_t>(pack_bits_ / 8);
    std::size_t pair_bytes = sizeof(interaction);
    std::size_t entry_bytes = sizeof(typename compiled_protocol<P>::entry);
    if (closed_) {
      // Inspect the stored variant rather than re-deriving the constructor's
      // width threshold, so the accounting tracks the layout actually run.
      pair_bytes = std::holds_alternative<packed_endpoints<std::uint16_t>>(pairs_)
                       ? sizeof(typename packed_endpoints<std::uint16_t>::pair_type)
                       : sizeof(typename packed_endpoints<std::uint32_t>::pair_type);
      entry_bytes = pack_bits_ == 8    ? sizeof(packed_entry<std::uint8_t>)
                    : pack_bits_ == 16 ? sizeof(packed_entry<std::uint16_t>)
                                       : sizeof(packed_entry<std::uint32_t>);
    }
    return pair_bytes + entry_bytes + 2 * word;
  }

 private:
  // Precomputes the sweep's shared initial state (config, totals, edge-class
  // census) for the resolved width; run() hands it to every trial.  The
  // construction itself is make_packed_start — the same function run_packed
  // falls back to without a start — so the two cannot drift.
  template <typename W>
  void build_start() {
    start_ = make_packed_start<W>(
        compiled_, run_graph(), old_of_new_.empty() ? nullptr : &old_of_new_);
  }

  template <typename W, typename Probe>
  election_result run_width(rng gen, const sim_options& options,
                            const std::vector<node_id>* map,
                            Probe* probe) const {
    const auto& table = std::get<packed_table<W, P>>(table_);
    const auto& start = std::get<packed_start<W>>(start_);
    const bool silent = options.scheduler == scheduler_kind::silent;
    // get_if yields nullptr while csr_ holds monostate — exactly the
    // counter-shaped protocols, for which run_packed ignores the view.
    if (const auto* e16 =
            std::get_if<packed_endpoints<std::uint16_t>>(&pairs_)) {
      if (silent) {
        return run_silent(compiled_, table, *e16, incidence(), run_graph(),
                          gen, options, map,
                          std::get_if<packed_csr<std::uint16_t>>(&csr_),
                          &start, probe);
      }
      return run_packed(compiled_, table, *e16, run_graph(), gen, options, map,
                        std::get_if<packed_csr<std::uint16_t>>(&csr_), &start,
                        probe);
    }
    if (silent) {
      return run_silent(compiled_, table,
                        std::get<packed_endpoints<std::uint32_t>>(pairs_),
                        incidence(), run_graph(), gen, options, map,
                        std::get_if<packed_csr<std::uint32_t>>(&csr_), &start,
                        probe);
    }
    return run_packed(compiled_, table,
                      std::get<packed_endpoints<std::uint32_t>>(pairs_),
                      run_graph(), gen, options, map,
                      std::get_if<packed_csr<std::uint32_t>>(&csr_), &start,
                      probe);
  }

  // The silent scheduler's incidence rows, built on first use and then
  // shared read-only across trials.  std::call_once makes the lazy build
  // safe for run()'s concurrent-trial contract (the TSan CI job covers
  // this path).
  const silent_adjacency& incidence() const {
    std::call_once(adjacency_once_, [this] {
      silent_adjacency_.emplace(run_graph());
    });
    return *silent_adjacency_;
  }

  const P* proto_;
  engine_tuning tuning_;
  const graph* original_;
  graph relabeled_;                 // only filled when order != natural
  std::vector<node_id> old_of_new_;  // empty for natural order
  compiled_protocol<P> compiled_;
  bool closed_ = false;
  int pack_bits_ = 32;
  std::variant<std::monostate, packed_table<std::uint8_t, P>,
               packed_table<std::uint16_t, P>, packed_table<std::uint32_t, P>>
      table_;
  std::variant<std::monostate, packed_endpoints<std::uint16_t>,
               packed_endpoints<std::uint32_t>>
      pairs_;
  // CSR adjacency for edge-census class walks (monostate otherwise).
  std::variant<std::monostate, packed_csr<std::uint16_t>,
               packed_csr<std::uint32_t>>
      csr_;
  // Shared initial state at the resolved width (monostate on the fallback).
  std::variant<std::monostate, packed_start<std::uint8_t>,
               packed_start<std::uint16_t>, packed_start<std::uint32_t>>
      start_;
  std::optional<edge_endpoints> fallback_edges_;  // lazy fallback only
  std::size_t fallback_table_bytes_ = 0;          // released table's footprint
  // Lazily built silent-scheduler incidence rows (mutable: run() is const
  // and thread-safe; call_once guards the build).
  mutable std::once_flag adjacency_once_;
  mutable std::optional<silent_adjacency> silent_adjacency_;
};

}  // namespace pp
