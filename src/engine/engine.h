// The batched simulation engine: compiled transition tables + a branch-free
// scheduler fast path.
//
// `run_until_stable_fast` computes exactly the same election_result as the
// reference run_until_stable (same seed ⇒ same steps, leader, stabilized and
// census — tested step-for-step in tests/test_engine.cpp) but executes each
// scheduler step as:
//   * one buffered Lemire draw in [0, 2m) (block_rng — no call, no modulo);
//   * two loads from the doubled endpoint arrays (orientation is part of the
//     index, so there is no flip branch);
//   * one 12-byte compiled-table load and two config stores;
//   * four integer adds onto the census totals and the stability predicate,
//     both skipped entirely on zero-delta steps (the predicate cannot flip
//     when the totals do not move).
// The reference path instead pays two non-inlined calls (scheduler + rng), a
// 64-bit modulo, the full protocol transition logic and four tracker updates
// per step; bench/engine.cpp measures the resulting speedup (≥5× on the
// fast protocol across clique / ring / dense-random graphs).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/simulator.h"
#include "engine/block_rng.h"
#include "engine/census.h"
#include "engine/compiled_protocol.h"
#include "graph/graph.h"
#include "sched/scheduler.h"
#include "support/expects.h"

namespace pp {

// The doubled edge list as one flat array of ordered pairs: index k < m is
// edge k in its stored orientation, k in [m, 2m) is edge k - m flipped.  A
// scheduler draw in [0, 2m) maps straight to pairs[k] — the same
// pick-to-interaction mapping as edge_scheduler::next, made branch-free (no
// modulo, no orientation flip) and one cache line per step instead of two.
struct edge_endpoints {
  explicit edge_endpoints(const graph& g);

  std::vector<interaction> pairs;  // size 2m
  std::uint64_t doubled() const { return static_cast<std::uint64_t>(pairs.size()); }
};

// Runs one election on a prepared compiled table and endpoint arrays.
// `compiled` fills lazily during the run; if it is closed() the run never
// mutates it, so a single closed table (and one edge_endpoints) can be shared
// by concurrent trials of a parameter sweep.
template <compilable_protocol P>
election_result run_compiled(compiled_protocol<P>& compiled,
                             const edge_endpoints& edges, const graph& g,
                             rng gen, const sim_options& options = {}) {
  using traits = census_traits<P>;
  const P& proto = compiled.protocol();
  const node_id n = g.num_nodes();
  expects(edges.doubled() == 2 * static_cast<std::uint64_t>(g.num_edges()),
          "run_compiled: endpoint arrays do not match the graph");
  expects(g.num_edges() >= 1, "run_compiled: graph must have at least one edge");

  std::vector<std::uint32_t> config(static_cast<std::size_t>(n));
  std::int64_t totals[kMaxCensusCounters] = {};
  for (node_id v = 0; v < n; ++v) {
    const auto id = compiled.intern(proto.initial_state(v));
    config[static_cast<std::size_t>(v)] = id;
    const auto& c = compiled.contribution(id);
    for (int i = 0; i < traits::kCounters; ++i) totals[i] += c[static_cast<std::size_t>(i)];
  }

  // With the census on, distinct states are a byte-mark per interned id:
  // every id ever written into `config` gets marked, which is exactly the
  // set the reference simulator's unordered_set accumulates.
  std::vector<std::uint8_t> seen;
  const bool census = options.state_census;
  auto mark = [&](std::uint32_t id) {
    if (id >= seen.size()) seen.resize(compiled.num_states(), 0);
    seen[id] = 1;
  };
  if (census) {
    for (const auto id : config) mark(id);
  }

  const std::uint64_t two_m = edges.doubled();
  const interaction* const pairs = edges.pairs.data();
  block_rng draw(gen);

  // Picks are generated a batch ahead of their use: the draw stream does not
  // depend on the configuration, so upcoming pair-array lines can be
  // software-prefetched while earlier steps execute, hiding the per-step
  // cache miss on large edge lists.  The draw *order* is unchanged, so runs
  // stay bit-identical to the reference simulator; draws generated past the
  // stopping step are simply discarded (the generator is owned by value).
  constexpr std::size_t kBatch = 256;
  constexpr std::size_t kAhead = 16;
  std::uint64_t picks[kBatch];

  election_result result;
  std::uint64_t steps = 0;
  while (!traits::stable(totals)) {
    if (steps >= options.max_steps) {
      result.steps = steps;
      if (census) {
        for (const auto s : seen) result.distinct_states_used += s;
      }
      return result;
    }
    // The max_steps bound is folded into the block length, and the stability
    // predicate is only re-evaluated after a step whose census delta is
    // nonzero — on zero-delta steps (the overwhelming majority on
    // sparse-token protocols) the totals cannot move, so neither the four
    // counter adds nor the predicate run.  Census marks fire only for ids
    // that actually changed: an unchanged id was marked when it was written
    // into `config`.  All of this is observationally identical to the
    // per-step checks (same stopping step, same marks), so seeded
    // equivalence with the reference simulator is preserved.
    const std::uint64_t remaining = options.max_steps - steps;
    const std::size_t len =
        remaining < kBatch ? static_cast<std::size_t>(remaining) : kBatch;
    for (std::size_t i = 0; i < len; ++i) picks[i] = draw.uniform_below(two_m);
    for (std::size_t i = 0; i < len; ++i) {
      if (i + kAhead < len) {
        __builtin_prefetch(&pairs[picks[i + kAhead]], /*rw=*/0, /*locality=*/1);
      }
      const interaction it = pairs[picks[i]];
      const auto u = static_cast<std::size_t>(it.initiator);
      const auto v = static_cast<std::size_t>(it.responder);
      const auto ca = config[u];
      const auto cb = config[v];
      const auto e = compiled.transition(ca, cb);
      config[u] = e.a2;
      config[v] = e.b2;
      ++steps;
      if (census) {
        if (e.a2 != ca) mark(e.a2);
        if (e.b2 != cb) mark(e.b2);
      }
      std::uint32_t delta_bits;
      static_assert(sizeof(delta_bits) == sizeof(e.delta));
      std::memcpy(&delta_bits, e.delta.data(), sizeof(delta_bits));
      if (delta_bits != 0) {
        for (int c = 0; c < traits::kCounters; ++c) {
          totals[c] += e.delta[static_cast<std::size_t>(c)];
        }
        if (traits::stable(totals)) break;
      }
    }
  }

  result.stabilized = true;
  result.steps = steps;
  if (census) {
    for (const auto s : seen) result.distinct_states_used += s;
  }
  for (node_id v = 0; v < n; ++v) {
    if (compiled.output(config[static_cast<std::size_t>(v)]) == role::leader) {
      result.leader = v;
      break;
    }
  }
  return result;
}

// Drop-in fast replacement for run_until_stable on compilable protocols:
// compiles the protocol lazily and runs one election.  Same result as the
// reference simulator for the same seed.
template <compilable_protocol P>
election_result run_until_stable_fast(const P& proto, const graph& g, rng gen,
                                      const sim_options& options = {}) {
  compiled_protocol<P> compiled(proto);
  const edge_endpoints edges(g);
  return run_compiled(compiled, edges, g, gen, options);
}

}  // namespace pp
