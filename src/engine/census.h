// census_traits specialisations for the library's counter-shaped protocols.
//
// Each specialisation mirrors the protocol's tracker_type add() / is_stable()
// exactly (same counters, same predicate), so a compiled run declares
// stability on precisely the same scheduler step as the reference simulator —
// the property the engine/reference seeded-equivalence tests pin down.
//
// Every accumulate() below contributes 0 or 1 per counter per state, so a
// transition's census delta — contribution(a') + contribution(b') -
// contribution(a) - contribution(b) — lies in [-2, 2].  The packed u8 table
// entries (compiled_protocol.h) re-encode deltas as signed nibbles and rely
// on that bound; it is re-checked dynamically at pack time
// (compiled_protocol::deltas_fit_nibble), so a future trait with weighted
// contributions would fall back to the wider packing rather than miscompile.
//
// id_protocol is deliberately absent (its tracker keeps a hash census over
// Θ(n⁴) identifiers) and stays on the reference simulator.  star_protocol —
// whose predicate counts undecided-undecided *edges* — lives in the
// edge-census mode instead (edge_census_traits<star_protocol> in
// engine/edgecensus/census.h).
#pragma once

#include <cstdint>

#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/majority.h"
#include "engine/compiled_protocol.h"

namespace pp {

// Mirrors bq_counts: candidates, black tokens, white tokens.
template <>
struct census_traits<beauquier_protocol> {
  static constexpr int kCounters = 3;
  static void accumulate(const beauquier_protocol&, const bq_state& s,
                         std::int64_t* t, std::int64_t sign) {
    if (s.candidate) t[0] += sign;
    if (s.token == bq_token::black) t[1] += sign;
    if (s.token == bq_token::white) t[2] += sign;
  }
  static bool stable(const std::int64_t* t) {
    return t[0] == 1 && t[1] == 1 && t[2] == 0;
  }
};

// Mirrors fast_protocol::tracker_type: leader outputs plus the backup
// instance's black/white token counts.
template <>
struct census_traits<fast_protocol> {
  static constexpr int kCounters = 3;
  static void accumulate(const fast_protocol& proto,
                         const fast_protocol::state_type& s, std::int64_t* t,
                         std::int64_t sign) {
    if (proto.output(s) == role::leader) t[0] += sign;
    if (s.in_backup) {
      if (s.backup.token == bq_token::black) t[1] += sign;
      if (s.backup.token == bq_token::white) t[2] += sign;
    }
  }
  static bool stable(const std::int64_t* t) { return t[0] == 1 && t[2] == 0; }
};

// Mirrors majority_protocol::tracker_type: one sign owns the population.
template <>
struct census_traits<majority_protocol> {
  static constexpr int kCounters = 4;
  static void accumulate(const majority_protocol&,
                         const majority_protocol::state_type& s, std::int64_t* t,
                         std::int64_t sign) {
    using st = majority_protocol::state_type;
    switch (s) {
      case st::strong_plus: t[0] += sign; break;
      case st::strong_minus: t[1] += sign; break;
      case st::weak_plus: t[2] += sign; break;
      case st::weak_minus: t[3] += sign; break;
    }
  }
  static bool stable(const std::int64_t* t) {
    const bool plus_won = t[1] == 0 && t[3] == 0;
    const bool minus_won = t[0] == 0 && t[2] == 0;
    return plus_won || minus_won;
  }
};

}  // namespace pp
