// Block-buffered view over pp::rng for the compiled simulation engine.
//
// The reference simulator pays a non-inlined call into rng.cpp for every
// scheduler draw.  `block_rng` pulls raw 64-bit outputs from the wrapped
// generator in blocks of 1024 (one call per block via rng::fill) and applies
// Lemire's multiply-shift rejection inline.  It consumes *exactly* the same
// raw output stream, in the same order, as calling the generator directly,
// and `uniform_below` replicates rng::uniform_below draw-for-draw (including
// the rejection loop), so any simulation driven through block_rng is
// bit-identical to one driven by the wrapped rng.  This is what makes the
// engine/reference seeded-equivalence tests possible.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "support/rng.h"

namespace pp {

class block_rng {
 public:
  explicit block_rng(rng gen) : gen_(gen) {}

  // Next raw 64-bit draw (same stream as the wrapped generator's operator()).
  std::uint64_t next() {
    if (pos_ == kBlockSize) refill();
    return buf_[pos_++];
  }

  // Uniform integer in [0, bound), bound >= 1.  Same shared Lemire kernel —
  // and hence identical raw-draw consumption — as rng::uniform_below.
  std::uint64_t uniform_below(std::uint64_t bound) {
    return lemire_uniform_below([this] { return next(); }, bound);
  }

  // Mirrors rng::uniform01 draw-for-draw via the shared kernel.
  double uniform01() {
    return uniform01_from([this] { return next(); });
  }

  // Mirrors rng::geometric draw-for-draw via the shared kernel (one
  // uniform01 per call).
  std::uint64_t geometric(double p) {
    return geometric_from([this] { return next(); }, p);
  }

 private:
  static constexpr std::size_t kBlockSize = 1024;

  void refill() {
    gen_.fill(std::span<std::uint64_t>(buf_.data(), buf_.size()));
    pos_ = 0;
  }

  rng gen_;
  std::size_t pos_ = kBlockSize;
  std::array<std::uint64_t, kBlockSize> buf_;
};

}  // namespace pp
