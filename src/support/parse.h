// Strict string-to-integer parsing shared by the CLI and the fleet manifest
// reader, so the two can never drift in which numbers they accept.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace pp {

// Strict full-string parse of a non-negative decimal integer: the text must
// start with a digit and consume entirely, so signs, whitespace, trailing
// garbage and overflow all fail loudly instead of silently truncating or
// wrapping (atoi accepted "10x" and "1e6" as 10; strtoull wraps "-1" to
// 2^64 - 1).
inline bool parse_u64(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text < '0' || *text > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace pp
