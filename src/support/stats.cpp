#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/expects.h"

namespace pp {

void running_stats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double running_stats::mean() const {
  expects(count_ > 0, "running_stats::mean: no observations");
  return mean_;
}

double running_stats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double running_stats::min() const {
  expects(count_ > 0, "running_stats::min: no observations");
  return min_;
}

double running_stats::max() const {
  expects(count_ > 0, "running_stats::max: no observations");
  return max_;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  expects(!sorted.empty(), "quantile_sorted: empty sample");
  expects(q >= 0.0 && q <= 1.0, "quantile_sorted: q must be in [0, 1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

sample_summary summarize(const std::vector<double>& values) {
  expects(!values.empty(), "summarize: empty sample");
  running_stats acc;
  for (double v : values) acc.add(v);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  sample_summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = quantile_sorted(sorted, 0.5);
  s.q10 = quantile_sorted(sorted, 0.1);
  s.q90 = quantile_sorted(sorted, 0.9);
  if (s.count >= 2) {
    s.ci95_halfwidth = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

}  // namespace pp
