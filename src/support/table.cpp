#include "support/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/expects.h"

namespace pp {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == 'e' ||
          c == 'E' || c == '+' || c == '-' || c == 'x')) {
      return false;
    }
  }
  return true;
}

}  // namespace

text_table::text_table(std::vector<std::string> header)
    : header_(std::move(header)) {
  expects(!header_.empty(), "text_table: header must be non-empty");
}

void text_table::add_row(std::vector<std::string> cells) {
  expects(cells.size() <= header_.size(),
          "text_table::add_row: more cells than header columns");
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string text_table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
      out << (c + 1 < row.size() ? "  " : "");
    }
    out << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_number(double v, int digits) {
  if (!std::isfinite(v)) return "inf";
  char buf[64];
  const double mag = std::abs(v);
  if (v == std::floor(v) && mag < 1e15 && mag >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (mag != 0.0 && (mag >= 1e7 || mag < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  }
  return buf;
}

}  // namespace pp
