// Minimal column-aligned ASCII table renderer for bench/report output.
#pragma once

#include <string>
#include <vector>

namespace pp {

// Accumulates rows of string cells and renders them with aligned columns.
// Numeric-looking cells are right-aligned, all others left-aligned.
class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  // Appends a row; it may have fewer cells than the header (missing cells
  // render empty) but not more.
  void add_row(std::vector<std::string> cells);

  // Renders the table with a separator line under the header.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `v` with `digits` significant digits (plain or scientific,
// whichever is shorter and readable).
std::string format_number(double v, int digits = 4);

}  // namespace pp
