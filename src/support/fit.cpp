#include "support/fit.h"

#include <cmath>

#include "support/expects.h"

namespace pp {

linear_fit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  expects(x.size() == y.size(), "fit_linear: x and y must have equal length");
  expects(x.size() >= 2, "fit_linear: need at least two points");

  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  expects(sxx > 0.0, "fit_linear: x values must not all be equal");

  linear_fit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  } else {
    fit.r_squared = 1.0;  // y constant and perfectly explained
  }
  return fit;
}

linear_fit fit_loglog(const std::vector<double>& x, const std::vector<double>& y) {
  expects(x.size() == y.size(), "fit_loglog: x and y must have equal length");
  std::vector<double> lx(x.size());
  std::vector<double> ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    expects(x[i] > 0.0 && y[i] > 0.0, "fit_loglog: inputs must be positive");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return fit_linear(lx, ly);
}

}  // namespace pp
