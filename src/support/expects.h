// Precondition and invariant checking helpers.
//
// `expects` guards public-interface preconditions and throws
// std::invalid_argument so that misuse is reported to the caller;
// `ensure` guards internal invariants and throws std::logic_error,
// signalling a bug in this library rather than in the caller.
#pragma once

#include <stdexcept>
#include <string>

namespace pp {

// Throw std::invalid_argument with `what` unless `condition` holds.
inline void expects(bool condition, const std::string& what) {
  if (!condition) throw std::invalid_argument(what);
}

// Throw std::logic_error with `what` unless `condition` holds.
inline void ensure(bool condition, const std::string& what) {
  if (!condition) throw std::logic_error(what);
}

}  // namespace pp
