// Deterministic pseudo-random number generation.
//
// All stochastic components of the library draw from `pp::rng`, a
// xoshiro256** generator seeded through splitmix64.  Experiments derive
// per-trial generators with `rng::fork`, so a single 64-bit seed makes any
// run — including multithreaded parameter sweeps — bit-for-bit reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

#include "support/expects.h"

namespace pp {

// splitmix64 step: used for seeding and for deriving independent streams.
std::uint64_t splitmix64(std::uint64_t& state);

// Lemire's multiply-shift rejection method over an arbitrary source of raw
// 64-bit draws: uniform in [0, bound), bound >= 1, unbiased.  Shared by
// rng::uniform_below and the engine's block-buffered block_rng so the two
// can never diverge — the engine's bit-identical-to-reference guarantee
// rests on both consuming the same raw draws in the same order.
template <typename Next>
std::uint64_t lemire_uniform_below(Next&& next, std::uint64_t bound) {
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) [[unlikely]] {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

// Uniform double in [0, 1) from one raw 64-bit draw (53 mantissa bits).
// Shared by rng::uniform01 and block_rng::uniform01, so the two mirror each
// other draw-for-draw by construction — the same pattern as the Lemire
// kernel above.
template <typename Next>
double uniform01_from(Next&& next) {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

// Geometric(p) on {1, 2, ...} by inversion over one uniform01 draw; p in
// (0, 1].  Shared by rng::geometric and block_rng::geometric.
template <typename Next>
std::uint64_t geometric_from(Next&& next, double p) {
  expects(p > 0.0 && p <= 1.0, "geometric: p must be in (0, 1]");
  if (p == 1.0) return 1;
  // Inversion: ceil(log(U) / log(1-p)) with U ~ Uniform(0,1].
  const double u = 1.0 - uniform01_from(next);  // in (0, 1]
  const double draws = std::ceil(std::log(u) / std::log1p(-p));
  if (draws < 1.0) return 1;
  // Clamp astronomically unlikely overflows instead of wrapping.
  if (draws >= 9.2e18) return std::numeric_limits<std::uint64_t>::max() / 2;
  return static_cast<std::uint64_t>(draws);
}

// xoshiro256** 1.0 (Blackman & Vigna), a small, fast, high-quality PRNG.
//
// Satisfies std::uniform_random_bit_generator so it can also be used with
// <random> distributions, although the member helpers below avoid the
// distribution objects in hot loops.
class rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four words of state from `seed` via splitmix64.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  // Next 64 uniformly random bits.
  result_type operator()();

  // Fills `out` with consecutive draws of operator().  Equivalent to calling
  // the generator out.size() times, but the whole block is produced in one
  // call so hot loops (the batched engine's block_rng) amortise the
  // per-draw call overhead.
  void fill(std::span<std::uint64_t> out);

  // Derives an independent generator for substream `index`.  Streams with
  // different (seed, index) pairs are statistically independent for all
  // practical purposes.
  rng fork(std::uint64_t index) const;

  // Uniform integer in [0, bound), bound >= 1.  Uses Lemire's multiply-shift
  // rejection method (unbiased).
  std::uint64_t uniform_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // Bernoulli(p) trial.
  bool bernoulli(double p);

  // Fair coin flip.
  bool coin() { return (operator()() >> 63) != 0; }

  // Number of Bernoulli(p) trials up to and including the first success,
  // i.e. a Geometric(p) variable supported on {1, 2, ...}.  p must be in
  // (0, 1].  Sampled by inversion, so a single uniform draw suffices.
  std::uint64_t geometric(double p);

 private:
  std::uint64_t state_[4];
};

}  // namespace pp
