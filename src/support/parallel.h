// Deterministic multithreaded trial execution.
//
// Experiments consist of many independent trials; `parallel_for` distributes
// indices across a fixed number of worker threads.  Determinism is preserved
// because each trial derives its own RNG from (seed, trial index), never from
// thread identity or scheduling order.
#pragma once

#include <cstddef>
#include <functional>

namespace pp {

// Number of hardware threads, at least 1.
std::size_t hardware_threads();

// Invokes body(i) for every i in [0, count), distributing the indices over at
// most `threads` worker threads (0 means hardware_threads()).  Exceptions
// thrown by `body` are rethrown on the calling thread (the first one wins).
// The body must be safe to call concurrently for distinct indices.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace pp
