#include "support/rng.h"

#include <cmath>

#include "support/expects.h"

namespace pp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

rng::result_type rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void rng::fill(std::span<std::uint64_t> out) {
  for (auto& word : out) word = operator()();
}

rng rng::fork(std::uint64_t index) const {
  // Mix the current state with the stream index through splitmix64 so that
  // forked streams do not overlap with the parent or with each other.
  std::uint64_t s = state_[0] ^ rotl(state_[3], 13) ^ (index * 0xd1342543de82ef95ull);
  std::uint64_t seed = splitmix64(s);
  return rng(seed ^ splitmix64(s));
}

std::uint64_t rng::uniform_below(std::uint64_t bound) {
  expects(bound >= 1, "rng::uniform_below: bound must be >= 1");
  return lemire_uniform_below([this] { return operator()(); }, bound);
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  expects(lo <= hi, "rng::uniform_int: lo must be <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double rng::uniform01() {
  return uniform01_from([this] { return operator()(); });
}

bool rng::bernoulli(double p) {
  expects(p >= 0.0 && p <= 1.0, "rng::bernoulli: p must be in [0, 1]");
  return uniform01() < p;
}

std::uint64_t rng::geometric(double p) {
  return geometric_from([this] { return operator()(); }, p);
}

}  // namespace pp
