// Least-squares fits used to estimate empirical scaling exponents.
//
// All of the paper's bounds are of the form T(n) = Θ(n^a · log^b n).  The
// benches estimate the exponent `a` by ordinary least squares on
// (log n, log T) pairs; a fit with slope ≈ a and high R² is evidence that
// the measured complexity has the predicted polynomial order.
#pragma once

#include <vector>

namespace pp {

// Result of a simple linear regression y = slope * x + intercept.
struct linear_fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination, in [0, 1]
};

// Ordinary least squares on (x, y) pairs.  Requires at least two points and
// non-constant x.
linear_fit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

// Fits log(y) = slope * log(x) + intercept, i.e. estimates the exponent of a
// power law y ≈ C·x^slope.  Requires strictly positive inputs.
linear_fit fit_loglog(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace pp
