// Descriptive statistics for Monte-Carlo experiment results.
#pragma once

#include <cstddef>
#include <vector>

namespace pp {

// Single-pass accumulator for mean and variance (Welford's algorithm).
class running_stats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  // Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Summary of a sample: moments, extremes and selected quantiles.
struct sample_summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q10 = 0.0;   // 10th percentile
  double q90 = 0.0;   // 90th percentile
  // Half-width of the normal-approximation 95% confidence interval for the
  // mean; 0 for samples of size < 2.
  double ci95_halfwidth = 0.0;
};

// Computes a sample_summary.  The input is copied and sorted internally.
sample_summary summarize(const std::vector<double>& values);

// Linear-interpolation quantile of a *sorted* sample, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

}  // namespace pp
