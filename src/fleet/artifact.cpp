#include "fleet/artifact.h"

#include <cstdio>
#include <cstring>

namespace pp::fleet {

namespace {

constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kTagMeta = fourcc('M', 'E', 'T', 'A');
constexpr std::uint32_t kTagGraph = fourcc('G', 'R', 'P', 'H');
constexpr std::uint32_t kTagTable = fourcc('T', 'A', 'B', 'L');
constexpr std::uint32_t kTagPacked = fourcc('P', 'A', 'C', 'K');
constexpr std::uint32_t kTagEdge = fourcc('E', 'D', 'G', 'E');
constexpr std::uint32_t kTagWellmixed = fourcc('W', 'M', 'I', 'X');

// Append-only native-endian byte sink.  All multi-byte fields go through
// these helpers, never through struct memcpy, so padding bytes can't leak
// indeterminate values into the (byte-compared) artifact.
class byte_writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void i8(std::int8_t v) { out_.push_back(static_cast<std::uint8_t>(v)); }
  void u32(std::uint32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  void bytes(const std::uint8_t* data, std::size_t size) {
    out_.insert(out_.end(), data, data + size);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  template <typename T>
  void pod(T v) {
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    bytes(buf, sizeof(T));
  }

  std::vector<std::uint8_t> out_;
};

// Bounds-checked reader over a parsed byte range; every short read fails
// loudly instead of reading past the buffer.
class byte_reader {
 public:
  byte_reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::int8_t i8() { return static_cast<std::int8_t>(take<std::uint8_t>()); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::string str() {
    const std::uint32_t len = u32();
    const std::uint8_t* p = raw(len);
    return std::string(reinterpret_cast<const char*>(p), len);
  }
  const std::uint8_t* raw(std::size_t size) {
    expects(size <= size_ - pos_, "artifact: truncated section payload");
    const std::uint8_t* p = data_ + pos_;
    pos_ += size;
    return p;
  }
  std::size_t remaining() const { return size_ - pos_; }

  // Guard for element counts read from the file *before* they size any
  // allocation: a count of `elem_size`-byte records can only be honest if
  // that many bytes are actually left, so a crafted header cannot trigger a
  // huge reserve() ahead of the bounds-checked reads.
  std::uint64_t count(std::uint64_t n, std::size_t elem_size) {
    expects(n <= remaining() / elem_size, "artifact: truncated section payload");
    return n;
  }

 private:
  template <typename T>
  T take() {
    T v;
    std::memcpy(&v, raw(sizeof(T)), sizeof(T));
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void write_section(byte_writer& out, std::uint32_t tag,
                   const std::vector<std::uint8_t>& payload) {
  out.u32(tag);
  out.u32(0);  // reserved
  out.u64(payload.size());
  out.bytes(payload.data(), payload.size());
}

std::vector<std::uint8_t> meta_payload(const sweep_artifact& a) {
  byte_writer w;
  w.str(a.family);
  w.u32(static_cast<std::uint32_t>(a.protocol.kind));
  w.u32(static_cast<std::uint32_t>(a.protocol.params.size()));
  for (const std::uint64_t p : a.protocol.params) w.u64(p);
  w.u32(a.pack_bits);
  return w.take();
}

void parse_meta(byte_reader& r, sweep_artifact& a) {
  a.family = r.str();
  a.protocol.kind = static_cast<protocol_kind>(r.u32());
  const auto count = static_cast<std::uint32_t>(r.count(r.u32(), 8));
  a.protocol.params.clear();
  a.protocol.params.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) a.protocol.params.push_back(r.u64());
  a.pack_bits = r.u32();
}

std::vector<std::uint8_t> graph_payload(const graph_section& g) {
  byte_writer w;
  w.u32(g.num_nodes);
  w.u64(g.edges.size());
  for (const auto& [u, v] : g.edges) {
    w.u32(u);
    w.u32(v);
  }
  w.u32(g.order);
  w.u64(g.old_of_new.size());
  for (const std::uint32_t v : g.old_of_new) w.u32(v);
  return w.take();
}

graph_section parse_graph(byte_reader& r) {
  graph_section g;
  g.num_nodes = r.u32();
  const std::uint64_t m = r.count(r.u64(), 8);  // two u32 endpoints per edge
  g.edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    const std::uint32_t u = r.u32();
    const std::uint32_t v = r.u32();
    g.edges.emplace_back(u, v);
  }
  g.order = r.u32();
  const std::uint64_t perm = r.count(r.u64(), 4);
  expects(perm == 0 || perm == g.num_nodes,
          "artifact: reorder permutation must be empty or cover every node");
  g.old_of_new.reserve(perm);
  for (std::uint64_t v = 0; v < perm; ++v) g.old_of_new.push_back(r.u32());
  return g;
}

std::vector<std::uint8_t> table_payload(const table_section& t) {
  byte_writer w;
  const std::uint64_t k = t.codes.size();
  w.u64(k);
  w.u32(t.counters);
  for (const std::uint64_t code : t.codes) w.u64(code);
  for (const std::uint8_t role : t.roles) w.u8(role);
  for (const auto& c : t.contrib) {
    for (const std::int8_t d : c) w.i8(d);
  }
  for (const auto& e : t.entries) {
    w.u32(e.a2);
    w.u32(e.b2);
    for (const std::int8_t d : e.delta) w.i8(d);
  }
  return w.take();
}

table_section parse_table(byte_reader& r) {
  table_section t;
  // Per state: u64 code + u8 role + 4 contrib bytes, then k² 12-byte entries.
  const std::uint64_t k = r.count(r.u64(), 8 + 1 + kMaxCensusCounters);
  t.counters = r.u32();
  expects(t.counters >= 1 && t.counters <= static_cast<std::uint32_t>(kMaxCensusCounters),
          "artifact: table section has an invalid counter count");
  t.codes.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) t.codes.push_back(r.u64());
  t.roles.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) t.roles.push_back(r.u8());
  t.contrib.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    std::array<std::int8_t, kMaxCensusCounters> c{};
    for (auto& d : c) d = r.i8();
    t.contrib.push_back(c);
  }
  expects(k <= UINT32_MAX, "artifact: table section has too many states");
  r.count(k * k, 8 + kMaxCensusCounters);
  t.entries.reserve(k * k);
  for (std::uint64_t i = 0; i < k * k; ++i) {
    table_section::entry e;
    e.a2 = r.u32();
    e.b2 = r.u32();
    for (auto& d : e.delta) d = r.i8();
    t.entries.push_back(e);
  }
  return t;
}

std::vector<std::uint8_t> packed_payload(const packed_section& p) {
  byte_writer w;
  w.u32(p.width_bits);
  w.u64(p.num_states);
  w.u64(p.bytes.size());
  w.bytes(p.bytes.data(), p.bytes.size());
  return w.take();
}

packed_section parse_packed(byte_reader& r) {
  packed_section p;
  p.width_bits = r.u32();
  p.num_states = r.u64();
  const std::uint64_t size = r.u64();
  const std::uint8_t* data = r.raw(size);
  p.bytes.assign(data, data + size);
  return p;
}

std::vector<std::uint8_t> edge_payload(const edge_section& e) {
  byte_writer w;
  w.u32(e.num_classes);
  w.u64(e.classes.size());
  w.bytes(e.classes.data(), e.classes.size());
  return w.take();
}

edge_section parse_edge(byte_reader& r) {
  edge_section e;
  e.num_classes = r.u32();
  expects(e.num_classes >= 1 &&
              e.num_classes <= static_cast<std::uint32_t>(kMaxEdgeClasses),
          "artifact: edge section has an invalid class count");
  const std::uint64_t k = r.count(r.u64(), 1);
  const std::uint8_t* data = r.raw(k);
  e.classes.assign(data, data + k);
  for (const std::uint8_t c : e.classes) {
    expects(c < e.num_classes,
            "artifact: edge section names a class beyond its class count");
  }
  return e;
}

std::vector<std::uint8_t> wellmixed_payload(const wellmixed_section& s) {
  byte_writer w;
  w.u64(s.population);
  w.u64(s.classes.size());
  for (const auto& [code, count] : s.classes) {
    w.u64(code);
    w.u64(count);
  }
  return w.take();
}

wellmixed_section parse_wellmixed(byte_reader& r) {
  wellmixed_section s;
  s.population = r.u64();
  const std::uint64_t classes = r.count(r.u64(), 16);  // (code, count) pairs
  s.classes.reserve(classes);
  for (std::uint64_t i = 0; i < classes; ++i) {
    const std::uint64_t code = r.u64();
    const std::uint64_t count = r.u64();
    s.classes.emplace_back(code, count);
  }
  return s;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

protocol_desc fast_desc(const fast_params& params) {
  return {protocol_kind::fast,
          {static_cast<std::uint64_t>(params.h),
           static_cast<std::uint64_t>(params.level_threshold),
           static_cast<std::uint64_t>(params.max_level)}};
}

fast_params fast_params_of(const protocol_desc& desc) {
  expects(desc.kind == protocol_kind::fast && desc.params.size() == 3,
          "artifact: descriptor is not a fast-protocol descriptor");
  fast_params p;
  p.h = static_cast<int>(desc.params[0]);
  p.level_threshold = static_cast<int>(desc.params[1]);
  p.max_level = static_cast<int>(desc.params[2]);
  return p;
}

protocol_desc six_desc(node_id n) {
  return {protocol_kind::six, {static_cast<std::uint64_t>(n)}};
}

node_id six_population_of(const protocol_desc& desc) {
  expects(desc.kind == protocol_kind::six && desc.params.size() == 1,
          "artifact: descriptor is not a six-state-protocol descriptor");
  return static_cast<node_id>(desc.params[0]);
}

protocol_desc star_desc() { return {protocol_kind::star, {}}; }

void expect_star_desc(const protocol_desc& desc) {
  expects(desc.kind == protocol_kind::star && desc.params.empty(),
          "artifact: descriptor is not a star-protocol descriptor");
}

std::vector<std::uint8_t> artifact_bytes(const sweep_artifact& artifact) {
  // Sections in fixed order (META, then the present optionals) so equal
  // artifacts always serialize to equal bytes.
  byte_writer payload;
  std::uint32_t sections = 1;
  write_section(payload, kTagMeta, meta_payload(artifact));
  if (artifact.graph) {
    write_section(payload, kTagGraph, graph_payload(*artifact.graph));
    ++sections;
  }
  if (artifact.table) {
    write_section(payload, kTagTable, table_payload(*artifact.table));
    ++sections;
  }
  if (artifact.packed) {
    write_section(payload, kTagPacked, packed_payload(*artifact.packed));
    ++sections;
  }
  if (artifact.edge) {
    write_section(payload, kTagEdge, edge_payload(*artifact.edge));
    ++sections;
  }
  if (artifact.wellmixed) {
    write_section(payload, kTagWellmixed, wellmixed_payload(*artifact.wellmixed));
    ++sections;
  }
  const std::vector<std::uint8_t> body = payload.take();

  byte_writer out;
  out.u32(kArtifactMagic);
  out.u32(kArtifactEndianTag);
  out.u32(kArtifactVersion);
  out.u32(static_cast<std::uint32_t>(artifact.engine));
  out.u32(sections);
  out.u32(0);  // reserved
  out.u64(body.size());
  out.u64(fnv1a64(body.data(), body.size()));
  out.bytes(body.data(), body.size());
  return out.take();
}

sweep_artifact artifact_from_bytes(const std::vector<std::uint8_t>& bytes) {
  expects(bytes.size() >= 40, "artifact: file shorter than the header");
  byte_reader header(bytes.data(), bytes.size());
  expects(header.u32() == kArtifactMagic, "artifact: bad magic (not a PPAF file)");
  expects(header.u32() == kArtifactEndianTag,
          "artifact: foreign endianness (artifact was written on an "
          "incompatible host)");
  // Version 2 is a strict superset of version 1 (the EDGE section is
  // optional and nothing else changed), so v1 files stay loadable; anything
  // newer than this build is rejected.
  const std::uint32_t version = header.u32();
  expects(version == 1 || version == kArtifactVersion,
          "artifact: unsupported format version");
  sweep_artifact a;
  a.engine = static_cast<artifact_engine>(header.u32());
  expects(a.engine == artifact_engine::tuned || a.engine == artifact_engine::wellmixed,
          "artifact: unknown engine");
  const std::uint32_t sections = header.u32();
  expects(header.u32() == 0, "artifact: reserved header field must be zero");
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  expects(payload_size == header.remaining(),
          "artifact: payload length does not match the file size");
  const std::uint8_t* payload = header.raw(payload_size);
  expects(fnv1a64(payload, payload_size) == checksum,
          "artifact: checksum mismatch (file is corrupt)");

  byte_reader body(payload, payload_size);
  bool saw_meta = false;
  for (std::uint32_t s = 0; s < sections; ++s) {
    const std::uint32_t tag = body.u32();
    expects(body.u32() == 0, "artifact: reserved section field must be zero");
    const std::uint64_t length = body.u64();
    byte_reader section(body.raw(length), length);
    switch (tag) {
      case kTagMeta:
        parse_meta(section, a);
        saw_meta = true;
        break;
      case kTagGraph: a.graph = parse_graph(section); break;
      case kTagTable: a.table = parse_table(section); break;
      case kTagPacked: a.packed = parse_packed(section); break;
      case kTagEdge: a.edge = parse_edge(section); break;
      case kTagWellmixed: a.wellmixed = parse_wellmixed(section); break;
      default: expects(false, "artifact: unknown section tag");
    }
    expects(section.remaining() == 0, "artifact: trailing bytes in a section");
  }
  expects(saw_meta, "artifact: missing META section");
  expects(body.remaining() == 0, "artifact: trailing bytes after the sections");
  return a;
}

void save_artifact(const sweep_artifact& artifact, const std::string& path) {
  const std::vector<std::uint8_t> bytes = artifact_bytes(artifact);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  expects(f != nullptr, "save_artifact: cannot open " + path);
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  expects(ok && closed, "save_artifact: short write to " + path);
}

sweep_artifact load_artifact(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  expects(f != nullptr, "load_artifact: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  expects(ok, "load_artifact: read error on " + path);
  return artifact_from_bytes(bytes);
}

graph_section snapshot_graph(const graph& g, vertex_order order,
                             const std::vector<node_id>& old_of_new) {
  graph_section s;
  s.num_nodes = static_cast<std::uint32_t>(g.num_nodes());
  s.edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const edge& e : g.edges()) {
    s.edges.emplace_back(static_cast<std::uint32_t>(e.u),
                         static_cast<std::uint32_t>(e.v));
  }
  s.order = static_cast<std::uint32_t>(order);
  s.old_of_new.reserve(old_of_new.size());
  for (const node_id v : old_of_new) {
    s.old_of_new.push_back(static_cast<std::uint32_t>(v));
  }
  return s;
}

graph rebuild_graph(const graph_section& section) {
  std::vector<edge> edges;
  edges.reserve(section.edges.size());
  for (const auto& [u, v] : section.edges) {
    edges.push_back({static_cast<node_id>(u), static_cast<node_id>(v)});
  }
  return graph::from_edges(static_cast<node_id>(section.num_nodes), edges);
}

engine_tuning tuning_of(const sweep_artifact& artifact) {
  expects(artifact.engine == artifact_engine::tuned && artifact.graph.has_value(),
          "tuning_of: not a tuned-engine sweep artifact");
  engine_tuning tuning;
  tuning.order = static_cast<vertex_order>(artifact.graph->order);
  expects(tuning.order == vertex_order::natural ||
              tuning.order == vertex_order::bfs || tuning.order == vertex_order::rcm,
          "artifact: unknown vertex order");
  tuning.pack_bits = static_cast<int>(artifact.pack_bits);
  return tuning;
}

}  // namespace pp::fleet
