#include "fleet/fault.h"

#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "fleet/sweep.h"
#include "fleet/wire.h"
#include "obs/log.h"
#include "support/parse.h"

namespace pp::fleet {

namespace {

const char* kind_name(fault_kind kind) {
  switch (kind) {
    case fault_kind::exit: return "exit";
    case fault_kind::sigkill: return "sigkill";
    case fault_kind::stall: return "stall";
    case fault_kind::torn: return "torn";
    case fault_kind::drop: return "drop";
    case fault_kind::garbage: return "garbage";
  }
  return "?";
}

bool parse_kind(const std::string& name, fault_kind& out) {
  if (name == "exit") out = fault_kind::exit;
  else if (name == "sigkill") out = fault_kind::sigkill;
  else if (name == "stall") out = fault_kind::stall;
  else if (name == "torn") out = fault_kind::torn;
  else if (name == "drop") out = fault_kind::drop;
  else if (name == "garbage") out = fault_kind::garbage;
  else return false;
  return true;
}

}  // namespace

bool parse_fault_spec(const std::string& text, fault_spec& out) {
  const std::size_t c1 = text.find(':');
  if (c1 == std::string::npos) return false;
  fault_spec spec;
  if (!parse_kind(text.substr(0, c1), spec.kind)) return false;
  const std::size_t c2 = text.find(':', c1 + 1);
  const std::string worker =
      text.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                  : c2 - c1 - 1);
  if (worker.size() < 2 || worker[0] != 'w') return false;
  std::uint64_t slot = 0;
  if (!parse_u64(worker.c_str() + 1, slot) || slot > 100000) return false;
  spec.worker = static_cast<int>(slot);
  if (c2 != std::string::npos) {
    const std::string tail = text.substr(c2 + 1);
    if (tail.rfind("after=", 0) != 0) return false;
    if (!parse_u64(tail.c_str() + 6, spec.after)) return false;
  }
  out = spec;
  return true;
}

bool parse_fault_specs(const std::string& text, std::vector<fault_spec>& out) {
  std::vector<fault_spec> specs;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string one =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    fault_spec spec;
    if (!parse_fault_spec(one, spec)) return false;
    specs.push_back(spec);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (specs.empty()) return false;
  out = std::move(specs);
  return true;
}

std::string to_string(const fault_spec& spec) {
  return std::string(kind_name(spec.kind)) + ":w" + std::to_string(spec.worker) +
         ":after=" + std::to_string(spec.after);
}

std::string to_string(const std::vector<fault_spec>& specs) {
  std::string joined;
  for (const fault_spec& spec : specs) {
    if (!joined.empty()) joined += ',';
    joined += to_string(spec);
  }
  return joined;
}

fault_injector::fault_injector(const std::vector<fault_spec>& specs, int worker) {
  for (const fault_spec& spec : specs) {
    if (spec.worker == worker) {
      spec_ = spec;
      armed_ = true;
      return;  // at most one fault per slot: first spec wins
    }
  }
}

void fault_injector::before_record(int fd, std::uint64_t written) const {
  if (!armed_ || written != spec_.after) return;
  switch (spec_.kind) {
    case fault_kind::exit:
      obs::logf(obs::log_level::warn,
                "fleet fault: worker w%d injected nonzero exit", spec_.worker);
      ::_exit(9);
    case fault_kind::sigkill:
      ::kill(::getpid(), SIGKILL);
      ::_exit(9);  // unreachable; SIGKILL cannot be handled
    case fault_kind::stall: {
      obs::logf(obs::log_level::warn,
                "fleet fault: worker w%d injected stall", spec_.worker);
      // Hang until the supervisor's timeout kills us — but bail out if the
      // parent itself dies (reparenting changes getppid) or the stream's
      // peer closes it (a pipe's read end gets POLLERR, a socket becomes
      // readable at EOF — the peer never sends otherwise), so an aborted
      // test, a killed sweep, or a remote client that gave up on this
      // connection never leaves a stalled orphan behind.
      const pid_t parent = ::getppid();
      while (::getppid() == parent) {
        pollfd peer{fd, POLLIN, 0};
        const int r = ::poll(&peer, 1, 20);
        if (r > 0 && (peer.revents & (POLLIN | POLLERR | POLLHUP)) != 0) break;
      }
      ::_exit(9);
    }
    case fault_kind::torn: {
      obs::logf(obs::log_level::warn,
                "fleet fault: worker w%d injected torn record", spec_.worker);
      // A plausible record length followed by half a payload: exactly what a
      // worker killed mid-write leaves in the pipe.
      const std::uint32_t length = kTrialRecordPayload;
      std::uint8_t buf[4 + kTrialRecordPayload / 2] = {};
      std::memcpy(buf, &length, sizeof(length));
      [[maybe_unused]] const ssize_t n = ::write(fd, buf, sizeof(buf));
      ::_exit(9);
    }
    case fault_kind::drop: {
      obs::logf(obs::log_level::warn,
                "fleet fault: worker w%d injected stream drop", spec_.worker);
      // Sever the stream mid-sweep.  On a socket, linger(0) aborts the
      // connection with an RST, so the reader sees a hard connection reset
      // (possibly after draining already-buffered records); on a pipe the
      // setsockopt is a no-op (ENOTSOCK) and the close is a plain early EOF.
      const linger abort_on_close{1, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_on_close,
                   sizeof(abort_on_close));
      ::close(fd);
      ::_exit(9);
    }
    case fault_kind::garbage: {
      obs::logf(obs::log_level::warn,
                "fleet fault: worker w%d injected garbage frame", spec_.worker);
      // A complete, well-framed record whose bytes were corrupted in flight:
      // the trailing checksum no longer matches, so the reader must reject
      // the frame rather than deliver a bogus trial.
      std::uint8_t payload[kTrialRecordPayload] = {};
      encode_trial_record(trial_record{}, payload);
      std::uint8_t buf[wire::framed_size(kTrialRecordPayload)];
      wire::encode_frame(payload, kTrialRecordPayload, buf);
      buf[wire::kLengthBytes] ^= 0x55;  // flip payload bits, keep the framing
      [[maybe_unused]] const ssize_t n = ::write(fd, buf, sizeof(buf));
      ::_exit(9);
    }
  }
}

}  // namespace pp::fleet
