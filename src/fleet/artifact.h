// Serializable protocol artefacts: the closed, immutable objects of a sweep
// — a closed compiled_protocol table, its packed_table snapshot, the graph
// (with its reorder permutation) and the well-mixed initial multiset — in a
// versioned, endianness-tagged, checksummed binary container, so worker
// processes (and, later, other hosts) can share one prepared sweep instead
// of each re-deriving it.
//
// Container layout (all integers native-endian; the header's endianness tag
// makes a foreign-endian reader fail loudly instead of mis-reading):
//
//   offset  size  field
//   0       4     magic ("PPAF" on little-endian disks)
//   4       4     endianness tag 0x01020304
//   8       4     format version (kArtifactVersion)
//   12      4     engine (artifact_engine)
//   16      4     section count
//   20      4     reserved (0)
//   24      8     payload length in bytes
//   32      8     FNV-1a 64 checksum of the payload
//   40      ...   sections: {tag u32, reserved u32, length u64, bytes}
//
// Versioning policy: any change to the header or a section layout bumps
// kArtifactVersion; loaders accept the versions whose layout they can parse
// exactly (currently {1, 2} — v2 only *added* the optional EDGE section) and
// reject everything else (artifacts are cheap to regenerate — the closed
// table is O(|Λ|²) — so there is no migration machinery).
//
// Load semantics: load_artifact only parses and checksums.  A worker then
// *rebuilds* the protocol, graph and compiled table from the artifact's
// protocol descriptor — the closure is deterministic — and validates its
// rebuild byte-for-byte against the stored sections (validate_tuned_artifact
// / validate_wellmixed_artifact below).  A worker whose binary compiles a
// different table than the artifact's producer fails loudly instead of
// silently computing a different sweep; this is the version-skew gate of the
// fleet protocol (src/fleet/README.md).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/beauquier.h"
#include "core/fast_election.h"
#include "engine/compiled_protocol.h"
#include "engine/engine.h"
#include "engine/wellmixed/wellmixed.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "support/expects.h"

namespace pp::fleet {

inline constexpr std::uint32_t kArtifactMagic = 0x46415050;  // "PPAF"
inline constexpr std::uint32_t kArtifactEndianTag = 0x01020304;
// Version 2 added the EDGE section (per-state edge classes) and the star
// protocol kind; version-1 readers reject such artifacts loudly.  Because
// nothing in the v1 layout changed, this build still reads v1 files
// (load accepts {1, 2}, save always writes 2).
inline constexpr std::uint32_t kArtifactVersion = 2;

// Which engine the artifact's sweep runs on.
enum class artifact_engine : std::uint32_t { tuned = 0, wellmixed = 1 };

// Protocols an artifact can describe.  The descriptor stores the *resolved*
// construction parameters (e.g. the fast protocol's h/L/α·L, which normally
// come from a seeded broadcast-time estimate), so every worker reconstructs
// exactly the producer's protocol object without re-estimating anything.
enum class protocol_kind : std::uint32_t { fast = 1, six = 2, star = 3 };

struct protocol_desc {
  protocol_kind kind = protocol_kind::fast;
  std::vector<std::uint64_t> params;  // fast: {h, L, α·L}; six: {n}

  friend bool operator==(const protocol_desc&, const protocol_desc&) = default;
};

protocol_desc fast_desc(const fast_params& params);
fast_params fast_params_of(const protocol_desc& desc);
protocol_desc six_desc(node_id n);
node_id six_population_of(const protocol_desc& desc);
// star_protocol is parameter-free: the descriptor is {star, {}} and
// expect_star_desc only validates the shape (workers construct
// star_protocol{} directly).
protocol_desc star_desc();
void expect_star_desc(const protocol_desc& desc);

// Semantic snapshot of a closed compiled_protocol table over its dense ids:
// the per-state encode() codes (the cross-process state identity), output
// roles, census contributions and the full k×k transition matrix.
struct table_section {
  std::uint32_t counters = 0;
  std::vector<std::uint64_t> codes;  // encode(state) per dense id
  std::vector<std::uint8_t> roles;   // role per dense id
  std::vector<std::array<std::int8_t, kMaxCensusCounters>> contrib;
  struct entry {
    std::uint32_t a2 = 0;
    std::uint32_t b2 = 0;
    std::array<std::int8_t, kMaxCensusCounters> delta{};

    friend bool operator==(const entry&, const entry&) = default;
  };
  std::vector<entry> entries;  // k×k, row-major (a·k + b)

  friend bool operator==(const table_section&, const table_section&) = default;
};

// Raw bytes of a packed_table<W> snapshot at the resolved config word width
// (the exact entries run_packed's hot loop loads).
struct packed_section {
  std::uint32_t width_bits = 0;  // 8 / 16 / 32
  std::uint64_t num_states = 0;
  std::vector<std::uint8_t> bytes;  // num_states² packed entries

  friend bool operator==(const packed_section&, const packed_section&) = default;
};

// The sweep's graph in its *original* labelling plus the vertex order the
// tuned engine relabels it with; old_of_new is tuned_runner's inverse
// permutation (empty for natural order), stored so a worker can verify its
// recomputed reordering matches the producer's bit-for-bit.
struct graph_section {
  std::uint32_t num_nodes = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;  // u < v, sorted
  std::uint32_t order = 0;  // vertex_order
  std::vector<std::uint32_t> old_of_new;  // empty for natural order

  friend bool operator==(const graph_section&, const graph_section&) = default;
};

// Edge-census declaration of a tuned sweep (edge-census protocols only):
// the number of edge classes and each dense state id's class, i.e. exactly
// the table run_packed's class-flip walks load.  The CSR adjacency itself is
// derived deterministically from the GRPH section, so it is not stored.
struct edge_section {
  std::uint32_t num_classes = 0;
  std::vector<std::uint8_t> classes;  // class per dense state id

  friend bool operator==(const edge_section&, const edge_section&) = default;
};

// Well-mixed initial configuration as (encode(state), multiplicity) classes
// in interning order; multiplicities sum to the population size.
struct wellmixed_section {
  std::uint64_t population = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> classes;

  friend bool operator==(const wellmixed_section&, const wellmixed_section&) = default;
};

struct sweep_artifact {
  artifact_engine engine = artifact_engine::tuned;
  std::string family;  // display name of the graph family ("cycle", ...)
  protocol_desc protocol;
  std::uint32_t pack_bits = 0;  // resolved config word width (tuned engine)
  std::optional<graph_section> graph;         // tuned engine
  std::optional<table_section> table;         // closed tables only
  std::optional<packed_section> packed;       // tuned engine
  std::optional<edge_section> edge;           // edge-census protocols only
  std::optional<wellmixed_section> wellmixed;  // well-mixed engine

  friend bool operator==(const sweep_artifact&, const sweep_artifact&) = default;
};

// FNV-1a 64-bit hash (the header checksum).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

// Serialization is deterministic: equal artifacts produce equal bytes, so
// save → load → save round-trips byte-identically (the CI round-trip gate).
std::vector<std::uint8_t> artifact_bytes(const sweep_artifact& artifact);
sweep_artifact artifact_from_bytes(const std::vector<std::uint8_t>& bytes);
void save_artifact(const sweep_artifact& artifact, const std::string& path);
sweep_artifact load_artifact(const std::string& path);

graph_section snapshot_graph(const graph& g, vertex_order order,
                             const std::vector<node_id>& old_of_new);
graph rebuild_graph(const graph_section& section);

// ---------------------------------------------------------------------------
// Snapshot / validate helpers over the compiled engine.  Snapshots require a
// closed table (an artifact of a lazily-filled table would depend on which
// pairs happened to occur); validators throw std::invalid_argument naming the
// first divergence.

template <compilable_protocol P>
table_section snapshot_table(const compiled_protocol<P>& compiled) {
  expects(compiled.closed(), "snapshot_table: artifacts hold closed tables only");
  using state_id = typename compiled_protocol<P>::state_id;
  const std::size_t k = compiled.num_states();
  table_section t;
  t.counters = static_cast<std::uint32_t>(compiled.kCounters);
  t.codes.reserve(k);
  t.roles.reserve(k);
  t.contrib.reserve(k);
  for (std::size_t id = 0; id < k; ++id) {
    const auto sid = static_cast<state_id>(id);
    t.codes.push_back(compiled.protocol().encode(compiled.decode(sid)));
    t.roles.push_back(static_cast<std::uint8_t>(compiled.output(sid)));
    t.contrib.push_back(compiled.contribution(sid));
  }
  t.entries.reserve(k * k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      const auto& e = compiled.closed_transition(static_cast<state_id>(a),
                                                 static_cast<state_id>(b));
      t.entries.push_back({e.a2, e.b2, e.delta});
    }
  }
  return t;
}

template <compilable_protocol P>
void validate_table(const table_section& section,
                    const compiled_protocol<P>& compiled) {
  expects(snapshot_table(compiled) == section,
          "artifact: this build's closed table diverges from the stored one "
          "(producer/worker version skew)");
}

template <compilable_protocol P>
packed_section snapshot_packed(const compiled_protocol<P>& compiled,
                               int pack_bits) {
  packed_section s;
  s.width_bits = static_cast<std::uint32_t>(pack_bits);
  s.num_states = compiled.num_states();
  const auto snap = [&]<typename W>() {
    const packed_table<W, P> table(compiled);
    const auto entries = table.entries();
    s.bytes.resize(entries.size_bytes());
    std::memcpy(s.bytes.data(), entries.data(), entries.size_bytes());
  };
  switch (pack_bits) {
    case 8: snap.template operator()<std::uint8_t>(); break;
    case 16: snap.template operator()<std::uint16_t>(); break;
    case 32: snap.template operator()<std::uint32_t>(); break;
    default:
      expects(false, "snapshot_packed: pack_bits must be 8, 16 or 32");
  }
  return s;
}

template <compilable_protocol P>
void validate_packed(const packed_section& section,
                     const compiled_protocol<P>& compiled) {
  expects(section.width_bits == 8 || section.width_bits == 16 ||
              section.width_bits == 32,
          "artifact: packed section has an invalid word width");
  expects(snapshot_packed(compiled, static_cast<int>(section.width_bits)) ==
              section,
          "artifact: this build's packed table diverges from the stored one");
}

template <edge_census_protocol P>
edge_section snapshot_edge(const compiled_protocol<P>& compiled) {
  expects(compiled.closed(), "snapshot_edge: artifacts hold closed tables only");
  edge_section s;
  s.num_classes = static_cast<std::uint32_t>(edge_census_traits<P>::kClasses);
  s.classes.reserve(compiled.num_states());
  using state_id = typename compiled_protocol<P>::state_id;
  for (std::size_t id = 0; id < compiled.num_states(); ++id) {
    s.classes.push_back(compiled.state_class(static_cast<state_id>(id)));
  }
  return s;
}

template <edge_census_protocol P>
void validate_edge(const edge_section& section,
                   const compiled_protocol<P>& compiled) {
  expects(snapshot_edge(compiled) == section,
          "artifact: this build's edge classes diverge from the stored ones "
          "(producer/worker version skew)");
}

template <node_census_protocol P>
wellmixed_section snapshot_wellmixed(const P& proto,
                                     const wellmixed_multiset<P>& initial,
                                     std::uint64_t n) {
  wellmixed_section s;
  s.population = n;
  std::uint64_t mass = 0;
  for (const auto& [state, count] : initial) {
    s.classes.emplace_back(proto.encode(state), count);
    mass += count;
  }
  expects(mass == n, "snapshot_wellmixed: multiplicities must sum to n");
  return s;
}

template <node_census_protocol P>
void validate_wellmixed(const wellmixed_section& section, const P& proto,
                        const wellmixed_multiset<P>& initial) {
  expects(snapshot_wellmixed(proto, initial, section.population) == section,
          "artifact: this build's initial multiset diverges from the stored "
          "one");
}

// ---------------------------------------------------------------------------
// Whole-sweep artifacts.

// Snapshot of a prepared tuned_runner (per-interaction engine).  Requires
// the reachable space to have closed — an artifact cannot pin a lazy table.
template <compilable_protocol P>
sweep_artifact make_tuned_artifact(const tuned_runner<P>& runner,
                                   const graph& original, std::string family,
                                   protocol_desc protocol) {
  expects(runner.packed(),
          "make_tuned_artifact: the reachable state space exceeded the "
          "closure budget; artifacts hold closed tables only");
  sweep_artifact a;
  a.engine = artifact_engine::tuned;
  a.family = std::move(family);
  a.protocol = std::move(protocol);
  a.pack_bits = static_cast<std::uint32_t>(runner.pack_bits());
  a.graph = snapshot_graph(original, runner.order(), runner.old_of_new());
  a.table = snapshot_table(runner.compiled());
  a.packed = snapshot_packed(runner.compiled(), runner.pack_bits());
  if constexpr (edge_census_protocol<P>) {
    a.edge = snapshot_edge(runner.compiled());
  }
  return a;
}

// The engine_tuning a worker rebuilds the runner with: the stored order plus
// the *resolved* width, forced so the rebuild cannot re-resolve differently.
engine_tuning tuning_of(const sweep_artifact& artifact);

// Validates a rebuilt runner against the artifact: same resolved layout,
// same reorder permutation, byte-identical closed and packed tables.
template <compilable_protocol P>
void validate_tuned_artifact(const sweep_artifact& artifact,
                             const tuned_runner<P>& runner) {
  expects(artifact.engine == artifact_engine::tuned &&
              artifact.graph.has_value() && artifact.table.has_value() &&
              artifact.packed.has_value(),
          "artifact: not a tuned-engine sweep artifact");
  expects(runner.packed(), "artifact: rebuilt runner fell back to a lazy table");
  expects(runner.pack_bits() == static_cast<int>(artifact.pack_bits),
          "artifact: rebuilt runner resolved a different config word width");
  expects(static_cast<std::uint32_t>(runner.order()) == artifact.graph->order,
          "artifact: rebuilt runner uses a different vertex order");
  const auto& map = runner.old_of_new();
  expects(map.size() == artifact.graph->old_of_new.size(),
          "artifact: reorder permutation size diverges from this build");
  for (std::size_t v = 0; v < map.size(); ++v) {
    expects(static_cast<std::uint32_t>(map[v]) == artifact.graph->old_of_new[v],
            "artifact: reorder permutation diverges from this build");
  }
  validate_table(*artifact.table, runner.compiled());
  validate_packed(*artifact.packed, runner.compiled());
  if constexpr (edge_census_protocol<P>) {
    expects(artifact.edge.has_value(),
            "artifact: edge-census protocol without an EDGE section");
    validate_edge(*artifact.edge, runner.compiled());
  } else {
    expects(!artifact.edge.has_value(),
            "artifact: EDGE section on a counter-shaped protocol");
  }
}

// Snapshot of a well-mixed sweep: the initial multiset plus — when the
// reachable space closes within the engine budget — the closed table, so
// workers can also gate their transition semantics.
template <node_census_protocol P>
sweep_artifact make_wellmixed_artifact(const P& proto,
                                       const wellmixed_multiset<P>& initial,
                                       std::uint64_t n, std::string family,
                                       protocol_desc protocol) {
  sweep_artifact a;
  a.engine = artifact_engine::wellmixed;
  a.family = std::move(family);
  a.protocol = std::move(protocol);
  a.wellmixed = snapshot_wellmixed(proto, initial, n);
  const wellmixed_sweep<P> sweep(proto, initial, n);
  if (sweep.shared()) a.table = snapshot_table(sweep.compiled());
  return a;
}

template <node_census_protocol P>
void validate_wellmixed_artifact(const sweep_artifact& artifact, const P& proto,
                                 const wellmixed_multiset<P>& initial) {
  expects(artifact.engine == artifact_engine::wellmixed &&
              artifact.wellmixed.has_value(),
          "artifact: not a well-mixed sweep artifact");
  validate_wellmixed(*artifact.wellmixed, proto, initial);
  if (artifact.table.has_value()) {
    const wellmixed_sweep<P> sweep(proto, initial, artifact.wellmixed->population);
    expects(sweep.shared(),
            "artifact: stored table is closed but this build's closure "
            "exceeded the budget");
    validate_table(*artifact.table, sweep.compiled());
  }
}

}  // namespace pp::fleet
