#include "fleet/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fleet/wire.h"
#include "support/expects.h"

namespace pp::fleet {

namespace {

constexpr std::size_t kHeaderBytes = 32;
// One journal record is exactly one wire.h checked frame of a trial record.
constexpr std::size_t kRecordBytes = wire::framed_size(kTrialRecordPayload);
constexpr wire::frame_limits kRecordLimits{kTrialRecordPayload,
                                           kTrialRecordPayload};

void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::vector<std::uint8_t> read_file(const std::string& path, bool& exists) {
  std::vector<std::uint8_t> bytes;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    exists = false;
    return bytes;
  }
  exists = true;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      expects(false, "journal: read failed for " + path + ": " +
                         std::strerror(errno));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

journal_header parse_header(const std::vector<std::uint8_t>& bytes,
                            const std::string& path) {
  expects(bytes.size() >= kHeaderBytes,
          "journal: " + path + " is too short to hold a journal header");
  expects(get_u32(bytes.data()) == kJournalMagic,
          "journal: " + path + " is not a .ppaj journal (bad magic)");
  expects(get_u32(bytes.data() + 4) == kJournalEndianTag,
          "journal: " + path + " was written on a foreign-endian host");
  expects(get_u32(bytes.data() + 8) == kJournalVersion,
          "journal: " + path + " has an unsupported format version");
  expects(get_u32(bytes.data() + 12) == 0,
          "journal: " + path + " has a nonzero reserved header field");
  journal_header h;
  h.tag = get_u64(bytes.data() + 16);
  h.trials = get_u64(bytes.data() + 24);
  return h;
}

void write_header(int fd, const journal_header& header, const std::string& path) {
  std::uint8_t buf[kHeaderBytes];
  put_u32(buf, kJournalMagic);
  put_u32(buf + 4, kJournalEndianTag);
  put_u32(buf + 8, kJournalVersion);
  put_u32(buf + 12, 0);
  put_u64(buf + 16, header.tag);
  put_u64(buf + 24, header.trials);
  const std::uint8_t* p = buf;
  std::size_t left = sizeof(buf);
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    expects(n >= 0 || errno == EINTR,
            "journal: header write failed for " + path + ": " +
                std::strerror(errno));
    if (n > 0) {
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }
}

}  // namespace

journal_replay replay_journal(const std::string& path) {
  bool exists = false;
  const std::vector<std::uint8_t> bytes = read_file(path, exists);
  expects(exists, "journal: cannot open " + path);
  journal_replay replay;
  replay.header = parse_header(bytes, path);
  std::size_t off = kHeaderBytes;
  replay.durable_bytes = off;
  while (off + kRecordBytes <= bytes.size()) {
    wire::frame_view frame;
    const wire::decode_status status = wire::decode_frame(
        bytes.data() + off, bytes.size() - off, kRecordLimits, frame);
    if (status == wire::decode_status::bad_length) {
      // Broken framing: nothing past this offset can be trusted.
      replay.torn_tail = true;
      return replay;
    }
    off += kRecordBytes;
    replay.durable_bytes = off;
    if (status == wire::decode_status::bad_checksum) {
      // Bit rot inside one record: the fixed-size framing survives, so the
      // damaged trial is simply dropped (and re-runs on resume).
      ++replay.corrupt_records;
      continue;
    }
    const trial_record record = decode_trial_record(frame.payload);
    if (record.trial >= replay.header.trials) {
      ++replay.corrupt_records;
      continue;
    }
    replay.records.push_back(record);
  }
  if (off != bytes.size()) replay.torn_tail = true;  // writer died mid-record
  return replay;
}

journal_writer::journal_writer(const std::string& path,
                               const journal_header& header, bool resume) {
  std::uint64_t append_at = kHeaderBytes;
  bool fresh = true;
  if (resume) {
    bool exists = false;
    const std::vector<std::uint8_t> bytes = read_file(path, exists);
    if (exists && !bytes.empty()) {
      const journal_replay replay = replay_journal(path);
      expects(replay.header == header,
              "journal: " + path + " was written for a different sweep "
              "(seed/trials mismatch); refusing to resume into it");
      append_at = replay.durable_bytes;
      fresh = false;
    }
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | (fresh ? O_TRUNC : 0), 0644);
  expects(fd_ >= 0, "journal: cannot open " + path + " for writing: " +
                        std::strerror(errno));
  if (fresh) {
    write_header(fd_, header, path);
  } else {
    // Truncate away any torn tail so appended records stay well-framed.
    expects(::ftruncate(fd_, static_cast<off_t>(append_at)) == 0,
            "journal: cannot truncate the torn tail of " + path);
    expects(::lseek(fd_, 0, SEEK_END) >= 0,
            "journal: cannot seek to the end of " + path);
  }
}

journal_writer::~journal_writer() {
  if (fd_ >= 0) ::close(fd_);
}

void journal_writer::append(const trial_record& record) {
  // One write(2) for the whole record: a crash tears at most this record,
  // and the torn tail is truncated away on resume.
  std::uint8_t payload[kTrialRecordPayload];
  encode_trial_record(record, payload);
  std::uint8_t buf[kRecordBytes];
  wire::encode_frame(payload, kTrialRecordPayload, buf);
  const std::uint8_t* p = buf;
  std::size_t left = sizeof(buf);
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    ensure(n >= 0 || errno == EINTR,
           std::string("journal: append failed: ") + std::strerror(errno));
    if (n > 0) {
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }
}

}  // namespace pp::fleet
