// Resident sweep daemon ("popsimd", `popsim --serve PORT`): accepts net.h
// sweep requests, keeps loaded-and-verified artifacts hot in a
// checksum-keyed LRU cache, and streams trial records back over the
// requesting connection.
//
// Lifecycle per connection (wire protocol in net.h):
//
//   accept ─► REQ_SWEEP ─► version gate ─► cache lookup by checksum
//     hit  ─► OK_CACHED ─► fork a runner child streaming the chunk
//     miss ─► NEED_ARTIFACT ─► ARTIFACT_DATA ─► fnv1a64(bytes) == declared
//             checksum? parse, rebuild, validate byte-for-byte against the
//             stored sections (artifact.h's version-skew gate) ─► cache ─►
//             OK_CACHED ─► fork a runner child
//     any failure (version skew, checksum mismatch, malformed request,
//     validation divergence) ─► ERR {message} + stderr log, then close:
//     rejections are loud, never silent.
//
// The parent process multiplexes the listening socket and all in-handshake
// connections from one poll loop and owns the cache; each accepted sweep
// runs in a forked child that inherits the prepared runner copy-on-write
// (the same trick fleet_run plays) and writes record frames straight to the
// connection.  Concurrent requests therefore stream concurrently, and a
// child that dies mid-stream takes exactly one connection with it — the
// client's supervisor treats it like any dead worker.
//
// Cache policy: entries are keyed by the artifact file checksum; total
// cached artifact bytes are capped by `cache_mb`, evicting least-recently-
// used entries first (the entry serving the current request is never
// evicted).  A re-request of an evicted artifact is just a cache miss: the
// client ships the bytes again.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace pp::fleet {

struct service_options {
  std::uint16_t port = 0;       // 0 = kernel-assigned ephemeral port
  std::uint64_t cache_mb = 256; // artifact cache budget
  int backlog = 128;            // listen(2) backlog
};

class sweep_service {
 public:
  // Binds and listens immediately (throws on failure), so port() is valid —
  // and an ephemeral port is discoverable — before run() is entered.
  explicit sweep_service(const service_options& options);
  ~sweep_service();
  sweep_service(const sweep_service&) = delete;
  sweep_service& operator=(const sweep_service&) = delete;

  std::uint16_t port() const { return port_; }

  // Serves forever (the daemon loop).  Runner children are reaped as they
  // finish; handshakes that stall past their deadline are dropped.
  [[noreturn]] void run();

 private:
  struct state;
  std::unique_ptr<state> state_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

// Test/bench helper: runs a sweep_service in a forked child process.  The
// socket is bound in the constructing process (so port() is known even for
// port 0) and the child enters run(); the destructor SIGKILLs and reaps it.
class service_process {
 public:
  explicit service_process(const service_options& options);
  ~service_process();
  service_process(const service_process&) = delete;
  service_process& operator=(const service_process&) = delete;

  std::uint16_t port() const { return port_; }

 private:
  std::uint16_t port_ = 0;
  pid_t pid_ = -1;
};

}  // namespace pp::fleet
