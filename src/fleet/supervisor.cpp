#include "fleet/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <optional>

#include "support/expects.h"

namespace pp::fleet {

namespace {

using steady_clock = std::chrono::steady_clock;

std::int64_t ms_until(steady_clock::time_point when) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             when - steady_clock::now())
      .count();
}

// One supervised worker slot.  `chunk` is the contiguous trial range the
// current (or next, while backing off) worker owns; `done` counts the
// records already received for it, so the outstanding remainder is always
// {chunk.base + done, chunk.count - done}.
struct slot_state {
  pid_t pid = -1;
  int fd = -1;
  std::vector<std::uint8_t> buf;  // unparsed pipe bytes
  trial_range chunk{0, 0};
  std::uint64_t done = 0;
  steady_clock::time_point last_activity;
  steady_clock::time_point respawn_at;
  int attempts = 0;         // respawns already spent on this chunk
  bool running = false;
  bool waiting = false;     // backing off before a respawn
  bool ever_launched = false;  // faults are injected on a slot's first launch only
};

// Error-path teardown: any exit from the supervisor (including a throw)
// SIGKILLs and reaps every still-running worker, so no path leaks zombies.
struct slot_reaper {
  std::vector<slot_state>* slots;
  ~slot_reaper() {
    for (slot_state& s : *slots) {
      if (s.fd >= 0) {
        ::close(s.fd);
        s.fd = -1;
      }
      if (s.pid >= 0) {
        ::kill(s.pid, SIGKILL);
        while (::waitpid(s.pid, nullptr, 0) < 0 && errno == EINTR) {
        }
        s.pid = -1;
      }
    }
  }
};

// Splits the not-yet-completed trials into contiguous chunks of roughly
// pending/jobs trials each (a chunk never spans a completed trial, so after
// a resume the queue covers exactly the journal's gaps).
std::deque<trial_range> chunk_pending(const std::vector<std::uint8_t>& received,
                                      std::uint64_t trials, int jobs) {
  std::vector<trial_range> runs;
  std::uint64_t pending = 0;
  for (std::uint64_t t = 0; t < trials;) {
    if (received[t]) {
      ++t;
      continue;
    }
    const std::uint64_t base = t;
    while (t < trials && !received[t]) ++t;
    runs.push_back({base, t - base});
    pending += t - base;
  }
  std::deque<trial_range> queue;
  if (pending == 0) return queue;
  const std::uint64_t target =
      (pending + static_cast<std::uint64_t>(jobs) - 1) /
      static_cast<std::uint64_t>(jobs);
  for (const trial_range& run : runs) {
    std::uint64_t base = run.base;
    std::uint64_t left = run.count;
    while (left > 0) {
      const std::uint64_t count = std::min(left, target);
      queue.push_back({base, count});
      base += count;
      left -= count;
    }
  }
  return queue;
}

// Launches one worker for `chunk` in slot `slot`; `inject` asks for fault
// injection (first-generation workers only).  `open_fds` are the parent's
// currently open pipe read ends, which the child must close.
using launch_fn = std::function<child_guard::child(
    int slot, trial_range chunk, bool inject, const std::vector<int>& open_fds)>;

// The shared supervision core of the fork and exec drivers.
std::vector<election_result> supervise(std::uint64_t trials, rng seed_gen,
                                       int jobs,
                                       const supervise_options& options,
                                       const launch_fn& launch,
                                       const trial_fn& inline_fn,
                                       const char* what) {
  expects(jobs >= 1, std::string(what) + ": jobs must be >= 1");
  expects(options.max_retries >= 0, std::string(what) + ": max_retries must be >= 0");
  for (const fault_spec& f : options.faults) {
    expects(f.worker >= 0 && f.worker < jobs,
            std::string(what) + ": fault spec names worker slot w" +
                std::to_string(f.worker) + " beyond the " +
                std::to_string(jobs) + "-worker fleet");
  }
  expects(!options.resume || !options.journal_path.empty(),
          std::string(what) + ": resume needs a journal path");

  std::vector<election_result> results(trials);
  std::vector<std::uint8_t> received(trials, 0);
  std::uint64_t completed = 0;

  std::optional<journal_writer> journal;
  if (!options.journal_path.empty()) {
    const journal_header header{options.journal_tag, trials};
    if (options.resume) {
      const journal_replay replay = replay_journal(options.journal_path);
      expects(replay.header == header,
              std::string(what) + ": " + options.journal_path +
                  " belongs to a different sweep (seed/trials mismatch)");
      for (const trial_record& r : replay.records) {
        if (!received[r.trial]) ++completed;
        received[r.trial] = 1;       // determinism: a re-run record is identical,
        results[r.trial] = r.result; // so last-wins replay is safe
      }
      std::fprintf(stderr,
                   "fleet supervisor: resumed %llu/%llu trial(s) from %s"
                   "%s%s\n",
                   static_cast<unsigned long long>(completed),
                   static_cast<unsigned long long>(trials),
                   options.journal_path.c_str(),
                   replay.corrupt_records > 0 ? " (skipped corrupt records)" : "",
                   replay.torn_tail ? " (truncated torn tail)" : "");
    }
    journal.emplace(options.journal_path, header, options.resume);
  }

  auto deliver = [&](std::uint64_t t, const election_result& r) {
    if (!received[t]) ++completed;
    received[t] = 1;
    results[t] = r;
    if (journal) journal->append({t, r});
  };

  std::deque<trial_range> queue = chunk_pending(received, trials, jobs);
  const int nslots = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(jobs), queue.size()));
  std::vector<slot_state> slots(static_cast<std::size_t>(nslots));
  slot_reaper reaper{&slots};
  int retries_used = 0;
  bool degraded = false;
  std::vector<trial_range> leftover;  // chunks to run inline once degraded

  auto open_read_fds = [&]() {
    std::vector<int> fds;
    for (const slot_state& s : slots) {
      if (s.fd >= 0) fds.push_back(s.fd);
    }
    return fds;
  };

  auto start_worker = [&](int i, trial_range chunk) {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    const bool inject = !s.ever_launched && !options.faults.empty();
    const child_guard::child c = launch(i, chunk, inject, open_read_fds());
    s.ever_launched = true;
    s.pid = c.pid;
    s.fd = c.read_fd;
    const int flags = ::fcntl(s.fd, F_GETFL, 0);
    ensure(flags >= 0 && ::fcntl(s.fd, F_SETFL, flags | O_NONBLOCK) == 0,
           std::string(what) + ": cannot make a worker pipe non-blocking");
    s.buf.clear();
    s.chunk = chunk;
    s.done = 0;
    s.running = true;
    s.waiting = false;
    s.last_activity = steady_clock::now();
  };

  // Kills (if alive) and reaps slot i's worker, then routes its outstanding
  // trials: respawn after backoff while the retry budget lasts, else switch
  // the sweep into degraded mode and queue the remainder for inline
  // execution.
  auto fail_slot = [&](int i, const char* why) {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    if (s.fd >= 0) {
      ::close(s.fd);
      s.fd = -1;
    }
    if (s.pid >= 0) {
      ::kill(s.pid, SIGKILL);
      while (::waitpid(s.pid, nullptr, 0) < 0 && errno == EINTR) {
      }
      s.pid = -1;
    }
    s.buf.clear();  // a partial trailing record is torn: discard it
    s.running = false;
    const trial_range rest{s.chunk.base + s.done, s.chunk.count - s.done};
    if (rest.count == 0) {
      // Every assigned trial arrived before the worker died: nothing to redo.
      s.waiting = false;
      return;
    }
    if (!degraded && retries_used < options.max_retries) {
      ++retries_used;
      ++s.attempts;
      s.chunk = rest;
      s.done = 0;
      s.waiting = true;
      std::int64_t delay = options.backoff_initial_ms;
      for (int a = 1; a < s.attempts && delay < options.backoff_max_ms; ++a) {
        delay *= 2;
      }
      delay = std::min<std::int64_t>(delay, options.backoff_max_ms);
      s.respawn_at = steady_clock::now() + std::chrono::milliseconds(delay);
      std::fprintf(stderr,
                   "fleet supervisor: worker slot %d failed (%s), %llu trial(s) "
                   "outstanding; respawning in %lld ms (retry %d/%d)\n",
                   i, why, static_cast<unsigned long long>(rest.count),
                   static_cast<long long>(delay), retries_used,
                   options.max_retries);
    } else {
      degraded = true;
      leftover.push_back(rest);
      s.waiting = false;
      std::fprintf(stderr,
                   "fleet supervisor: worker slot %d failed (%s) with the retry "
                   "budget exhausted; %llu trial(s) will run inline\n",
                   i, why, static_cast<unsigned long long>(rest.count));
    }
  };

  // Parses complete records off slot i's buffer.  Returns false on a
  // protocol violation (bad length, out-of-order or duplicate trial) — the
  // worker is then failed, keeping the valid prefix.
  auto parse_buffer = [&](int i) -> bool {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    std::size_t off = 0;
    bool ok = true;
    while (s.buf.size() - off >= 4) {
      std::uint32_t length = 0;
      std::memcpy(&length, s.buf.data() + off, 4);
      if (length != kTrialRecordPayload) {
        ok = false;
        break;
      }
      if (s.buf.size() - off < 4ull + length) break;
      const trial_record r = decode_trial_record(s.buf.data() + off + 4);
      if (r.trial != s.chunk.base + s.done || received[r.trial]) {
        ok = false;
        break;
      }
      deliver(r.trial, r.result);
      ++s.done;
      off += 4ull + length;
    }
    s.buf.erase(s.buf.begin(),
                s.buf.begin() + static_cast<std::ptrdiff_t>(off));
    return ok;
  };

  auto handle_eof = [&](int i) {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    ::close(s.fd);
    s.fd = -1;
    int status = 0;
    while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
    }
    s.pid = -1;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    const bool complete = s.done == s.chunk.count && s.buf.empty();
    if (complete) {
      // All assigned trials arrived; a nonzero exit after the last record
      // (e.g. an injected exit fault) costs nothing.
      s.running = false;
      s.waiting = false;
      return;
    }
    fail_slot(i, clean ? "stream ended early"
                       : "worker exited abnormally");
  };

  auto read_slot = [&](int i) {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    bool eof = false;
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t n = ::read(s.fd, buf, sizeof(buf));
      if (n > 0) {
        s.buf.insert(s.buf.end(), buf, buf + n);
        s.last_activity = steady_clock::now();
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      fail_slot(i, "pipe read error");
      return;
    }
    if (!parse_buffer(i)) {
      fail_slot(i, "record protocol violation");
      return;
    }
    if (eof) handle_eof(i);
  };

  while (true) {
    if (degraded) {
      while (!queue.empty()) {
        leftover.push_back(queue.front());
        queue.pop_front();
      }
    } else {
      for (int i = 0; i < nslots && !queue.empty(); ++i) {
        slot_state& s = slots[static_cast<std::size_t>(i)];
        if (!s.running && !s.waiting) {
          s.attempts = 0;
          start_worker(i, queue.front());
          queue.pop_front();
        }
      }
    }
    // Respawns whose backoff elapsed.
    for (int i = 0; i < nslots; ++i) {
      slot_state& s = slots[static_cast<std::size_t>(i)];
      if (s.waiting && !degraded && ms_until(s.respawn_at) <= 0) {
        start_worker(i, s.chunk);
      } else if (s.waiting && degraded) {
        leftover.push_back(s.chunk);
        s.waiting = false;
      }
    }

    bool any_running = false;
    bool any_waiting = false;
    for (const slot_state& s : slots) {
      any_running = any_running || s.running;
      any_waiting = any_waiting || s.waiting;
    }
    if (!any_running && !any_waiting && queue.empty()) break;

    // Poll timeout: the nearest of inactivity deadlines and respawn timers,
    // clamped to 200 ms so state re-checks stay cheap and frequent.
    std::int64_t timeout = 200;
    std::vector<pollfd> fds;
    std::vector<int> fd_slot;
    for (int i = 0; i < nslots; ++i) {
      slot_state& s = slots[static_cast<std::size_t>(i)];
      if (s.running) {
        fds.push_back({s.fd, POLLIN, 0});
        fd_slot.push_back(i);
        if (options.worker_timeout_ms > 0) {
          const std::int64_t until =
              ms_until(s.last_activity +
                       std::chrono::milliseconds(options.worker_timeout_ms));
          timeout = std::min(timeout, std::max<std::int64_t>(until, 0));
        }
      } else if (s.waiting) {
        timeout = std::min(timeout,
                           std::max<std::int64_t>(ms_until(s.respawn_at), 0));
      }
    }
    if (!fds.empty()) {
      const int ready = ::poll(fds.data(), fds.size(),
                               static_cast<int>(timeout));
      ensure(ready >= 0 || errno == EINTR,
             std::string(what) + ": poll failed: " + std::strerror(errno));
      for (std::size_t k = 0; k < fds.size(); ++k) {
        if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) {
          const int i = fd_slot[k];
          if (slots[static_cast<std::size_t>(i)].running) read_slot(i);
        }
      }
    } else if (timeout > 0) {
      ::usleep(static_cast<useconds_t>(timeout) * 1000);
    }
    // Inactivity timeouts: a worker that went silent past the deadline is
    // killed and its remainder rerouted (kill -> backoff -> respawn).
    if (options.worker_timeout_ms > 0) {
      for (int i = 0; i < nslots; ++i) {
        slot_state& s = slots[static_cast<std::size_t>(i)];
        if (s.running &&
            ms_until(s.last_activity +
                     std::chrono::milliseconds(options.worker_timeout_ms)) <= 0) {
          fail_slot(i, "inactivity timeout");
        }
      }
    }
  }

  if (!leftover.empty()) {
    ensure(static_cast<bool>(inline_fn),
           std::string(what) + ": retry budget exhausted and no inline "
                               "fallback is available");
    std::sort(leftover.begin(), leftover.end(),
              [](const trial_range& a, const trial_range& b) {
                return a.base < b.base;
              });
    for (const trial_range& range : leftover) {
      for (std::uint64_t t = range.base; t < range.base + range.count; ++t) {
        if (!received[t]) deliver(t, inline_fn(t, seed_gen.fork(t)));
      }
    }
  }

  ensure(completed == trials,
         std::string(what) + ": a trial result never arrived");
  return results;
}

}  // namespace

void run_trial_block(trial_range range, int fd, const trial_fn& fn,
                     const rng& seed_gen, const fault_injector& injector) {
  std::uint64_t written = 0;
  for (std::uint64_t t = range.base; t < range.base + range.count; ++t) {
    injector.before_record(fd, written);
    write_trial_record(fd, {t, fn(t, seed_gen.fork(t))});
    ++written;
  }
}

std::vector<election_result> supervised_fleet_run(
    std::uint64_t trials, rng seed_gen, const trial_fn& fn, int jobs,
    const supervise_options& options) {
  const launch_fn launch = [&](int slot, trial_range chunk, bool inject,
                               const std::vector<int>& open_fds) {
    int fds[2];
    ensure(::pipe(fds) == 0, "supervised_fleet_run: pipe failed");
    const pid_t pid = ::fork();
    ensure(pid >= 0, "supervised_fleet_run: fork failed");
    if (pid == 0) {
      ::close(fds[0]);
      for (const int fd : open_fds) ::close(fd);
      ignore_sigpipe();
      int status = 0;
      try {
        const fault_injector injector =
            inject ? fault_injector(options.faults, slot) : fault_injector();
        run_trial_block(chunk, fds[1], fn, seed_gen, injector);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fleet worker slot %d: %s\n", slot, e.what());
        status = 1;
      }
      ::close(fds[1]);
      ::_exit(status);
    }
    ::close(fds[1]);
    return child_guard::child{pid, fds[0]};
  };
  return supervise(trials, seed_gen, jobs, options, launch, fn,
                   "supervised_fleet_run");
}

std::vector<election_result> supervised_spawn_sweep(
    const std::string& exe, const std::string& manifest_path,
    const worker_manifest& manifest, const supervise_options& options,
    const trial_fn& inline_fn) {
  const launch_fn launch = [&](int slot, trial_range chunk, bool inject,
                               const std::vector<int>& open_fds) {
    int fds[2];
    ensure(::pipe(fds) == 0, "supervised_spawn_sweep: pipe failed");
    const pid_t pid = ::fork();
    ensure(pid >= 0, "supervised_spawn_sweep: fork failed");
    if (pid == 0) {
      ::close(fds[0]);
      for (const int fd : open_fds) ::close(fd);
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[1]);
      const std::string index = std::to_string(slot);
      const std::string base = std::to_string(chunk.base);
      const std::string count = std::to_string(chunk.count);
      const std::string faults = to_string(options.faults);
      if (inject && !faults.empty()) {
        ::execl(exe.c_str(), exe.c_str(), "--worker", manifest_path.c_str(),
                index.c_str(), base.c_str(), count.c_str(), faults.c_str(),
                static_cast<char*>(nullptr));
      } else {
        ::execl(exe.c_str(), exe.c_str(), "--worker", manifest_path.c_str(),
                index.c_str(), base.c_str(), count.c_str(),
                static_cast<char*>(nullptr));
      }
      std::fprintf(stderr, "supervised_spawn_sweep: exec %s failed: %s\n",
                   exe.c_str(), std::strerror(errno));
      ::_exit(127);
    }
    ::close(fds[1]);
    return child_guard::child{pid, fds[0]};
  };
  // Trial t of the sweep uses rng(seed).fork(2).fork(t), exactly the serial
  // derivation (sweep.h) — needed here for the inline degraded path.
  const rng seed_gen = rng(manifest.seed).fork(2);
  return supervise(manifest.trials, seed_gen, manifest.jobs, options, launch,
                   inline_fn, "supervised_spawn_sweep");
}

}  // namespace pp::fleet
