#include "fleet/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <optional>

#include "fleet/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/expects.h"

namespace pp::fleet {

namespace {

using steady_clock = std::chrono::steady_clock;

std::int64_t ms_until(steady_clock::time_point when) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             when - steady_clock::now())
      .count();
}

// One supervised worker slot.  `chunk` is the contiguous trial range the
// current (or next, while backing off) worker owns; `done` counts the
// records already received for it, so the outstanding remainder is always
// {chunk.base + done, chunk.count - done}.
struct slot_state {
  pid_t pid = -1;
  int fd = -1;
  std::vector<std::uint8_t> buf;  // unparsed pipe bytes
  trial_range chunk{0, 0};
  std::uint64_t done = 0;
  steady_clock::time_point last_activity;
  steady_clock::time_point respawn_at;
  int attempts = 0;         // respawns already spent on this chunk
  bool running = false;
  bool waiting = false;     // backing off before a respawn
  bool ever_launched = false;  // faults are injected on a slot's first launch only
};

// Error-path teardown: any exit from the supervisor (including a throw)
// SIGKILLs and reaps every still-running worker, so no path leaks zombies.
struct slot_reaper {
  std::vector<slot_state>* slots;
  ~slot_reaper() {
    for (slot_state& s : *slots) {
      if (s.fd >= 0) {
        ::close(s.fd);
        s.fd = -1;
      }
      if (s.pid >= 0) {
        ::kill(s.pid, SIGKILL);
        while (::waitpid(s.pid, nullptr, 0) < 0 && errno == EINTR) {
        }
        s.pid = -1;
      }
    }
  }
};

// Splits the not-yet-completed trials into contiguous chunks of roughly
// pending/jobs trials each (a chunk never spans a completed trial, so after
// a resume the queue covers exactly the journal's gaps).
std::deque<trial_range> chunk_pending(const std::vector<std::uint8_t>& received,
                                      std::uint64_t trials, int jobs) {
  std::vector<trial_range> runs;
  std::uint64_t pending = 0;
  for (std::uint64_t t = 0; t < trials;) {
    if (received[t]) {
      ++t;
      continue;
    }
    const std::uint64_t base = t;
    while (t < trials && !received[t]) ++t;
    runs.push_back({base, t - base});
    pending += t - base;
  }
  std::deque<trial_range> queue;
  if (pending == 0) return queue;
  const std::uint64_t target =
      (pending + static_cast<std::uint64_t>(jobs) - 1) /
      static_cast<std::uint64_t>(jobs);
  for (const trial_range& run : runs) {
    std::uint64_t base = run.base;
    std::uint64_t left = run.count;
    while (left > 0) {
      const std::uint64_t count = std::min(left, target);
      queue.push_back({base, count});
      base += count;
      left -= count;
    }
  }
  return queue;
}

}  // namespace

namespace detail {

std::vector<election_result> supervise(std::uint64_t trials, rng seed_gen,
                                       int jobs,
                                       const supervise_options& options,
                                       const launch_fn& launch,
                                       const trial_fn& inline_fn,
                                       const char* what) {
  expects(jobs >= 1, std::string(what) + ": jobs must be >= 1");
  expects(options.max_retries >= 0, std::string(what) + ": max_retries must be >= 0");
  for (const fault_spec& f : options.faults) {
    expects(f.worker >= 0 && f.worker < jobs,
            std::string(what) + ": fault spec names worker slot w" +
                std::to_string(f.worker) + " beyond the " +
                std::to_string(jobs) + "-worker fleet");
  }
  expects(!options.resume || !options.journal_path.empty(),
          std::string(what) + ": resume needs a journal path");

  // Borrowed observability sinks (supervisor.h): tid 0 carries the poll
  // loop's events, tid slot+1 the span covering worker slot's lifetime.
  obs::trace_writer* const trace = options.trace;
  obs::metrics_registry* const metrics = options.metrics;
  if (trace != nullptr) {
    trace->name_process(what);
    trace->name_thread(0, "supervisor");
    for (int i = 0; i < jobs; ++i) {
      trace->name_thread(i + 1, "slot " + std::to_string(i));
    }
    trace->begin("supervise", 0,
                 {obs::trace_arg::num("trials", trials),
                  obs::trace_arg::num("jobs", static_cast<std::int64_t>(jobs))});
  }

  std::vector<election_result> results(trials);
  std::vector<std::uint8_t> received(trials, 0);
  std::uint64_t completed = 0;

  std::optional<journal_writer> journal;
  if (!options.journal_path.empty()) {
    const journal_header header{options.journal_tag, trials};
    if (options.resume) {
      const journal_replay replay = replay_journal(options.journal_path);
      expects(replay.header == header,
              std::string(what) + ": " + options.journal_path +
                  " belongs to a different sweep (seed/trials mismatch)");
      for (const trial_record& r : replay.records) {
        if (!received[r.trial]) ++completed;
        received[r.trial] = 1;       // determinism: a re-run record is identical,
        results[r.trial] = r.result; // so last-wins replay is safe
      }
      obs::logf(obs::log_level::info,
                "journal replay: %llu record(s) replayed (%llu/%llu trial(s)), "
                "%llu corrupt record(s) skipped, torn tail %s, from %s",
                static_cast<unsigned long long>(replay.records.size()),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(trials),
                static_cast<unsigned long long>(replay.corrupt_records),
                replay.torn_tail ? "truncated" : "none",
                options.journal_path.c_str());
      if (trace != nullptr) {
        trace->instant(
            "journal_replay", 0,
            {obs::trace_arg::num("replayed",
                                 static_cast<std::uint64_t>(replay.records.size())),
             obs::trace_arg::num("corrupt", replay.corrupt_records),
             obs::trace_arg::num("torn_tail",
                                 static_cast<std::int64_t>(replay.torn_tail ? 1 : 0))});
      }
      if (metrics != nullptr) {
        metrics->add("fleet.journal_replayed",
                     static_cast<std::uint64_t>(replay.records.size()));
        metrics->add("fleet.journal_corrupt_skipped", replay.corrupt_records);
        if (replay.torn_tail) metrics->add("fleet.journal_torn_tails");
      }
    }
    journal.emplace(options.journal_path, header, options.resume);
  }

  auto deliver = [&](std::uint64_t t, const election_result& r) {
    if (!received[t]) ++completed;
    received[t] = 1;
    results[t] = r;
    if (journal) {
      journal->append({t, r});
      if (metrics != nullptr) metrics->add("fleet.journal_appends");
    }
    if (trace != nullptr) {
      trace->instant("record", 0, {obs::trace_arg::num("trial", t)});
    }
    if (metrics != nullptr) metrics->add("fleet.records_received");
  };

  std::deque<trial_range> queue = chunk_pending(received, trials, jobs);
  const int nslots = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(jobs), queue.size()));
  std::vector<slot_state> slots(static_cast<std::size_t>(nslots));
  slot_reaper reaper{&slots};
  int retries_used = 0;
  bool degraded = false;
  std::vector<trial_range> leftover;  // chunks to run inline once degraded

  auto open_read_fds = [&]() {
    std::vector<int> fds;
    for (const slot_state& s : slots) {
      if (s.fd >= 0) fds.push_back(s.fd);
    }
    return fds;
  };

  // Parses complete checked frames (wire.h) off slot i's buffer.  Returns
  // false on a protocol violation (bad length, corrupt checksum,
  // out-of-order or duplicate trial) — the worker is then failed, keeping
  // the valid prefix.
  auto parse_buffer = [&](int i) -> bool {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    std::size_t off = 0;
    bool ok = true;
    for (;;) {
      wire::frame_view frame;
      const wire::decode_status status = wire::decode_frame(
          s.buf.data() + off, s.buf.size() - off,
          {kTrialRecordPayload, kTrialRecordPayload}, frame);
      if (status == wire::decode_status::need_more) break;
      if (status != wire::decode_status::ok) {
        ok = false;
        break;
      }
      const trial_record r = decode_trial_record(frame.payload);
      if (r.trial != s.chunk.base + s.done || received[r.trial]) {
        ok = false;
        break;
      }
      deliver(r.trial, r.result);
      ++s.done;
      off += frame.frame_bytes;
    }
    s.buf.erase(s.buf.begin(),
                s.buf.begin() + static_cast<std::ptrdiff_t>(off));
    return ok;
  };

  // Declared ahead of start_worker (a failed launch fails its slot) and
  // defined right after it.
  std::function<void(int, const char*)> fail_slot;

  auto start_worker = [&](int i, trial_range chunk) {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    const bool inject = !s.ever_launched && !options.faults.empty();
    const bool respawn = s.waiting;  // a backoff just elapsed for this slot
    const child_guard::child c = launch(i, chunk, inject, open_read_fds());
    if (trace != nullptr) {
      trace->instant(respawn ? "worker_respawn" : "worker_spawn", 0,
                     {obs::trace_arg::num("slot", static_cast<std::int64_t>(i)),
                      obs::trace_arg::num("pid", static_cast<std::int64_t>(c.pid))});
      trace->instant("chunk_assign", 0,
                     {obs::trace_arg::num("slot", static_cast<std::int64_t>(i)),
                      obs::trace_arg::num("base", chunk.base),
                      obs::trace_arg::num("count", chunk.count)});
      trace->begin("worker", i + 1,
                   {obs::trace_arg::num("slot", static_cast<std::int64_t>(i)),
                    obs::trace_arg::num("pid", static_cast<std::int64_t>(c.pid)),
                    obs::trace_arg::num("base", chunk.base),
                    obs::trace_arg::num("count", chunk.count),
                    obs::trace_arg::num("attempt",
                                        static_cast<std::int64_t>(s.attempts))});
    }
    if (metrics != nullptr) {
      metrics->add(respawn ? "fleet.workers_respawned" : "fleet.workers_spawned");
      metrics->add("fleet.chunks_assigned");
    }
    s.ever_launched = true;
    s.pid = c.pid;
    s.fd = c.read_fd;
    s.buf.clear();
    s.chunk = chunk;
    s.done = 0;
    s.running = true;
    s.waiting = false;
    s.last_activity = steady_clock::now();
    if (s.fd >= 0) {
      const int flags = ::fcntl(s.fd, F_GETFL, 0);
      ensure(flags >= 0 && ::fcntl(s.fd, F_SETFL, flags | O_NONBLOCK) == 0,
             std::string(what) + ": cannot make a worker stream non-blocking");
    } else {
      // A launch that yields no record stream (a refused/failed remote
      // connection) fails the slot on the spot: same backoff, retry budget
      // and degraded-mode routing as a worker that died mid-chunk.
      fail_slot(i, "worker launch failed");
    }
  };

  // Kills (if alive) and reaps slot i's worker, then routes its outstanding
  // trials: respawn after backoff while the retry budget lasts, else switch
  // the sweep into degraded mode and queue the remainder for inline
  // execution.
  fail_slot = [&](int i, const char* why) {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    // Drain first: complete records already buffered (e.g. read ahead of a
    // POLLHUP, or data that landed before a read error) are valid — a fast
    // clean exit must never forfeit its final trials to reassignment.  A
    // violation mid-buffer just leaves the valid prefix delivered.
    parse_buffer(i);
    if (s.fd >= 0) {
      ::close(s.fd);
      s.fd = -1;
    }
    if (s.pid >= 0) {
      ::kill(s.pid, SIGKILL);
      while (::waitpid(s.pid, nullptr, 0) < 0 && errno == EINTR) {
      }
      s.pid = -1;
    }
    s.buf.clear();  // a partial trailing record is torn: discard it
    s.running = false;
    if (trace != nullptr) {
      // "worker_kill" marks the supervisor disposing of a failed worker,
      // whether it had to SIGKILL it or just reaped an already-dead one.
      trace->instant("worker_kill", 0,
                     {obs::trace_arg::num("slot", static_cast<std::int64_t>(i)),
                      obs::trace_arg::str("reason", why)});
      trace->end("worker", i + 1, {obs::trace_arg::str("outcome", why)});
    }
    if (metrics != nullptr) metrics->add("fleet.worker_failures");
    const trial_range rest{s.chunk.base + s.done, s.chunk.count - s.done};
    if (rest.count == 0) {
      // Every assigned trial arrived before the worker died: nothing to redo.
      s.waiting = false;
      return;
    }
    if (!degraded && retries_used < options.max_retries) {
      ++retries_used;
      ++s.attempts;
      s.chunk = rest;
      s.done = 0;
      s.waiting = true;
      std::int64_t delay = options.backoff_initial_ms;
      for (int a = 1; a < s.attempts && delay < options.backoff_max_ms; ++a) {
        delay *= 2;
      }
      delay = std::min<std::int64_t>(delay, options.backoff_max_ms);
      s.respawn_at = steady_clock::now() + std::chrono::milliseconds(delay);
      obs::logf(obs::log_level::warn,
                "fleet supervisor: worker slot %d failed (%s), %llu trial(s) "
                "outstanding; respawning in %lld ms (retry %d/%d)",
                i, why, static_cast<unsigned long long>(rest.count),
                static_cast<long long>(delay), retries_used,
                options.max_retries);
      if (trace != nullptr) {
        trace->instant("worker_backoff", 0,
                       {obs::trace_arg::num("slot", static_cast<std::int64_t>(i)),
                        obs::trace_arg::num("delay_ms", delay),
                        obs::trace_arg::num("retry",
                                            static_cast<std::int64_t>(retries_used))});
        trace->instant("chunk_reassign", 0,
                       {obs::trace_arg::num("slot", static_cast<std::int64_t>(i)),
                        obs::trace_arg::num("base", rest.base),
                        obs::trace_arg::num("count", rest.count)});
      }
      if (metrics != nullptr) metrics->add("fleet.chunks_reassigned");
    } else {
      degraded = true;
      leftover.push_back(rest);
      s.waiting = false;
      obs::logf(obs::log_level::warn,
                "fleet supervisor: worker slot %d failed (%s) with the retry "
                "budget exhausted; %llu trial(s) will run inline",
                i, why, static_cast<unsigned long long>(rest.count));
      if (trace != nullptr) {
        trace->instant("degrade_inline", 0,
                       {obs::trace_arg::num("slot", static_cast<std::int64_t>(i)),
                        obs::trace_arg::num("count", rest.count)});
      }
      if (metrics != nullptr) {
        metrics->add("fleet.degraded_chunks");
      }
    }
  };

  auto handle_eof = [&](int i) {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    ::close(s.fd);
    s.fd = -1;
    // A remote slot (pid < 0, net.h) has no child to reap; a clean socket
    // EOF is judged purely on chunk completeness.
    bool clean = true;
    if (s.pid >= 0) {
      int status = 0;
      while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
      }
      s.pid = -1;
      clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
    const bool complete = s.done == s.chunk.count && s.buf.empty();
    if (complete) {
      // All assigned trials arrived; a nonzero exit after the last record
      // (e.g. an injected exit fault) costs nothing.
      s.running = false;
      s.waiting = false;
      if (trace != nullptr) {
        trace->end("worker", i + 1,
                   {obs::trace_arg::str("outcome", "complete"),
                    obs::trace_arg::num("records", s.done)});
      }
      if (metrics != nullptr) metrics->add("fleet.workers_completed");
      return;
    }
    fail_slot(i, clean ? "stream ended early"
                       : "worker exited abnormally");
  };

  // Live progress: a throttled stderr status line driven by the poll loop's
  // natural cadence (the 200 ms timeout clamp).  stderr only, by contract —
  // stdout carries the merged sweep summary and must stay byte-identical to
  // serial.  The rate is an EWMA of completed trials per second; ETA is the
  // outstanding remainder at that rate.
  const steady_clock::time_point progress_start = steady_clock::now();
  steady_clock::time_point progress_next = progress_start;
  steady_clock::time_point progress_rate_at = progress_start;
  std::uint64_t progress_rate_done = completed;
  double progress_ewma = 0.0;  // trials per second
  auto emit_progress = [&](bool final_line) {
    const steady_clock::time_point now = steady_clock::now();
    const double dt =
        std::chrono::duration<double>(now - progress_rate_at).count();
    if (dt > 1e-3) {
      const double inst =
          static_cast<double>(completed - progress_rate_done) / dt;
      progress_ewma =
          progress_ewma == 0.0 ? inst : 0.4 * inst + 0.6 * progress_ewma;
      progress_rate_at = now;
      progress_rate_done = completed;
    }
    std::string slot_glyphs;
    slot_glyphs.reserve(slots.size());
    for (const slot_state& s : slots) {
      slot_glyphs.push_back(s.running ? 'R' : (s.waiting ? 'b' : '.'));
    }
    const double pct =
        trials == 0 ? 100.0
                    : 100.0 * static_cast<double>(completed) /
                          static_cast<double>(trials);
    char eta[32];
    if (final_line || completed >= trials) {
      std::snprintf(eta, sizeof(eta), "done");
    } else if (progress_ewma > 1e-9) {
      std::snprintf(eta, sizeof(eta), "eta %.0fs",
                    static_cast<double>(trials - completed) / progress_ewma);
    } else {
      std::snprintf(eta, sizeof(eta), "eta ?");
    }
    std::fprintf(stderr,
                 "popsim: %llu/%llu trials (%.1f%%) | %.2f trials/s | %s | "
                 "slots [%s]%s\n",
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(trials), pct, progress_ewma,
                 eta, slot_glyphs.c_str(), degraded ? " | degraded" : "");
  };

  auto read_slot = [&](int i) {
    slot_state& s = slots[static_cast<std::size_t>(i)];
    bool eof = false;
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t n = ::read(s.fd, buf, sizeof(buf));
      if (n > 0) {
        s.buf.insert(s.buf.end(), buf, buf + n);
        s.last_activity = steady_clock::now();
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      fail_slot(i, "pipe read error");
      return;
    }
    if (!parse_buffer(i)) {
      fail_slot(i, "record protocol violation");
      return;
    }
    if (eof) handle_eof(i);
  };

  while (true) {
    if (degraded) {
      while (!queue.empty()) {
        leftover.push_back(queue.front());
        queue.pop_front();
      }
    } else {
      for (int i = 0; i < nslots && !queue.empty(); ++i) {
        slot_state& s = slots[static_cast<std::size_t>(i)];
        if (!s.running && !s.waiting) {
          s.attempts = 0;
          start_worker(i, queue.front());
          queue.pop_front();
        }
      }
    }
    // Respawns whose backoff elapsed.
    for (int i = 0; i < nslots; ++i) {
      slot_state& s = slots[static_cast<std::size_t>(i)];
      if (s.waiting && !degraded && ms_until(s.respawn_at) <= 0) {
        start_worker(i, s.chunk);
      } else if (s.waiting && degraded) {
        leftover.push_back(s.chunk);
        s.waiting = false;
      }
    }

    bool any_running = false;
    bool any_waiting = false;
    for (const slot_state& s : slots) {
      any_running = any_running || s.running;
      any_waiting = any_waiting || s.waiting;
    }
    if (!any_running && !any_waiting && queue.empty()) break;

    // Poll timeout: the nearest of inactivity deadlines and respawn timers,
    // clamped to 200 ms so state re-checks stay cheap and frequent.
    std::int64_t timeout = 200;
    std::vector<pollfd> fds;
    std::vector<int> fd_slot;
    for (int i = 0; i < nslots; ++i) {
      slot_state& s = slots[static_cast<std::size_t>(i)];
      if (s.running) {
        fds.push_back({s.fd, POLLIN, 0});
        fd_slot.push_back(i);
        if (options.worker_timeout_ms > 0) {
          const std::int64_t until =
              ms_until(s.last_activity +
                       std::chrono::milliseconds(options.worker_timeout_ms));
          timeout = std::min(timeout, std::max<std::int64_t>(until, 0));
        }
      } else if (s.waiting) {
        timeout = std::min(timeout,
                           std::max<std::int64_t>(ms_until(s.respawn_at), 0));
      }
    }
    if (!fds.empty()) {
      const int ready = ::poll(fds.data(), fds.size(),
                               static_cast<int>(timeout));
      ensure(ready >= 0 || errno == EINTR,
             std::string(what) + ": poll failed: " + std::strerror(errno));
      for (std::size_t k = 0; k < fds.size(); ++k) {
        if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) {
          const int i = fd_slot[k];
          if (slots[static_cast<std::size_t>(i)].running) read_slot(i);
        }
      }
    } else if (timeout > 0) {
      ::usleep(static_cast<useconds_t>(timeout) * 1000);
    }
    // Transport health: ask the prober (if installed) for dead slots and
    // fail the running ones early, ahead of their inactivity deadline.
    if (options.health_tick) {
      for (const int i : options.health_tick()) {
        if (i >= 0 && i < nslots &&
            slots[static_cast<std::size_t>(i)].running) {
          fail_slot(i, "host health check failed");
        }
      }
    }
    if (options.progress && steady_clock::now() >= progress_next) {
      emit_progress(false);
      progress_next =
          steady_clock::now() +
          std::chrono::milliseconds(std::max(options.progress_interval_ms, 1));
    }
    // Inactivity timeouts: a worker that went silent past the deadline is
    // killed and its remainder rerouted (kill -> backoff -> respawn).
    if (options.worker_timeout_ms > 0) {
      for (int i = 0; i < nslots; ++i) {
        slot_state& s = slots[static_cast<std::size_t>(i)];
        if (s.running &&
            ms_until(s.last_activity +
                     std::chrono::milliseconds(options.worker_timeout_ms)) <= 0) {
          if (trace != nullptr) {
            trace->instant(
                "inactivity_timeout", 0,
                {obs::trace_arg::num("slot", static_cast<std::int64_t>(i)),
                 obs::trace_arg::num(
                     "timeout_ms",
                     static_cast<std::int64_t>(options.worker_timeout_ms))});
          }
          if (metrics != nullptr) metrics->add("fleet.inactivity_timeouts");
          fail_slot(i, "inactivity timeout");
        }
      }
    }
  }

  if (!leftover.empty()) {
    ensure(static_cast<bool>(inline_fn),
           std::string(what) + ": retry budget exhausted and no inline "
                               "fallback is available");
    std::sort(leftover.begin(), leftover.end(),
              [](const trial_range& a, const trial_range& b) {
                return a.base < b.base;
              });
    if (trace != nullptr) {
      trace->begin("inline_degraded", 0,
                   {obs::trace_arg::num(
                       "chunks", static_cast<std::uint64_t>(leftover.size()))});
    }
    for (const trial_range& range : leftover) {
      for (std::uint64_t t = range.base; t < range.base + range.count; ++t) {
        if (!received[t]) {
          deliver(t, inline_fn(t, seed_gen.fork(t)));
          if (metrics != nullptr) metrics->add("fleet.inline_trials");
        }
      }
    }
    if (trace != nullptr) trace->end("inline_degraded", 0);
  }

  if (options.progress) emit_progress(true);

  ensure(completed == trials,
         std::string(what) + ": a trial result never arrived");
  if (metrics != nullptr) {
    metrics->set("fleet.jobs", jobs);
    metrics->set("fleet.trials", static_cast<std::int64_t>(trials));
    metrics->set("fleet.retries_used", retries_used);
  }
  if (trace != nullptr) trace->end("supervise", 0);
  return results;
}

}  // namespace detail

void run_trial_block(trial_range range, int fd, const trial_fn& fn,
                     const rng& seed_gen, const fault_injector& injector) {
  std::uint64_t written = 0;
  for (std::uint64_t t = range.base; t < range.base + range.count; ++t) {
    injector.before_record(fd, written);
    write_trial_record(fd, {t, fn(t, seed_gen.fork(t))});
    ++written;
  }
}

std::vector<election_result> supervised_fleet_run(
    std::uint64_t trials, rng seed_gen, const trial_fn& fn, int jobs,
    const supervise_options& options) {
  const detail::launch_fn launch = [&](int slot, trial_range chunk, bool inject,
                                       const std::vector<int>& open_fds) {
    int fds[2];
    ensure(::pipe(fds) == 0, "supervised_fleet_run: pipe failed");
    const pid_t pid = ::fork();
    ensure(pid >= 0, "supervised_fleet_run: fork failed");
    if (pid == 0) {
      ::close(fds[0]);
      for (const int fd : open_fds) ::close(fd);
      ignore_sigpipe();
      int status = 0;
      try {
        const fault_injector injector =
            inject ? fault_injector(options.faults, slot) : fault_injector();
        run_trial_block(chunk, fds[1], fn, seed_gen, injector);
      } catch (const std::exception& e) {
        obs::logf(obs::log_level::error, "fleet worker slot %d: %s", slot,
                  e.what());
        status = 1;
      }
      ::close(fds[1]);
      ::_exit(status);
    }
    ::close(fds[1]);
    return child_guard::child{pid, fds[0]};
  };
  return detail::supervise(trials, seed_gen, jobs, options, launch, fn,
                           "supervised_fleet_run");
}

std::vector<election_result> supervised_spawn_sweep(
    const std::string& exe, const std::string& manifest_path,
    const worker_manifest& manifest, const supervise_options& options,
    const trial_fn& inline_fn) {
  // Worker observability rides on env vars, not the manifest (the manifest
  // reader is strict, and sidecar paths are per-(slot, generation) anyway).
  // The parent remembers every sidecar path it handed out so it can merge
  // and unlink them after the sweep, torn tails included.
  const bool sidecars =
      !options.sidecar_dir.empty() &&
      (options.trace != nullptr || options.metrics != nullptr);
  std::vector<int> generation(static_cast<std::size_t>(manifest.jobs), 0);
  std::vector<std::string> trace_sidecars;
  std::vector<std::string> metrics_sidecars;
  const detail::launch_fn launch = [&](int slot, trial_range chunk, bool inject,
                                       const std::vector<int>& open_fds) {
    std::string trace_sidecar;
    std::string metrics_sidecar;
    std::string stride;
    if (sidecars) {
      const int gen = generation[static_cast<std::size_t>(slot)]++;
      const std::string tag =
          "_w" + std::to_string(slot) + "_g" + std::to_string(gen);
      if (options.trace != nullptr) {
        trace_sidecar = options.sidecar_dir + "/trace" + tag + ".jsonl";
        trace_sidecars.push_back(trace_sidecar);
      }
      if (options.metrics != nullptr) {
        metrics_sidecar = options.sidecar_dir + "/metrics" + tag + ".ppm";
        metrics_sidecars.push_back(metrics_sidecar);
      }
      stride = std::to_string(options.probe_stride);
    }
    int fds[2];
    ensure(::pipe(fds) == 0, "supervised_spawn_sweep: pipe failed");
    const pid_t pid = ::fork();
    ensure(pid >= 0, "supervised_spawn_sweep: fork failed");
    if (pid == 0) {
      ::close(fds[0]);
      for (const int fd : open_fds) ::close(fd);
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[1]);
      if (!trace_sidecar.empty()) {
        ::setenv("POPSIM_TRACE_SIDECAR", trace_sidecar.c_str(), 1);
      }
      if (!metrics_sidecar.empty()) {
        ::setenv("POPSIM_OBS_SIDECAR", metrics_sidecar.c_str(), 1);
      }
      if (!stride.empty()) {
        ::setenv("POPSIM_PROBE_STRIDE", stride.c_str(), 1);
      }
      const std::string index = std::to_string(slot);
      const std::string base = std::to_string(chunk.base);
      const std::string count = std::to_string(chunk.count);
      const std::string faults = to_string(options.faults);
      if (inject && !faults.empty()) {
        ::execl(exe.c_str(), exe.c_str(), "--worker", manifest_path.c_str(),
                index.c_str(), base.c_str(), count.c_str(), faults.c_str(),
                static_cast<char*>(nullptr));
      } else {
        ::execl(exe.c_str(), exe.c_str(), "--worker", manifest_path.c_str(),
                index.c_str(), base.c_str(), count.c_str(),
                static_cast<char*>(nullptr));
      }
      obs::logf(obs::log_level::error,
                "supervised_spawn_sweep: exec %s failed: %s", exe.c_str(),
                std::strerror(errno));
      ::_exit(127);
    }
    ::close(fds[1]);
    return child_guard::child{pid, fds[0]};
  };
  // Trial t of the sweep uses rng(seed).fork(2).fork(t), exactly the serial
  // derivation (sweep.h) — needed here for the inline degraded path.
  const rng seed_gen = rng(manifest.seed).fork(2);
  std::vector<election_result> results =
      detail::supervise(manifest.trials, seed_gen, manifest.jobs, options,
                        launch, inline_fn, "supervised_spawn_sweep");
  if (options.trace != nullptr) {
    options.trace->begin("sidecar_merge", 0);
    std::size_t merged = 0;
    for (const std::string& path : trace_sidecars) {
      merged += options.trace->merge_sidecar(path);
      ::unlink(path.c_str());
    }
    options.trace->end(
        "sidecar_merge", 0,
        {obs::trace_arg::num("files",
                             static_cast<std::uint64_t>(trace_sidecars.size())),
         obs::trace_arg::num("events", static_cast<std::uint64_t>(merged))});
  }
  if (options.metrics != nullptr) {
    for (const std::string& path : metrics_sidecars) {
      options.metrics->merge_text_file(path);
      ::unlink(path.c_str());
    }
  }
  return results;
}

}  // namespace pp::fleet
