#include "fleet/sweep.h"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fleet/wire.h"
#include "obs/log.h"
#include "support/expects.h"
#include "support/parse.h"

namespace pp::fleet {

namespace {

void write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      // EINTR/EAGAIN are transient; everything else (notably EPIPE once the
      // reader died and SIGPIPE is ignored) is fatal and named precisely.
      ensure(errno == EINTR || errno == EAGAIN,
             std::string("fleet: pipe write failed: ") + std::strerror(errno));
      continue;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

// Reads exactly `size` bytes; returns false on EOF before the first byte,
// throws on EOF mid-buffer (a torn record).
bool read_all(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      ensure(errno == EINTR || errno == EAGAIN,
             std::string("fleet: pipe read failed: ") + std::strerror(errno));
      continue;
    }
    if (n == 0) {
      ensure(got == 0, "fleet: torn record (worker died mid-write?)");
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

template <typename T>
void pack(std::uint8_t*& p, T v) {
  std::memcpy(p, &v, sizeof(T));
  p += sizeof(T);
}

template <typename T>
T unpack(const std::uint8_t*& p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}

// Reads one worker's record stream to EOF into the indexed result vector,
// flagging duplicates and out-of-range indices.
void drain_records(int fd, std::vector<election_result>& results,
                   std::vector<std::uint8_t>& received) {
  trial_record record;
  while (read_trial_record(fd, record)) {
    ensure(record.trial < results.size(), "fleet: record for an unknown trial");
    ensure(!received[record.trial], "fleet: duplicate record for a trial");
    received[record.trial] = 1;
    results[record.trial] = record.result;
  }
}

// Drains every child's pipe, reaps every child, and verifies all trials
// arrived exactly once — shared tail of the fork and exec drivers.  On any
// drain error the surviving children are SIGKILLed before reaping (a worker
// blocked on a full pipe would otherwise hang the waitpid forever), and the
// guard's destructor covers every other exit path.
std::vector<election_result> collect(child_guard& guard, std::uint64_t trials,
                                     const char* what) {
  std::vector<election_result> results(trials);
  std::vector<std::uint8_t> received(trials, 0);
  std::string drain_error;
  for (child_guard::child& c : guard.children()) {
    try {
      drain_records(c.read_fd, results, received);
    } catch (const std::exception& e) {
      if (drain_error.empty()) drain_error = e.what();
    }
    guard.close_fd(c);
  }
  if (!drain_error.empty()) guard.kill_all();
  bool worker_failed = false;
  for (child_guard::child& c : guard.children()) {
    if (!guard.reap(c)) worker_failed = true;
  }
  // Report both failure modes: a drain error (torn record, version skew) is
  // often the root cause of the worker deaths it provokes via EPIPE, so
  // it must not be masked by the generic worker-failure message.
  std::string failure;
  if (worker_failed && drain_error.empty()) {
    failure = std::string(what) + ": a worker process failed (see its stderr)";
  } else if (worker_failed) {
    failure = std::string(what) + ": a worker process failed (see its stderr); " +
              drain_error;
  } else {
    failure = drain_error;
  }
  ensure(failure.empty(), failure);
  for (std::uint64_t t = 0; t < trials; ++t) {
    ensure(received[t] != 0, std::string(what) + ": a trial result never arrived");
  }
  return results;
}

}  // namespace

child_guard::~child_guard() { kill_all(); }

void child_guard::add(pid_t pid, int read_fd) { children_.push_back({pid, read_fd}); }

void child_guard::close_fd(child& c) {
  if (c.read_fd >= 0) {
    ::close(c.read_fd);
    c.read_fd = -1;
  }
}

bool child_guard::reap(child& c) {
  if (c.pid < 0) return true;
  int status = 0;
  while (::waitpid(c.pid, &status, 0) < 0 && errno == EINTR) {
  }
  c.pid = -1;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

void child_guard::kill_all() {
  for (child& c : children_) {
    close_fd(c);
    if (c.pid >= 0) {
      ::kill(c.pid, SIGKILL);
      reap(c);
    }
  }
}

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

trial_range worker_range(std::uint64_t trials, int jobs, int worker) {
  expects(jobs >= 1, "worker_range: jobs must be >= 1");
  expects(worker >= 0 && worker < jobs, "worker_range: worker index out of range");
  const std::uint64_t w = static_cast<std::uint64_t>(worker);
  const std::uint64_t block = trials / static_cast<std::uint64_t>(jobs);
  const std::uint64_t extra = trials % static_cast<std::uint64_t>(jobs);
  trial_range r;
  r.base = w * block + (w < extra ? w : extra);
  r.count = block + (w < extra ? 1 : 0);
  return r;
}

void encode_trial_record(const trial_record& record, std::uint8_t* out) {
  std::uint8_t* p = out;
  pack<std::uint64_t>(p, record.trial);
  pack<std::uint64_t>(p, record.result.steps);
  pack<std::uint64_t>(p, static_cast<std::uint64_t>(record.result.distinct_states_used));
  pack<std::int32_t>(p, static_cast<std::int32_t>(record.result.leader));
  pack<std::uint8_t>(p, record.result.stabilized ? 1 : 0);
}

trial_record decode_trial_record(const std::uint8_t* payload) {
  const std::uint8_t* p = payload;
  trial_record out;
  out.trial = unpack<std::uint64_t>(p);
  out.result.steps = unpack<std::uint64_t>(p);
  out.result.distinct_states_used =
      static_cast<std::size_t>(unpack<std::uint64_t>(p));
  out.result.leader = static_cast<node_id>(unpack<std::int32_t>(p));
  out.result.stabilized = unpack<std::uint8_t>(p) != 0;
  return out;
}

void write_trial_record(int fd, const trial_record& record) {
  std::uint8_t payload[kTrialRecordPayload];
  encode_trial_record(record, payload);
  std::uint8_t buf[wire::framed_size(kTrialRecordPayload)];
  wire::encode_frame(payload, kTrialRecordPayload, buf);
  write_all(fd, buf, sizeof(buf));
}

bool read_trial_record(int fd, trial_record& out) {
  std::uint8_t buf[wire::framed_size(kTrialRecordPayload)];
  if (!read_all(fd, buf, wire::kLengthBytes)) return false;
  ensure(read_all(fd, buf + wire::kLengthBytes,
                  sizeof(buf) - wire::kLengthBytes),
         "fleet: torn record payload");
  wire::frame_view frame;
  const wire::decode_status status = wire::decode_frame(
      buf, sizeof(buf), {kTrialRecordPayload, kTrialRecordPayload}, frame);
  ensure(status != wire::decode_status::bad_length,
         "fleet: record length mismatch (producer/reader version skew)");
  ensure(status == wire::decode_status::ok,
         "fleet: record checksum mismatch (corrupt stream)");
  out = decode_trial_record(frame.payload);
  return true;
}

std::vector<election_result> fleet_run(std::uint64_t trials, rng seed_gen,
                                       const trial_fn& fn, int jobs) {
  expects(jobs >= 1, "fleet_run: jobs must be >= 1");
  if (static_cast<std::uint64_t>(jobs) > trials) {
    jobs = trials > 0 ? static_cast<int>(trials) : 1;
  }
  if (jobs == 1) {
    std::vector<election_result> results(trials);
    for (std::uint64_t t = 0; t < trials; ++t) {
      results[t] = fn(t, seed_gen.fork(t));
    }
    return results;
  }

  child_guard guard;
  for (int w = 0; w < jobs; ++w) {
    int fds[2];
    ensure(::pipe(fds) == 0, "fleet_run: pipe failed");
    const pid_t pid = ::fork();
    ensure(pid >= 0, "fleet_run: fork failed");
    if (pid == 0) {
      // Worker: compute the block, stream records, _exit without running
      // atexit handlers (the parent owns the inherited heap; under ASan this
      // also skips a bogus leak scan of the parent's allocations).
      ::close(fds[0]);
      for (const child_guard::child& c : guard.children()) ::close(c.read_fd);
      ignore_sigpipe();
      int status = 0;
      try {
        const trial_range range = worker_range(trials, jobs, w);
        for (std::uint64_t t = range.base; t < range.base + range.count; ++t) {
          write_trial_record(fds[1], {t, fn(t, seed_gen.fork(t))});
        }
      } catch (const std::exception& e) {
        obs::logf(obs::log_level::error, "fleet worker %d: %s", w, e.what());
        status = 1;
      }
      ::close(fds[1]);
      ::_exit(status);
    }
    ::close(fds[1]);
    guard.add(pid, fds[0]);
  }
  return collect(guard, trials, "fleet_run");
}

void write_manifest(const worker_manifest& manifest, const std::string& path) {
  expects(manifest.artifact_path.find('\n') == std::string::npos,
          "write_manifest: artifact path must not contain newlines");
  std::FILE* f = std::fopen(path.c_str(), "w");
  expects(f != nullptr, "write_manifest: cannot open " + path);
  std::fprintf(f, "ppfleet-manifest v1\n");
  std::fprintf(f, "artifact=%s\n", manifest.artifact_path.c_str());
  std::fprintf(f, "seed=%llu\n", static_cast<unsigned long long>(manifest.seed));
  std::fprintf(f, "trials=%llu\n", static_cast<unsigned long long>(manifest.trials));
  std::fprintf(f, "jobs=%d\n", manifest.jobs);
  std::fprintf(f, "max_steps=%llu\n",
               static_cast<unsigned long long>(manifest.max_steps));
  std::fprintf(f, "batch=%llu\n",
               static_cast<unsigned long long>(manifest.wellmixed_batch));
  std::fprintf(f, "scheduler=%s\n", to_string(manifest.scheduler));
  expects(std::fclose(f) == 0, "write_manifest: short write to " + path);
}

worker_manifest read_manifest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  expects(f != nullptr, "read_manifest: cannot open " + path);
  worker_manifest m;
  char line[4096];
  bool saw_header = false;
  bool saw_artifact = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string s(line);
    if (!s.empty() && s.back() == '\n') s.pop_back();
    if (s.empty()) continue;
    if (!saw_header) {
      if (s != "ppfleet-manifest v1") break;
      saw_header = true;
      continue;
    }
    const std::size_t eq = s.find('=');
    if (eq == std::string::npos) {
      saw_header = false;  // malformed line: reject below
      break;
    }
    const std::string key = s.substr(0, eq);
    const std::string value = s.substr(eq + 1);
    // Strict digits-only parse: manifests are hand-editable, so a signed
    // value like trials=-1 must be rejected, not silently wrapped to 2^64-1
    // by strtoull.
    std::uint64_t num = 0;
    const bool numeric = parse_u64(value.c_str(), num);
    if (key == "artifact") {
      m.artifact_path = value;
      saw_artifact = !value.empty();
    } else if (key == "seed" && numeric) {
      m.seed = num;
    } else if (key == "trials" && numeric && num >= 1 && num <= 1'000'000) {
      // Same bound the CLI enforces on --trials.
      m.trials = num;
    } else if (key == "jobs" && numeric && num >= 1 && num <= 100000) {
      m.jobs = static_cast<int>(num);
    } else if (key == "max_steps" && numeric) {
      m.max_steps = num;
    } else if (key == "batch" && numeric) {
      m.wellmixed_batch = num;
    } else if (key == "scheduler" && (value == "step" || value == "silent")) {
      // Absent in pre-silent manifests (defaults to step); a hand-edited
      // unknown value is rejected like any other malformed key below.
      m.scheduler =
          value == "silent" ? scheduler_kind::silent : scheduler_kind::step;
    } else {
      saw_header = false;  // unknown key or bad value: reject below
      break;
    }
  }
  std::fclose(f);
  expects(saw_header && saw_artifact,
          "read_manifest: " + path + " is not a valid fleet manifest");
  return m;
}

void run_worker_block(const worker_manifest& manifest, int index, int fd,
                      const trial_fn& fn, const rng& seed_gen) {
  const trial_range range = worker_range(manifest.trials, manifest.jobs, index);
  for (std::uint64_t t = range.base; t < range.base + range.count; ++t) {
    write_trial_record(fd, {t, fn(t, seed_gen.fork(t))});
  }
}

std::vector<election_result> spawn_worker_sweep(const std::string& exe,
                                                const std::string& manifest_path,
                                                const worker_manifest& manifest) {
  expects(manifest.jobs >= 1, "spawn_worker_sweep: jobs must be >= 1");
  child_guard guard;
  for (int w = 0; w < manifest.jobs; ++w) {
    int fds[2];
    ensure(::pipe(fds) == 0, "spawn_worker_sweep: pipe failed");
    const pid_t pid = ::fork();
    ensure(pid >= 0, "spawn_worker_sweep: fork failed");
    if (pid == 0) {
      ::close(fds[0]);
      for (const child_guard::child& c : guard.children()) ::close(c.read_fd);
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[1]);
      const std::string index = std::to_string(w);
      ::execl(exe.c_str(), exe.c_str(), "--worker", manifest_path.c_str(),
              index.c_str(), static_cast<char*>(nullptr));
      obs::logf(obs::log_level::error, "spawn_worker_sweep: exec %s failed: %s",
                exe.c_str(), std::strerror(errno));
      ::_exit(127);
    }
    ::close(fds[1]);
    guard.add(pid, fds[0]);
  }
  return collect(guard, manifest.trials, "spawn_worker_sweep");
}

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) return std::string(buf, static_cast<std::size_t>(len));
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

}  // namespace pp::fleet
