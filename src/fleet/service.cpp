#include "fleet/service.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>

#include "core/star_protocol.h"
#include "fleet/artifact.h"
#include "fleet/fault.h"
#include "fleet/net.h"
#include "fleet/supervisor.h"
#include "fleet/sweep.h"
#include "fleet/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "support/expects.h"

namespace pp::fleet {

namespace {

using steady_clock = std::chrono::steady_clock;

// A handshake may idle this long before the connection is dropped; replies
// this small always fit the socket buffer, so the same bound covers sends.
constexpr int kHandshakeIdleMs = 30000;

// One prepared, validated sweep, ready to fork runner children.  `run_trial`
// type-erases the protocol dispatch; the shared_ptrs it captures keep the
// rebuilt runner (and its graph) alive for as long as the entry is cached.
struct cached_sweep {
  std::uint64_t checksum = 0;
  std::uint64_t bytes = 0;      // artifact file size (the cache currency)
  std::uint64_t last_used = 0;  // LRU tick
  std::function<election_result(rng, const sim_options&)> run_trial;
};

// Rebuilds the sweep a verified artifact describes and validates the rebuild
// byte-for-byte against the stored sections — the same version-skew gate
// popsim --worker applies.  Throws std::invalid_argument on any divergence.
std::function<election_result(rng, const sim_options&)> build_runner(
    const sweep_artifact& artifact) {
  using runner_fn = std::function<election_result(rng, const sim_options&)>;
  if (artifact.engine == artifact_engine::tuned) {
    expects(artifact.graph.has_value(),
            "popsimd: tuned artifact without a graph section");
    const auto g = std::make_shared<graph>(rebuild_graph(*artifact.graph));
    const auto make = [&]<typename P>(const P& proto) -> runner_fn {
      const auto runner =
          std::make_shared<tuned_runner<P>>(proto, *g, tuning_of(artifact));
      validate_tuned_artifact(artifact, *runner);
      return [runner, g](rng gen, const sim_options& options) {
        return runner->run(gen, options);
      };
    };
    if (artifact.protocol.kind == protocol_kind::star) {
      expect_star_desc(artifact.protocol);
      return make(star_protocol{});
    }
    expects(artifact.protocol.kind == protocol_kind::fast,
            "popsimd: unsupported tuned-engine protocol in artifact");
    return make(fast_protocol(fast_params_of(artifact.protocol)));
  }
  expects(artifact.wellmixed.has_value(),
          "popsimd: well-mixed artifact without a multiset section");
  const std::uint64_t n = artifact.wellmixed->population;
  const auto make = [&]<typename P>(const P& proto) -> runner_fn {
    const auto sweep = std::make_shared<wellmixed_sweep<P>>(proto, n);
    validate_wellmixed_artifact(artifact, proto, sweep->initial());
    return [sweep](rng gen, const sim_options& options) {
      return sweep->run(gen, options);
    };
  };
  if (artifact.protocol.kind == protocol_kind::fast) {
    return make(fast_protocol(fast_params_of(artifact.protocol)));
  }
  expects(artifact.protocol.kind == protocol_kind::six,
          "popsimd: unsupported well-mixed protocol in artifact");
  return make(beauquier_protocol(six_population_of(artifact.protocol)));
}

// One in-handshake connection.
struct connection {
  int fd = -1;
  std::vector<std::uint8_t> buf;         // unparsed handshake bytes
  bool awaiting_artifact = false;        // NEED_ARTIFACT sent, data pending
  net::sweep_request request;
  steady_clock::time_point since = steady_clock::now();
};

}  // namespace

struct sweep_service::state {
  service_options options;
  std::vector<std::shared_ptr<cached_sweep>> cache;
  std::vector<connection> conns;
  std::vector<pid_t> children;
  std::uint64_t lru_tick = 0;
  // The daemon's observable surface, snapshotted verbatim by the STATS
  // message (net.h) as the deterministic metrics JSON.  Counters are
  // pre-registered in the constructor so a snapshot is complete from the
  // first request onward.
  obs::metrics_registry metrics;

  std::uint64_t cache_bytes() const {
    std::uint64_t total = 0;
    for (const auto& entry : cache) total += entry->bytes;
    return total;
  }

  // Refresh the point-in-time gauges right before a snapshot (or after any
  // state change that moves them).
  void refresh_gauges() {
    metrics.set("fleet.cache.bytes",
                static_cast<std::int64_t>(cache_bytes()));
    metrics.set("fleet.cache.entries",
                static_cast<std::int64_t>(cache.size()));
    metrics.set("fleet.children_live",
                static_cast<std::int64_t>(children.size()));
    metrics.set("fleet.net.connections",
                static_cast<std::int64_t>(conns.size()));
  }

  std::shared_ptr<cached_sweep> lookup(std::uint64_t checksum) {
    for (const auto& entry : cache) {
      if (entry->checksum == checksum) {
        entry->last_used = ++lru_tick;
        return entry;
      }
    }
    return nullptr;
  }

  // Inserts a freshly built entry and evicts least-recently-used others
  // until the cache fits the budget (the new entry itself is never evicted,
  // so an artifact bigger than the whole budget still serves).
  void insert(const std::shared_ptr<cached_sweep>& entry) {
    entry->last_used = ++lru_tick;
    cache.push_back(entry);
    const std::uint64_t budget = options.cache_mb * 1024 * 1024;
    while (cache_bytes() > budget && cache.size() > 1) {
      std::size_t victim = cache.size();
      for (std::size_t i = 0; i < cache.size(); ++i) {
        if (cache[i] == entry) continue;
        if (victim == cache.size() ||
            cache[i]->last_used < cache[victim]->last_used) {
          victim = i;
        }
      }
      if (victim == cache.size()) break;
      obs::logf(obs::log_level::info,
                "popsimd: evicting artifact %016llx (%llu bytes) from the "
                "cache (LRU, budget %llu MB)",
                static_cast<unsigned long long>(cache[victim]->checksum),
                static_cast<unsigned long long>(cache[victim]->bytes),
                static_cast<unsigned long long>(options.cache_mb));
      metrics.add("fleet.cache.evictions");
      cache.erase(cache.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    metrics.add("fleet.cache.insertions");
    refresh_gauges();
  }
};

sweep_service::sweep_service(const service_options& options)
    : state_(new state{options, {}, {}, {}, 0}) {
  expects(options.cache_mb >= 1, "popsimd: cache budget must be >= 1 MB");
  // Pre-register the STATS surface (tools/check_stats.py's required keys):
  // a std::map-backed registry only shows a name once touched, and a
  // snapshot missing e.g. fleet.cache.evictions would read as schema skew
  // rather than "none yet".
  for (const char* key :
       {"fleet.net.requests", "fleet.net.pings", "fleet.net.stats_requests",
        "fleet.net.rejects", "fleet.net.connections_accepted",
        "fleet.net.artifact_bytes_received", "fleet.cache.hits",
        "fleet.cache.misses", "fleet.cache.insertions",
        "fleet.cache.evictions", "fleet.runners_spawned",
        "fleet.runners_reaped"}) {
    state_->metrics.add(key, 0);
  }
  state_->refresh_gauges();
  listen_fd_ = net::listen_on(options.port, options.backlog);
  port_ = net::bound_port(listen_fd_);
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
}

sweep_service::~sweep_service() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (state_ != nullptr) {
    for (connection& c : state_->conns) {
      if (c.fd >= 0) ::close(c.fd);
    }
    for (const pid_t pid : state_->children) {
      ::kill(pid, SIGKILL);
      while (::waitpid(pid, nullptr, 0) < 0 && errno == EINTR) {
      }
    }
  }
}

namespace {

// Best-effort loud rejection: stderr always, the ERR frame if the peer is
// still reading.  Returns false so `handle_frame` call sites can
// `return reject(...)` to drop the connection.  (run() wraps this in a
// `reject` lambda that also counts fleet.net.rejects.)
bool reject_conn(const connection& conn, const std::string& message) {
  obs::logf(obs::log_level::error, "popsimd: rejecting connection: %s",
            message.c_str());
  try {
    std::vector<std::uint8_t> payload;
    payload.reserve(1 + message.size());
    payload.push_back(static_cast<std::uint8_t>(net::msg_type::err));
    payload.insert(payload.end(), message.begin(), message.end());
    net::send_frame(conn.fd, payload.data(), payload.size(), kHandshakeIdleMs);
  } catch (const std::exception&) {
    // The peer vanished first; the log line above already told the story.
  }
  return false;
}

void send_control(const connection& conn, net::msg_type type) {
  const auto byte = static_cast<std::uint8_t>(type);
  net::send_frame(conn.fd, &byte, 1, kHandshakeIdleMs);
}

bool valid_request(const net::sweep_request& r, std::string& why) {
  if (r.version != net::kNetVersion) {
    why = "protocol version skew (client v" + std::to_string(r.version) +
          ", daemon v" + std::to_string(net::kNetVersion) + ")";
    return false;
  }
  if (r.trials < 1 || r.trials > 1'000'000) {
    why = "trial count out of range";
    return false;
  }
  if (r.base > r.trials || r.count > r.trials - r.base) {
    why = "chunk exceeds the sweep's trials";
    return false;
  }
  if (r.count < 1) {
    why = "empty chunk";
    return false;
  }
  if (r.slot > 100000) {
    why = "slot index out of range";
    return false;
  }
  if (r.artifact_size < 1) {
    why = "empty artifact";
    return false;
  }
  if (!r.faults.empty()) {
    std::vector<fault_spec> specs;
    if (!parse_fault_specs(r.faults, specs)) {
      why = "malformed fault spec list";
      return false;
    }
  }
  return true;
}

}  // namespace

[[noreturn]] void sweep_service::run() {
  state& st = *state_;
  ignore_sigpipe();
  obs::logf(obs::log_level::info,
            "popsimd: serving on port %u (cache budget %llu MB)", port_,
            static_cast<unsigned long long>(st.options.cache_mb));

  const auto reject = [&st](const connection& conn,
                            const std::string& message) {
    st.metrics.add("fleet.net.rejects");
    return reject_conn(conn, message);
  };

  // Forks the runner child streaming `conn`'s chunk, then forgets the
  // connection (the child owns the fd's lifetime from here).
  const auto spawn_runner = [&](connection& conn,
                                const std::shared_ptr<cached_sweep>& entry) {
    const net::sweep_request request = conn.request;
    const pid_t pid = ::fork();
    ensure(pid >= 0, "popsimd: fork failed");
    if (pid == 0) {
      ::close(listen_fd_);
      for (const connection& other : st.conns) {
        if (other.fd >= 0 && other.fd != conn.fd) ::close(other.fd);
      }
      ignore_sigpipe();
      int status = 0;
      try {
        // The handshake ran the fd non-blocking; the record stream writes
        // blocking (write_all retries EAGAIN, but a full socket buffer
        // should park the child, not spin it).
        const int flags = ::fcntl(conn.fd, F_GETFL, 0);
        ::fcntl(conn.fd, F_SETFL, flags & ~O_NONBLOCK);
        std::vector<fault_spec> specs;
        if (!request.faults.empty()) parse_fault_specs(request.faults, specs);
        const fault_injector injector(specs, static_cast<int>(request.slot));
        sim_options options;
        options.max_steps = request.max_steps;
        options.wellmixed_batch = request.wellmixed_batch;
        options.scheduler = request.scheduler == 1 ? scheduler_kind::silent
                                                   : scheduler_kind::step;
        // Trial t uses rng(seed).fork(2).fork(t) — the serial derivation, so
        // remote merges are byte-identical to serial runs.
        const rng seed_gen = rng(request.seed).fork(2);
        run_trial_block(
            {request.base, request.count}, conn.fd,
            [&](std::uint64_t, rng gen) {
              return entry->run_trial(gen, options);
            },
            seed_gen, injector);
      } catch (const std::exception& e) {
        obs::logf(obs::log_level::error, "popsimd runner: %s", e.what());
        status = 1;
      }
      ::close(conn.fd);
      ::_exit(status);
    }
    obs::logf(obs::log_level::info,
              "popsimd: serving trials [%llu, %llu) of artifact %016llx "
              "(slot %u, runner pid %d)",
              static_cast<unsigned long long>(request.base),
              static_cast<unsigned long long>(request.base + request.count),
              static_cast<unsigned long long>(request.artifact_checksum),
              request.slot, static_cast<int>(pid));
    st.children.push_back(pid);
    st.metrics.add("fleet.runners_spawned");
    st.refresh_gauges();
    ::close(conn.fd);
    conn.fd = -1;
  };

  // Processes one complete handshake frame; returns false to drop the
  // connection (either rejected or handed off to a runner child).
  const auto handle_frame = [&](connection& conn,
                                const wire::frame_view& frame) -> bool {
    if (!conn.awaiting_artifact) {
      // Control-plane messages first (v3): read-only, and the connection
      // stays open afterwards — one health socket carries a whole ping
      // train, and a monitor may poll STATS repeatedly.
      const std::uint8_t type = frame.payload[0];
      if (type == static_cast<std::uint8_t>(net::msg_type::ping)) {
        if (frame.payload_length != 13) {
          return reject(conn, "malformed health ping");
        }
        std::uint32_t version = 0;
        std::memcpy(&version, frame.payload + 1, sizeof(version));
        if (version != net::kNetVersion) {
          return reject(conn, "protocol version skew (client v" +
                                  std::to_string(version) + ", daemon v" +
                                  std::to_string(net::kNetVersion) + ")");
        }
        st.metrics.add("fleet.net.pings");
        std::vector<std::uint8_t> reply(9);
        reply[0] = static_cast<std::uint8_t>(net::msg_type::pong);
        std::memcpy(reply.data() + 1, frame.payload + 5, 8);  // echo the token
        try {
          net::send_frame(conn.fd, reply.data(), reply.size(),
                          kHandshakeIdleMs);
        } catch (const std::exception&) {
          return false;  // peer vanished between ping and pong
        }
        return true;
      }
      if (type == static_cast<std::uint8_t>(net::msg_type::stats)) {
        if (frame.payload_length != 5) {
          return reject(conn, "malformed stats request");
        }
        std::uint32_t version = 0;
        std::memcpy(&version, frame.payload + 1, sizeof(version));
        if (version != net::kNetVersion) {
          return reject(conn, "protocol version skew (client v" +
                                  std::to_string(version) + ", daemon v" +
                                  std::to_string(net::kNetVersion) + ")");
        }
        st.metrics.add("fleet.net.stats_requests");
        st.refresh_gauges();
        const std::string json = st.metrics.json();
        std::vector<std::uint8_t> reply;
        reply.reserve(1 + json.size());
        reply.push_back(static_cast<std::uint8_t>(net::msg_type::stats_ok));
        reply.insert(reply.end(), json.begin(), json.end());
        try {
          net::send_frame(conn.fd, reply.data(), reply.size(),
                          kHandshakeIdleMs);
        } catch (const std::exception&) {
          return false;
        }
        return true;
      }
      net::sweep_request request;
      if (!net::decode_sweep_request(frame.payload, frame.payload_length,
                                     request)) {
        return reject(conn, "malformed sweep request");
      }
      st.metrics.add("fleet.net.requests");
      std::string why;
      if (!valid_request(request, why)) return reject(conn, why);
      conn.request = request;
      if (const auto entry = st.lookup(request.artifact_checksum)) {
        if (entry->bytes != request.artifact_size) {
          return reject(conn, "artifact size disagrees with the cached copy");
        }
        st.metrics.add("fleet.cache.hits");
        send_control(conn, net::msg_type::ok_cached);
        spawn_runner(conn, entry);
        return false;
      }
      st.metrics.add("fleet.cache.misses");
      send_control(conn, net::msg_type::need_artifact);
      conn.awaiting_artifact = true;
      return true;
    }
    // ARTIFACT_DATA: verify the declared checksum over the raw bytes, then
    // parse + rebuild + validate before anything is cached or served.
    if (frame.payload_length < 1 ||
        frame.payload[0] != static_cast<std::uint8_t>(net::msg_type::artifact_data)) {
      return reject(conn, "expected ARTIFACT_DATA");
    }
    const std::uint8_t* data = frame.payload + 1;
    const std::uint64_t size = frame.payload_length - 1;
    st.metrics.add("fleet.net.artifact_bytes_received", size);
    if (size != conn.request.artifact_size) {
      return reject(conn, "artifact size mismatch (declared " +
                              std::to_string(conn.request.artifact_size) +
                              " bytes, got " + std::to_string(size) + ")");
    }
    const std::uint64_t checksum = fnv1a64(data, size);
    if (checksum != conn.request.artifact_checksum) {
      char digest[64];
      std::snprintf(digest, sizeof(digest), "%016llx, got %016llx",
                    static_cast<unsigned long long>(conn.request.artifact_checksum),
                    static_cast<unsigned long long>(checksum));
      return reject(conn, std::string("artifact checksum mismatch (declared ") +
                              digest + ")");
    }
    // A burst of cold-cache connections can all be told NEED_ARTIFACT
    // before the first one ships; whoever lands second reuses the entry
    // instead of inserting a duplicate.
    std::shared_ptr<cached_sweep> entry = st.lookup(checksum);
    if (entry == nullptr) {
      try {
        const sweep_artifact artifact =
            artifact_from_bytes(std::vector<std::uint8_t>(data, data + size));
        entry = std::make_shared<cached_sweep>();
        entry->checksum = checksum;
        entry->bytes = size;
        entry->run_trial = build_runner(artifact);
      } catch (const std::exception& e) {
        return reject(conn, std::string("artifact rejected: ") + e.what());
      }
      st.insert(entry);
      obs::logf(obs::log_level::info,
                "popsimd: cached artifact %016llx (%llu bytes; cache now "
                "%llu/%llu MB across %zu artifact(s))",
                static_cast<unsigned long long>(checksum),
                static_cast<unsigned long long>(size),
                static_cast<unsigned long long>(st.cache_bytes() >> 20),
                static_cast<unsigned long long>(st.options.cache_mb),
                st.cache.size());
    }
    send_control(conn, net::msg_type::ok_cached);
    spawn_runner(conn, entry);
    return false;
  };

  for (;;) {
    // Reap finished runner children.
    for (std::size_t i = 0; i < st.children.size();) {
      int status = 0;
      const pid_t r = ::waitpid(st.children[i], &status, WNOHANG);
      if (r == st.children[i]) {
        st.children.erase(st.children.begin() + static_cast<std::ptrdiff_t>(i));
        st.metrics.add("fleet.runners_reaped");
        st.refresh_gauges();
      } else {
        ++i;
      }
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const connection& conn : st.conns) {
      fds.push_back({conn.fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 200);
    ensure(ready >= 0 || errno == EINTR,
           std::string("popsimd: poll failed: ") + std::strerror(errno));

    // New connections.
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        connection conn;
        conn.fd = fd;
        st.conns.push_back(std::move(conn));
        st.metrics.add("fleet.net.connections_accepted");
      }
    }

    // Handshake progress, one connection at a time.
    for (std::size_t i = 0; i < st.conns.size();) {
      connection& conn = st.conns[i];
      bool keep = true;
      const std::size_t poll_index = i + 1;
      const bool readable = poll_index < fds.size() &&
                            fds[poll_index].fd == conn.fd &&
                            (fds[poll_index].revents &
                             (POLLIN | POLLHUP | POLLERR)) != 0;
      if (readable) {
        std::uint8_t buf[65536];
        for (;;) {
          const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
          if (n > 0) {
            conn.buf.insert(conn.buf.end(), buf, buf + n);
            continue;
          }
          if (n == 0) {
            keep = false;  // peer went away mid-handshake
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          keep = false;
          break;
        }
        while (keep) {
          wire::frame_view frame;
          const wire::decode_status status =
              wire::decode_frame(conn.buf.data(), conn.buf.size(),
                                 {1, net::kMaxControlPayload}, frame);
          if (status == wire::decode_status::need_more) break;
          if (status != wire::decode_status::ok) {
            keep = reject(conn, status == wire::decode_status::bad_length
                                    ? "unframeable handshake bytes"
                                    : "handshake frame checksum mismatch");
            break;
          }
          keep = handle_frame(conn, frame);
          // Any complete frame is activity: a persistent control connection
          // (health ping train, a STATS poller) must outlive the handshake
          // idle deadline as long as it keeps talking.
          conn.since = steady_clock::now();
          conn.buf.erase(conn.buf.begin(),
                         conn.buf.begin() +
                             static_cast<std::ptrdiff_t>(frame.frame_bytes));
        }
      }
      if (keep &&
          steady_clock::now() - conn.since >
              std::chrono::milliseconds(kHandshakeIdleMs)) {
        obs::logf(obs::log_level::warn,
                  "popsimd: dropping a connection whose handshake stalled");
        keep = false;
      }
      if (!keep) {
        if (conn.fd >= 0) ::close(conn.fd);
        st.conns.erase(st.conns.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

service_process::service_process(const service_options& options) {
  // Bind in this process so the (possibly ephemeral) port is known before
  // the daemon child even starts; the child inherits the listening socket.
  sweep_service service(options);
  port_ = service.port();
  pid_ = ::fork();
  ensure(pid_ >= 0, "service_process: fork failed");
  if (pid_ == 0) {
    try {
      service.run();
    } catch (const std::exception& e) {
      obs::logf(obs::log_level::error, "popsimd: %s", e.what());
    }
    ::_exit(1);
  }
  // Parent: `service` goes out of scope and closes its copy of the listen
  // fd; the child keeps its own.
}

service_process::~service_process() {
  if (pid_ >= 0) {
    ::kill(pid_, SIGKILL);
    while (::waitpid(pid_, nullptr, 0) < 0 && errno == EINTR) {
    }
  }
}

}  // namespace pp::fleet
