// Socket transport for distributed fleet sweeps: the same supervisor loop,
// with TCP connections to resident popsimd daemons (service.h) in place of
// pipes to forked workers.
//
// Handshake (every message is one wire.h checked frame; payload byte 0 is
// the message type, integers native-endian like every fleet surface):
//
//   client                                  popsimd
//   ──────────────────────────────────────────────────────────────────
//   REQ_SWEEP {version, artifact checksum
//              + size, slot, seed, trials,
//              chunk base + count,
//              max_steps, batch, faults}  ─►
//                                         ◄─  OK_CACHED        (cache hit)
//                                         ◄─  NEED_ARTIFACT    (cache miss)
//   ARTIFACT_DATA {raw .ppaf bytes}       ─►
//                                         ◄─  OK_CACHED  (verified + cached)
//                                         ◄─  ERR {message}  (version skew,
//                                             checksum/validation failure —
//                                             loud rejection, then close)
//
// Control-plane messages (v3) ride the same framing on their own
// connections, which the daemon keeps open across any number of frames:
//
//   PING {version, token}                 ─►
//                                         ◄─  PONG {token}      (echoed)
//   STATS {version}                       ─►
//                                         ◄─  STATS_OK {metrics JSON}
//
// PING/PONG is the supervisor's host health probe (rtt + liveness,
// fleet.net.health.* metrics); STATS snapshots the daemon's metrics
// registry (cache hits/evictions/bytes, live children, per-request
// counters) as the deterministic metrics-JSON payload, read-only — it
// never touches sweeps.  Version skew on either is rejected loudly with
// ERR, exactly like REQ_SWEEP.
//
// After OK_CACHED the connection carries nothing but trial-record frames
// (sweep.h layout) until a clean EOF at a frame boundary — exactly a pipe
// worker's stream, which is the whole point: supervised_remote_sweep hands
// the connected socket to detail::supervise as a pid-less slot, and
// inactivity timeouts, capped-backoff reconnection, contiguous-chunk
// reassignment, journal spooling and inline degradation apply unchanged.
// Every recovered/partitioned/resumed distributed sweep merges
// byte-identical to serial (trial t is always seed_gen.fork(t)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/supervisor.h"
#include "fleet/sweep.h"

namespace pp::fleet::net {

// Protocol version both ends must agree on exactly; bumped whenever a
// message layout or the message set changes.  v2 -> v3 added the PING /
// PONG / STATS / STATS_OK control plane; skew policy stays all-or-nothing
// (a v2 peer is rejected loudly — no downgrade negotiation), see
// src/fleet/README.md.
inline constexpr std::uint32_t kNetVersion = 3;

// Handshake frames are small except ARTIFACT_DATA, which carries a whole
// .ppaf container; 1 GiB bounds hostile length prefixes without constraining
// any real artifact.
inline constexpr std::uint32_t kMaxControlPayload = 1u << 30;

enum class msg_type : std::uint8_t {
  req_sweep = 0x01,
  artifact_data = 0x02,
  ping = 0x03,       // [u8 type][u32 version][u64 token]
  stats = 0x04,      // [u8 type][u32 version]
  ok_cached = 0x10,
  need_artifact = 0x11,
  err = 0x12,
  pong = 0x13,       // [u8 type][u64 token]
  stats_ok = 0x14,   // [u8 type][metrics JSON bytes]
};

// One remote worker endpoint.
struct host_addr {
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const host_addr&, const host_addr&) = default;
};

std::string to_string(const host_addr& addr);

// Strict parses of "host:port" and "host:port,host:port,..." — empty host,
// port 0, non-numeric or out-of-range port, and empty list elements are all
// rejected (returning false leaves `out` unspecified).
bool parse_host(const std::string& text, host_addr& out);
bool parse_host_list(const std::string& text, std::vector<host_addr>& out);

// Everything a daemon needs to run one chunk of a sweep: the artifact is
// named by checksum + size so a warm cache skips the shipping entirely.
struct sweep_request {
  std::uint32_t version = kNetVersion;
  std::uint64_t artifact_checksum = 0;  // fnv1a64 of the whole .ppaf file
  std::uint64_t artifact_size = 0;      // byte size of the .ppaf file
  std::uint32_t slot = 0;               // supervisor slot (fault addressing)
  std::uint64_t seed = 1;               // master seed; trial t uses
                                        // rng(seed).fork(2).fork(t)
  std::uint64_t trials = 1;             // whole-sweep trial count
  std::uint64_t base = 0;               // this chunk
  std::uint64_t count = 0;
  std::uint64_t max_steps = UINT64_MAX;
  std::uint64_t wellmixed_batch = 0;
  // scheduler_kind as u8 on the wire (0 = step, 1 = silent); a runtime knob
  // like max_steps, never part of the artifact.
  std::uint8_t scheduler = 0;
  std::string faults;  // fault.h spec list for this connection ("" = none)

  friend bool operator==(const sweep_request&, const sweep_request&) = default;
};

std::vector<std::uint8_t> encode_sweep_request(const sweep_request& request);
bool decode_sweep_request(const std::uint8_t* payload, std::size_t length,
                          sweep_request& out);

// Framed blocking IO with a deadline.  send_frame throws on any write
// failure; recv_frame reads exactly one frame and throws on timeout, torn
// stream, oversized length or checksum mismatch (it never reads past the
// frame, so record bytes following an OK_CACHED reply are untouched).
void send_frame(int fd, const std::uint8_t* payload, std::size_t length,
                int timeout_ms);
std::vector<std::uint8_t> recv_frame(int fd, std::uint32_t max_payload,
                                     int timeout_ms);

// TCP plumbing.  listen_on binds (port 0 picks an ephemeral port — read it
// back with bound_port) and throws on failure; dial resolves and connects
// within the deadline, returning -1 on failure (logged, not thrown — a dead
// host is a recoverable slot failure, not a sweep error).
int listen_on(std::uint16_t port, int backlog);
std::uint16_t bound_port(int listen_fd);
int dial(const host_addr& addr, int timeout_ms);

// Dials `addr` and runs the client half of the handshake; returns the
// connected fd ready to stream record frames, or -1 on any failure
// (connect, timeout, ERR reply — all logged).  `artifact_bytes` is shipped
// only on NEED_ARTIFACT; `shipped` (optional) reports whether it was.
int request_sweep(const host_addr& addr, const sweep_request& request,
                  const std::vector<std::uint8_t>& artifact_bytes,
                  int timeout_ms, bool* shipped);

// One health round-trip on an already-connected control fd: sends
// PING{token} and awaits the matching PONG.  Returns the rtt in
// microseconds, or -1 on timeout / ERR / token mismatch (logged at debug —
// the caller owns failure accounting).  The daemon keeps the connection
// open, so one fd serves a sweep's whole ping train.
std::int64_t ping_daemon(int fd, std::uint64_t token, int timeout_ms);

// Dials `addr` and snapshots the daemon's metrics registry: STATS ->
// STATS_OK{json}.  Returns false (logged) on connect failure, timeout or
// rejection; on success `json_out` holds the deterministic metrics JSON.
bool fetch_stats(const host_addr& addr, std::string& json_out, int timeout_ms);

// Distributed supervised sweep: slot i of `jobs` dials hosts[i % size] —
// pass jobs == hosts.size() for one connection per listed host, or more for
// several concurrent chunks per daemon.  Fault specs in `options` are
// forwarded to first-generation connections only (reconnections run clean),
// mirroring the local injection contract.  Emits connect / reconnect /
// artifact_ship trace instants and fleet.net.* metrics into the options'
// sinks.  The manifest's artifact_path is read and checksummed locally;
// its jobs field is ignored in favour of `jobs`.
//
// Installs a host health prober on the supervisor's health_tick hook: each
// listed host gets a persistent control connection carrying a PING about
// once a second (first ping immediately), recorded as health_probe trace
// instants and fleet.net.health.* metrics.  Three consecutive failed pings
// judge the host dead and fail its running slots early (normal backoff /
// reassignment applies); pongs never extend a slot's inactivity deadline.
std::vector<election_result> supervised_remote_sweep(
    const std::vector<host_addr>& hosts, int jobs,
    const worker_manifest& manifest, const supervise_options& options,
    const trial_fn& inline_fn = {});

}  // namespace pp::fleet::net
