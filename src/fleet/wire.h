// Shared frame codec for every fleet byte stream: worker pipes, the on-disk
// journal, and the socket transport all carry the same checked frame
//
//   u32 payload_length | payload bytes | u64 fnv1a64(payload)
//
// (native-endian: pipes and sockets connect processes built from the same
// tree on same-endian hosts, and the journal header carries an endian tag).
// The length prefix frames the stream, the trailing FNV-1a checksum makes
// torn writes, bit rot and in-flight corruption detectable at every reader
// instead of only in the journal.
//
// Two decode shapes cover every consumer:
//   * decode_frame — incremental, for buffered readers (the supervisor's
//     per-slot buffers, popsimd's handshake buffers): given whatever bytes
//     have arrived so far it either yields a validated frame, asks for more,
//     or names the corruption (bad_length / bad_checksum).  Fixed-size
//     streams (limits.min == limits.max) can resync past a bad_checksum
//     frame by skipping framed_size(limits.min) bytes — the journal replay
//     does exactly that; variable-size streams must treat any bad status as
//     loss of framing.
//   * read_frame_payload / write_frame — blocking fd IO for the simple
//     producer/consumer loops (workers streaming records, manifest-style
//     handshakes on freshly dialed sockets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace pp::fleet {

// FNV-1a 64-bit over raw bytes (defined in artifact.cpp; also the artifact
// container's integrity hash, so one hash covers every durability surface).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

namespace wire {

inline constexpr std::size_t kLengthBytes = 4;
inline constexpr std::size_t kChecksumBytes = 8;

// Total on-wire size of a frame carrying `payload_length` payload bytes.
constexpr std::size_t framed_size(std::size_t payload_length) {
  return kLengthBytes + payload_length + kChecksumBytes;
}

// Payload lengths a decoder accepts; anything outside is bad_length (framing
// can no longer be trusted, or a foreign/version-skewed producer).
struct frame_limits {
  std::uint32_t min_payload = 0;
  std::uint32_t max_payload = 0;
};

enum class decode_status : std::uint8_t {
  ok,            // a validated frame is available
  need_more,     // prefix of a frame; read more bytes and retry
  bad_length,    // length prefix outside the caller's limits
  bad_checksum,  // framing intact but the payload bytes are corrupt
};

// One decoded frame: `payload` points into the caller's buffer and is valid
// only until that buffer changes; `frame_bytes` is how much input it spans.
struct frame_view {
  const std::uint8_t* payload = nullptr;
  std::uint32_t payload_length = 0;
  std::size_t frame_bytes = 0;
};

// Encodes payload into `out`, which must hold framed_size(length) bytes.
inline void encode_frame(const std::uint8_t* payload, std::uint32_t length,
                         std::uint8_t* out) {
  std::memcpy(out, &length, kLengthBytes);
  if (length > 0) std::memcpy(out + kLengthBytes, payload, length);
  const std::uint64_t checksum = fnv1a64(payload, length);
  std::memcpy(out + kLengthBytes + length, &checksum, kChecksumBytes);
}

inline std::vector<std::uint8_t> encode_frame(const std::uint8_t* payload,
                                              std::uint32_t length) {
  std::vector<std::uint8_t> out(framed_size(length));
  encode_frame(payload, length, out.data());
  return out;
}

// Incremental decode of the frame starting at `data`.  On ok fills `out`;
// on need_more the caller should append more input and retry; bad_length /
// bad_checksum leave `out` untouched (for fixed-size streams the caller can
// still skip framed_size(limits.min_payload) bytes to resync past a
// bad_checksum frame, because the length prefix was already validated).
inline decode_status decode_frame(const std::uint8_t* data, std::size_t available,
                                  const frame_limits& limits, frame_view& out) {
  if (available < kLengthBytes) return decode_status::need_more;
  std::uint32_t length = 0;
  std::memcpy(&length, data, kLengthBytes);
  if (length < limits.min_payload || length > limits.max_payload) {
    return decode_status::bad_length;
  }
  if (available < framed_size(length)) return decode_status::need_more;
  std::uint64_t stored = 0;
  std::memcpy(&stored, data + kLengthBytes + length, kChecksumBytes);
  if (fnv1a64(data + kLengthBytes, length) != stored) {
    return decode_status::bad_checksum;
  }
  out.payload = data + kLengthBytes;
  out.payload_length = length;
  out.frame_bytes = framed_size(length);
  return decode_status::ok;
}

}  // namespace wire
}  // namespace pp::fleet
