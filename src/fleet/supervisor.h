// Fault-tolerant fleet sweep supervisor: replaces the blocking drain loop of
// sweep.h's fleet_run/spawn_worker_sweep with a poll()-multiplexed event
// loop that survives worker crashes instead of aborting the sweep.
//
// Supervision state machine, per worker slot:
//
//   running ──(EOF, exit 0, chunk complete)──────────────► idle / next chunk
//   running ──(EOF early, nonzero exit, torn record,
//              protocol violation, inactivity timeout)───► kill ► failed
//   failed  ──(retry budget left)──► backoff (capped exponential) ► respawn
//           └─(budget exhausted)──► degrade: remaining trials run inline,
//                                   serially, in the supervisor process
//
// Work is dealt in contiguous trial chunks.  A worker streams its chunk in
// order, so the validly received records of a failed worker always form a
// prefix — the remainder is again one contiguous chunk, handed to the
// respawned worker.  Determinism is free: trial t runs seed_gen.fork(t) no
// matter which process (or the inline fallback) executes it, so a recovered
// sweep's merged results are byte-identical to a serial sweep.
//
// With a journal path set, every completed trial is spooled to a crash-safe
// .ppaj journal (journal.h) as it streams in; `resume` replays the journal
// first and the supervisor runs only the gap.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fleet/fault.h"
#include "fleet/journal.h"
#include "fleet/sweep.h"
#include "support/rng.h"

namespace pp::obs {
class metrics_registry;
class trace_writer;
}  // namespace pp::obs

namespace pp::fleet {

struct supervise_options {
  int worker_timeout_ms = 0;      // per-worker inactivity timeout; 0 disables
  int max_retries = 2;            // total kill-and-respawns across the sweep
  int backoff_initial_ms = 10;    // first respawn delay
  int backoff_max_ms = 2000;      // cap of the exponential backoff
  std::string journal_path;       // spool completed trials here ("" = off)
  bool resume = false;            // replay journal_path, run only the gap
  std::uint64_t journal_tag = 0;  // sweep identity (master seed) in the header
  std::vector<fault_spec> faults; // injected into first-generation workers only

  // Observability (src/obs/), all optional and borrowed — the caller owns
  // the writer/registry and serialises them after the sweep.  `trace`
  // receives the supervisor timeline (span and instant names documented in
  // src/fleet/README.md); `metrics` the fleet.* counters.  In exec mode,
  // when `sidecar_dir` is set, each worker is told (via POPSIM_*_SIDECAR /
  // POPSIM_PROBE_STRIDE env vars) to drop per-trial trace spans and probe
  // metrics into per-(slot, generation) sidecar files there, which the
  // supervisor merges into `trace`/`metrics` and unlinks before returning.
  obs::trace_writer* trace = nullptr;
  obs::metrics_registry* metrics = nullptr;
  std::string sidecar_dir;        // worker sidecar directory ("" = off)
  std::uint64_t probe_stride = 0; // worker census-sampling stride (0 = off)

  // Live progress (popsim --progress): the poll loop prints a throttled
  // status line — trials done/total, per-slot state glyphs, an EWMA trial
  // rate and the ETA it implies — to *stderr only*.  Fleet stdout stays
  // byte-identical to serial regardless (tests/test_cli.cpp gates it), so
  // progress works identically in fork, --hosts and --resume modes.
  bool progress = false;
  int progress_interval_ms = 500;  // min delay between status lines

  // Transport health hook, called once per poll-loop iteration (<= ~5 Hz).
  // net.h's remote sweep installs its host health prober here: the hook
  // sends/collects health pings and returns the slots whose transport it
  // judges dead (a host failing several consecutive pings).  The
  // supervisor fails each returned slot that is still running through the
  // normal kill -> backoff -> respawn machinery.  Health data only ever
  // *accelerates* failure detection — it never refreshes a slot's
  // inactivity deadline (a healthy daemon can still host a stalled run).
  std::function<std::vector<int>()> health_tick;
};

// Fork-mode supervised sweep: as fleet_run, but workers that die (crash,
// nonzero exit, torn record, hang past the timeout) are killed and respawned
// with their incomplete trials, degrading to inline serial execution of the
// remainder once the retry budget is spent.  Returns the per-trial results
// indexed by trial; throws only on unrecoverable errors (journal mismatch,
// fault spec naming a slot beyond `jobs`).
std::vector<election_result> supervised_fleet_run(std::uint64_t trials,
                                                  rng seed_gen,
                                                  const trial_fn& fn, int jobs,
                                                  const supervise_options& options);

// Exec-mode supervised sweep: workers are
// `exe --worker <manifest_path> <slot> <base> <count> [<faults>]`
// subprocesses streaming records on stdout.  `inline_fn` (optional) runs
// remaining trials in this process when the retry budget is exhausted; with
// no inline fallback, exhaustion throws instead of degrading.
std::vector<election_result> supervised_spawn_sweep(
    const std::string& exe, const std::string& manifest_path,
    const worker_manifest& manifest, const supervise_options& options,
    const trial_fn& inline_fn = {});

// Worker-side block runner shared by fork-mode workers and popsim --worker:
// streams trials [range.base, range.base + range.count) to `fd` in order,
// trial t using seed_gen.fork(t), firing the injector's fault (if armed for
// this worker) at its exact record count.
void run_trial_block(trial_range range, int fd, const trial_fn& fn,
                     const rng& seed_gen,
                     const fault_injector& injector = {});

namespace detail {

// Launches one worker for `chunk` in slot `slot`; `inject` asks for fault
// injection (first-generation workers only).  `open_fds` are the parent's
// currently open record fds, which a forked child must close.  A launcher
// may return pid == -1 when the record stream is not a child process (a
// socket to a remote worker, net.h); returning read_fd < 0 reports a failed
// launch, which consumes a retry like any other slot failure.
using launch_fn = std::function<child_guard::child(
    int slot, trial_range chunk, bool inject, const std::vector<int>& open_fds)>;

// The shared supervision core behind supervised_fleet_run,
// supervised_spawn_sweep and net.h's supervised_remote_sweep: the
// poll()-multiplexed loop only ever sees record fds, so pipes and sockets
// get identical timeout / respawn / reassignment / journal treatment.
std::vector<election_result> supervise(std::uint64_t trials, rng seed_gen,
                                       int jobs,
                                       const supervise_options& options,
                                       const launch_fn& launch,
                                       const trial_fn& inline_fn,
                                       const char* what);

}  // namespace detail

}  // namespace pp::fleet
