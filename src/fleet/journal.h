// Crash-safe per-trial result journal (.ppaj): an append-only spool of
// completed trial records, written by the sweep supervisor as results
// stream in, so a sweep killed at any instant can be resumed from the
// trials that already finished instead of restarted from zero.
//
// File layout (all integers native-endian, same policy as the .ppaf
// artifact container):
//
//   offset  size  field
//   0       4     magic ("PPAJ" on little-endian disks)
//   4       4     endianness tag 0x01020304
//   8       4     format version (kJournalVersion)
//   12      4     reserved (0)
//   16      8     sweep tag (the master seed; binds a journal to its sweep)
//   24      8     total trial count of the sweep
//   32      ...   records: {u32 payload length, payload, u64 FNV-1a of payload}
//
// The record payload is exactly the fleet pipe protocol's encoding
// (sweep.h encode_trial_record, kTrialRecordPayload bytes), so the journal
// and the pipe can never drift.  Each record carries its own FNV-1a 64
// checksum — the same hash as the .ppaf header.
//
// Replay tolerance (the crash contract):
//   * a torn tail — the writer died mid-record — is silently ignored and
//     truncated away before the next append, so resuming after `kill -9`
//     always works;
//   * a record whose checksum fails (bit rot, partial overwrite) is
//     *skipped*, not fatal: the framing is fixed-size, so replay continues
//     at the next record and the damaged trial simply re-runs;
//   * a broken frame (length field != kTrialRecordPayload) ends the replay
//     at that offset — everything before it is kept, everything after is
//     untrusted and re-runs.
//
// Determinism makes all of this safe: trial t always runs seed_gen.fork(t),
// so a re-run produces the byte-identical record, and duplicate records for
// one trial (a crash between append and bookkeeping) are harmless
// (last-wins on replay).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/sweep.h"

namespace pp::fleet {

inline constexpr std::uint32_t kJournalMagic = 0x4A415050;  // "PPAJ"
inline constexpr std::uint32_t kJournalEndianTag = 0x01020304;
inline constexpr std::uint32_t kJournalVersion = 1;

// Sweep identity stored in the header: resuming against a journal written
// for a different (seed, trials) pair fails loudly instead of merging two
// unrelated sweeps.
struct journal_header {
  std::uint64_t tag = 0;     // master seed of the sweep
  std::uint64_t trials = 0;  // total trials of the sweep

  friend bool operator==(const journal_header&, const journal_header&) = default;
};

// Everything a replay recovers from a journal file.
struct journal_replay {
  journal_header header;
  std::vector<trial_record> records;  // checksum-valid records, file order
  std::uint64_t corrupt_records = 0;  // checksum-failed records skipped
  bool torn_tail = false;             // incomplete/broken trailing bytes ignored
  std::uint64_t durable_bytes = 0;    // offset after the last well-framed record
};

// Parses `path`, validating the header (magic, endianness, version) and
// every record checksum; tolerant of torn tails and corrupt records as
// described above.  Throws std::invalid_argument on a missing file or a
// file that is not a journal at all.
journal_replay replay_journal(const std::string& path);

// Appends trial records to a journal file, one write(2) per record so a
// killed writer tears at most the final record.
class journal_writer {
 public:
  // resume == false: create/truncate and write a fresh header.
  // resume == true: validate the existing file's header against `header`,
  // truncate any torn tail, and append after the last well-framed record
  // (a missing or empty file is initialized fresh).
  journal_writer(const std::string& path, const journal_header& header,
                 bool resume);
  ~journal_writer();
  journal_writer(const journal_writer&) = delete;
  journal_writer& operator=(const journal_writer&) = delete;

  void append(const trial_record& record);

 private:
  int fd_ = -1;
};

}  // namespace pp::fleet
