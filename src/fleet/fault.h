// Deterministic fault injection for fleet workers: every recovery branch of
// the sweep supervisor (supervisor.h) must be exercisable from tests and CI,
// not just believed, so faults are injected *by spec* at an exact point in a
// worker's record stream instead of sampled.
//
// Spec grammar (one spec; lists are comma-separated):
//
//   <kind>:w<slot>[:after=<n>]
//
//   kind   exit    | worker _exits nonzero after n records
//          sigkill | worker raises SIGKILL after n records (a crash)
//          stall   | worker stops writing after n records (hangs until the
//                  | supervisor's inactivity timeout kills it; also exits on
//                  | its own if the parent dies or the record stream's peer
//                  | closes it — a stalled remote worker whose client gave
//                  | up must not linger in the daemon)
//          torn    | worker writes a partial frame after n records and dies
//                  | (the classic died-mid-write tear)
//          drop    | worker closes its record stream mid-sweep and dies (on
//                  | sockets with an RST-provoking abort, the severed-
//                  | connection case)
//          garbage | worker writes a full frame with corrupted bytes (the
//                  | checksum no longer matches) and dies — in-flight
//                  | corruption the reader must detect and reject
//   slot   supervisor worker-slot index the fault applies to
//          (with --hosts, the slot's connection)
//   after  records written before the fault fires (default 0)
//
// The supervisor injects faults only into a slot's *first* worker process;
// respawned workers run clean, so a fault spec exercises exactly one
// failure + one recovery.  Trial determinism (trial t always runs
// seed_gen.fork(t)) guarantees the recovered sweep is byte-identical to a
// serial one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pp::fleet {

enum class fault_kind : std::uint8_t { exit, sigkill, stall, torn, drop, garbage };

struct fault_spec {
  fault_kind kind = fault_kind::exit;
  int worker = 0;           // supervisor slot index
  std::uint64_t after = 0;  // records written before the fault fires

  friend bool operator==(const fault_spec&, const fault_spec&) = default;
};

// Strict parse of one spec / a comma-separated list; returns false (leaving
// `out` unspecified) on any malformed input — unknown kind, bad slot, bad
// count, trailing garbage.
bool parse_fault_spec(const std::string& text, fault_spec& out);
bool parse_fault_specs(const std::string& text, std::vector<fault_spec>& out);

// Inverse of parse: `parse_fault_spec(to_string(s)) == s`.  Used to hand a
// spec list to `popsim --worker` subprocesses on their command line.
std::string to_string(const fault_spec& spec);
std::string to_string(const std::vector<fault_spec>& specs);

// Worker-side applier: fires the matching fault at the exact record count.
// Constructed in the worker process from the spec list and the worker's
// slot; `before_record(fd, written)` is called before writing each record
// with the number already written.  No kind ever returns once it fires:
// exit/sigkill/stall end the process outright, torn writes a partial frame,
// drop severs the stream, garbage writes a corrupt frame — then _exit.
class fault_injector {
 public:
  fault_injector() = default;
  fault_injector(const std::vector<fault_spec>& specs, int worker);

  void before_record(int fd, std::uint64_t written) const;
  bool armed() const { return armed_; }

 private:
  fault_spec spec_;
  bool armed_ = false;
};

}  // namespace pp::fleet
