// Process-level fleet sweeps: many independent trials sharded across worker
// OS processes.
//
// A sweep over T trials is embarrassingly parallel — trial t's generator is
// seed_gen.fork(t) and nothing else is shared — so the fleet driver simply
// partitions [0, T) into contiguous blocks, runs each block in its own
// process, and streams per-trial results back as length-prefixed records.
// The parent reassembles the records *by trial index* before summarizing, so
// a fleet sweep with any worker count produces exactly the per-trial result
// vector of a serial sweep over the same seed list: for the deterministic
// engines (per-interaction tuned runner; well-mixed at fixed batch) the
// merged summary is byte-identical to serial.  That seed-partition
// determinism is the contract tests/test_fleet.cpp and the CI
// fleet-determinism step enforce.
//
// Two process models share the record protocol:
//   * fleet_run forks the current process — the prepared runner (closed
//     table, packed endpoints) is inherited copy-on-write, so workers start
//     instantly and share every read-only byte;
//   * spawn_worker_sweep execs `popsim --worker <manifest> <index>`
//     subprocesses that load_artifact and rebuild the sweep themselves —
//     the model that generalises to other hosts (the manifest + artifact
//     pair is the whole job description).
//
// Record framing is the shared wire.h checked frame (native-endian):
//   u32 payload length (= 29) | payload | u64 fnv1a64(payload)
// with payload
//   u64 trial index, u64 steps, u64 distinct_states_used, i32 leader,
//   u8 stabilized.
// Pipes, sockets (net.h) and the on-disk journal (journal.h) all carry this
// exact frame, so the supervisor's buffered reader is transport-agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "support/rng.h"

namespace pp::fleet {

// Contiguous block of trial indices assigned to one worker: the first
// (trials mod jobs) workers get one extra trial.
struct trial_range {
  std::uint64_t base = 0;
  std::uint64_t count = 0;
};
trial_range worker_range(std::uint64_t trials, int jobs, int worker);

// One streamed result; `trial` is the global trial index.
struct trial_record {
  std::uint64_t trial = 0;
  election_result result;
};

// Fixed payload size of one encoded trial_record:
// u64 trial + u64 steps + u64 distinct + i32 leader + u8 stabilized.
inline constexpr std::uint32_t kTrialRecordPayload = 8 + 8 + 8 + 4 + 1;

// Flat encode/decode of one record payload — the shared wire format of the
// pipe protocol below, the supervisor's buffered reader (supervisor.h) and
// the on-disk journal (journal.h).
void encode_trial_record(const trial_record& record, std::uint8_t* out);
trial_record decode_trial_record(const std::uint8_t* payload);

// Checked-frame record IO on pipe/socket file descriptors (wire.h framing).
// write_trial_record retries short writes; read_trial_record returns false
// on a clean EOF at a frame boundary and throws on a torn or
// checksum-corrupt record.  A closed read end surfaces as EPIPE (workers
// ignore SIGPIPE), reported with strerror in the message.
void write_trial_record(int fd, const trial_record& record);
bool read_trial_record(int fd, trial_record& out);

// Worker-process prologue: ignore SIGPIPE so a worker whose parent died
// mid-sweep gets a loud EPIPE error (stderr + nonzero exit) instead of
// dying silently from the default disposition.  Called by every fork-mode
// worker and by `popsim --worker`.
void ignore_sigpipe();

// RAII guard over spawned worker processes: any exit path that does not
// explicitly reap (a throw mid-spawn or mid-drain) SIGKILLs and waitpids
// every still-owned child and closes its pipe, so no error path leaks
// zombies or orphans that keep writing to a dead pipe.
class child_guard {
 public:
  struct child {
    pid_t pid = -1;
    int read_fd = -1;
  };

  child_guard() = default;
  ~child_guard();
  child_guard(const child_guard&) = delete;
  child_guard& operator=(const child_guard&) = delete;

  void add(pid_t pid, int read_fd);
  std::vector<child>& children() { return children_; }

  // Closes a child's read fd (idempotent).
  void close_fd(child& c);

  // Blocking waitpid of one child; returns true iff it exited with status 0.
  // The child is no longer owned afterwards.
  bool reap(child& c);

  // SIGKILL + reap every still-owned child (the error-path teardown).
  void kill_all();

 private:
  std::vector<child> children_;
};

// The per-trial work: called with the global trial index and the trial's
// forked generator (seed_gen.fork(trial)).
using trial_fn = std::function<election_result(std::uint64_t trial, rng gen)>;

// Runs `trials` trials across `jobs` forked worker processes and returns the
// per-trial results indexed by trial (jobs == 1 runs inline).  Worker w
// computes the worker_range(trials, jobs, w) block; each trial t uses
// seed_gen.fork(t), so the result vector is identical to the serial loop's.
// Throws if a worker dies, a record is torn, or any trial fails to arrive.
std::vector<election_result> fleet_run(std::uint64_t trials, rng seed_gen,
                                       const trial_fn& fn, int jobs);

// Job description shared with `popsim --worker` subprocesses: which artifact
// to load and how to derive every worker's trial block and seeds.  Stored as
// a line-based key=value text file so it is diffable and host-portable.
struct worker_manifest {
  std::string artifact_path;
  std::uint64_t seed = 1;       // master seed; trial t uses rng(seed).fork(2).fork(t)
  std::uint64_t trials = 1;
  int jobs = 1;
  std::uint64_t max_steps = UINT64_MAX;
  std::uint64_t wellmixed_batch = 0;
  // Runtime scheduler choice (core/simulator.h): step or silent.  A runtime
  // knob like max_steps — never part of the artifact.
  scheduler_kind scheduler = scheduler_kind::step;
};

void write_manifest(const worker_manifest& manifest, const std::string& path);
worker_manifest read_manifest(const std::string& path);

// Streams worker `index`'s block of the manifest's trials to `fd` (the
// worker half of spawn_worker_sweep; popsim --worker calls this with
// STDOUT_FILENO).  Trial t runs fn(t, seed_gen.fork(t)).
void run_worker_block(const worker_manifest& manifest, int index, int fd,
                      const trial_fn& fn, const rng& seed_gen);

// Spawns `manifest.jobs` subprocesses `exe --worker <manifest_path> <w>`,
// reads their stdout record streams, and returns the per-trial results
// indexed by trial.  Throws if a worker exits nonzero, a record is torn, or
// any trial fails to arrive.
std::vector<election_result> spawn_worker_sweep(const std::string& exe,
                                                const std::string& manifest_path,
                                                const worker_manifest& manifest);

// Absolute path of the running executable (/proc/self/exe), falling back to
// `argv0` where procfs is unavailable.
std::string self_exe_path(const char* argv0);

}  // namespace pp::fleet
