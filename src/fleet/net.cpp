#include "fleet/net.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "fleet/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/expects.h"
#include "support/parse.h"

namespace pp::fleet::net {

namespace {

using steady_clock = std::chrono::steady_clock;

// How long any single handshake step may take.  Generous: a cache miss makes
// the daemon verify, rebuild and validate the shipped artifact before it
// replies OK_CACHED.
constexpr int kHandshakeTimeoutMs = 30000;

std::int64_t ms_until(steady_clock::time_point when) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             when - steady_clock::now())
      .count();
}

// Polls fd for `events` until the deadline; throws on timeout.
void await_fd(int fd, short events, steady_clock::time_point deadline,
              const char* what) {
  for (;;) {
    const std::int64_t left = ms_until(deadline);
    ensure(left > 0, std::string("fleet net: timed out ") + what);
    pollfd p{fd, events, 0};
    const int r = ::poll(&p, 1, static_cast<int>(std::min<std::int64_t>(
                                    left, 1000)));
    ensure(r >= 0 || errno == EINTR,
           std::string("fleet net: poll failed: ") + std::strerror(errno));
    if (r > 0) return;  // ready, or an error the read/write will surface
  }
}

void write_all_deadline(int fd, const std::uint8_t* data, std::size_t size,
                        steady_clock::time_point deadline, const char* what) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n > 0) {
      data += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      await_fd(fd, POLLOUT, deadline, what);
      continue;
    }
    ensure(n < 0 && errno == EINTR,
           std::string("fleet net: write failed: ") + std::strerror(errno));
  }
}

// Reads exactly `size` bytes; returns false on EOF before the first byte,
// throws on EOF mid-buffer or timeout.
bool read_exact_deadline(int fd, std::uint8_t* data, std::size_t size,
                         steady_clock::time_point deadline, const char* what) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      ensure(got == 0, std::string("fleet net: stream torn ") + what);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      await_fd(fd, POLLIN, deadline, what);
      continue;
    }
    ensure(errno == EINTR,
           std::string("fleet net: read failed: ") + std::strerror(errno));
  }
  return true;
}

template <typename T>
void pack(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
bool unpack(const std::uint8_t* payload, std::size_t length, std::size_t& off,
            T& out) {
  if (length - off < sizeof(T)) return false;
  std::memcpy(&out, payload + off, sizeof(T));
  off += sizeof(T);
  return true;
}

}  // namespace

std::string to_string(const host_addr& addr) {
  return addr.host + ":" + std::to_string(addr.port);
}

bool parse_host(const std::string& text, host_addr& out) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  std::uint64_t port = 0;
  if (!parse_u64(text.c_str() + colon + 1, port)) return false;
  if (port < 1 || port > 65535) return false;
  out.host = text.substr(0, colon);
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

bool parse_host_list(const std::string& text, std::vector<host_addr>& out) {
  std::vector<host_addr> hosts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string one =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    host_addr addr;
    if (!parse_host(one, addr)) return false;
    hosts.push_back(addr);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (hosts.empty()) return false;
  out = std::move(hosts);
  return true;
}

std::vector<std::uint8_t> encode_sweep_request(const sweep_request& request) {
  std::vector<std::uint8_t> payload;
  payload.reserve(78 + request.faults.size());
  pack<std::uint8_t>(payload, static_cast<std::uint8_t>(msg_type::req_sweep));
  pack<std::uint32_t>(payload, request.version);
  pack<std::uint64_t>(payload, request.artifact_checksum);
  pack<std::uint64_t>(payload, request.artifact_size);
  pack<std::uint32_t>(payload, request.slot);
  pack<std::uint64_t>(payload, request.seed);
  pack<std::uint64_t>(payload, request.trials);
  pack<std::uint64_t>(payload, request.base);
  pack<std::uint64_t>(payload, request.count);
  pack<std::uint64_t>(payload, request.max_steps);
  pack<std::uint64_t>(payload, request.wellmixed_batch);
  pack<std::uint8_t>(payload, request.scheduler);
  pack<std::uint32_t>(payload,
                      static_cast<std::uint32_t>(request.faults.size()));
  payload.insert(payload.end(), request.faults.begin(), request.faults.end());
  return payload;
}

bool decode_sweep_request(const std::uint8_t* payload, std::size_t length,
                          sweep_request& out) {
  sweep_request r;
  std::size_t off = 0;
  std::uint8_t type = 0;
  std::uint32_t faults_length = 0;
  if (!unpack(payload, length, off, type) ||
      type != static_cast<std::uint8_t>(msg_type::req_sweep) ||
      !unpack(payload, length, off, r.version) ||
      !unpack(payload, length, off, r.artifact_checksum) ||
      !unpack(payload, length, off, r.artifact_size) ||
      !unpack(payload, length, off, r.slot) ||
      !unpack(payload, length, off, r.seed) ||
      !unpack(payload, length, off, r.trials) ||
      !unpack(payload, length, off, r.base) ||
      !unpack(payload, length, off, r.count) ||
      !unpack(payload, length, off, r.max_steps) ||
      !unpack(payload, length, off, r.wellmixed_batch) ||
      !unpack(payload, length, off, r.scheduler) ||
      !unpack(payload, length, off, faults_length)) {
    return false;
  }
  if (length - off != faults_length) return false;  // exact-size payloads only
  r.faults.assign(reinterpret_cast<const char*>(payload) + off, faults_length);
  out = std::move(r);
  return true;
}

void send_frame(int fd, const std::uint8_t* payload, std::size_t length,
                int timeout_ms) {
  expects(length <= kMaxControlPayload, "fleet net: frame payload too large");
  const std::vector<std::uint8_t> frame =
      wire::encode_frame(payload, static_cast<std::uint32_t>(length));
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  write_all_deadline(fd, frame.data(), frame.size(), deadline,
                     "sending a frame");
}

std::vector<std::uint8_t> recv_frame(int fd, std::uint32_t max_payload,
                                     int timeout_ms) {
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::uint8_t head[wire::kLengthBytes];
  ensure(read_exact_deadline(fd, head, sizeof(head), deadline,
                             "awaiting a frame"),
         "fleet net: connection closed while awaiting a frame");
  std::uint32_t length = 0;
  std::memcpy(&length, head, sizeof(length));
  ensure(length <= max_payload,
         "fleet net: oversized frame (version skew or corrupt stream)");
  // Reassemble the whole frame so wire::decode_frame does the validation —
  // never reading past it, so trailing record bytes stay in the stream.
  std::vector<std::uint8_t> frame(wire::framed_size(length));
  std::memcpy(frame.data(), head, sizeof(head));
  ensure(read_exact_deadline(fd, frame.data() + sizeof(head),
                             frame.size() - sizeof(head), deadline,
                             "reading a frame body"),
         "fleet net: frame torn mid-body");
  wire::frame_view view;
  ensure(wire::decode_frame(frame.data(), frame.size(), {0, max_payload},
                            view) == wire::decode_status::ok,
         "fleet net: frame checksum mismatch");
  return std::vector<std::uint8_t>(view.payload, view.payload + view.payload_length);
}

int listen_on(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ensure(fd >= 0, std::string("fleet net: socket failed: ") +
                      std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    ensure(false, "fleet net: cannot listen on port " + std::to_string(port) +
                      ": " + why);
  }
  return fd;
}

std::uint16_t bound_port(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  ensure(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
         std::string("fleet net: getsockname failed: ") + std::strerror(errno));
  return ntohs(addr.sin_port);
}

int dial(const host_addr& addr, int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string port = std::to_string(addr.port);
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(addr.host.c_str(), port.c_str(), &hints, &found);
  if (rc != 0) {
    obs::logf(obs::log_level::warn, "fleet net: cannot resolve %s: %s",
              to_string(addr).c_str(), ::gai_strerror(rc));
    return -1;
  }
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  int fd = -1;
  for (addrinfo* ai = found; ai != nullptr && fd < 0; ai = ai->ai_next) {
    const int s = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (s < 0) continue;
    // Non-blocking connect bounded by the deadline, then back to blocking:
    // the frame IO layer manages its own deadlines via poll.
    const int flags = ::fcntl(s, F_GETFL, 0);
    ::fcntl(s, F_SETFL, flags | O_NONBLOCK);
    int connected = ::connect(s, ai->ai_addr, ai->ai_addrlen);
    if (connected != 0 && errno == EINPROGRESS) {
      try {
        await_fd(s, POLLOUT, deadline, "connecting");
        int err = 0;
        socklen_t err_len = sizeof(err);
        if (::getsockopt(s, SOL_SOCKET, SO_ERROR, &err, &err_len) == 0 &&
            err == 0) {
          connected = 0;
        } else {
          errno = err;
        }
      } catch (const std::exception&) {
        connected = -1;
        errno = ETIMEDOUT;
      }
    }
    if (connected == 0) {
      ::fcntl(s, F_SETFL, flags);
      const int one = 1;
      ::setsockopt(s, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd = s;
    } else {
      ::close(s);
    }
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    obs::logf(obs::log_level::warn, "fleet net: cannot connect to %s: %s",
              to_string(addr).c_str(), std::strerror(errno));
  }
  return fd;
}

int request_sweep(const host_addr& addr, const sweep_request& request,
                  const std::vector<std::uint8_t>& artifact_bytes,
                  int timeout_ms, bool* shipped) {
  if (shipped != nullptr) *shipped = false;
  const int fd = dial(addr, timeout_ms);
  if (fd < 0) return -1;
  try {
    const std::vector<std::uint8_t> req = encode_sweep_request(request);
    send_frame(fd, req.data(), req.size(), timeout_ms);
    std::vector<std::uint8_t> reply = recv_frame(fd, kMaxControlPayload,
                                                 timeout_ms);
    ensure(!reply.empty(), "fleet net: empty handshake reply");
    if (reply[0] == static_cast<std::uint8_t>(msg_type::need_artifact)) {
      ensure(artifact_bytes.size() == request.artifact_size,
             "fleet net: artifact bytes do not match the request");
      std::vector<std::uint8_t> data;
      data.reserve(1 + artifact_bytes.size());
      data.push_back(static_cast<std::uint8_t>(msg_type::artifact_data));
      data.insert(data.end(), artifact_bytes.begin(), artifact_bytes.end());
      send_frame(fd, data.data(), data.size(), timeout_ms);
      if (shipped != nullptr) *shipped = true;
      reply = recv_frame(fd, kMaxControlPayload, timeout_ms);
      ensure(!reply.empty(), "fleet net: empty handshake reply");
    }
    if (reply[0] == static_cast<std::uint8_t>(msg_type::ok_cached)) {
      return fd;
    }
    if (reply[0] == static_cast<std::uint8_t>(msg_type::err)) {
      const std::string message(reply.begin() + 1, reply.end());
      obs::logf(obs::log_level::error, "fleet net: %s rejected the sweep: %s",
                to_string(addr).c_str(), message.c_str());
    } else {
      obs::logf(obs::log_level::error,
                "fleet net: unexpected handshake reply 0x%02x from %s",
                reply[0], to_string(addr).c_str());
    }
  } catch (const std::exception& e) {
    obs::logf(obs::log_level::warn, "fleet net: handshake with %s failed: %s",
              to_string(addr).c_str(), e.what());
  }
  ::close(fd);
  return -1;
}

std::int64_t ping_daemon(int fd, std::uint64_t token, int timeout_ms) {
  try {
    std::vector<std::uint8_t> payload;
    payload.reserve(13);
    pack<std::uint8_t>(payload, static_cast<std::uint8_t>(msg_type::ping));
    pack<std::uint32_t>(payload, kNetVersion);
    pack<std::uint64_t>(payload, token);
    const steady_clock::time_point sent = steady_clock::now();
    send_frame(fd, payload.data(), payload.size(), timeout_ms);
    const std::vector<std::uint8_t> reply =
        recv_frame(fd, kMaxControlPayload, timeout_ms);
    if (reply.size() != 9 ||
        reply[0] != static_cast<std::uint8_t>(msg_type::pong)) {
      obs::logf(obs::log_level::debug,
                "fleet net: health ping got a non-PONG reply (0x%02x, %zu "
                "bytes)",
                reply.empty() ? 0 : reply[0], reply.size());
      return -1;
    }
    std::uint64_t echoed = 0;
    std::memcpy(&echoed, reply.data() + 1, sizeof(echoed));
    if (echoed != token) {
      obs::logf(obs::log_level::debug,
                "fleet net: health pong token mismatch");
      return -1;
    }
    return std::chrono::duration_cast<std::chrono::microseconds>(
               steady_clock::now() - sent)
        .count();
  } catch (const std::exception& e) {
    obs::logf(obs::log_level::debug, "fleet net: health ping failed: %s",
              e.what());
    return -1;
  }
}

bool fetch_stats(const host_addr& addr, std::string& json_out, int timeout_ms) {
  const int fd = dial(addr, timeout_ms);
  if (fd < 0) return false;
  bool ok = false;
  try {
    std::vector<std::uint8_t> payload;
    payload.reserve(5);
    pack<std::uint8_t>(payload, static_cast<std::uint8_t>(msg_type::stats));
    pack<std::uint32_t>(payload, kNetVersion);
    send_frame(fd, payload.data(), payload.size(), timeout_ms);
    const std::vector<std::uint8_t> reply =
        recv_frame(fd, kMaxControlPayload, timeout_ms);
    if (!reply.empty() &&
        reply[0] == static_cast<std::uint8_t>(msg_type::stats_ok)) {
      json_out.assign(reply.begin() + 1, reply.end());
      ok = true;
    } else if (!reply.empty() &&
               reply[0] == static_cast<std::uint8_t>(msg_type::err)) {
      const std::string message(reply.begin() + 1, reply.end());
      obs::logf(obs::log_level::error,
                "fleet net: %s rejected the stats request: %s",
                to_string(addr).c_str(), message.c_str());
    } else {
      obs::logf(obs::log_level::error,
                "fleet net: unexpected stats reply 0x%02x from %s",
                reply.empty() ? 0 : reply[0], to_string(addr).c_str());
    }
  } catch (const std::exception& e) {
    obs::logf(obs::log_level::warn,
              "fleet net: stats request to %s failed: %s",
              to_string(addr).c_str(), e.what());
  }
  ::close(fd);
  return ok;
}

namespace {

// Host health prober state, one entry per listed host.  Owns a persistent
// control connection per host (lazily dialed, redialed after a failure) so
// the ping train rides one socket instead of a connect storm.
struct host_health {
  int fd = -1;
  std::uint64_t token = 0;
  steady_clock::time_point next_ping;  // epoch start => immediate first ping
  int consecutive_failures = 0;
};

constexpr int kHealthIntervalMs = 1000;  // ping cadence per host
constexpr int kHealthTimeoutMs = 1000;   // dial + round-trip budget
constexpr int kHealthFailuresToKill = 3; // consecutive misses => host is dead

}  // namespace

std::vector<election_result> supervised_remote_sweep(
    const std::vector<host_addr>& hosts, int jobs,
    const worker_manifest& manifest, const supervise_options& options,
    const trial_fn& inline_fn) {
  expects(!hosts.empty(), "supervised_remote_sweep: empty host list");
  expects(jobs >= 1, "supervised_remote_sweep: jobs must be >= 1");

  // Read + checksum the artifact once; connections ship it only on a cache
  // miss at their daemon.
  std::vector<std::uint8_t> blob;
  {
    std::FILE* f = std::fopen(manifest.artifact_path.c_str(), "rb");
    expects(f != nullptr, "supervised_remote_sweep: cannot open artifact " +
                              manifest.artifact_path);
    std::uint8_t buf[65536];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      blob.insert(blob.end(), buf, buf + n);
    }
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    expects(!failed, "supervised_remote_sweep: cannot read artifact " +
                         manifest.artifact_path);
  }
  const std::uint64_t checksum = fnv1a64(blob.data(), blob.size());

  std::vector<int> generation(static_cast<std::size_t>(jobs), 0);
  const detail::launch_fn launch = [&](int slot, trial_range chunk, bool inject,
                                       const std::vector<int>&) {
    const host_addr& addr = hosts[static_cast<std::size_t>(slot) % hosts.size()];
    sweep_request request;
    request.artifact_checksum = checksum;
    request.artifact_size = blob.size();
    request.slot = static_cast<std::uint32_t>(slot);
    request.seed = manifest.seed;
    request.trials = manifest.trials;
    request.base = chunk.base;
    request.count = chunk.count;
    request.max_steps = manifest.max_steps;
    request.wellmixed_batch = manifest.wellmixed_batch;
    request.scheduler = static_cast<std::uint8_t>(manifest.scheduler);
    if (inject && !options.faults.empty()) {
      request.faults = to_string(options.faults);
    }
    const int gen = generation[static_cast<std::size_t>(slot)]++;
    bool shipped = false;
    const int fd =
        request_sweep(addr, request, blob, kHandshakeTimeoutMs, &shipped);
    if (options.trace != nullptr) {
      options.trace->instant(
          gen == 0 ? "connect" : "reconnect", 0,
          {obs::trace_arg::num("slot", static_cast<std::int64_t>(slot)),
           obs::trace_arg::str("host", addr.host),
           obs::trace_arg::num("port", static_cast<std::int64_t>(addr.port)),
           obs::trace_arg::num("ok", static_cast<std::int64_t>(fd >= 0 ? 1 : 0))});
      if (shipped) {
        options.trace->instant(
            "artifact_ship", 0,
            {obs::trace_arg::num("slot", static_cast<std::int64_t>(slot)),
             obs::trace_arg::num("bytes",
                                 static_cast<std::uint64_t>(blob.size()))});
      }
    }
    if (options.metrics != nullptr) {
      if (fd >= 0) {
        options.metrics->add(gen == 0 ? "fleet.net.connects"
                                      : "fleet.net.reconnects");
      } else {
        options.metrics->add("fleet.net.connect_failures");
      }
      if (shipped) {
        options.metrics->add("fleet.net.artifacts_shipped");
        options.metrics->add("fleet.net.artifact_bytes",
                             static_cast<std::uint64_t>(blob.size()));
      }
    }
    return child_guard::child{-1, fd};
  };

  // Host health prober (net.h): one persistent control connection per
  // listed host, pinged about once a second from the supervisor's
  // health_tick hook.  The first ping fires on the first tick, so even a
  // short CI sweep records at least one health_probe instant per host.
  std::vector<host_health> health(hosts.size());
  const steady_clock::time_point health_epoch = steady_clock::now();
  for (host_health& h : health) h.next_ping = health_epoch;
  struct health_closer {
    std::vector<host_health>* probes;
    ~health_closer() {
      for (host_health& h : *probes) {
        if (h.fd >= 0) {
          ::close(h.fd);
          h.fd = -1;
        }
      }
    }
  } closer{&health};
  supervise_options probed_options = options;
  probed_options.health_tick = [&]() {
    std::vector<int> dead_slots;
    const steady_clock::time_point now = steady_clock::now();
    for (std::size_t hi = 0; hi < hosts.size(); ++hi) {
      host_health& h = health[hi];
      if (now < h.next_ping) continue;
      h.next_ping = now + std::chrono::milliseconds(kHealthIntervalMs);
      if (h.fd < 0) h.fd = dial(hosts[hi], kHealthTimeoutMs);
      std::int64_t rtt_us = -1;
      if (h.fd >= 0) {
        rtt_us = ping_daemon(h.fd, ++h.token, kHealthTimeoutMs);
        if (rtt_us < 0) {
          // One socket strike: drop the connection so the next tick
          // redials instead of reading a desynchronised stream.
          ::close(h.fd);
          h.fd = -1;
        }
      }
      const bool ok = rtt_us >= 0;
      h.consecutive_failures = ok ? 0 : h.consecutive_failures + 1;
      if (options.trace != nullptr) {
        options.trace->instant(
            "health_probe", 0,
            {obs::trace_arg::str("host", hosts[hi].host),
             obs::trace_arg::num("port",
                                 static_cast<std::int64_t>(hosts[hi].port)),
             obs::trace_arg::num("rtt_us", rtt_us),
             obs::trace_arg::num("ok", static_cast<std::int64_t>(ok ? 1 : 0))});
      }
      if (options.metrics != nullptr) {
        options.metrics->add("fleet.net.health.pings");
        if (ok) {
          options.metrics->add("fleet.net.health.pongs");
          options.metrics->observe("fleet.net.health.rtt_us",
                                   static_cast<std::uint64_t>(rtt_us));
        } else {
          options.metrics->add("fleet.net.health.failures");
        }
      }
      if (h.consecutive_failures >= kHealthFailuresToKill) {
        obs::logf(obs::log_level::warn,
                  "fleet net: host %s failed %d consecutive health pings; "
                  "failing its running slots",
                  to_string(hosts[hi]).c_str(), h.consecutive_failures);
        if (options.metrics != nullptr) {
          options.metrics->add("fleet.net.health.hosts_failed");
        }
        h.consecutive_failures = 0;  // re-arm: 3 more misses to fail again
        for (int slot = 0; slot < jobs; ++slot) {
          if (static_cast<std::size_t>(slot) % hosts.size() == hi) {
            dead_slots.push_back(slot);
          }
        }
      }
    }
    return dead_slots;
  };

  // Trial t uses rng(seed).fork(2).fork(t) — the exact derivation of serial
  // sweeps, popsim --worker, and popsimd runner children (service.cpp), so
  // a remote merge is byte-identical to a serial run.
  const rng seed_gen = rng(manifest.seed).fork(2);
  return detail::supervise(manifest.trials, seed_gen, jobs, probed_options,
                           launch, inline_fn, "supervised_remote_sweep");
}

}  // namespace pp::fleet::net
