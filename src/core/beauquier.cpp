#include "core/beauquier.h"

#include <algorithm>

#include "support/expects.h"

namespace pp {

bq_state bq_init(bool candidate) {
  if (candidate) return {true, bq_token::black};
  return {false, bq_token::none};
}

namespace {

// A candidate that holds a white token becomes a follower and destroys it.
void bq_resolve(bq_state& s) {
  if (s.candidate && s.token == bq_token::white) {
    s.candidate = false;
    s.token = bq_token::none;
  }
}

}  // namespace

void bq_interact(bq_state& initiator, bq_state& responder) {
  std::swap(initiator.token, responder.token);
  if (initiator.token == bq_token::black && responder.token == bq_token::black) {
    responder.token = bq_token::white;
  }
  bq_resolve(initiator);
  bq_resolve(responder);
}

void bq_counts::add(const bq_state& s, std::int64_t sign) {
  if (s.candidate) candidates += sign;
  if (s.token == bq_token::black) black += sign;
  if (s.token == bq_token::white) white += sign;
}

beauquier_protocol::beauquier_protocol(node_id n)
    : n_(n), candidates_(static_cast<std::size_t>(n), true) {
  expects(n >= 1, "beauquier_protocol: need n >= 1");
}

beauquier_protocol::beauquier_protocol(node_id n, std::vector<bool> candidates)
    : n_(n), candidates_(std::move(candidates)) {
  expects(n >= 1, "beauquier_protocol: need n >= 1");
  expects(candidates_.size() == static_cast<std::size_t>(n),
          "beauquier_protocol: candidate vector size must equal n");
  expects(std::any_of(candidates_.begin(), candidates_.end(),
                      [](bool c) { return c; }),
          "beauquier_protocol: candidate set must be nonempty");
}

beauquier_protocol::state_type beauquier_protocol::initial_state(node_id v) const {
  expects(v >= 0 && v < n_, "beauquier_protocol::initial_state: node out of range");
  return bq_init(candidates_[static_cast<std::size_t>(v)]);
}

beauquier_protocol::tracker_type::tracker_type(const beauquier_protocol&,
                                               const graph&,
                                               std::span<const state_type> config) {
  for (const state_type& s : config) counts_.add(s, +1);
}

void beauquier_protocol::tracker_type::on_interaction(
    const beauquier_protocol&, node_id, node_id, const state_type& old_u,
    const state_type& old_v, const state_type& new_u, const state_type& new_v) {
  counts_.add(old_u, -1);
  counts_.add(old_v, -1);
  counts_.add(new_u, +1);
  counts_.add(new_v, +1);
}

bq_run_result run_beauquier_event_driven(const beauquier_protocol& proto,
                                         const graph& g, rng gen,
                                         std::uint64_t max_steps) {
  expects(g.num_nodes() == proto.num_nodes(),
          "run_beauquier_event_driven: graph/protocol size mismatch");
  const node_id n = g.num_nodes();
  const double m = static_cast<double>(g.num_edges());

  std::vector<bq_state> state(static_cast<std::size_t>(n));
  bq_counts counts;
  for (node_id v = 0; v < n; ++v) {
    state[static_cast<std::size_t>(v)] = proto.initial_state(v);
    counts.add(state[static_cast<std::size_t>(v)], +1);
  }

  // Active edges: those incident to at least one token holder.  Interactions
  // on inactive edges swap two empty token slots — a no-op — so they can be
  // skipped geometrically without changing any observable distribution.
  const auto holds = [&](node_id v) {
    return state[static_cast<std::size_t>(v)].token != bq_token::none;
  };

  std::vector<std::size_t> position(static_cast<std::size_t>(g.num_edges()),
                                    static_cast<std::size_t>(-1));
  std::vector<std::int64_t> active;
  const auto edge_active = [&](std::int64_t id) {
    const edge& e = g.edges()[static_cast<std::size_t>(id)];
    return holds(e.u) || holds(e.v);
  };
  const auto insert_edge = [&](std::int64_t id) {
    if (position[static_cast<std::size_t>(id)] != static_cast<std::size_t>(-1)) return;
    position[static_cast<std::size_t>(id)] = active.size();
    active.push_back(id);
  };
  const auto erase_edge = [&](std::int64_t id) {
    const std::size_t pos = position[static_cast<std::size_t>(id)];
    if (pos == static_cast<std::size_t>(-1)) return;
    const std::int64_t last = active.back();
    active[pos] = last;
    position[static_cast<std::size_t>(last)] = pos;
    active.pop_back();
    position[static_cast<std::size_t>(id)] = static_cast<std::size_t>(-1);
  };
  const auto refresh_node_edges = [&](node_id v) {
    for (const std::int64_t id : g.incident_edge_ids(v)) {
      if (edge_active(id)) {
        insert_edge(id);
      } else {
        erase_edge(id);
      }
    }
  };

  for (node_id v = 0; v < n; ++v) {
    if (holds(v)) {
      for (const std::int64_t id : g.incident_edge_ids(v)) insert_edge(id);
    }
  }

  bq_run_result result;
  std::uint64_t steps = 0;
  while (!counts.stable()) {
    ensure(!active.empty(), "run_beauquier_event_driven: no active edges");
    steps += gen.geometric(static_cast<double>(active.size()) / m);
    if (steps > max_steps) {
      result.steps = max_steps;
      return result;
    }
    const std::int64_t id =
        active[static_cast<std::size_t>(gen.uniform_below(active.size()))];
    const edge& e = g.edges()[static_cast<std::size_t>(id)];
    const bool flip = gen.coin();
    const node_id a = flip ? e.v : e.u;  // initiator
    const node_id b = flip ? e.u : e.v;  // responder

    auto& sa = state[static_cast<std::size_t>(a)];
    auto& sb = state[static_cast<std::size_t>(b)];
    const bool a_held = holds(a);
    const bool b_held = holds(b);
    counts.add(sa, -1);
    counts.add(sb, -1);
    bq_interact(sa, sb);
    counts.add(sa, +1);
    counts.add(sb, +1);
    if (holds(a) != a_held) refresh_node_edges(a);
    if (holds(b) != b_held) refresh_node_edges(b);
  }

  result.stabilized = true;
  result.steps = steps;
  for (node_id v = 0; v < n; ++v) {
    if (state[static_cast<std::size_t>(v)].candidate) {
      result.leader = v;
      break;
    }
  }
  return result;
}

}  // namespace pp
