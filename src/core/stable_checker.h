// Ground-truth stability via exhaustive reachability (test oracle).
//
// A configuration is stable iff every configuration reachable from it by any
// interaction sequence produces the same output at every node (§2.2).  For
// tiny graphs and small state spaces this is decidable by BFS over the
// configuration graph; the test suite uses it to validate each protocol's
// O(1)-per-step stability tracker against the definition.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "core/protocol.h"
#include "graph/graph.h"
#include "support/expects.h"

namespace pp {

namespace detail {

// FNV-1a over the encoded configuration; collisions are guarded by storing
// full keys in the visited set.
inline std::uint64_t hash_encoded(const std::vector<std::uint64_t>& enc) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t x : enc) {
    h ^= x;
    h *= 1099511628211ull;
    h ^= x >> 32;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace detail

// Result of the exhaustive check.
struct reachability_report {
  bool stable = false;          // all reachable configurations agree on output
  bool exhausted = true;        // false if max_configs was hit (inconclusive)
  std::size_t configs_visited = 0;
};

// Explores every configuration reachable from `config` under `proto` on `g`
// (interactions in both orientations of every edge) and reports whether all
// of them produce identical output vectors.
template <population_protocol P>
reachability_report brute_force_stability(const P& proto, const graph& g,
                                          std::vector<typename P::state_type> config,
                                          std::size_t max_configs = 2'000'000) {
  using state = typename P::state_type;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  expects(config.size() == n, "brute_force_stability: configuration size mismatch");

  const auto outputs_of = [&](const std::vector<state>& c) {
    std::vector<role> out(n);
    for (std::size_t v = 0; v < n; ++v) out[v] = proto.output(c[v]);
    return out;
  };
  const auto encode_all = [&](const std::vector<state>& c) {
    std::vector<std::uint64_t> enc(n);
    for (std::size_t v = 0; v < n; ++v) enc[v] = proto.encode(c[v]);
    return enc;
  };

  const std::vector<role> reference = outputs_of(config);

  struct key_hash {
    std::size_t operator()(const std::vector<std::uint64_t>& k) const {
      return static_cast<std::size_t>(detail::hash_encoded(k));
    }
  };
  std::unordered_set<std::vector<std::uint64_t>, key_hash> visited;
  std::deque<std::vector<state>> queue;

  visited.insert(encode_all(config));
  queue.push_back(std::move(config));

  reachability_report report;
  while (!queue.empty()) {
    const std::vector<state> current = std::move(queue.front());
    queue.pop_front();
    ++report.configs_visited;

    if (outputs_of(current) != reference) {
      report.stable = false;
      return report;
    }
    if (visited.size() > max_configs) {
      report.exhausted = false;
      report.stable = false;
      return report;
    }

    for (const edge& e : g.edges()) {
      for (const bool flip : {false, true}) {
        std::vector<state> next = current;
        auto& a = next[static_cast<std::size_t>(flip ? e.v : e.u)];
        auto& b = next[static_cast<std::size_t>(flip ? e.u : e.v)];
        proto.interact(a, b);
        auto enc = encode_all(next);
        if (visited.insert(std::move(enc)).second) {
          queue.push_back(std::move(next));
        }
      }
    }
  }
  report.stable = true;
  return report;
}

}  // namespace pp
