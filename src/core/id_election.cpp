#include "core/id_election.h"

#include <cmath>

#include "support/expects.h"

namespace pp {

id_protocol::id_protocol(int k) : k_(k) {
  expects(k >= 1 && k <= 62, "id_protocol: k must be in [1, 62]");
  id_threshold_ = static_cast<std::uint64_t>(1) << k;
}

int id_protocol::suggested_k(node_id n) {
  expects(n >= 2, "id_protocol::suggested_k: need n >= 2");
  const int k = static_cast<int>(std::ceil(4.0 * std::log2(static_cast<double>(n))));
  return std::min(k, 62);
}

id_protocol::state_type id_protocol::initial_state(node_id) const {
  return {1, bq_init(false)};
}

void id_protocol::interact(state_type& a, state_type& b) const {
  const state_type pre_a = a;
  const state_type pre_b = b;

  // Rules (1) and (2) for one node; `bit` is its index i in the ordered pair
  // and `other` the partner's pre-interaction state.
  const auto id_rules = [this](state_type& self, const state_type& other,
                               std::uint64_t bit) {
    if (self.id < id_threshold_) {
      self.id = 2 * self.id + bit;
      if (self.id >= id_threshold_) self.backup = bq_init(true);
    }
    if (self.id < other.id && other.id >= id_threshold_) {
      self.id = other.id;
      self.backup = bq_init(false);
    }
  };
  id_rules(a, pre_b, 0);
  id_rules(b, pre_a, 1);

  // Rule (3): the constant-state instance runs within an instance label.
  if (a.id == b.id) bq_interact(a.backup, b.backup);
}

id_protocol::tracker_type::tracker_type(const id_protocol& proto, const graph&,
                                        std::span<const state_type> config)
    : threshold_(proto.id_threshold()) {
  for (const state_type& s : config) {
    add_id(s.id, +1);
    counts_.add(s.backup, +1);
    ++nodes_;
  }
}

void id_protocol::tracker_type::add_id(std::uint64_t id, std::int64_t sign) {
  auto [it, inserted] = id_count_.try_emplace(id, 0);
  it->second += sign;
  if (it->second == 0) id_count_.erase(it);
}

void id_protocol::tracker_type::on_interaction(const id_protocol&, node_id, node_id,
                                               const state_type& old_u,
                                               const state_type& old_v,
                                               const state_type& new_u,
                                               const state_type& new_v) {
  if (old_u.id != new_u.id) {
    add_id(old_u.id, -1);
    add_id(new_u.id, +1);
  }
  if (old_v.id != new_v.id) {
    add_id(old_v.id, -1);
    add_id(new_v.id, +1);
  }
  counts_.add(old_u.backup, -1);
  counts_.add(old_v.backup, -1);
  counts_.add(new_u.backup, +1);
  counts_.add(new_v.backup, +1);
}

bool id_protocol::tracker_type::is_stable() const {
  if (id_count_.size() != 1) return false;
  const auto& [id, count] = *id_count_.begin();
  ensure(count == nodes_, "id_protocol tracker: id census out of sync");
  return id >= threshold_ && counts_.stable();
}

}  // namespace pp
