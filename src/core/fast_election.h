// The fast space-efficient leader-election protocol of §5 (Theorem 24).
//
// Every node runs a streak clock (§5.1) with parameter h chosen so that a
// maximum-degree node ticks about every Θ(B(G)) scheduler steps.  On top of
// the clock, each node keeps a `level` counter and a leader/follower status:
//
//   Rule 1: a leader that completes a streak increments its level (capped at
//           the backup threshold α·L);
//   Rule 2: a node whose level is strictly below an interaction partner's
//           level >= L becomes a follower;
//   Rule 3: levels >= L are broadcast (each node adopts the pairwise max).
//
// Levels below L form the *waiting phase* (it weeds out low-degree nodes,
// whose clocks tick too slowly); levels in [L, α·L) form the *elimination
// phase*, a tournament in which, w.h.p., a single Θ(Δ)-degree leader remains
// after O(B(G)·log n) steps.  The first node to reach level α·L — necessarily
// a leader — switches to the always-correct constant-state backup (Beauquier
// instance seeded with its status) while Rule 3 keeps broadcasting α·L, so
// every node joins the backup within O(B(G)) expected steps and the backup
// finishes the election in the (polynomially unlikely) case the fast path
// left several leaders.
//
// Structural invariants (proved in §5.2, checked by tests):
//   * leaders are never created, only demoted; at least one node always
//     outputs leader;
//   * some node holding the globally maximal level is always a leader, so a
//     *unique* fast-phase leader can never be demoted;
//   * within the backup population, candidates = black + white and black >= 1.
// Consequently the tracker's predicate — exactly one node outputs leader and
// no white backup token exists — is sound: such a configuration is stable.
//
// State complexity: (h+1) streak values x (α·L+1) levels x status x backup
// sub-state = O(h·L) = O(log n · h(G)) with h(G) = O(log(Δ/β · log n)), i.e.
// O(log² n) in the worst case (Theorem 24).
#pragma once

#include <cstdint>
#include <span>

#include "core/beauquier.h"
#include "core/protocol.h"
#include "graph/graph.h"

namespace pp {

// Non-uniform protocol parameters (all nodes get the same values, §2.2).
struct fast_params {
  int h = 4;                // streak length
  int level_threshold = 8;  // L: start of the elimination phase
  int max_level = 32;       // α·L: backup hand-off level

  // The paper's constants (§5.2): h = 8 + ceil(log2(B·Δ/m)), L = ceil(2τ·log2 n),
  // α = 8.  Generous union-bound constants; simulable only for small n.
  static fast_params paper(const graph& g, double broadcast_time, double tau = 1.0);

  // Calibrated constants preserving the O(B(G)·log n) shape with simulable
  // absolute step counts: h = 2 + ceil(log2(B·Δ/m)), L = ceil(2·log2 n), α = 4.
  static fast_params practical(const graph& g, double broadcast_time);

  // `practical` for a clique of n nodes without materialising the graph
  // (the well-mixed engine simulates cliques far past the Θ(n²) edge-list
  // limit): uses the closed-form clique broadcast time (n−1)·H_{n−1}, so
  // B·Δ/m = 2·B/n ≈ 2·ln n.
  static fast_params practical_clique(std::uint64_t n);

  // Corollary 25 preset for Δ-regular graphs: instead of a measured B(G),
  // uses the Theorem 6 bound B <= (m/β)·log n, so the parameters depend only
  // on structural knowledge (n, m, Δ and the edge expansion β).  The streak
  // length becomes h = offset + ceil(log2(Δ·log2(n)/β)) — exactly the
  // paper's h(G) = O(log log n + log(1/φ)) with φ = β/Δ.
  static fast_params for_regular(const graph& g, double beta, int offset = 2);

  // Size of the reachable state space |Λ| for these parameters.
  std::uint64_t state_space_size() const;
};

class fast_protocol {
 public:
  struct state_type {
    std::uint8_t streak = 0;
    std::uint16_t level = 0;
    bool leader = true;
    bool in_backup = false;
    bq_state backup{};

    friend bool operator==(const state_type&, const state_type&) = default;
  };

  explicit fast_protocol(fast_params params);

  const fast_params& params() const { return params_; }

  state_type initial_state(node_id v) const;
  void interact(state_type& a, state_type& b) const;
  role output(const state_type& s) const {
    if (s.in_backup) return s.backup.candidate ? role::leader : role::follower;
    return s.leader ? role::leader : role::follower;
  }
  std::uint64_t encode(const state_type& s) const;

  class tracker_type {
   public:
    tracker_type(const fast_protocol& proto, const graph& g,
                 std::span<const state_type> config);
    void on_interaction(const fast_protocol& proto, node_id u, node_id v,
                        const state_type& old_u, const state_type& old_v,
                        const state_type& new_u, const state_type& new_v);
    bool is_stable() const { return leaders_ == 1 && white_ == 0; }

    std::int64_t leaders() const { return leaders_; }
    std::int64_t black_tokens() const { return black_; }
    std::int64_t white_tokens() const { return white_; }

   private:
    void add(const fast_protocol& proto, const state_type& s, std::int64_t sign);

    std::int64_t leaders_ = 0;
    std::int64_t black_ = 0;
    std::int64_t white_ = 0;
  };

 private:
  // Streak update plus Rules 1-3 for one node; `other` is the partner's
  // pre-interaction state (population-protocol transitions read the
  // pre-interaction pair).
  void phase_step(state_type& self, const state_type& other, bool initiator) const;

  fast_params params_;
};

static_assert(population_protocol<fast_protocol>);
static_assert(stability_tracker<fast_protocol::tracker_type, fast_protocol>);

}  // namespace pp
