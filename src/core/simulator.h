// Generic simulator: runs any population_protocol under the stochastic
// scheduler until the protocol's stability tracker fires (§2.2).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/protocol.h"
#include "graph/graph.h"
#include "sched/scheduler.h"
#include "support/expects.h"
#include "support/rng.h"

namespace pp {

// Outcome of one run.
struct election_result {
  bool stabilized = false;
  // Scheduler steps until the stability predicate first held (== the paper's
  // stabilization time), or max_steps if it never did.
  std::uint64_t steps = 0;
  // Lowest-indexed node whose output is `leader` in the stable
  // configuration; -1 if none (possible for non-election protocols such as
  // majority, where the output map reuses the role alphabet).
  node_id leader = -1;
  // Number of distinct node states observed during the run (only if the
  // census was enabled; this is the empirical space complexity).
  std::size_t distinct_states_used = 0;
};

// Which scheduler advances the step counter.  `step` is the per-interaction
// schedulers (one uniform pair draw per step); `silent` is the event-driven
// scheduler (engine/silent/): it draws only from the currently *active*
// (non-silent) oriented pairs and jumps the counter geometrically over the
// silent steps in between.  The choice is a runtime knob — it never changes
// the protocol, the graph or the artifact format — and the silent scheduler
// preserves the distribution of (steps, leader) exactly, so results agree
// with the step scheduler under the 3σ statistical contract.
enum class scheduler_kind : std::uint8_t { step = 0, silent = 1 };

inline const char* to_string(scheduler_kind s) {
  return s == scheduler_kind::silent ? "silent" : "step";
}

struct sim_options {
  std::uint64_t max_steps = UINT64_MAX;
  bool state_census = false;
  // Batch size for the well-mixed multiset engine (run_wellmixed); 0 enables
  // the error-controlled adaptive leap (starts at n/64, grows toward n in
  // quiet phases, shrinks when the composition drifts), and values above n
  // are clamped to n.  Ignored by the per-interaction simulators.
  std::uint64_t wellmixed_batch = 0;
  // Scheduler for the tuned/packed engine; ignored by engines that have no
  // silent path (reference simulator, wellmixed multiset).
  scheduler_kind scheduler = scheduler_kind::step;
};

// Runs `proto` on `g` from its initial configuration until the tracker
// declares stability or `max_steps` elapse.
template <population_protocol P>
  requires stability_tracker<typename P::tracker_type, P>
election_result run_until_stable(const P& proto, const graph& g, rng gen,
                                 const sim_options& options = {}) {
  const node_id n = g.num_nodes();
  std::vector<typename P::state_type> config(static_cast<std::size_t>(n));
  for (node_id v = 0; v < n; ++v) {
    config[static_cast<std::size_t>(v)] = proto.initial_state(v);
  }

  std::unordered_set<std::uint64_t> census;
  if (options.state_census) {
    census.reserve(static_cast<std::size_t>(n));
    for (const auto& s : config) census.insert(proto.encode(s));
  }

  typename P::tracker_type tracker(proto, g,
                                   std::span<const typename P::state_type>(config));
  edge_scheduler sched(g, gen);

  election_result result;
  while (!tracker.is_stable()) {
    if (sched.steps() >= options.max_steps) {
      result.steps = sched.steps();
      result.distinct_states_used = census.size();
      return result;
    }
    const interaction it = sched.next();
    auto& a = config[static_cast<std::size_t>(it.initiator)];
    auto& b = config[static_cast<std::size_t>(it.responder)];
    const auto old_a = a;
    const auto old_b = b;
    proto.interact(a, b);
    tracker.on_interaction(proto, it.initiator, it.responder, old_a, old_b, a, b);
    if (options.state_census) {
      // Every id in `config` is already in the census (initial states were
      // inserted up front, transition results below), so no-op interactions
      // — the overwhelming majority on sparse-token protocols — skip the
      // hash-set probe entirely.  `encode` is injective, so comparing codes
      // is exact state comparison without requiring operator== on states.
      const std::uint64_t ea = proto.encode(a);
      const std::uint64_t eb = proto.encode(b);
      if (ea != proto.encode(old_a)) census.insert(ea);
      if (eb != proto.encode(old_b)) census.insert(eb);
    }
  }

  result.stabilized = true;
  result.steps = sched.steps();
  result.distinct_states_used = census.size();
  for (node_id v = 0; v < n; ++v) {
    if (proto.output(config[static_cast<std::size_t>(v)]) == role::leader) {
      result.leader = v;
      break;
    }
  }
  return result;
}

}  // namespace pp
