// The time-efficient identifier-based protocol of Theorem 21 (§4.2).
//
// Nodes generate k-bit identifiers from their interaction roles (initiator
// appends 0, responder appends 1, starting from id = 1), then elect the node
// with the largest identifier by broadcasting the maximum.  Since two nodes
// may — with probability at most 1/2^k per pair (Lemma 22) — generate the
// same maximal identifier, each finished node runs a labelled instance of
// the always-correct constant-state Beauquier protocol; joining a higher
// instance resets a node to that instance's follower state.  Expected
// stabilization is O(B(G) + n log n) steps (Theorem 21) using O(n^4) states
// for k = ceil(4 log2 n) (O(n^3) on regular graphs with k = ceil(3 log2 n)).
//
// Rules applied by node v_i in an interaction (v_0 initiator, v_1 responder),
// in sequence, reading the partner's pre-interaction state:
//   (1) if id < 2^k:   id <- 2·id + i;   if now id >= 2^k: become candidate
//       with a fresh black token (start own instance);
//   (2) if id < partner.id and partner.id >= 2^k: adopt partner.id and reset
//       to the instance's follower state (any held token is destroyed — it
//       belonged to a dead instance);
//   (3) if both nodes now carry the same instance id: run the Beauquier
//       transition on the pair (token swap / recolour / white-kill).
//
// Stability predicate (tracker): all n identifiers equal, >= 2^k, and the
// global Beauquier census is (candidates, black, white) = (1, 1, 0).  When
// all ids are equal every token belongs to the surviving instance, so this is
// exactly the Beauquier stable configuration of that instance.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "core/beauquier.h"
#include "core/protocol.h"
#include "graph/graph.h"

namespace pp {

class id_protocol {
 public:
  struct state_type {
    std::uint64_t id = 1;
    bq_state backup;

    friend bool operator==(const state_type&, const state_type&) = default;
  };

  // k = identifier bit length; ids live in [2^k, 2^{k+1}).  Requires
  // 1 <= k <= 62.  Use `suggested_k` for the paper's Theorem 21 setting.
  explicit id_protocol(int k);

  // ceil(4·log2 n), the general-graph choice of Theorem 21 (capped at 62).
  static int suggested_k(node_id n);

  int k() const { return k_; }
  std::uint64_t id_threshold() const { return id_threshold_; }

  state_type initial_state(node_id v) const;
  void interact(state_type& a, state_type& b) const;
  role output(const state_type& s) const {
    return s.backup.candidate ? role::leader : role::follower;
  }
  std::uint64_t encode(const state_type& s) const {
    return s.id * 8 + static_cast<std::uint64_t>(s.backup.candidate) * 4 +
           static_cast<std::uint64_t>(s.backup.token);
  }

  class tracker_type {
   public:
    tracker_type(const id_protocol& proto, const graph& g,
                 std::span<const state_type> config);
    void on_interaction(const id_protocol& proto, node_id u, node_id v,
                        const state_type& old_u, const state_type& old_v,
                        const state_type& new_u, const state_type& new_v);
    bool is_stable() const;
    const bq_counts& counts() const { return counts_; }

   private:
    void add_id(std::uint64_t id, std::int64_t sign);

    std::uint64_t threshold_;
    std::unordered_map<std::uint64_t, std::int64_t> id_count_;
    std::int64_t nodes_ = 0;
    bq_counts counts_;
  };

 private:
  int k_;
  std::uint64_t id_threshold_;  // 2^k
};

static_assert(population_protocol<id_protocol>);
static_assert(stability_tracker<id_protocol::tracker_type, id_protocol>);

}  // namespace pp
