// Local approximate clocks on graphs (§5.1).
//
// Each node keeps a streak counter in {0, ..., h}: being the initiator of an
// interaction extends the streak, being the responder resets it, and a
// streak of length h "completes" (the clock ticks) and resets.  Since the
// scheduler assigns roles by a fair coin, the number K of interactions per
// tick is the classic "h consecutive heads" waiting time:
//   E[K] = 2^{h+1} - 2                                     (Lemma 27a)
//   Geom(2^-h)  ⪯  K  ⪯  Geom(2^-(h+1)) + h                (Lemma 26)
// and the number of scheduler steps X(d) for a degree-d node to tick
// satisfies E[X(d)] = E[K]·m/d (Lemma 27b), so high-degree nodes tick at
// rate ~Θ(1/B(G)) under the Theorem 24 parameter choice.
#pragma once

#include <cstdint>

#include "support/rng.h"

namespace pp {

// The per-node streak counter; h must be in [1, 62].
class streak_clock {
 public:
  explicit streak_clock(int h);

  int h() const { return h_; }
  int streak() const { return streak_; }

  // Records one interaction of the owning node; returns true iff the node
  // completed a streak (the clock ticked).
  bool on_interaction(bool initiator);

  // E[K]: expected interactions per tick, 2^{h+1} - 2.
  static double expected_interactions_per_tick(int h);

  // E[X(d)]: expected scheduler steps per tick for a degree-d node in an
  // m-edge graph (Lemma 27b).
  static double expected_steps_per_tick(int h, double degree, double edges);

 private:
  int h_;
  int streak_ = 0;
};

// Samples K directly: fair coin flips until h consecutive heads (used by the
// Lemma 26-28 distribution tests and the clock bench).
std::uint64_t sample_streak_interactions(int h, rng& gen);

}  // namespace pp
