#include "core/fast_election.h"

#include <algorithm>
#include <cmath>

#include "support/expects.h"

namespace pp {

namespace {

int streak_length_for(const graph& g, double broadcast_time, int offset) {
  expects(broadcast_time >= 1.0, "fast_params: broadcast time must be >= 1");
  const double ratio = broadcast_time * static_cast<double>(g.max_degree()) /
                       static_cast<double>(g.num_edges());
  const int h = offset + static_cast<int>(std::ceil(std::log2(std::max(1.0, ratio))));
  return std::clamp(h, 1, 30);
}

int elimination_threshold_for(const graph& g, double tau) {
  const double n = static_cast<double>(g.num_nodes());
  return std::max(1, static_cast<int>(std::ceil(2.0 * tau * std::log2(n))));
}

}  // namespace

fast_params fast_params::paper(const graph& g, double broadcast_time, double tau) {
  expects(tau >= 1.0, "fast_params::paper: tau must be >= 1");
  fast_params p;
  p.h = streak_length_for(g, broadcast_time, 8);
  p.level_threshold = elimination_threshold_for(g, tau);
  p.max_level = 8 * p.level_threshold;
  return p;
}

fast_params fast_params::practical(const graph& g, double broadcast_time) {
  fast_params p;
  p.h = streak_length_for(g, broadcast_time, 2);
  p.level_threshold = elimination_threshold_for(g, 1.0);
  p.max_level = 4 * p.level_threshold;
  return p;
}

fast_params fast_params::practical_clique(std::uint64_t n) {
  expects(n >= 2, "fast_params::practical_clique: n must be >= 2");
  const double dn = static_cast<double>(n);
  // B(clique) = sum_i n(n-1) / (2 i (n-i)) = (n-1)·H_{n-1}, so the streak
  // ratio B·Δ/m collapses to 2·B/n ≈ 2·H_{n-1}.
  const double harmonic = std::log(dn) + 0.5772156649015329;
  const double ratio = 2.0 * (dn - 1.0) * harmonic / dn;
  fast_params p;
  p.h = std::clamp(
      2 + static_cast<int>(std::ceil(std::log2(std::max(1.0, ratio)))), 1, 30);
  p.level_threshold =
      std::max(1, static_cast<int>(std::ceil(2.0 * std::log2(dn))));
  p.max_level = 4 * p.level_threshold;
  return p;
}

fast_params fast_params::for_regular(const graph& g, double beta, int offset) {
  expects(beta > 0.0, "fast_params::for_regular: edge expansion must be positive");
  expects(g.min_degree() == g.max_degree(),
          "fast_params::for_regular: graph must be regular");
  const double n = static_cast<double>(g.num_nodes());
  const double broadcast_bound =
      static_cast<double>(g.num_edges()) / beta * std::log2(n);
  fast_params p;
  p.h = streak_length_for(g, broadcast_bound, offset);
  p.level_threshold = elimination_threshold_for(g, 1.0);
  p.max_level = 4 * p.level_threshold;
  return p;
}

std::uint64_t fast_params::state_space_size() const {
  // Fast-phase states: streak x level x status.  Backup states: level is
  // pinned at max_level and the streak no longer matters, so the backup
  // contributes the 6 Beauquier states.
  return static_cast<std::uint64_t>(h + 1) *
             static_cast<std::uint64_t>(max_level + 1) * 2 +
         6;
}

fast_protocol::fast_protocol(fast_params params) : params_(params) {
  expects(params.h >= 1 && params.h <= 200, "fast_protocol: h must be in [1, 200]");
  expects(params.level_threshold >= 1,
          "fast_protocol: level threshold must be >= 1");
  expects(params.max_level > params.level_threshold,
          "fast_protocol: max level must exceed the elimination threshold");
  expects(params.max_level <= 60000, "fast_protocol: max level too large");
}

fast_protocol::state_type fast_protocol::initial_state(node_id) const {
  return {};  // streak 0, level 0, leader, not in backup
}

void fast_protocol::phase_step(state_type& self, const state_type& other,
                               bool initiator) const {
  if (self.in_backup) return;  // level pinned at max; status owned by the backup

  bool completed = false;
  if (initiator) {
    if (++self.streak == params_.h) {
      completed = true;
      self.streak = 0;
    }
  } else {
    self.streak = 0;
  }

  // Rule 1: leaders climb one level per completed streak.
  if (completed && self.leader && self.level < params_.max_level) ++self.level;

  const auto other_level = static_cast<int>(other.level);
  // Rule 2: strictly lower level than an elimination-phase partner: demoted.
  if (static_cast<int>(self.level) < other_level &&
      other_level >= params_.level_threshold) {
    self.leader = false;
  }
  // Rule 3: elimination-phase levels spread by max-broadcast.
  const int top = std::max(static_cast<int>(self.level), other_level);
  if (top >= params_.level_threshold) self.level = static_cast<std::uint16_t>(top);

  // Backup hand-off: the first node to arrive is a leader (only Rule 1
  // reaches a fresh maximum) and seeds the instance as candidate; nodes
  // arriving by Rule 3 adoption were just demoted by Rule 2 and join as
  // followers.
  if (static_cast<int>(self.level) >= params_.max_level) {
    self.in_backup = true;
    self.backup = bq_init(self.leader);
  }
}

void fast_protocol::interact(state_type& a, state_type& b) const {
  const state_type pre_a = a;
  const state_type pre_b = b;
  phase_step(a, pre_b, /*initiator=*/true);
  phase_step(b, pre_a, /*initiator=*/false);
  // Token exchange runs between nodes that were already in the backup before
  // this interaction; a node entering above participates from the next one.
  if (pre_a.in_backup && pre_b.in_backup) bq_interact(a.backup, b.backup);
}

std::uint64_t fast_protocol::encode(const state_type& s) const {
  return static_cast<std::uint64_t>(s.streak) |
         (static_cast<std::uint64_t>(s.level) << 8) |
         (static_cast<std::uint64_t>(s.leader) << 24) |
         (static_cast<std::uint64_t>(s.in_backup) << 25) |
         (static_cast<std::uint64_t>(s.backup.candidate) << 26) |
         (static_cast<std::uint64_t>(s.backup.token) << 27);
}

fast_protocol::tracker_type::tracker_type(const fast_protocol& proto, const graph&,
                                          std::span<const state_type> config) {
  for (const state_type& s : config) add(proto, s, +1);
}

void fast_protocol::tracker_type::add(const fast_protocol& proto,
                                      const state_type& s, std::int64_t sign) {
  if (proto.output(s) == role::leader) leaders_ += sign;
  if (s.in_backup) {
    if (s.backup.token == bq_token::black) black_ += sign;
    if (s.backup.token == bq_token::white) white_ += sign;
  }
}

void fast_protocol::tracker_type::on_interaction(
    const fast_protocol& proto, node_id, node_id, const state_type& old_u,
    const state_type& old_v, const state_type& new_u, const state_type& new_v) {
  add(proto, old_u, -1);
  add(proto, old_v, -1);
  add(proto, new_u, +1);
  add(proto, new_v, +1);
}

}  // namespace pp
