// The trivial constant-state protocol for star graphs (Table 1, last row).
//
// Three states: undecided (initial), leader, follower.  When two undecided
// nodes interact, the initiator becomes leader and the responder follower;
// an undecided node interacting with a decided one becomes a follower;
// decided nodes never change.  On a star every interaction involves the
// centre, so after the *first* interaction the centre is decided and no
// undecided-undecided edge remains: exactly one leader exists and no new one
// can ever appear — stable leader election in a single interaction with O(1)
// states.  (On general graphs the protocol may stabilize with several
// leaders; the tracker then never fires.  It illustrates why the Ω(n log n)
// dense-graph lower bound of Theorem 40 cannot extend to all sparse graphs.)
//
// Tracker predicate: exactly one node outputs leader and no edge joins two
// undecided nodes.  Leaders are never demoted and new leaders require an
// undecided-undecided interaction, so the predicate is sound on any graph.
// The compiled engine runs the same predicate as an edge census
// (edge_census_traits<star_protocol>, engine/edgecensus/census.h), declared
// on the identical scheduler step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/protocol.h"
#include "graph/graph.h"

namespace pp {

class star_protocol {
 public:
  enum class state_type : std::uint8_t { undecided = 0, leader = 1, follower = 2 };

  state_type initial_state(node_id) const { return state_type::undecided; }
  void interact(state_type& a, state_type& b) const;
  role output(const state_type& s) const {
    return s == state_type::leader ? role::leader : role::follower;
  }
  std::uint64_t encode(const state_type& s) const {
    return static_cast<std::uint64_t>(s);
  }

  class tracker_type {
   public:
    tracker_type(const star_protocol& proto, const graph& g,
                 std::span<const state_type> config);
    void on_interaction(const star_protocol& proto, node_id u, node_id v,
                        const state_type& old_u, const state_type& old_v,
                        const state_type& new_u, const state_type& new_v);
    bool is_stable() const { return leaders_ == 1 && undecided_edges_ == 0; }

   private:
    void settle(node_id z);

    const graph* graph_;
    std::vector<bool> undecided_;
    std::int64_t leaders_ = 0;
    std::int64_t undecided_edges_ = 0;
  };
};

static_assert(population_protocol<star_protocol>);
static_assert(stability_tracker<star_protocol::tracker_type, star_protocol>);

}  // namespace pp
