// The constant-state token protocol of Beauquier, Blanchard and Burman
// (OPODIS 2013), as analysed in §4.1 (Theorem 16).
//
// Input: a nonempty set of leader candidates.  Every candidate creates a
// black token; on every interaction the two nodes swap tokens; when two black
// tokens meet one of them turns white; a candidate that receives a white
// token becomes a follower and destroys the token.  Six states:
// {candidate?} x {no token, black, white}.
//
// Invariants (checked by tests and the tracker):
//   #candidates = #black + #white   and   #black >= 1.
// Hence the unique stable outcome is one candidate, one black token and no
// white tokens — which is exactly the tracker's stability predicate.  The
// protocol is always correct; Theorem 16 shows it stabilizes in
// O(H(G)·n·log n) steps in expectation and w.h.p., where H(G) is the
// worst-case hitting time of a classic random walk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/protocol.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace pp {

// Token carried by a node in the Beauquier protocol.
enum class bq_token : std::uint8_t { none = 0, black = 1, white = 2 };

// The six-state per-node state, also embedded as the backup sub-state of the
// Theorem 21 and Theorem 24 protocols.
struct bq_state {
  bool candidate = false;
  bq_token token = bq_token::none;

  friend bool operator==(const bq_state&, const bq_state&) = default;
};

// Initial state of a node given its candidate-input bit.
bq_state bq_init(bool candidate);

// The transition function: swap tokens, recolour on black-black (the
// initiator's token stays black), then a candidate holding a white token
// becomes a follower and destroys it.
void bq_interact(bq_state& initiator, bq_state& responder);

// Signed census of a configuration's candidate/token counts.
struct bq_counts {
  std::int64_t candidates = 0;
  std::int64_t black = 0;
  std::int64_t white = 0;

  void add(const bq_state& s, std::int64_t sign);
  // The stable configuration of the protocol (see header comment).
  bool stable() const { return candidates == 1 && black == 1 && white == 0; }
};

// The protocol object.  Candidates default to "every node" (the natural
// leader-election input); Theorem 16's general form takes any nonempty set.
class beauquier_protocol {
 public:
  using state_type = bq_state;

  // All nodes are candidates.
  explicit beauquier_protocol(node_id n);
  // Explicit candidate set; must be nonempty.
  beauquier_protocol(node_id n, std::vector<bool> candidates);

  node_id num_nodes() const { return n_; }

  state_type initial_state(node_id v) const;
  void interact(state_type& a, state_type& b) const { bq_interact(a, b); }
  role output(const state_type& s) const {
    return s.candidate ? role::leader : role::follower;
  }
  std::uint64_t encode(const state_type& s) const {
    return static_cast<std::uint64_t>(s.candidate) * 3 +
           static_cast<std::uint64_t>(s.token);
  }

  class tracker_type {
   public:
    tracker_type(const beauquier_protocol& proto, const graph& g,
                 std::span<const state_type> config);
    void on_interaction(const beauquier_protocol& proto, node_id u, node_id v,
                        const state_type& old_u, const state_type& old_v,
                        const state_type& new_u, const state_type& new_v);
    bool is_stable() const { return counts_.stable(); }
    const bq_counts& counts() const { return counts_; }

   private:
    bq_counts counts_;
  };

 private:
  node_id n_ = 0;
  std::vector<bool> candidates_;
};

static_assert(population_protocol<beauquier_protocol>);
static_assert(stability_tracker<beauquier_protocol::tracker_type, beauquier_protocol>);

// Event-driven run of the Beauquier protocol.  Interactions in which neither
// node holds a token are no-ops, so the simulation advances by
// Geometric(active/m) skips where `active` counts edges incident to token
// holders; the step-count distribution is identical to the naive simulator
// (differentially tested).  Returns the number of scheduler steps to
// stability and the elected node.
struct bq_run_result {
  bool stabilized = false;
  std::uint64_t steps = 0;
  node_id leader = -1;
};
bq_run_result run_beauquier_event_driven(const beauquier_protocol& proto,
                                         const graph& g, rng gen,
                                         std::uint64_t max_steps);

}  // namespace pp
