#include "core/star_protocol.h"

#include "support/expects.h"

namespace pp {

void star_protocol::interact(state_type& a, state_type& b) const {
  if (a == state_type::undecided && b == state_type::undecided) {
    a = state_type::leader;
    b = state_type::follower;
    return;
  }
  if (a == state_type::undecided) a = state_type::follower;
  if (b == state_type::undecided) b = state_type::follower;
}

star_protocol::tracker_type::tracker_type(const star_protocol& proto,
                                          const graph& g,
                                          std::span<const state_type> config)
    : graph_(&g),
      undecided_(static_cast<std::size_t>(g.num_nodes()), false) {
  expects(config.size() == static_cast<std::size_t>(g.num_nodes()),
          "star_protocol tracker: configuration size mismatch");
  for (std::size_t v = 0; v < config.size(); ++v) {
    undecided_[v] = config[v] == state_type::undecided;
    if (proto.output(config[v]) == role::leader) ++leaders_;
  }
  for (const edge& e : g.edges()) {
    if (undecided_[static_cast<std::size_t>(e.u)] &&
        undecided_[static_cast<std::size_t>(e.v)]) {
      ++undecided_edges_;
    }
  }
}

void star_protocol::tracker_type::settle(node_id z) {
  // Node z just left the undecided state: every edge from z to a currently
  // undecided neighbour stops being an undecided-undecided edge.
  for (const node_id w : graph_->neighbors(z)) {
    if (undecided_[static_cast<std::size_t>(w)]) --undecided_edges_;
  }
  undecided_[static_cast<std::size_t>(z)] = false;
}

void star_protocol::tracker_type::on_interaction(const star_protocol&, node_id u,
                                                 node_id v, const state_type& old_u,
                                                 const state_type& old_v,
                                                 const state_type& new_u,
                                                 const state_type& new_v) {
  // Settle u before v so the shared edge {u, v} is decremented exactly once
  // when both leave the undecided state in the same interaction.
  if (old_u == state_type::undecided && new_u != state_type::undecided) settle(u);
  if (old_v == state_type::undecided && new_v != state_type::undecided) settle(v);
  if (new_u == state_type::leader && old_u != state_type::leader) ++leaders_;
  if (new_v == state_type::leader && old_v != state_type::leader) ++leaders_;
}

}  // namespace pp
