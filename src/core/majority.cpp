#include "core/majority.h"

#include "core/simulator.h"
#include "support/expects.h"

namespace pp {

namespace {

using st = majority_protocol::state_type;

bool is_strong(st s) { return s == st::strong_plus || s == st::strong_minus; }

}  // namespace

majority_protocol::majority_protocol(std::vector<majority_vote> votes)
    : votes_(std::move(votes)) {
  expects(!votes_.empty(), "majority_protocol: need at least one vote");
}

majority_protocol::state_type majority_protocol::initial_state(node_id v) const {
  expects(v >= 0 && v < num_nodes(), "majority_protocol: node out of range");
  return votes_[static_cast<std::size_t>(v)] == majority_vote::plus
             ? st::strong_plus
             : st::strong_minus;
}

void majority_protocol::interact(state_type& a, state_type& b) const {
  // Strong-strong of opposite signs cancel into weaks of their own leaning.
  if ((a == st::strong_plus && b == st::strong_minus) ||
      (a == st::strong_minus && b == st::strong_plus)) {
    a = a == st::strong_plus ? st::weak_plus : st::weak_minus;
    b = b == st::strong_plus ? st::weak_plus : st::weak_minus;
    return;
  }
  // A strong token swaps with a weak partner, leaving its leaning behind:
  // the opinion random-walks and converts every node it passes.
  if (is_strong(a) && !is_strong(b)) {
    b = a;
    a = b == st::strong_plus ? st::weak_plus : st::weak_minus;
    return;
  }
  if (is_strong(b) && !is_strong(a)) {
    a = b;
    b = a == st::strong_plus ? st::weak_plus : st::weak_minus;
    return;
  }
  // strong-strong same sign and weak-weak: no change.
}

majority_protocol::tracker_type::tracker_type(const majority_protocol&,
                                              const graph&,
                                              std::span<const state_type> config) {
  for (const state_type& s : config) add(s, +1);
}

void majority_protocol::tracker_type::add(const state_type& s, std::int64_t sign) {
  switch (s) {
    case st::strong_plus: strong_plus_ += sign; break;
    case st::strong_minus: strong_minus_ += sign; break;
    case st::weak_plus: weak_plus_ += sign; break;
    case st::weak_minus: weak_minus_ += sign; break;
  }
}

void majority_protocol::tracker_type::on_interaction(
    const majority_protocol&, node_id, node_id, const state_type& old_u,
    const state_type& old_v, const state_type& new_u, const state_type& new_v) {
  add(old_u, -1);
  add(old_v, -1);
  add(new_u, +1);
  add(new_v, +1);
}

majority_result run_majority(const majority_protocol& proto, const graph& g,
                             rng gen, std::uint64_t max_steps) {
  const auto r = run_until_stable(proto, g, gen, {.max_steps = max_steps});
  majority_result out;
  out.stabilized = r.stabilized;
  out.steps = r.steps;
  if (r.stabilized) {
    // The simulator reports some node with output leader, which exists only
    // if plus won; a minus win has zero "leaders".
    out.winner = r.leader >= 0 ? majority_vote::plus : majority_vote::minus;
  }
  return out;
}

std::vector<majority_vote> random_vote_assignment(node_id n, node_id plus_count,
                                                  rng& gen) {
  expects(n >= 1 && plus_count >= 0 && plus_count <= n,
          "random_vote_assignment: bad counts");
  std::vector<majority_vote> votes(static_cast<std::size_t>(n),
                                   majority_vote::minus);
  for (node_id i = 0; i < plus_count; ++i) {
    votes[static_cast<std::size_t>(i)] = majority_vote::plus;
  }
  for (std::size_t i = votes.size() - 1; i > 0; --i) {
    const std::size_t j = gen.uniform_below(i + 1);
    std::swap(votes[i], votes[j]);
  }
  return votes;
}

}  // namespace pp
