#include "core/stable_checker.h"

// The checker itself is a header-only template (see stable_checker.h); this
// translation unit only anchors it in the library so include errors surface
// at library build time rather than first use.
