// The population-protocol abstraction (§2.2).
//
// A protocol is a finite-state machine over node states: the scheduler picks
// an ordered pair (initiator, responder) of adjacent nodes, and the pair's
// states are rewritten by the deterministic transition function.  All
// randomness lives in the scheduler.
//
// A protocol type P models `population_protocol` when it provides:
//   * `state_type`           — a cheap, copyable per-node state;
//   * `initial_state(v)`     — the state node v starts in.  For uniform
//                              protocols this ignores v; protocols with input
//                              (e.g. Beauquier's candidate set, Theorem 16)
//                              carry the input assignment in the protocol
//                              object;
//   * `interact(a, b)`       — the transition A+B -> C+D, a = initiator;
//   * `output(s)`            — leader/follower output map;
//   * `encode(s)`            — injective encoding of the state into 64 bits,
//                              used by the state census and the brute-force
//                              stability checker;
//   * `tracker_type`         — an O(1)-per-step stability detector (see
//                              below).
//
// Trackers implement protocol-specific *sound* stability predicates: when
// `is_stable()` returns true the configuration is guaranteed stable (exactly
// one leader forever), and every run that stabilizes is eventually detected.
// The per-protocol soundness arguments live in the protocol headers and are
// cross-validated against exhaustive reachability in tests/.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>

#include "graph/graph.h"

namespace pp {

// Leader-election output values.
enum class role : std::uint8_t { follower = 0, leader = 1 };

template <typename P>
concept population_protocol =
    std::copyable<typename P::state_type> &&
    requires(const P proto, typename P::state_type& a, typename P::state_type& b,
             const typename P::state_type& s, node_id v) {
      { proto.initial_state(v) } -> std::same_as<typename P::state_type>;
      { proto.interact(a, b) };
      { proto.output(s) } -> std::same_as<role>;
      { proto.encode(s) } -> std::same_as<std::uint64_t>;
      typename P::tracker_type;
    };

template <typename T, typename P>
concept stability_tracker =
    requires(T tracker, const P proto, const graph& g,
             std::span<const typename P::state_type> config, node_id v,
             const typename P::state_type& s) {
      { T(proto, g, config) };
      { tracker.on_interaction(proto, v, v, s, s, s, s) };
      { tracker.is_stable() } -> std::same_as<bool>;
    };

}  // namespace pp
