// Exact majority on graphs — the paper's "future work" problem (§8).
//
// The conclusions single out majority as the next fundamental task for the
// graphical population model and suggest the same techniques apply.  This
// module implements the classic four-state exact-majority protocol (binary
// interval consensus in the style of Bénézit et al.), which is always
// correct on every connected interaction graph whenever the input is not a
// tie, and whose stabilization time is driven by the same token
// meeting-time machinery as Theorem 16.
//
// States: strong plus / strong minus / weak leaning-plus / weak
// leaning-minus.  Rules for an interacting pair (order-insensitive):
//   strong+  with strong-  ->  both become weak with their own leaning
//                              (one +1 and one -1 cancel; the difference
//                               #strong+ - #strong- is invariant);
//   strong   with weak     ->  they swap places and the vacated node keeps
//                              the strong's leaning — the strong opinion is
//                              a token performing the §4.1 random walk,
//                              converting every node it passes;
//   weak     with weak, strongs of equal sign -> nothing.
//
// Since #strong+ - #strong- never changes and strong tokens random-walk,
// opposite strongs meet and cancel in finite expected time (the meeting-time
// machinery of §4.1), so the minority strong count hits zero; the surviving
// majority strongs then walk over and convert every opposite-leaning weak.  The
// stable configurations are exactly those with no strong minority sign and
// no opposite-leaning weak node — the tracker's predicate.  Tie inputs
// (#plus == #minus) cancel all strongs and freeze the weak leanings as they
// happen to be; no configuration with both leanings present is then stable,
// so the tracker (correctly) never fires.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/protocol.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace pp {

// Output alphabet of the majority problem.
enum class majority_vote : std::uint8_t { minus = 0, plus = 1 };

class majority_protocol {
 public:
  enum class state_type : std::uint8_t {
    strong_minus = 0,
    weak_minus = 1,
    weak_plus = 2,
    strong_plus = 3,
  };

  // Input: one vote per node (the initial opinions).
  explicit majority_protocol(std::vector<majority_vote> votes);

  node_id num_nodes() const { return static_cast<node_id>(votes_.size()); }

  state_type initial_state(node_id v) const;
  void interact(state_type& a, state_type& b) const;

  // The protocol's output map onto the library's two-valued role type:
  // plus-leaning states report `leader`, minus-leaning `follower`.  Use
  // `vote_of` for the domain-correct reading.
  role output(const state_type& s) const {
    return vote_of(s) == majority_vote::plus ? role::leader : role::follower;
  }
  static majority_vote vote_of(const state_type& s) {
    return (s == state_type::strong_plus || s == state_type::weak_plus)
               ? majority_vote::plus
               : majority_vote::minus;
  }
  std::uint64_t encode(const state_type& s) const {
    return static_cast<std::uint64_t>(s);
  }

  class tracker_type {
   public:
    tracker_type(const majority_protocol& proto, const graph& g,
                 std::span<const state_type> config);
    void on_interaction(const majority_protocol& proto, node_id u, node_id v,
                        const state_type& old_u, const state_type& old_v,
                        const state_type& new_u, const state_type& new_v);
    // Stable iff one sign owns the population: no strong of the other sign
    // remains and no weak node leans the other way.
    bool is_stable() const {
      const bool plus_won = strong_minus_ == 0 && weak_minus_ == 0;
      const bool minus_won = strong_plus_ == 0 && weak_plus_ == 0;
      return plus_won || minus_won;
    }
    std::int64_t strong_difference() const { return strong_plus_ - strong_minus_; }

   private:
    void add(const state_type& s, std::int64_t sign);

    std::int64_t strong_plus_ = 0;
    std::int64_t strong_minus_ = 0;
    std::int64_t weak_plus_ = 0;
    std::int64_t weak_minus_ = 0;
  };

 private:
  std::vector<majority_vote> votes_;
};

static_assert(population_protocol<majority_protocol>);
static_assert(stability_tracker<majority_protocol::tracker_type, majority_protocol>);

// Result of one majority run.
struct majority_result {
  bool stabilized = false;
  std::uint64_t steps = 0;
  majority_vote winner = majority_vote::minus;  // valid if stabilized
};

// Runs the majority protocol until its tracker fires (or max_steps).
majority_result run_majority(const majority_protocol& proto, const graph& g,
                             rng gen, std::uint64_t max_steps = UINT64_MAX);

// Convenience: a vote vector with `plus_count` pluses followed by minuses,
// shuffled by `gen` so votes are placed uniformly at random on the graph.
std::vector<majority_vote> random_vote_assignment(node_id n, node_id plus_count,
                                                  rng& gen);

}  // namespace pp
