#include "core/streak_clock.h"

#include <cmath>

#include "support/expects.h"

namespace pp {

streak_clock::streak_clock(int h) : h_(h) {
  expects(h >= 1 && h <= 62, "streak_clock: h must be in [1, 62]");
}

bool streak_clock::on_interaction(bool initiator) {
  if (initiator) {
    ++streak_;
  } else {
    streak_ = 0;
    return false;
  }
  if (streak_ == h_) {
    streak_ = 0;
    return true;
  }
  return false;
}

double streak_clock::expected_interactions_per_tick(int h) {
  expects(h >= 1 && h <= 62, "streak_clock: h must be in [1, 62]");
  return std::ldexp(1.0, h + 1) - 2.0;
}

double streak_clock::expected_steps_per_tick(int h, double degree, double edges) {
  expects(degree >= 1.0 && edges >= degree,
          "streak_clock::expected_steps_per_tick: invalid degree/edges");
  return expected_interactions_per_tick(h) * edges / degree;
}

std::uint64_t sample_streak_interactions(int h, rng& gen) {
  expects(h >= 1 && h <= 62, "sample_streak_interactions: h must be in [1, 62]");
  std::uint64_t flips = 0;
  int run = 0;
  while (run < h) {
    ++flips;
    if (gen.coin()) {
      ++run;
    } else {
      run = 0;
    }
  }
  return flips;
}

}  // namespace pp
