#include "obs/trace.h"

#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace pp::obs {

std::int64_t trace_now_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1000;
}

trace_arg trace_arg::num(std::string key, std::int64_t value) {
  return trace_arg{std::move(key), std::to_string(value), false};
}

trace_arg trace_arg::num(std::string key, std::uint64_t value) {
  return trace_arg{std::move(key), std::to_string(value), false};
}

trace_arg trace_arg::str(std::string key, std::string value) {
  return trace_arg{std::move(key), std::move(value), true};
}

trace_writer::trace_writer() : pid_(static_cast<int>(::getpid())) {}
trace_writer::trace_writer(int pid) : pid_(pid) {}

namespace {

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void trace_writer::push(char ph, const std::string& name, int tid,
                        std::int64_t ts, const std::vector<trace_arg>& args) {
  std::string event = "{\"name\": ";
  append_json_string(event, name);
  event += ", \"ph\": \"";
  event += ph;
  event += "\", \"ts\": " + std::to_string(ts);
  event += ", \"pid\": " + std::to_string(pid_);
  event += ", \"tid\": " + std::to_string(tid);
  if (ph == 'i') event += ", \"s\": \"t\"";  // thread-scoped instant
  if (!args.empty()) {
    event += ", \"args\": {";
    bool first = true;
    for (const trace_arg& arg : args) {
      if (!first) event += ", ";
      first = false;
      append_json_string(event, arg.key);
      event += ": ";
      if (arg.quoted) {
        append_json_string(event, arg.text);
      } else {
        event += arg.text;
      }
    }
    event += "}";
  }
  event += "}";
  events_.push_back(std::move(event));
}

void trace_writer::begin(const std::string& name, int tid,
                         const std::vector<trace_arg>& args) {
  push('B', name, tid, trace_now_us(), args);
}

void trace_writer::end(const std::string& name, int tid,
                       const std::vector<trace_arg>& args) {
  push('E', name, tid, trace_now_us(), args);
}

void trace_writer::instant(const std::string& name, int tid,
                           const std::vector<trace_arg>& args) {
  push('i', name, tid, trace_now_us(), args);
}

void trace_writer::begin_at(const std::string& name, int tid, std::int64_t ts,
                            const std::vector<trace_arg>& args) {
  push('B', name, tid, ts, args);
}

void trace_writer::end_at(const std::string& name, int tid, std::int64_t ts,
                          const std::vector<trace_arg>& args) {
  push('E', name, tid, ts, args);
}

void trace_writer::instant_at(const std::string& name, int tid,
                              std::int64_t ts,
                              const std::vector<trace_arg>& args) {
  push('i', name, tid, ts, args);
}

void trace_writer::counter_at(const std::string& name, int tid,
                              std::int64_t ts,
                              const std::vector<trace_arg>& args) {
  push('C', name, tid, ts, args);
}

void trace_writer::name_process(const std::string& name) {
  push('M', "process_name", 0, 0, {trace_arg::str("name", name)});
}

void trace_writer::name_thread(int tid, const std::string& name) {
  push('M', "thread_name", tid, 0, {trace_arg::str("name", name)});
}

std::string trace_writer::json() const {
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += events_[i];
  }
  out += "\n]}\n";
  return out;
}

bool trace_writer::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << json();
  return static_cast<bool>(out.flush());
}

bool trace_writer::write_sidecar(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  for (const std::string& event : events_) out << event << "\n";
  return static_cast<bool>(out.flush());
}

std::size_t trace_writer::merge_sidecar(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::size_t merged = 0;
  std::string line;
  while (std::getline(in, line)) {
    // A torn line from a killed worker: getline at EOF without a trailing
    // newline still yields the fragment, so validate shape before keeping.
    if (in.eof() && (line.empty() || line.back() != '}')) break;
    if (line.size() < 2 || line.front() != '{' || line.back() != '}') continue;
    events_.push_back(line);
    ++merged;
  }
  return merged;
}

}  // namespace pp::obs
