// Process-wide metrics for engines, workers and the fleet supervisor: named
// monotonic counters, signed gauges, and log2-bucketed histograms, with two
// serialisations —
//
//   * json(): a deterministic snapshot (std::map iteration order, integer
//     values only) written as `run_metrics.json` by `popsim --metrics FILE`;
//   * text(): a line-oriented sidecar format workers write on exit and the
//     supervisor merges.  Merging is tolerant of torn files (a worker
//     SIGKILLed mid-write loses its sidecar tail, never the sweep), which a
//     JSON snapshot could not offer without a parser.
//
// Histogram buckets are powers of two: bucket 0 holds the value 0 and
// bucket i >= 1 holds [2^(i-1), 2^i), i.e. bucket_of(v) == bit_width(v).
// That makes step counts, draw batches and span durations all land in a
// fixed 65-bucket layout with no configuration, and merging is plain
// bucket-wise addition.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace pp::obs {

// Log2 histogram over u64 values.  min is meaningful only when count > 0.
struct histogram {
  static constexpr int kBuckets = 65;  // bit_width(v) for v in [0, 2^64)

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  static int bucket_of(std::uint64_t value);
  // Inclusive lower bound of a bucket (0 for bucket 0, else 2^(i-1)).
  static std::uint64_t bucket_lo(int bucket);

  void observe(std::uint64_t value);
  void merge(const histogram& other);
};

class metrics_registry {
 public:
  void add(const std::string& name, std::uint64_t delta = 1);
  void set(const std::string& name, std::int64_t value);
  void observe(const std::string& name, std::uint64_t value);

  // 0 / empty defaults for absent names keep test assertions terse.
  std::uint64_t counter(const std::string& name) const;
  std::int64_t gauge(const std::string& name) const;
  const histogram* find_histogram(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::int64_t>& gauges() const { return gauges_; }
  const std::map<std::string, histogram>& histograms() const {
    return histograms_;
  }
  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Counters and histograms add; gauges take the other registry's value
  // (last writer wins, which is what worker -> supervisor rollup wants).
  void merge(const metrics_registry& other);

  // Deterministic JSON snapshot ({"popsim_metrics":1, "counters":{...},
  // "gauges":{...}, "histograms":{...}}), keys sorted, integers only.
  std::string json() const;
  bool write_json(const std::string& path) const;

  // Sidecar format: "ppmetrics 1" header, then one record per line
  // (`c name value`, `g name value`, `h name count sum min max i:count...`).
  std::string text() const;
  bool write_text(const std::string& path) const;

  // Merge a sidecar: returns false only when the header is missing (not a
  // metrics sidecar at all).  Unparseable lines — including a torn final
  // line from a killed worker — are skipped, not fatal.
  bool merge_text(const std::string& content);
  bool merge_text_file(const std::string& path);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, histogram> histograms_;
};

}  // namespace pp::obs
