// Leveled stderr logging for the fleet runtime (src/fleet/), replacing the
// ad-hoc fprintf(stderr, ...) call sites that grew with the supervisor.
//
// One process-global threshold, settable two ways with a fixed precedence:
// the POPSIM_LOG environment variable (error|warn|info|debug) is read once
// on first use, and set_log_threshold() (the CLI's --log-level flag)
// overrides it.  Messages at or above the threshold go to stderr with a
// "popsim <level>: " prefix so tests can match on a stable shape; everything
// below is dropped before formatting.  The default threshold is `info` —
// exactly the chattiness the raw fprintf sites had, so routing them through
// here changes no default behaviour.
//
// Deliberately tiny: no sinks, no timestamps, no allocation on the drop
// path.  Structured/machine-readable output is the metrics registry's and
// trace writer's job (metrics.h, trace.h); this is for humans watching a
// sweep.
#pragma once

#include <cstdarg>
#include <string>

namespace pp::obs {

enum class log_level : int { error = 0, warn = 1, info = 2, debug = 3 };

// Strict name -> level parse ("error"|"warn"|"info"|"debug"); returns false
// on anything else, leaving `out` untouched.
bool parse_log_level(const std::string& text, log_level& out);
const char* to_string(log_level level);

// Current threshold: messages with level <= threshold are emitted.  The
// first call (of either) resolves POPSIM_LOG; an unparseable value is
// ignored (default info) rather than fatal — logging must never be the
// reason a sweep dies.
log_level log_threshold();
void set_log_threshold(log_level level);

// printf-style emit to stderr, dropped without formatting when `level` is
// above the threshold.  A trailing newline is appended by the helper, so
// call sites pass bare messages.
void logf(log_level level, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace pp::obs
