#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pp::obs {
namespace {

// -1 = unresolved (POPSIM_LOG not yet consulted).  Plain atomic int so the
// fleet supervisor's signal-adjacent paths can log without locking.
std::atomic<int> g_threshold{-1};

int resolve_from_env() {
  const char* env = std::getenv("POPSIM_LOG");
  log_level level = log_level::info;
  if (env != nullptr) parse_log_level(env, level);  // bad value -> keep info
  return static_cast<int>(level);
}

}  // namespace

bool parse_log_level(const std::string& text, log_level& out) {
  if (text == "error") out = log_level::error;
  else if (text == "warn") out = log_level::warn;
  else if (text == "info") out = log_level::info;
  else if (text == "debug") out = log_level::debug;
  else return false;
  return true;
}

const char* to_string(log_level level) {
  switch (level) {
    case log_level::error: return "error";
    case log_level::warn: return "warn";
    case log_level::info: return "info";
    case log_level::debug: return "debug";
  }
  return "?";
}

log_level log_threshold() {
  int current = g_threshold.load(std::memory_order_relaxed);
  if (current < 0) {
    current = resolve_from_env();
    int expected = -1;
    // Lost race just means another thread resolved the same env value.
    g_threshold.compare_exchange_strong(expected, current,
                                        std::memory_order_relaxed);
  }
  return static_cast<log_level>(current);
}

void set_log_threshold(log_level level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void logf(log_level level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_threshold())) return;
  std::fprintf(stderr, "popsim %s: ", to_string(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace pp::obs
