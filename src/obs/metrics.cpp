#include "obs/metrics.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pp::obs {

int histogram::bucket_of(std::uint64_t value) {
  return std::bit_width(value);
}

std::uint64_t histogram::bucket_lo(int bucket) {
  if (bucket <= 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

void histogram::observe(std::uint64_t value) {
  if (count == 0 || value < min) min = value;
  if (value > max) max = value;
  ++count;
  sum += value;
  ++buckets[static_cast<std::size_t>(bucket_of(value))];
}

void histogram::merge(const histogram& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
  for (int i = 0; i < kBuckets; ++i) {
    buckets[static_cast<std::size_t>(i)] +=
        other.buckets[static_cast<std::size_t>(i)];
  }
}

void metrics_registry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void metrics_registry::set(const std::string& name, std::int64_t value) {
  gauges_[name] = value;
}

void metrics_registry::observe(const std::string& name, std::uint64_t value) {
  histograms_[name].observe(value);
}

std::uint64_t metrics_registry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t metrics_registry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const histogram* metrics_registry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void metrics_registry::merge(const metrics_registry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

namespace {

// Metric names are [A-Za-z0-9._-] by convention, but escape defensively so
// the snapshot is always valid JSON whatever a caller passes.
void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string metrics_registry::json() const {
  std::string out = "{\n  \"popsim_metrics\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"min\": " + std::to_string(h.count ? h.min : 0);
    out += ", \"max\": " + std::to_string(h.max);
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i < histogram::kBuckets; ++i) {
      const std::uint64_t n = h.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"lo\": " + std::to_string(histogram::bucket_lo(i));
      out += ", \"count\": " + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool metrics_registry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << json();
  return static_cast<bool>(out.flush());
}

std::string metrics_registry::text() const {
  std::string out = "ppmetrics 1\n";
  for (const auto& [name, value] : counters_) {
    out += "c " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out += "g " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "h " + name + " " + std::to_string(h.count) + " " +
           std::to_string(h.sum) + " " + std::to_string(h.count ? h.min : 0) +
           " " + std::to_string(h.max);
    for (int i = 0; i < histogram::kBuckets; ++i) {
      const std::uint64_t n = h.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      out += " " + std::to_string(i) + ":" + std::to_string(n);
    }
    out += "\n";
  }
  return out;
}

bool metrics_registry::write_text(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text();
  return static_cast<bool>(out.flush());
}

bool metrics_registry::merge_text(const std::string& content) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != "ppmetrics 1") return false;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string kind, name;
    if (!(fields >> kind >> name)) continue;
    if (kind == "c") {
      std::uint64_t value = 0;
      if (fields >> value) counters_[name] += value;
    } else if (kind == "g") {
      std::int64_t value = 0;
      if (fields >> value) gauges_[name] = value;
    } else if (kind == "h") {
      histogram h;
      if (!(fields >> h.count >> h.sum >> h.min >> h.max)) continue;
      std::string entry;
      bool ok = true;
      while (fields >> entry) {
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos) { ok = false; break; }
        const int bucket = std::atoi(entry.substr(0, colon).c_str());
        if (bucket < 0 || bucket >= histogram::kBuckets) { ok = false; break; }
        h.buckets[static_cast<std::size_t>(bucket)] = static_cast<std::uint64_t>(
            std::strtoull(entry.c_str() + colon + 1, nullptr, 10));
      }
      if (ok && h.count > 0) histograms_[name].merge(h);
    }
    // Unknown record kinds (future extensions, torn lines) are skipped.
  }
  return true;
}

bool metrics_registry::merge_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream content;
  content << in.rdbuf();
  return merge_text(content.str());
}

}  // namespace pp::obs
