// Chrome trace-event ("catapult") JSON writer for the fleet timeline.
//
// `popsim --trace FILE` records the supervisor's view of a sweep — worker
// spawn/exec, chunk assignment, record receipt, inactivity timeouts,
// kill/respawn/backoff, journal append/replay, inline degradation, merge —
// as duration spans (ph B/E) and instants (ph i), and workers contribute
// per-trial spans through sidecar files the supervisor merges.  The output
// is the trace-event JSON array format ({"traceEvents": [...]}) and loads
// directly in chrome://tracing or https://ui.perfetto.dev.
//
// Conventions (validated by tools/check_trace.py):
//   * ts is CLOCK_MONOTONIC in microseconds.  On Linux that clock is
//     system-wide, so supervisor and worker events share an epoch and the
//     merged timeline lines up without translation.
//   * pid is the real process id; the supervisor uses tid 0 for its poll
//     loop and tid slot+1 for the span covering worker slot's lifetime, so
//     overlapping workers render as parallel tracks.  B/E spans must nest
//     per (pid, tid).
//   * Events append in non-decreasing ts order per (pid, tid); sidecars are
//     whole-timeline chunks of a different pid, so appending them after the
//     supervisor's own events preserves that invariant.
//
// Sidecars are line-oriented — one rendered event object per line — so a
// worker killed mid-write costs only the torn final line, which
// merge_sidecar drops (same tolerance contract as the .ppaj journal).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pp::obs {

// Microseconds on the monotonic clock (system-wide on Linux).
std::int64_t trace_now_us();

// One pre-typed event argument; rendered into the event's "args" object.
struct trace_arg {
  std::string key;
  std::string text;
  bool quoted = true;  // false -> emitted as a bare JSON number

  static trace_arg num(std::string key, std::int64_t value);
  static trace_arg num(std::string key, std::uint64_t value);
  static trace_arg str(std::string key, std::string value);
};

class trace_writer {
 public:
  trace_writer();                // pid = getpid()
  explicit trace_writer(int pid);

  int pid() const { return pid_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // Span/instant emitters stamped with trace_now_us().
  void begin(const std::string& name, int tid,
             const std::vector<trace_arg>& args = {});
  void end(const std::string& name, int tid,
           const std::vector<trace_arg>& args = {});
  void instant(const std::string& name, int tid,
               const std::vector<trace_arg>& args = {});
  // Explicit-timestamp variants, for events reconstructed after the fact
  // (per-trial worker spans are buffered and flushed when the trial ends).
  void begin_at(const std::string& name, int tid, std::int64_t ts,
                const std::vector<trace_arg>& args = {});
  void end_at(const std::string& name, int tid, std::int64_t ts,
              const std::vector<trace_arg>& args = {});
  void instant_at(const std::string& name, int tid, std::int64_t ts,
                  const std::vector<trace_arg>& args = {});
  // ph C counter sample (args must be numeric series values).
  void counter_at(const std::string& name, int tid, std::int64_t ts,
                  const std::vector<trace_arg>& args);
  // ph M metadata (process_name / thread_name), exempt from ts ordering.
  void name_process(const std::string& name);
  void name_thread(int tid, const std::string& name);

  // Full document / file: {"traceEvents": [...]}.
  std::string json() const;
  bool write_json(const std::string& path) const;

  // Sidecar: newline-delimited rendered events (no enclosing array).
  bool write_sidecar(const std::string& path) const;
  // Append another process's sidecar lines to this timeline; returns the
  // number of events merged (0 for a missing/empty file).  A torn final
  // line — no trailing newline or unbalanced braces — is dropped.
  std::size_t merge_sidecar(const std::string& path);

 private:
  void push(char ph, const std::string& name, int tid, std::int64_t ts,
            const std::vector<trace_arg>& args);

  int pid_ = 0;
  std::vector<std::string> events_;  // each a rendered JSON object
};

}  // namespace pp::obs
