// Compile-time-gated engine probes: per-run phase telemetry with a strict
// zero-cost contract.
//
// Every engine loop (run_compiled, run_packed, the wellmixed batch loop)
// takes a `Probe` template parameter, defaulting to `null_probe`, plus a
// trailing `Probe* probe = nullptr` argument.  Each hook call site is
// guarded with `if constexpr (Probe::enabled)`, so with the default probe
// the instrumentation compiles to nothing — same codegen as before the
// probes existed (bench/obs.cpp gates the disabled path at <= 1% of the
// un-instrumented step rate) — and probes never feed back into the
// simulation: enabling any probe is bit-identical in steps/leader/census
// for a given seed (tests/test_obs.cpp matrix).
//
// What a `run_probe` collects, in the paper's terms (Alistarh–Rybicki–
// Voitovych 2022): elections pass through doubling streaks and then a long
// waiting phase of ~2^h·L *silent* steps per agent — interactions that
// change no state.  The probe splits the step count into silent vs active,
// samples the census trajectory every `stride` steps (the leader-role
// counters, e.g. contenders/minions), and counts stability-predicate
// evaluations, block_rng draws and lazy-table fills.  These are exactly the
// numbers the ROADMAP's event-driven silent-edge scheduler needs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pp::obs {

// One sampled point of the census trajectory.  `totals` mirrors the
// engine's census accumulator (census_traits<P>::kCounters live entries,
// at most kMaxCensusCounters == 4).
struct census_sample {
  std::uint64_t step = 0;
  int counters = 0;
  std::array<std::int64_t, 4> totals{};
};

// One sampled point of the silent scheduler's active-set trajectory: how
// many of the 2m oriented pairs were non-silent after `step` steps.
struct active_set_sample {
  std::uint64_t step = 0;
  std::uint64_t active_pairs = 0;
};

struct probe_stats {
  std::uint64_t steps = 0;            // interactions simulated
  std::uint64_t active_steps = 0;     // steps that changed some state
  std::uint64_t predicate_evals = 0;  // stability-predicate evaluations
  std::uint64_t rng_draws = 0;        // uniform draws consumed
  std::uint64_t table_fills = 0;      // lazy pair-transition compilations
  std::uint64_t batches = 0;          // wellmixed batches applied
  std::uint64_t batch_retries = 0;    // wellmixed half-B retries
  std::vector<census_sample> census;  // sampled trajectory, step-ascending
  // Active-pair trajectory (silent scheduler only), step-ascending.
  std::vector<active_set_sample> active_sets;

  std::uint64_t silent_steps() const { return steps - active_steps; }
};

// The disabled probe: `enabled == false` makes every hook site an
// `if constexpr` dead branch.  The hook bodies still exist (and no-op) so
// generic code may also call them unconditionally if it prefers.
struct null_probe {
  static constexpr bool enabled = false;

  void on_step(bool) {}
  void on_steps(std::uint64_t, std::uint64_t) {}
  void on_predicate_evals(std::uint64_t) {}
  void on_draws(std::uint64_t) {}
  void on_table_fills(std::uint64_t) {}
  void on_batch() {}
  void on_batch_retry() {}
  bool want_census(std::uint64_t) const { return false; }
  void on_census(std::uint64_t, const std::int64_t*, int) {}
  bool want_active_set(std::uint64_t) const { return false; }
  void on_active_set(std::uint64_t, std::uint64_t) {}
};

// The full probe.  `stride` controls census sampling: a sample is recorded
// the first time the step counter reaches or passes each multiple of
// stride (so per-step engines sample exactly at multiples, batch engines
// at the first step past each).  stride == 0 disables sampling but keeps
// the counters.  The sample vector is capped: on reaching kMaxSamples the
// probe deterministically thins to every other sample and doubles the
// stride, preserving a bounded, evenly spaced trajectory on runs of any
// length.
class run_probe {
 public:
  static constexpr bool enabled = true;
  static constexpr std::size_t kMaxSamples = 4096;
  static constexpr std::uint64_t kDefaultStride = 1024;

  explicit run_probe(std::uint64_t stride = kDefaultStride)
      : stride_(stride), next_(stride), active_stride_(stride),
        active_next_(stride) {}

  void on_step(bool active) {
    ++stats_.steps;
    stats_.active_steps += active ? 1u : 0u;
  }
  void on_steps(std::uint64_t steps, std::uint64_t active) {
    stats_.steps += steps;
    stats_.active_steps += active;
  }
  void on_predicate_evals(std::uint64_t n) { stats_.predicate_evals += n; }
  void on_draws(std::uint64_t n) { stats_.rng_draws += n; }
  void on_table_fills(std::uint64_t n) { stats_.table_fills += n; }
  void on_batch() { ++stats_.batches; }
  void on_batch_retry() { ++stats_.batch_retries; }

  bool want_census(std::uint64_t step) const {
    return stride_ != 0 && step >= next_;
  }
  void on_census(std::uint64_t step, const std::int64_t* totals,
                 int counters) {
    census_sample sample;
    sample.step = step;
    sample.counters = counters;
    for (int i = 0; i < counters && i < 4; ++i) sample.totals[i] = totals[i];
    stats_.census.push_back(sample);
    next_ = step - step % stride_ + stride_;
    if (stats_.census.size() >= kMaxSamples) thin();
  }

  // The active-set trajectory rides the same stride/thinning discipline as
  // the census samples, on its own crossing counter (a silent run may jump
  // many strides at once; one sample per advance is recorded).
  bool want_active_set(std::uint64_t step) const {
    return active_stride_ != 0 && step >= active_next_;
  }
  void on_active_set(std::uint64_t step, std::uint64_t active_pairs) {
    stats_.active_sets.push_back({step, active_pairs});
    active_next_ = step - step % active_stride_ + active_stride_;
    if (stats_.active_sets.size() >= kMaxSamples) thin_active();
  }

  std::uint64_t stride() const { return stride_; }
  const probe_stats& stats() const { return stats_; }

  void reset() {
    stats_ = probe_stats{};
    next_ = stride_;
    active_stride_ = stride_;
    active_next_ = stride_;
  }

 private:
  void thin() {
    std::size_t kept = 0;
    for (std::size_t i = 1; i < stats_.census.size(); i += 2) {
      stats_.census[kept++] = stats_.census[i];
    }
    stats_.census.resize(kept);
    stride_ *= 2;
    next_ = next_ - next_ % stride_ + stride_;
  }

  void thin_active() {
    std::size_t kept = 0;
    for (std::size_t i = 1; i < stats_.active_sets.size(); i += 2) {
      stats_.active_sets[kept++] = stats_.active_sets[i];
    }
    stats_.active_sets.resize(kept);
    active_stride_ *= 2;
    active_next_ = active_next_ - active_next_ % active_stride_ + active_stride_;
  }

  probe_stats stats_;
  std::uint64_t stride_ = kDefaultStride;
  std::uint64_t next_ = kDefaultStride;
  std::uint64_t active_stride_ = kDefaultStride;
  std::uint64_t active_next_ = kDefaultStride;
};

}  // namespace pp::obs
