// Compile-time-gated engine probes: per-run phase telemetry with a strict
// zero-cost contract.
//
// Every engine loop (run_compiled, run_packed, the wellmixed batch loop)
// takes a `Probe` template parameter, defaulting to `null_probe`, plus a
// trailing `Probe* probe = nullptr` argument.  Each hook call site is
// guarded with `if constexpr (Probe::enabled)`, so with the default probe
// the instrumentation compiles to nothing — same codegen as before the
// probes existed (bench/obs.cpp gates the disabled path at <= 1% of the
// un-instrumented step rate) — and probes never feed back into the
// simulation: enabling any probe is bit-identical in steps/leader/census
// for a given seed (tests/test_obs.cpp matrix).
//
// What a `run_probe` collects, in the paper's terms (Alistarh–Rybicki–
// Voitovych 2022): elections pass through doubling streaks and then a long
// waiting phase of ~2^h·L *silent* steps per agent — interactions that
// change no state.  The probe splits the step count into silent vs active,
// samples the census trajectory every `stride` steps (the leader-role
// counters, e.g. contenders/minions), and counts stability-predicate
// evaluations, block_rng draws and lazy-table fills.  These are exactly the
// numbers the ROADMAP's event-driven silent-edge scheduler needs.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

namespace pp::obs {

// One sampled point of the census trajectory.  `totals` mirrors the
// engine's census accumulator (census_traits<P>::kCounters live entries,
// at most kMaxCensusCounters == 4).
struct census_sample {
  std::uint64_t step = 0;
  int counters = 0;
  std::array<std::int64_t, 4> totals{};
};

// One sampled point of the silent scheduler's active-set trajectory: how
// many of the 2m oriented pairs were non-silent after `step` steps.
struct active_set_sample {
  std::uint64_t step = 0;
  std::uint64_t active_pairs = 0;
};

// One closed fixed-interval window of the run: the streaming form of the
// probe counters.  Window w covers steps [w*len, (w+1)*len) of the step
// counter; boundaries are crossed deterministically (engines report steps
// per-step or per-batch at seed-determined points), so the sequence of
// closed windows is bit-identical across reruns of the same seed.  A batch
// that spans a boundary is attributed to the window in which it completes,
// so `steps` may exceed the nominal length on batch engines.
//
// This is the input of the ROADMAP's auto-dispatch crossover rule
// (1 - f)·d̄ < 1: `silent_fraction()` is the per-window f.
struct probe_window {
  std::uint64_t index = 0;         // ordinal of the window (0-based)
  std::uint64_t steps = 0;         // steps attributed to this window
  std::uint64_t active_steps = 0;  // of those, steps that changed state
  std::uint64_t census_moves = 0;  // sum |Δtotal| over census samples seen
  std::uint64_t active_pairs = 0;  // last active-set sample (0 if none yet)
  // Wall clock at window close (steady, ns since the probe was built).
  // Deliberately excluded from operator==: it is the only
  // non-deterministic field, present for live rate/ETA display only.
  std::uint64_t wall_ns = 0;

  double silent_fraction() const {
    return steps == 0
               ? 0.0
               : static_cast<double>(steps - active_steps) /
                     static_cast<double>(steps);
  }

  friend bool operator==(const probe_window& a, const probe_window& b) {
    return a.index == b.index && a.steps == b.steps &&
           a.active_steps == b.active_steps &&
           a.census_moves == b.census_moves &&
           a.active_pairs == b.active_pairs;  // wall_ns excluded by design
  }
  friend bool operator!=(const probe_window& a, const probe_window& b) {
    return !(a == b);
  }
};

struct probe_stats {
  std::uint64_t steps = 0;            // interactions simulated
  std::uint64_t active_steps = 0;     // steps that changed some state
  std::uint64_t predicate_evals = 0;  // stability-predicate evaluations
  std::uint64_t rng_draws = 0;        // uniform draws consumed
  std::uint64_t table_fills = 0;      // lazy pair-transition compilations
  std::uint64_t batches = 0;          // wellmixed batches applied
  std::uint64_t batch_retries = 0;    // wellmixed half-B retries
  std::vector<census_sample> census;  // sampled trajectory, step-ascending
  // Active-pair trajectory (silent scheduler only), step-ascending.
  std::vector<active_set_sample> active_sets;
  // Ring of the most recent closed windows (window_len != 0 only),
  // index-ascending.  Bounded at run_probe::kMaxWindows: the oldest window
  // is dropped when a new one closes, so arbitrarily long runs keep a
  // recent-history ring instead of growing without bound.
  std::vector<probe_window> windows;
  std::uint64_t windows_closed = 0;  // total closed, including dropped ones

  std::uint64_t silent_steps() const { return steps - active_steps; }
};

// The disabled probe: `enabled == false` makes every hook site an
// `if constexpr` dead branch.  The hook bodies still exist (and no-op) so
// generic code may also call them unconditionally if it prefers.
struct null_probe {
  static constexpr bool enabled = false;

  void on_step(bool) {}
  void on_steps(std::uint64_t, std::uint64_t) {}
  void on_predicate_evals(std::uint64_t) {}
  void on_draws(std::uint64_t) {}
  void on_table_fills(std::uint64_t) {}
  void on_batch() {}
  void on_batch_retry() {}
  bool want_census(std::uint64_t) const { return false; }
  void on_census(std::uint64_t, const std::int64_t*, int) {}
  bool want_active_set(std::uint64_t) const { return false; }
  void on_active_set(std::uint64_t, std::uint64_t) {}
};

// The full probe.  `stride` controls census sampling: a sample is recorded
// the first time the step counter reaches or passes each multiple of
// stride (so per-step engines sample exactly at multiples, batch engines
// at the first step past each).  stride == 0 disables sampling but keeps
// the counters.  The sample vector is capped: on reaching kMaxSamples the
// probe deterministically thins to every other sample and doubles the
// stride, preserving a bounded, evenly spaced trajectory on runs of any
// length.
//
// `window_len` (0 = off) additionally closes a probe_window every time the
// step counter crosses a multiple of window_len, accumulating into a
// bounded ring (stats().windows).  Window boundaries live purely on the
// deterministic step counter — never on the clock — so the ring is
// bit-identical across reruns; only probe_window::wall_ns (stamped at
// close, excluded from comparison) sees the clock, one read per window.
class run_probe {
 public:
  static constexpr bool enabled = true;
  static constexpr std::size_t kMaxSamples = 4096;
  static constexpr std::size_t kMaxWindows = 4096;
  static constexpr std::uint64_t kDefaultStride = 1024;

  explicit run_probe(std::uint64_t stride = kDefaultStride,
                     std::uint64_t window_len = 0)
      : stride_(stride), next_(stride), active_stride_(stride),
        active_next_(stride), window_len_(window_len),
        window_next_(window_len),
        epoch_(std::chrono::steady_clock::now()) {}

  void on_step(bool active) {
    ++stats_.steps;
    stats_.active_steps += active ? 1u : 0u;
    if (window_len_ != 0 && stats_.steps >= window_next_) roll_windows();
  }
  void on_steps(std::uint64_t steps, std::uint64_t active) {
    stats_.steps += steps;
    stats_.active_steps += active;
    if (window_len_ != 0 && stats_.steps >= window_next_) roll_windows();
  }
  void on_predicate_evals(std::uint64_t n) { stats_.predicate_evals += n; }
  void on_draws(std::uint64_t n) { stats_.rng_draws += n; }
  void on_table_fills(std::uint64_t n) { stats_.table_fills += n; }
  void on_batch() { ++stats_.batches; }
  void on_batch_retry() { ++stats_.batch_retries; }

  bool want_census(std::uint64_t step) const {
    return stride_ != 0 && step >= next_;
  }
  void on_census(std::uint64_t step, const std::int64_t* totals,
                 int counters) {
    census_sample sample;
    sample.step = step;
    sample.counters = counters;
    for (int i = 0; i < counters && i < 4; ++i) sample.totals[i] = totals[i];
    if (window_len_ != 0) {
      // Census-change mass: L1 distance between consecutive census samples,
      // charged to the window that observes the later sample.
      if (have_last_census_) {
        std::uint64_t moved = 0;
        for (int i = 0; i < counters && i < 4; ++i) {
          std::int64_t d = sample.totals[i] - last_census_.totals[i];
          moved += static_cast<std::uint64_t>(d < 0 ? -d : d);
        }
        win_census_moves_ += moved;
      }
      last_census_ = sample;
      have_last_census_ = true;
    }
    stats_.census.push_back(sample);
    next_ = step - step % stride_ + stride_;
    if (stats_.census.size() >= kMaxSamples) thin();
  }

  // The active-set trajectory rides the same stride/thinning discipline as
  // the census samples, on its own crossing counter (a silent run may jump
  // many strides at once; one sample per advance is recorded).
  bool want_active_set(std::uint64_t step) const {
    return active_stride_ != 0 && step >= active_next_;
  }
  void on_active_set(std::uint64_t step, std::uint64_t active_pairs) {
    stats_.active_sets.push_back({step, active_pairs});
    if (window_len_ != 0) win_active_pairs_ = active_pairs;
    active_next_ = step - step % active_stride_ + active_stride_;
    if (stats_.active_sets.size() >= kMaxSamples) thin_active();
  }

  // Closes the trailing partial window, if any steps accumulated since the
  // last boundary.  Call once after the run completes; window boundaries
  // proper never depend on it.
  void finish() {
    if (window_len_ != 0 && stats_.steps > window_closed_steps_) {
      close_window();
    }
  }

  std::uint64_t stride() const { return stride_; }
  std::uint64_t window_len() const { return window_len_; }
  const probe_stats& stats() const { return stats_; }
  const std::vector<probe_window>& windows() const { return stats_.windows; }

  void reset() {
    stats_ = probe_stats{};
    next_ = stride_;
    active_stride_ = stride_;
    active_next_ = stride_;
    window_next_ = window_len_;
    window_index_ = 0;
    window_closed_steps_ = 0;
    window_closed_active_ = 0;
    win_census_moves_ = 0;
    win_active_pairs_ = 0;
    have_last_census_ = false;
    epoch_ = std::chrono::steady_clock::now();
  }

 private:
  // Close every window boundary the step counter has crossed.  The first
  // window closed takes all steps accumulated since the previous close;
  // when a batch jumps several boundaries at once the overshot windows
  // close empty (the batch is attributed where it completed).
  void roll_windows() {
    do {
      close_window();
    } while (stats_.steps >= window_next_);
  }

  void close_window() {
    probe_window w;
    w.index = window_index_++;
    w.steps = stats_.steps - window_closed_steps_;
    w.active_steps = stats_.active_steps - window_closed_active_;
    w.census_moves = win_census_moves_;
    w.active_pairs = win_active_pairs_;
    w.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
    window_closed_steps_ = stats_.steps;
    window_closed_active_ = stats_.active_steps;
    win_census_moves_ = 0;
    if (stats_.windows.size() >= kMaxWindows) {
      stats_.windows.erase(stats_.windows.begin());
    }
    stats_.windows.push_back(w);
    ++stats_.windows_closed;
    window_next_ = window_index_ * window_len_ + window_len_;
  }

  void thin() {
    std::size_t kept = 0;
    for (std::size_t i = 1; i < stats_.census.size(); i += 2) {
      stats_.census[kept++] = stats_.census[i];
    }
    stats_.census.resize(kept);
    stride_ *= 2;
    next_ = next_ - next_ % stride_ + stride_;
  }

  void thin_active() {
    std::size_t kept = 0;
    for (std::size_t i = 1; i < stats_.active_sets.size(); i += 2) {
      stats_.active_sets[kept++] = stats_.active_sets[i];
    }
    stats_.active_sets.resize(kept);
    active_stride_ *= 2;
    active_next_ = active_next_ - active_next_ % active_stride_ + active_stride_;
  }

  probe_stats stats_;
  std::uint64_t stride_ = kDefaultStride;
  std::uint64_t next_ = kDefaultStride;
  std::uint64_t active_stride_ = kDefaultStride;
  std::uint64_t active_next_ = kDefaultStride;
  // Window ring state (window_len_ == 0 disables all of it).
  std::uint64_t window_len_ = 0;
  std::uint64_t window_next_ = 0;       // step count that closes the window
  std::uint64_t window_index_ = 0;      // ordinal of the open window
  std::uint64_t window_closed_steps_ = 0;   // steps already attributed
  std::uint64_t window_closed_active_ = 0;  // active steps already attributed
  std::uint64_t win_census_moves_ = 0;  // census mass in the open window
  std::uint64_t win_active_pairs_ = 0;  // last active-set sample seen
  census_sample last_census_{};
  bool have_last_census_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace pp::obs
