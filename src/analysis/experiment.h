// Multi-trial, multithreaded measurement of election and dynamics quantities.
//
// Every trial t of an experiment uses the generator seed_gen.fork(t), so the
// estimates are reproducible regardless of thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/families.h"
#include "core/beauquier.h"
#include "core/simulator.h"
#include "dynamics/epidemic.h"
#include "engine/engine.h"
#include "engine/wellmixed/wellmixed.h"
#include "fleet/supervisor.h"
#include "fleet/sweep.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"

namespace pp {

// Aggregate of repeated election runs of one protocol on one graph.
struct election_summary {
  sample_summary steps;            // over stabilized trials only
  double stabilized_fraction = 0;  // trials that stabilized within max_steps
  double max_states_used = 0;      // empirical space complexity (census runs)
};

// Aggregates per-trial results into an election_summary.
election_summary summarize_election_results(const std::vector<election_result>& results);

// Runs `trials` independent elections of `proto` on `g` in parallel.
template <typename P>
election_summary measure_election(const P& proto, const graph& g, int trials,
                                  rng seed_gen, const sim_options& options = {},
                                  std::size_t threads = 0) {
  std::vector<election_result> results(static_cast<std::size_t>(trials));
  parallel_for(
      static_cast<std::size_t>(trials),
      [&](std::size_t t) {
        results[t] = run_until_stable(proto, g, seed_gen.fork(t), options);
      },
      threads);
  return summarize_election_results(results);
}

// kEngineClosureBudget — the states the reachable closure may intern before
// sweeps fall back to per-trial lazy tables — lives in engine/engine.h next
// to the tuned_runner that shares it.

// As measure_election, but on the compiled engine (src/engine/): trial t uses
// the same seed_gen.fork(t) generator and the engine is draw-for-draw
// equivalent to the reference simulator, so the summary is identical — only
// faster.  When the protocol's reachable state space closes within
// kEngineClosureBudget the compiled table is built once and shared read-only
// across the worker threads; otherwise each trial compiles its own table
// lazily (still fast: only pairs that occur are materialised).
template <compilable_protocol P>
election_summary measure_election_fast(const P& proto, const graph& g, int trials,
                                       rng seed_gen, const sim_options& options = {},
                                       std::size_t threads = 0) {
  compiled_protocol<P> compiled(proto);
  for (node_id v = 0; v < g.num_nodes(); ++v) compiled.intern(proto.initial_state(v));
  const bool shared = compiled.close(kEngineClosureBudget);
  const edge_endpoints edges(g);

  std::vector<election_result> results(static_cast<std::size_t>(trials));
  parallel_for(
      static_cast<std::size_t>(trials),
      [&](std::size_t t) {
        if (shared) {
          results[t] = run_compiled(compiled, edges, g, seed_gen.fork(t), options);
        } else {
          compiled_protocol<P> local(proto);
          results[t] = run_compiled(local, edges, g, seed_gen.fork(t), options);
        }
      },
      threads);
  return summarize_election_results(results);
}

// As measure_election_fast, but through the tuned packed engine
// (engine/engine.h): the vertex order (natural / BFS / RCM relabelling) and
// the config word width are resolved once by a shared tuned_runner, and every
// trial reuses its packed table, packed endpoint array and relabelled graph.
// With the default tuning's natural order the summary is bit-identical to
// measure_election_fast (and hence to the reference simulator) per seed at
// every width; reordered runs execute the same process on an isomorphic graph
// — initial states and leaders ride the permutation — so every statistic's
// *distribution* is unchanged but per-seed equality is traded for 3σ
// statistical agreement, the same contract as the well-mixed engine.
template <compilable_protocol P>
election_summary measure_election_tuned(const tuned_runner<P>& runner,
                                        int trials, rng seed_gen,
                                        const sim_options& options = {},
                                        std::size_t threads = 0) {
  std::vector<election_result> results(static_cast<std::size_t>(trials));
  parallel_for(
      static_cast<std::size_t>(trials),
      [&](std::size_t t) { results[t] = runner.run(seed_gen.fork(t), options); },
      threads);
  return summarize_election_results(results);
}

template <compilable_protocol P>
election_summary measure_election_tuned(const P& proto, const graph& g,
                                        int trials, rng seed_gen,
                                        const sim_options& options = {},
                                        const engine_tuning& tuning = {},
                                        std::size_t threads = 0) {
  const tuned_runner<P> runner(proto, g, tuning);
  return measure_election_tuned(runner, trials, seed_gen, options, threads);
}

// As measure_election_tuned, but sharding the trials across `jobs` worker
// *processes* (fleet/sweep.h) instead of threads: workers inherit the
// prepared runner copy-on-write and stream per-trial results back over
// pipes.  Trial t still uses seed_gen.fork(t) and the merge reassembles the
// per-trial vector by index, so the summary is byte-identical to the serial
// (and threaded) sweep for any worker count — the seed-partition determinism
// contract of tests/test_fleet.cpp and the CI fleet-determinism gate.
template <compilable_protocol P>
election_summary measure_election_fleet(const tuned_runner<P>& runner,
                                        int trials, rng seed_gen,
                                        const sim_options& options = {},
                                        int jobs = 1) {
  return summarize_election_results(fleet::fleet_run(
      static_cast<std::uint64_t>(trials), seed_gen,
      [&](std::uint64_t, rng gen) { return runner.run(gen, options); }, jobs));
}

// Fault-tolerant variant: as measure_election_fleet, but under the sweep
// supervisor (fleet/supervisor.h) — crashed, hung or misbehaving workers are
// killed and respawned with their incomplete trials, completed trials can be
// journaled/resumed, and deterministic faults can be injected.  Trial t still
// runs seed_gen.fork(t) wherever it lands, so the summary stays byte-identical
// to the serial sweep through every recovery path.
template <compilable_protocol P>
election_summary measure_election_fleet(const tuned_runner<P>& runner,
                                        int trials, rng seed_gen,
                                        const sim_options& options,
                                        int jobs,
                                        const fleet::supervise_options& sup) {
  return summarize_election_results(fleet::supervised_fleet_run(
      static_cast<std::uint64_t>(trials), seed_gen,
      [&](std::uint64_t, rng gen) { return runner.run(gen, options); }, jobs,
      sup));
}

// Process-sharded counterpart of measure_election_wellmixed.  The well-mixed
// engine is deterministic per (seed, batch size), so the fleet merge is also
// byte-identical to the serial sweep — stronger than the engine's 3σ
// statistical contract against the per-interaction simulators.
template <node_census_protocol P>
election_summary measure_election_fleet_wellmixed(const P& proto, std::uint64_t n,
                                                  int trials, rng seed_gen,
                                                  const sim_options& options = {},
                                                  int jobs = 1) {
  const wellmixed_sweep<P> sweep(proto, n);
  return summarize_election_results(fleet::fleet_run(
      static_cast<std::uint64_t>(trials), seed_gen,
      [&](std::uint64_t, rng gen) { return sweep.run(gen, options); }, jobs));
}

// Fault-tolerant variant of measure_election_fleet_wellmixed (see the tuned
// overload above for the recovery semantics).
template <node_census_protocol P>
election_summary measure_election_fleet_wellmixed(
    const P& proto, std::uint64_t n, int trials, rng seed_gen,
    const sim_options& options, int jobs,
    const fleet::supervise_options& sup) {
  const wellmixed_sweep<P> sweep(proto, n);
  return summarize_election_results(fleet::supervised_fleet_run(
      static_cast<std::uint64_t>(trials), seed_gen,
      [&](std::uint64_t, rng gen) { return sweep.run(gen, options); }, jobs,
      sup));
}

// One tuned election (single-run convenience over tuned_runner; callers that
// run many trials should build the runner once instead).
template <compilable_protocol P>
election_result run_election_tuned(const P& proto, const graph& g, rng gen,
                                   const sim_options& options = {},
                                   const engine_tuning& tuning = {}) {
  return tuned_runner<P>(proto, g, tuning).run(gen, options);
}

// Well-mixed (clique) sweep on the multiset batch engine: trial t runs
// run_wellmixed with seed_gen.fork(t) on a population of n agents.  The O(n)
// initial multiset is built once and shared by every trial, so each trial
// costs only the O(|Λ|)-per-batch simulation; there is no graph object and
// no Θ(n²) edge memory, which is what lets clique sweeps reach n = 10⁸.
// Results agree with measure_election / measure_election_fast statistically
// (bench/wellmixed.cpp pins the 3σ agreement), not per-seed — see
// engine/wellmixed/README.md for the batching caveat.
template <node_census_protocol P>
election_summary measure_election_wellmixed(const P& proto, std::uint64_t n,
                                            int trials, rng seed_gen,
                                            const sim_options& options = {},
                                            std::size_t threads = 0) {
  const wellmixed_sweep<P> sweep(proto, n);
  std::vector<election_result> results(static_cast<std::size_t>(trials));
  parallel_for(
      static_cast<std::size_t>(trials),
      [&](std::size_t t) { results[t] = sweep.run(seed_gen.fork(t), options); },
      threads);
  return summarize_election_results(results);
}

// As `measure_election` for the Beauquier protocol, but with the event-driven
// runner (orders of magnitude faster on sparse graphs).
election_summary measure_beauquier_event_driven(const beauquier_protocol& proto,
                                                const graph& g, int trials,
                                                rng seed_gen,
                                                std::uint64_t max_steps,
                                                std::size_t threads = 0);

// Estimates B(G) and wraps it with the family's predicted shape for
// measured/shape ratio reporting.
struct broadcast_summary {
  double measured = 0.0;   // estimate of B(G) in scheduler steps
  double shape = 0.0;      // family closed-form Θ-shape value
  double ratio() const { return shape > 0 ? measured / shape : 0.0; }
};
broadcast_summary measure_broadcast(const graph& g, const graph_family& family,
                                    int trials_per_source, int max_sources,
                                    rng seed_gen);

// Reads a positive scale factor from the PP_BENCH_SCALE environment variable
// (default 1.0); benches multiply their problem sizes/trial counts by it.
double bench_scale();

}  // namespace pp
