#include "analysis/families.h"

#include <cmath>

#include "graph/generators.h"
#include "support/expects.h"

namespace pp {

namespace {

double log2_of(const graph& g) {
  return std::log2(static_cast<double>(g.num_nodes()));
}

double nodes_of(const graph& g) { return static_cast<double>(g.num_nodes()); }

std::vector<graph_family> build_families() {
  std::vector<graph_family> families;

  families.push_back({
      "clique",
      [](node_id n, rng&) { return make_clique(n); },
      // B(K_n) = Θ(n log n): coupon-collector-like boundary growth.
      [](const graph& g) { return nodes_of(g) * log2_of(g); },
      // H(K_n) = Θ(n).
      [](const graph& g) { return nodes_of(g); },
  });

  families.push_back({
      "cycle",
      [](node_id n, rng&) { return make_cycle(n); },
      // B(C_n) = Θ(m·D) = Θ(n²) (Theorem 6 upper, Lemma 14 lower).
      [](const graph& g) { return nodes_of(g) * nodes_of(g); },
      // H(C_n) = Θ(n²) (worst pair at distance n/2: k(n-k)).
      [](const graph& g) { return nodes_of(g) * nodes_of(g); },
  });

  families.push_back({
      "star",
      [](node_id n, rng&) { return make_star(n); },
      // B(S_n) = Θ(n log n): each leaf must interact, coupon collector.
      [](const graph& g) { return nodes_of(g) * log2_of(g); },
      // H(S_n) = Θ(n): from a leaf, each excursion through the centre hits a
      // fixed other leaf with probability 1/(n-1).
      [](const graph& g) { return nodes_of(g); },
  });

  families.push_back({
      "torus",
      [](node_id n, rng&) {
        const auto side = static_cast<node_id>(
            std::max(3.0, std::round(std::sqrt(static_cast<double>(n)))));
        return make_grid_2d(side, side, /*torus=*/true);
      },
      // B = Θ(m·D) = Θ(n·√n) on the √n x √n torus.
      [](const graph& g) { return std::pow(nodes_of(g), 1.5); },
      // H = Θ(n log n) for the 2-d torus.
      [](const graph& g) { return nodes_of(g) * log2_of(g); },
  });

  families.push_back({
      "er_dense",
      [](node_id n, rng& gen) { return make_connected_erdos_renyi(n, 0.5, gen); },
      // B = Θ(n log n) w.h.p. (Lemma 11).
      [](const graph& g) { return nodes_of(g) * log2_of(g); },
      // H = O(n) a.a.s. (Proposition 20, via Löwe–Torres).
      [](const graph& g) { return nodes_of(g); },
  });

  families.push_back({
      "rr8",
      [](node_id n, rng& gen) {
        return make_random_regular(n, 8, gen);
      },
      // Constant-degree expander: B = Θ(n log n), H = Θ(n).
      [](const graph& g) { return nodes_of(g) * log2_of(g); },
      [](const graph& g) { return nodes_of(g); },
  });

  return families;
}

}  // namespace

const std::vector<graph_family>& standard_families() {
  static const std::vector<graph_family> families = build_families();
  return families;
}

const graph_family& family_by_name(const std::string& name) {
  for (const graph_family& f : standard_families()) {
    if (f.name == name) return f;
  }
  throw std::invalid_argument("family_by_name: unknown family " + name);
}

}  // namespace pp
