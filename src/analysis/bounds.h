// Closed-form bound and shape calculators from the paper, in one place.
//
// Each function evaluates one displayed bound at given graph parameters,
// with the constants the paper states (where it states them) or unit
// constants for Θ-shapes.  The benches compare measurements against these;
// the tests pin each formula against hand-computed values.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace pp::bounds {

// Lemma 8: B(G) <= m·max{6·ln n, D} + 2.
double broadcast_upper_diameter(double m, double n, double diameter);

// Lemma 10 (shape): B(G) <= C·(m/β)·log n; evaluated at C = 2·λ0 with the
// paper's λ0 = 2 floor, i.e. 4·(m/β)·ln n.
double broadcast_upper_expansion(double m, double n, double beta);

// Lemma 12: B(G) >= (m/Δ)·ln(n-1).
double broadcast_lower(double m, double max_degree, double n);

// Theorem 15 (shape): B(G) = Θ(n·max{D, log n}) for bounded-degree graphs.
double broadcast_shape_bounded_degree(double n, double diameter);

// Lemma 17: H_P(G) <= 27·n·H(G).
double population_hitting_upper(double n, double classic_hitting);

// Lemma 18: M(u,v) <= 2·H_P(G).
double meeting_upper(double population_hitting);

// Theorem 16 (shape): 6-state stabilization = O(H(G)·n·log n).
double theorem16_shape(double classic_hitting, double n);

// Theorem 21 (shape): identifier-protocol stabilization = O(B(G) + n·log n).
double theorem21_shape(double broadcast_time, double n);

// Theorem 21: identifier bit-length k = ceil(4·log2 n) on general graphs
// and ceil(3·log2 n) on regular graphs.
int theorem21_bits(double n, bool regular);

// Lemma 22: pairwise identifier collision probability <= 2^-k.
double id_collision_upper(int k);

// Lemma 23: settling time E[T] <= k·n + 2·B(G).
double id_settling_upper(int k, double n, double broadcast_time);

// Theorem 24 (shape): fast-protocol stabilization = O(B(G)·log n).
double theorem24_shape(double broadcast_time, double n);

// Theorem 24: streak parameter h = 8 + ceil(log2(B·Δ/m)) (the paper's
// constant; `offset` generalises it for the calibrated preset).
int theorem24_streak_length(double broadcast_time, double max_degree, double m,
                            int offset = 8);

// §5.2: elimination threshold L = ceil(2·τ·log2 n).
int theorem24_level_threshold(double n, double tau = 1.0);

// Lemma 27a: E[K] = 2^{h+1} - 2 interactions per streak-clock tick.
double clock_interactions_per_tick(int h);

// Lemma 27b: E[X(d)] = E[K]·m/d scheduler steps per tick at degree d.
double clock_steps_per_tick(int h, double degree, double m);

// Theorem 34 / Lemma 38 (shape): renitent graphs need Ω(ℓ·m) steps and have
// B(G) = Θ(ℓ·m).
double renitent_shape(double ell, double m);

// Theorem 40 (shape): dense graphs (δ >= λn^φ, m >= λn²) need Ω(n·log n).
double dense_lower_shape(double n);

// Theorem 46 (shape): constant-state protocols on connected G(n,p) need
// Ω(n²) — the shape below which no measurement may fall.
double constant_state_lower_shape(double n);

// Corollary 25 (shape): on regular graphs with conductance φ = β/Δ, the fast
// protocol stabilizes in O(φ^{-1}·n·log² n) steps.
double corollary25_shape(double n, double conductance);

// Corollary 25 (states): O(log n · (log log n - log φ)).
double corollary25_state_shape(double n, double conductance);

}  // namespace pp::bounds
