// Registry of the graph families appearing in Table 1 and §3/§6, together
// with the closed-form *shapes* (Θ-values with unit constants) of their
// broadcast time B(G) and classic worst-case hitting time H(G).  The benches
// report measured/shape ratios: a ratio that is flat in n reproduces the
// paper's asymptotic claim.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace pp {

struct graph_family {
  std::string name;
  // Builds an instance with ~n nodes (exact n where the family allows it).
  std::function<graph(node_id n, rng& gen)> make;
  // Θ-shape of the worst-case expected broadcast time B(G) (§3).
  std::function<double(const graph& g)> broadcast_shape;
  // Θ-shape of the worst-case classic hitting time H(G) (§4.1).
  std::function<double(const graph& g)> hitting_shape;
};

// clique, cycle, star, torus (√n x √n), dense Erdős–Rényi (p = 0.5,
// conditioned on connectivity) and random 8-regular.
const std::vector<graph_family>& standard_families();

// Look up a family by name; throws std::invalid_argument if unknown.
const graph_family& family_by_name(const std::string& name);

}  // namespace pp
