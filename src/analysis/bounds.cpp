#include "analysis/bounds.h"

#include <algorithm>
#include <cmath>

#include "support/expects.h"

namespace pp::bounds {

double broadcast_upper_diameter(double m, double n, double diameter) {
  expects(m >= 1 && n >= 2 && diameter >= 1, "broadcast_upper_diameter: bad args");
  return m * std::max(6.0 * std::log(n), diameter) + 2.0;
}

double broadcast_upper_expansion(double m, double n, double beta) {
  expects(m >= 1 && n >= 2 && beta > 0, "broadcast_upper_expansion: bad args");
  return 4.0 * (m / beta) * std::log(n);
}

double broadcast_lower(double m, double max_degree, double n) {
  expects(m >= 1 && max_degree >= 1 && n >= 2, "broadcast_lower: bad args");
  return m / max_degree * std::log(n - 1.0);
}

double broadcast_shape_bounded_degree(double n, double diameter) {
  return n * std::max(diameter, std::log2(n));
}

double population_hitting_upper(double n, double classic_hitting) {
  return 27.0 * n * classic_hitting;
}

double meeting_upper(double population_hitting) { return 2.0 * population_hitting; }

double theorem16_shape(double classic_hitting, double n) {
  return classic_hitting * n * std::log2(n);
}

double theorem21_shape(double broadcast_time, double n) {
  return broadcast_time + n * std::log2(n);
}

int theorem21_bits(double n, bool regular) {
  expects(n >= 2, "theorem21_bits: need n >= 2");
  const double factor = regular ? 3.0 : 4.0;
  return std::min(62, static_cast<int>(std::ceil(factor * std::log2(n))));
}

double id_collision_upper(int k) {
  expects(k >= 1 && k <= 62, "id_collision_upper: k out of range");
  return std::ldexp(1.0, -k);
}

double id_settling_upper(int k, double n, double broadcast_time) {
  return static_cast<double>(k) * n + 2.0 * broadcast_time;
}

double theorem24_shape(double broadcast_time, double n) {
  return broadcast_time * std::log2(n);
}

int theorem24_streak_length(double broadcast_time, double max_degree, double m,
                            int offset) {
  expects(broadcast_time >= 1 && max_degree >= 1 && m >= 1,
          "theorem24_streak_length: bad args");
  const double ratio = broadcast_time * max_degree / m;
  return offset + static_cast<int>(std::ceil(std::log2(std::max(1.0, ratio))));
}

int theorem24_level_threshold(double n, double tau) {
  expects(n >= 2 && tau >= 1.0, "theorem24_level_threshold: bad args");
  return std::max(1, static_cast<int>(std::ceil(2.0 * tau * std::log2(n))));
}

double clock_interactions_per_tick(int h) {
  expects(h >= 1 && h <= 62, "clock_interactions_per_tick: h out of range");
  return std::ldexp(1.0, h + 1) - 2.0;
}

double clock_steps_per_tick(int h, double degree, double m) {
  expects(degree >= 1 && m >= degree, "clock_steps_per_tick: bad args");
  return clock_interactions_per_tick(h) * m / degree;
}

double renitent_shape(double ell, double m) { return ell * m; }

double dense_lower_shape(double n) { return n * std::log2(n); }

double constant_state_lower_shape(double n) { return n * n; }

double corollary25_shape(double n, double conductance) {
  expects(conductance > 0 && conductance <= 1, "corollary25_shape: bad conductance");
  const double lg = std::log2(n);
  return n * lg * lg / conductance;
}

double corollary25_state_shape(double n, double conductance) {
  expects(conductance > 0 && conductance <= 1,
          "corollary25_state_shape: bad conductance");
  const double lg = std::log2(n);
  return lg * (std::log2(std::max(2.0, lg)) - std::log2(conductance));
}

}  // namespace pp::bounds
