#include "analysis/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace pp {

election_summary summarize_election_results(
    const std::vector<election_result>& results) {
  election_summary summary;
  std::vector<double> steps;
  int stabilized = 0;
  for (const election_result& r : results) {
    if (r.stabilized) {
      ++stabilized;
      steps.push_back(static_cast<double>(r.steps));
    }
    summary.max_states_used =
        std::max(summary.max_states_used, static_cast<double>(r.distinct_states_used));
  }
  summary.stabilized_fraction =
      results.empty() ? 0.0 : static_cast<double>(stabilized) / static_cast<double>(results.size());
  if (!steps.empty()) summary.steps = summarize(steps);
  return summary;
}

election_summary measure_beauquier_event_driven(const beauquier_protocol& proto,
                                                const graph& g, int trials,
                                                rng seed_gen,
                                                std::uint64_t max_steps,
                                                std::size_t threads) {
  std::vector<bq_run_result> results(static_cast<std::size_t>(trials));
  parallel_for(
      static_cast<std::size_t>(trials),
      [&](std::size_t t) {
        results[t] = run_beauquier_event_driven(proto, g, seed_gen.fork(t), max_steps);
      },
      threads);

  election_summary summary;
  std::vector<double> steps;
  int stabilized = 0;
  for (const bq_run_result& r : results) {
    if (r.stabilized) {
      ++stabilized;
      steps.push_back(static_cast<double>(r.steps));
    }
  }
  summary.stabilized_fraction = static_cast<double>(stabilized) / trials;
  summary.max_states_used = 6;  // the protocol has six states by construction
  if (!steps.empty()) summary.steps = summarize(steps);
  return summary;
}

broadcast_summary measure_broadcast(const graph& g, const graph_family& family,
                                    int trials_per_source, int max_sources,
                                    rng seed_gen) {
  broadcast_summary s;
  s.measured = estimate_worst_case_broadcast_time(g, trials_per_source, max_sources,
                                                  seed_gen)
                   .value;
  s.shape = family.broadcast_shape(g);
  return s;
}

double bench_scale() {
  const char* raw = std::getenv("PP_BENCH_SCALE");
  if (raw == nullptr) return 1.0;
  const double v = std::atof(raw);
  return v > 0.0 ? v : 1.0;
}

}  // namespace pp
