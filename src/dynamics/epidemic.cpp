#include "dynamics/epidemic.h"

#include <algorithm>

#include "graph/metrics.h"
#include "sched/scheduler.h"
#include "support/expects.h"

namespace pp {

namespace {

// Set of edge ids supporting O(1) insert, erase and uniform sampling.
class edge_id_pool {
 public:
  explicit edge_id_pool(std::size_t universe)
      : position_(universe, npos) {}

  bool contains(std::int64_t id) const {
    return position_[static_cast<std::size_t>(id)] != npos;
  }

  void insert(std::int64_t id) {
    if (contains(id)) return;
    position_[static_cast<std::size_t>(id)] = members_.size();
    members_.push_back(id);
  }

  void erase(std::int64_t id) {
    const std::size_t pos = position_[static_cast<std::size_t>(id)];
    if (pos == npos) return;
    const std::int64_t last = members_.back();
    members_[pos] = last;
    position_[static_cast<std::size_t>(last)] = pos;
    members_.pop_back();
    position_[static_cast<std::size_t>(id)] = npos;
  }

  std::size_t size() const { return members_.size(); }

  std::int64_t sample(rng& gen) const {
    return members_[static_cast<std::size_t>(gen.uniform_below(members_.size()))];
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> position_;
  std::vector<std::int64_t> members_;
};

}  // namespace

broadcast_result simulate_broadcast(const graph& g, node_id source, rng gen) {
  expects(source >= 0 && source < g.num_nodes(),
          "simulate_broadcast: source out of range");
  expects(g.num_edges() >= 1, "simulate_broadcast: graph must have edges");

  const node_id n = g.num_nodes();
  const double m = static_cast<double>(g.num_edges());

  broadcast_result result;
  result.infection_step.assign(static_cast<std::size_t>(n), 0);
  std::vector<bool> informed(static_cast<std::size_t>(n), false);
  informed[static_cast<std::size_t>(source)] = true;

  edge_id_pool boundary(static_cast<std::size_t>(g.num_edges()));
  for (const std::int64_t id : g.incident_edge_ids(source)) boundary.insert(id);

  std::uint64_t step = 0;
  node_id remaining = n - 1;
  while (remaining > 0) {
    expects(boundary.size() > 0, "simulate_broadcast: graph must be connected");
    // Wait for the scheduler to hit a boundary edge: Geometric(|∂S|/m).
    step += gen.geometric(static_cast<double>(boundary.size()) / m);
    const std::int64_t hit = boundary.sample(gen);
    const edge& e = g.edges()[static_cast<std::size_t>(hit)];
    const node_id fresh = informed[static_cast<std::size_t>(e.u)] ? e.v : e.u;

    informed[static_cast<std::size_t>(fresh)] = true;
    result.infection_step[static_cast<std::size_t>(fresh)] = step;
    --remaining;
    // Edges from `fresh` to informed nodes leave the boundary, the rest join.
    const auto nbrs = g.neighbors(fresh);
    const auto ids = g.incident_edge_ids(fresh);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (informed[static_cast<std::size_t>(nbrs[i])]) {
        boundary.erase(ids[i]);
      } else {
        boundary.insert(ids[i]);
      }
    }
  }
  result.completion_step = step;
  return result;
}

broadcast_result simulate_broadcast_naive(const graph& g, node_id source, rng gen) {
  expects(source >= 0 && source < g.num_nodes(),
          "simulate_broadcast_naive: source out of range");

  const node_id n = g.num_nodes();
  broadcast_result result;
  result.infection_step.assign(static_cast<std::size_t>(n), 0);
  std::vector<bool> informed(static_cast<std::size_t>(n), false);
  informed[static_cast<std::size_t>(source)] = true;
  node_id remaining = n - 1;

  edge_scheduler sched(g, gen);
  while (remaining > 0) {
    const interaction it = sched.next();
    const bool a = informed[static_cast<std::size_t>(it.initiator)];
    const bool b = informed[static_cast<std::size_t>(it.responder)];
    if (a == b) continue;
    const node_id fresh = a ? it.responder : it.initiator;
    informed[static_cast<std::size_t>(fresh)] = true;
    result.infection_step[static_cast<std::size_t>(fresh)] = sched.steps();
    --remaining;
  }
  result.completion_step = sched.steps();
  return result;
}

double estimate_broadcast_time(const graph& g, node_id source, int trials, rng gen) {
  expects(trials >= 1, "estimate_broadcast_time: need trials >= 1");
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto r = simulate_broadcast(g, source, gen.fork(static_cast<std::uint64_t>(t)));
    total += static_cast<double>(r.completion_step);
  }
  return total / trials;
}

broadcast_time_estimate estimate_worst_case_broadcast_time(
    const graph& g, int trials_per_source, int max_sources, rng gen) {
  expects(trials_per_source >= 1 && max_sources >= 1,
          "estimate_worst_case_broadcast_time: need positive budgets");

  const node_id n = g.num_nodes();
  std::vector<node_id> sources;
  if (n <= max_sources) {
    for (node_id v = 0; v < n; ++v) sources.push_back(v);
  } else {
    // The worst (and best) sources on all our families are extremal in degree
    // or eccentricity; evaluate those plus random probes.
    node_id lo = 0;
    node_id hi = 0;
    for (node_id v = 0; v < n; ++v) {
      if (g.degree(v) < g.degree(lo)) lo = v;
      if (g.degree(v) > g.degree(hi)) hi = v;
    }
    sources.push_back(lo);
    sources.push_back(hi);
    while (static_cast<int>(sources.size()) < max_sources) {
      sources.push_back(static_cast<node_id>(
          gen.uniform_below(static_cast<std::uint64_t>(n))));
    }
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  }

  broadcast_time_estimate est;
  est.min_value = -1.0;
  std::uint64_t stream = 0;
  for (const node_id v : sources) {
    const double mean =
        estimate_broadcast_time(g, v, trials_per_source, gen.fork(stream++));
    if (mean > est.value) {
      est.value = mean;
      est.argmax = v;
    }
    if (est.min_value < 0.0 || mean < est.min_value) est.min_value = mean;
  }
  return est;
}

std::uint64_t distance_k_propagation_step(const broadcast_result& r,
                                          const std::vector<std::int32_t>& distances,
                                          std::int32_t k) {
  expects(r.infection_step.size() == distances.size(),
          "distance_k_propagation_step: size mismatch");
  std::uint64_t best = static_cast<std::uint64_t>(-1);
  for (std::size_t v = 0; v < distances.size(); ++v) {
    if (distances[v] == k) best = std::min(best, r.infection_step[v]);
  }
  return best;
}

}  // namespace pp
