// Random walks in the population model and classic random walks (§4.1).
//
// A population-model walk sits at a node and moves to the other endpoint
// whenever the scheduler samples an edge incident to it; since the scheduler
// is uniform over edges, the jump chain is exactly the classic random walk,
// with a Geometric(deg(v)/m) holding time in scheduler steps.  The paper's
// Theorem 16 bounds the 6-state protocol through the worst-case classic
// hitting time H(G) via H_P(G) <= 27 n H(G) (Lemma 17) and
// M(u,v) <= 2 H_P(G) (Lemma 18); the simulators and exact solvers here
// reproduce those quantities.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace pp {

// Expected classic hitting times E[steps to reach `target`] from every start
// node, computed exactly by solving the linear system h(x) = 1 + avg over
// neighbours (Gaussian elimination, O(n³); intended for n up to a few
// hundred).  h(target) = 0.
std::vector<double> exact_classic_hitting_times(const graph& g, node_id target);

// Worst-case classic hitting time H(G) = max_{u,v} H(u, v), exact (solves n
// systems; O(n⁴), keep n small).
double exact_worst_case_hitting_time(const graph& g);

// One sample of the classic hitting time (number of walk moves) from `start`
// to `target`.
std::uint64_t sample_classic_hitting_time(const graph& g, node_id start,
                                          node_id target, rng& gen);

// One sample of the population-model hitting time (number of scheduler
// steps) from `start` to `target`; event-driven.
std::uint64_t sample_population_hitting_time(const graph& g, node_id start,
                                             node_id target, rng& gen);

// One sample of the population-model meeting time of two walks started at
// `a` and `b`: the first step whose sampled edge has the walks at its two
// endpoints (§4.1).  Requires a != b.
std::uint64_t sample_population_meeting_time(const graph& g, node_id a,
                                             node_id b, rng& gen);

// One sample of the classic cover time (walk moves until all nodes visited).
std::uint64_t sample_classic_cover_time(const graph& g, node_id start, rng& gen);

// One sample of the population-model cover time (scheduler steps until the
// walk has visited every node); event-driven.  Lemma 19 bounds the time for
// every walk to visit every node by O(H(G)·n·log n) steps.
std::uint64_t sample_population_cover_time(const graph& g, node_id start, rng& gen);

// Monte-Carlo estimate of the worst-case population hitting time
// H_P(G) ~= max over `pairs` sampled (u,v) of the mean over `trials` runs.
double estimate_worst_case_population_hitting_time(const graph& g, int pairs,
                                                   int trials, rng gen);

}  // namespace pp
