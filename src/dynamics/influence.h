// Influence sets and the lower-bound machinery of §7.1 (Lemmas 41, 42, 44).
//
// I_t(v) is the set of nodes whose initial state can have influenced v's
// state by step t.  The surgery-style lower bound for dense random graphs
// rests on three measurable facts, all reproduced here:
//   * |I_t(v)| stays below n^ε for t <= c·n·log n            (Lemma 41),
//   * many nodes have not interacted at all by such t        (Lemma 42),
//   * the reverse influence process J_t(v) is almost tree-like: it contains
//     O(log n) "internal" interactions                        (Lemma 44).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace pp {

// A recorded prefix of a stochastic schedule (ordered interactions).
struct recorded_schedule {
  std::vector<std::int32_t> initiators;
  std::vector<std::int32_t> responders;

  std::size_t length() const { return initiators.size(); }
};

// Samples and records the first `steps` interactions of a schedule on g.
recorded_schedule record_schedule(const graph& g, std::uint64_t steps, rng gen);

// Statistics of the reverse influence process J_{t0}(v) (§7.1).
struct influence_stats {
  std::size_t influencer_count = 0;      // |I_{t0}(v)| = |J_{t0}(v)|
  std::size_t internal_interactions = 0; // interactions with both nodes already in J
};

// Replays `sched` backwards to build J_{t0}(v) for node v, counting internal
// interactions (those whose endpoints are both already influencers — the
// interactions that make the multigraph of influencers non-tree-like).
influence_stats influencers_of(const recorded_schedule& sched, node_id n, node_id v);

// first_step[v] = scheduler step (1-based) of v's first interaction in
// `sched`, or 0 if v never interacted.  The Lemma 42 survivor count at time t
// is |{v : first_step[v] == 0 or first_step[v] > t}|.
std::vector<std::uint64_t> first_interaction_steps(const recorded_schedule& sched,
                                                   node_id n);

// Number of nodes that have not interacted within the first t steps.
std::size_t count_non_interacted(const std::vector<std::uint64_t>& first_step,
                                 std::uint64_t t);

// Indices (0-based, ascending) of the schedule's interactions that belong to
// the multigraph of influencers I_{t0}(v) — the interactions that can affect
// v's state by step t0 (§7.1).  Replaying exactly these interactions in
// order reproduces v's state (see `replay_influencer_state` below); this is
// the formal sense in which "given I_t(v), we can determine the state of
// node v at time t".
std::vector<std::size_t> influencer_interaction_indices(
    const recorded_schedule& sched, node_id n, node_id v);

// Replays only v's influencer interactions of `sched` under protocol P and
// returns v's resulting state.  Equal, by construction of the multigraph of
// influencers, to v's state after a full replay — differentially tested for
// every protocol in the suite.
template <typename P>
typename P::state_type replay_influencer_state(const P& proto,
                                               const recorded_schedule& sched,
                                               node_id n, node_id v) {
  std::vector<typename P::state_type> config(static_cast<std::size_t>(n));
  for (node_id u = 0; u < n; ++u) {
    config[static_cast<std::size_t>(u)] = proto.initial_state(u);
  }
  for (const std::size_t i : influencer_interaction_indices(sched, n, v)) {
    proto.interact(config[static_cast<std::size_t>(sched.initiators[i])],
                   config[static_cast<std::size_t>(sched.responders[i])]);
  }
  return config[static_cast<std::size_t>(v)];
}

// Lemma 43: greedily embeds `tree` into the subgraph of `g` induced by the
// `allowed` nodes, mapping tree nodes in BFS order from `tree_root` and
// attaching each to a fresh allowed neighbour of its parent's image — the
// exact constructive argument of the lemma.  Returns the image of each tree
// node, or an empty vector if the greedy embedding gets stuck (the lemma
// shows it cannot for trees of size n^{ε+c} when `allowed` is the
// non-interacted set of a dense graph at t <= c·n·log n).
std::vector<node_id> embed_tree_greedy(const graph& g,
                                       const std::vector<bool>& allowed,
                                       const graph& tree, node_id tree_root = 0);

}  // namespace pp
