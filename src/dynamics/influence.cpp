#include "dynamics/influence.h"

#include <algorithm>

#include "sched/scheduler.h"
#include "support/expects.h"

namespace pp {

recorded_schedule record_schedule(const graph& g, std::uint64_t steps, rng gen) {
  recorded_schedule sched;
  sched.initiators.reserve(static_cast<std::size_t>(steps));
  sched.responders.reserve(static_cast<std::size_t>(steps));
  edge_scheduler source(g, gen);
  for (std::uint64_t t = 0; t < steps; ++t) {
    const interaction it = source.next();
    sched.initiators.push_back(it.initiator);
    sched.responders.push_back(it.responder);
  }
  return sched;
}

influence_stats influencers_of(const recorded_schedule& sched, node_id n, node_id v) {
  expects(v >= 0 && v < n, "influencers_of: node out of range");
  // J_0(v) = {v}; scanning the schedule from the last interaction backwards,
  // an interaction joins J if it touches a current member.  This reverse
  // process ends with exactly I_{t0}(v) (§7.1).
  std::vector<bool> in_j(static_cast<std::size_t>(n), false);
  in_j[static_cast<std::size_t>(v)] = true;

  influence_stats stats;
  stats.influencer_count = 1;
  for (std::size_t i = sched.length(); i-- > 0;) {
    const auto a = static_cast<std::size_t>(sched.initiators[i]);
    const auto b = static_cast<std::size_t>(sched.responders[i]);
    const bool a_in = in_j[a];
    const bool b_in = in_j[b];
    if (!a_in && !b_in) continue;
    if (a_in && b_in) {
      ++stats.internal_interactions;
      continue;
    }
    if (!a_in) {
      in_j[a] = true;
      ++stats.influencer_count;
    } else {
      in_j[b] = true;
      ++stats.influencer_count;
    }
  }
  return stats;
}

std::vector<std::uint64_t> first_interaction_steps(const recorded_schedule& sched,
                                                   node_id n) {
  std::vector<std::uint64_t> first(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < sched.length(); ++i) {
    const auto a = static_cast<std::size_t>(sched.initiators[i]);
    const auto b = static_cast<std::size_t>(sched.responders[i]);
    if (first[a] == 0) first[a] = i + 1;
    if (first[b] == 0) first[b] = i + 1;
  }
  return first;
}

std::size_t count_non_interacted(const std::vector<std::uint64_t>& first_step,
                                 std::uint64_t t) {
  std::size_t count = 0;
  for (const std::uint64_t s : first_step) {
    if (s == 0 || s > t) ++count;
  }
  return count;
}

std::vector<std::size_t> influencer_interaction_indices(
    const recorded_schedule& sched, node_id n, node_id v) {
  expects(v >= 0 && v < n, "influencer_interaction_indices: node out of range");
  // Reverse scan: an interaction belongs to the multigraph iff it touches a
  // node that is (at that point of the reverse scan) already an influencer.
  std::vector<bool> in_j(static_cast<std::size_t>(n), false);
  in_j[static_cast<std::size_t>(v)] = true;
  std::vector<std::size_t> indices;
  for (std::size_t i = sched.length(); i-- > 0;) {
    const auto a = static_cast<std::size_t>(sched.initiators[i]);
    const auto b = static_cast<std::size_t>(sched.responders[i]);
    if (!in_j[a] && !in_j[b]) continue;
    in_j[a] = true;
    in_j[b] = true;
    indices.push_back(i);
  }
  std::reverse(indices.begin(), indices.end());
  return indices;
}

std::vector<node_id> embed_tree_greedy(const graph& g,
                                       const std::vector<bool>& allowed,
                                       const graph& tree, node_id tree_root) {
  expects(allowed.size() == static_cast<std::size_t>(g.num_nodes()),
          "embed_tree_greedy: allowed mask size mismatch");
  expects(tree_root >= 0 && tree_root < tree.num_nodes(),
          "embed_tree_greedy: tree root out of range");

  // BFS order of the tree with parents preceding children.
  std::vector<node_id> order;
  std::vector<node_id> parent(static_cast<std::size_t>(tree.num_nodes()), -1);
  std::vector<bool> seen(static_cast<std::size_t>(tree.num_nodes()), false);
  order.push_back(tree_root);
  seen[static_cast<std::size_t>(tree_root)] = true;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const node_id u = order[i];
    for (const node_id w : tree.neighbors(u)) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        parent[static_cast<std::size_t>(w)] = u;
        order.push_back(w);
      }
    }
  }
  expects(order.size() == static_cast<std::size_t>(tree.num_nodes()),
          "embed_tree_greedy: tree must be connected");

  std::vector<node_id> image(static_cast<std::size_t>(tree.num_nodes()), -1);
  std::vector<bool> used(static_cast<std::size_t>(g.num_nodes()), false);

  // Root: any allowed node (deterministically, the first one).
  node_id root_image = -1;
  for (node_id v = 0; v < g.num_nodes(); ++v) {
    if (allowed[static_cast<std::size_t>(v)]) {
      root_image = v;
      break;
    }
  }
  if (root_image < 0) return {};
  image[static_cast<std::size_t>(tree_root)] = root_image;
  used[static_cast<std::size_t>(root_image)] = true;

  for (std::size_t i = 1; i < order.size(); ++i) {
    const node_id u = order[i];
    const node_id p_image = image[static_cast<std::size_t>(parent[static_cast<std::size_t>(u)])];
    node_id chosen = -1;
    for (const node_id w : g.neighbors(p_image)) {
      if (allowed[static_cast<std::size_t>(w)] && !used[static_cast<std::size_t>(w)]) {
        chosen = w;
        break;
      }
    }
    if (chosen < 0) return {};
    image[static_cast<std::size_t>(u)] = chosen;
    used[static_cast<std::size_t>(chosen)] = true;
  }
  return image;
}

}  // namespace pp
