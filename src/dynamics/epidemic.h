// One-way epidemics: the information-propagation process of §3.
//
// Every node starts with a unique message; when two nodes interact they
// exchange everything they know.  Followed from a single source v this is the
// infection process whose completion time is the broadcast time T(v); its
// worst-case expectation over sources is B(G), the quantity parameterising
// the paper's upper bounds (Theorems 21 and 24).
//
// Two simulators are provided:
//  * `simulate_broadcast_naive` draws every scheduler step (reference
//    implementation, used in differential tests);
//  * `simulate_broadcast` is event-driven: the set of informed nodes only
//    changes when the scheduler hits a boundary edge, so the wait is
//    Geometric(|∂S|/m) and we skip it in O(1).  The sampled trajectory has
//    exactly the naive distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace pp {

// Outcome of one broadcast trial from a single source.
struct broadcast_result {
  // infection_step[v] = scheduler step at which v became informed (0 for the
  // source itself).
  std::vector<std::uint64_t> infection_step;
  // Step at which the last node became informed, i.e. one sample of T(source).
  std::uint64_t completion_step = 0;
};

// Event-driven broadcast from `source`.  Requires a connected graph.
broadcast_result simulate_broadcast(const graph& g, node_id source, rng gen);

// Step-by-step reference broadcast (identical distribution, much slower).
broadcast_result simulate_broadcast_naive(const graph& g, node_id source, rng gen);

// Monte-Carlo estimate of E[T(source)] from `trials` independent runs.
double estimate_broadcast_time(const graph& g, node_id source, int trials, rng gen);

// Estimate of the worst-case expected broadcast time B(G) = max_v E[T(v)].
// Evaluates E[T(v)] for up to `max_sources` sources (all of them if
// n <= max_sources, otherwise the extremal-degree nodes plus random ones —
// on every family in this repo the maximiser is extremal in degree).
struct broadcast_time_estimate {
  double value = 0.0;     // max over evaluated sources of the mean T(v)
  node_id argmax = 0;     // source attaining the max
  double min_value = 0.0; // min over evaluated sources (best-case source)
};
broadcast_time_estimate estimate_worst_case_broadcast_time(
    const graph& g, int trials_per_source, int max_sources, rng gen);

// Distance-k propagation time T_k(source) extracted from one trial: the
// earliest infection step among nodes at BFS distance exactly k, or
// UINT64_MAX if no node is at that distance (§3.2).
std::uint64_t distance_k_propagation_step(const broadcast_result& r,
                                          const std::vector<std::int32_t>& distances,
                                          std::int32_t k);

}  // namespace pp
