#include "dynamics/random_walk.h"

#include <algorithm>
#include <cmath>

#include "support/expects.h"

namespace pp {

std::vector<double> exact_classic_hitting_times(const graph& g, node_id target) {
  const node_id n = g.num_nodes();
  expects(target >= 0 && target < n, "exact_classic_hitting_times: target out of range");
  expects(n >= 2, "exact_classic_hitting_times: need n >= 2");
  expects(n <= 600, "exact_classic_hitting_times: dense solve limited to n <= 600");

  // Unknowns: h(x) for x != target, equation h(x) - (1/deg x) Σ_{y~x} h(y) = 1
  // with h(target) = 0.  Build the dense system and eliminate.
  const node_id dim = n - 1;
  auto index_of = [target](node_id v) { return v < target ? v : v - 1; };

  std::vector<double> a(static_cast<std::size_t>(dim) * dim, 0.0);
  std::vector<double> rhs(static_cast<std::size_t>(dim), 1.0);
  auto at = [&](node_id r, node_id c) -> double& {
    return a[static_cast<std::size_t>(r) * dim + c];
  };

  for (node_id v = 0; v < n; ++v) {
    if (v == target) continue;
    const node_id r = index_of(v);
    at(r, r) = 1.0;
    const double inv_deg = 1.0 / static_cast<double>(g.degree(v));
    for (const node_id w : g.neighbors(v)) {
      if (w == target) continue;
      at(r, index_of(w)) -= inv_deg;
    }
  }

  // Gaussian elimination with partial pivoting.
  for (node_id col = 0; col < dim; ++col) {
    node_id pivot = col;
    for (node_id r = col + 1; r < dim; ++r) {
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    }
    ensure(std::abs(at(pivot, col)) > 1e-12,
           "exact_classic_hitting_times: singular system (graph disconnected?)");
    if (pivot != col) {
      for (node_id c = 0; c < dim; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap(rhs[static_cast<std::size_t>(pivot)], rhs[static_cast<std::size_t>(col)]);
    }
    const double inv = 1.0 / at(col, col);
    for (node_id r = col + 1; r < dim; ++r) {
      const double factor = at(r, col) * inv;
      if (factor == 0.0) continue;
      for (node_id c = col; c < dim; ++c) at(r, c) -= factor * at(col, c);
      rhs[static_cast<std::size_t>(r)] -= factor * rhs[static_cast<std::size_t>(col)];
    }
  }
  std::vector<double> sol(static_cast<std::size_t>(dim), 0.0);
  for (node_id r = dim - 1; r >= 0; --r) {
    double acc = rhs[static_cast<std::size_t>(r)];
    for (node_id c = r + 1; c < dim; ++c) acc -= at(r, c) * sol[static_cast<std::size_t>(c)];
    sol[static_cast<std::size_t>(r)] = acc / at(r, r);
    if (r == 0) break;
  }

  std::vector<double> h(static_cast<std::size_t>(n), 0.0);
  for (node_id v = 0; v < n; ++v) {
    if (v != target) h[static_cast<std::size_t>(v)] = sol[static_cast<std::size_t>(index_of(v))];
  }
  return h;
}

double exact_worst_case_hitting_time(const graph& g) {
  double worst = 0.0;
  for (node_id target = 0; target < g.num_nodes(); ++target) {
    const auto h = exact_classic_hitting_times(g, target);
    worst = std::max(worst, *std::max_element(h.begin(), h.end()));
  }
  return worst;
}

namespace {

node_id uniform_neighbor(const graph& g, node_id v, rng& gen) {
  const auto nbrs = g.neighbors(v);
  return nbrs[static_cast<std::size_t>(gen.uniform_below(nbrs.size()))];
}

}  // namespace

std::uint64_t sample_classic_hitting_time(const graph& g, node_id start,
                                          node_id target, rng& gen) {
  expects(start >= 0 && start < g.num_nodes() && target >= 0 && target < g.num_nodes(),
          "sample_classic_hitting_time: node out of range");
  node_id pos = start;
  std::uint64_t moves = 0;
  while (pos != target) {
    pos = uniform_neighbor(g, pos, gen);
    ++moves;
  }
  return moves;
}

std::uint64_t sample_population_hitting_time(const graph& g, node_id start,
                                             node_id target, rng& gen) {
  expects(start >= 0 && start < g.num_nodes() && target >= 0 && target < g.num_nodes(),
          "sample_population_hitting_time: node out of range");
  const double m = static_cast<double>(g.num_edges());
  node_id pos = start;
  std::uint64_t steps = 0;
  while (pos != target) {
    // The walk moves exactly when one of its deg(pos) incident edges is
    // sampled; the holding time is Geometric(deg/m) and the jump is uniform.
    steps += gen.geometric(static_cast<double>(g.degree(pos)) / m);
    pos = uniform_neighbor(g, pos, gen);
  }
  return steps;
}

std::uint64_t sample_population_meeting_time(const graph& g, node_id a,
                                             node_id b, rng& gen) {
  expects(a != b, "sample_population_meeting_time: walks must start apart");
  expects(a >= 0 && a < g.num_nodes() && b >= 0 && b < g.num_nodes(),
          "sample_population_meeting_time: node out of range");

  const double m = static_cast<double>(g.num_edges());
  node_id x = a;
  node_id y = b;
  std::uint64_t steps = 0;
  for (;;) {
    // Active edges: those incident to x or y.  The only edge incident to
    // both is {x, y} itself (simple graph), counted once.
    const bool adjacent = g.has_edge(x, y);
    const std::uint64_t active = static_cast<std::uint64_t>(g.degree(x)) +
                                 static_cast<std::uint64_t>(g.degree(y)) -
                                 (adjacent ? 1 : 0);
    steps += gen.geometric(static_cast<double>(active) / m);

    const std::uint64_t pick = gen.uniform_below(active);
    if (pick < static_cast<std::uint64_t>(g.degree(x))) {
      const node_id w = g.neighbors(x)[static_cast<std::size_t>(pick)];
      if (w == y) return steps;  // sampled edge {x, y}: the walks meet
      x = w;
    } else {
      // Uniform among edges incident to y, excluding {x, y} when adjacent.
      std::uint64_t idx = pick - static_cast<std::uint64_t>(g.degree(x));
      const auto nbrs = g.neighbors(y);
      if (adjacent) {
        // Skip x's slot in y's (sorted) neighbour list.
        const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), x);
        const auto x_slot = static_cast<std::uint64_t>(it - nbrs.begin());
        if (idx >= x_slot) ++idx;
      }
      y = nbrs[static_cast<std::size_t>(idx)];
    }
    // The walks can never co-locate: any move onto the other walk's node
    // means the sampled edge was {x, y}, which is the meeting case above.
    ensure(x != y, "sample_population_meeting_time: walks co-located");
  }
}

std::uint64_t sample_classic_cover_time(const graph& g, node_id start, rng& gen) {
  expects(start >= 0 && start < g.num_nodes(),
          "sample_classic_cover_time: start out of range");
  std::vector<bool> visited(static_cast<std::size_t>(g.num_nodes()), false);
  visited[static_cast<std::size_t>(start)] = true;
  node_id remaining = g.num_nodes() - 1;
  node_id pos = start;
  std::uint64_t moves = 0;
  while (remaining > 0) {
    pos = uniform_neighbor(g, pos, gen);
    ++moves;
    if (!visited[static_cast<std::size_t>(pos)]) {
      visited[static_cast<std::size_t>(pos)] = true;
      --remaining;
    }
  }
  return moves;
}

std::uint64_t sample_population_cover_time(const graph& g, node_id start, rng& gen) {
  expects(start >= 0 && start < g.num_nodes(),
          "sample_population_cover_time: start out of range");
  const double m = static_cast<double>(g.num_edges());
  std::vector<bool> visited(static_cast<std::size_t>(g.num_nodes()), false);
  visited[static_cast<std::size_t>(start)] = true;
  node_id remaining = g.num_nodes() - 1;
  node_id pos = start;
  std::uint64_t steps = 0;
  while (remaining > 0) {
    steps += gen.geometric(static_cast<double>(g.degree(pos)) / m);
    pos = uniform_neighbor(g, pos, gen);
    if (!visited[static_cast<std::size_t>(pos)]) {
      visited[static_cast<std::size_t>(pos)] = true;
      --remaining;
    }
  }
  return steps;
}

double estimate_worst_case_population_hitting_time(const graph& g, int pairs,
                                                   int trials, rng gen) {
  expects(pairs >= 1 && trials >= 1,
          "estimate_worst_case_population_hitting_time: need positive budgets");
  const node_id n = g.num_nodes();
  double worst = 0.0;
  for (int p = 0; p < pairs; ++p) {
    const auto u = static_cast<node_id>(gen.uniform_below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<node_id>(gen.uniform_below(static_cast<std::uint64_t>(n)));
    if (v == u) v = static_cast<node_id>((v + 1) % n);
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
      total += static_cast<double>(sample_population_hitting_time(g, u, v, gen));
    }
    worst = std::max(worst, total / trials);
  }
  return worst;
}

}  // namespace pp
