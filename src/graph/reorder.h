// Vertex reorderings for cache locality.
//
// The compiled engine touches config[u] and config[v] for one random edge
// {u, v} per step.  When the labelling keeps adjacent nodes numerically close
// — small graph *bandwidth*, max |u - v| over edges — those two touches land
// on nearby cache lines, so mesh-like families (rings, grids, tori) run out
// of a much smaller effective working set.  This header provides the two
// classic bandwidth-reducing orders:
//
//   * BFS order: plain breadth-first numbering from the smallest node id
//     (components in ascending order of their smallest id);
//   * reverse Cuthill–McKee (RCM): BFS from a pseudo-peripheral start vertex,
//     children visited in ascending (degree, id) order, final order reversed
//     — the standard sparse-matrix bandwidth heuristic.
//
// Both are deterministic (ties broken by node id), so a reordered experiment
// is reproducible from the seed alone.  Relabelling changes which edge a
// scheduler draw maps to, so reordered runs trade per-seed equivalence for
// statistical agreement — the same contract as the well-mixed engine
// (src/engine/wellmixed/README.md); run_packed re-maps initial states and the
// reported leader through the permutation, so the reordered process is
// exactly the original one on an isomorphic graph.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace pp {

// Vertex-order choices for the tuned engine (engine_tuning::order).
enum class vertex_order { natural, bfs, rcm };

// Printable name ("natural" / "bfs" / "rcm").
const char* to_string(vertex_order order);

// Parses "natural" / "bfs" / "rcm"; returns false on anything else.
bool parse_vertex_order(const std::string& name, vertex_order& out);

// All permutations below map old ids to new ids: perm[old_id] = new_id.

// Breadth-first numbering from the smallest id of each component.
std::vector<node_id> bfs_permutation(const graph& g);

// Reverse Cuthill–McKee numbering (pseudo-peripheral start per component,
// neighbours by ascending (degree, id), whole order reversed).
std::vector<node_id> rcm_permutation(const graph& g);

// Permutation for `order`; the identity for vertex_order::natural.
std::vector<node_id> order_permutation(const graph& g, vertex_order order);

// Inverse permutation: inv[perm[v]] == v.  `perm` must be a bijection on
// [0, perm.size()).
std::vector<node_id> invert_permutation(const std::vector<node_id>& perm);

}  // namespace pp
