#include "graph/reorder.h"

#include <algorithm>

#include "support/expects.h"

namespace pp {
namespace {

// Appends the BFS of `start`'s component to `order` (new position -> old id),
// visiting each frontier node's unvisited neighbours in the order `rank`
// sorts them.  `rank(v)` must be a strict-weak-order key; adjacency is
// already sorted by id, so a constant key yields plain ascending-id BFS.
template <typename Rank>
void bfs_component(const graph& g, node_id start, std::vector<char>& visited,
                   std::vector<node_id>& order, const Rank& rank) {
  std::vector<node_id> frontier{start};
  visited[static_cast<std::size_t>(start)] = 1;
  std::vector<node_id> next;
  std::vector<node_id> children;
  while (!frontier.empty()) {
    next.clear();
    for (const node_id u : frontier) {
      order.push_back(u);
      children.clear();
      for (const node_id w : g.neighbors(u)) {
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          children.push_back(w);
        }
      }
      std::sort(children.begin(), children.end(),
                [&](node_id a, node_id b) {
                  return rank(a) != rank(b) ? rank(a) < rank(b) : a < b;
                });
      next.insert(next.end(), children.begin(), children.end());
    }
    frontier.swap(next);
  }
}

// Levels of a BFS restricted to `start`'s component; nodes outside it keep -1.
std::vector<std::int32_t> component_levels(const graph& g, node_id start,
                                           std::int32_t& eccentricity,
                                           std::vector<node_id>& last_level) {
  std::vector<std::int32_t> level(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<node_id> frontier{start};
  level[static_cast<std::size_t>(start)] = 0;
  eccentricity = 0;
  last_level = frontier;
  std::vector<node_id> next;
  while (!frontier.empty()) {
    next.clear();
    for (const node_id u : frontier) {
      for (const node_id w : g.neighbors(u)) {
        if (level[static_cast<std::size_t>(w)] < 0) {
          level[static_cast<std::size_t>(w)] =
              level[static_cast<std::size_t>(u)] + 1;
          next.push_back(w);
        }
      }
    }
    if (!next.empty()) {
      ++eccentricity;
      last_level = next;
    }
    frontier.swap(next);
  }
  return level;
}

// George–Liu pseudo-peripheral vertex of `start`'s component: repeatedly jump
// to a minimum-degree vertex of the farthest BFS level until the eccentricity
// stops growing.  Deterministic (ties by id), terminates because the
// eccentricity is bounded by the component size.
node_id pseudo_peripheral(const graph& g, node_id start) {
  node_id r = start;
  std::int32_t ecc = -1;
  for (;;) {
    std::int32_t r_ecc = 0;
    std::vector<node_id> last;
    component_levels(g, r, r_ecc, last);
    if (r_ecc <= ecc) return r;
    ecc = r_ecc;
    node_id best = last.front();
    for (const node_id v : last) {
      if (g.degree(v) < g.degree(best) ||
          (g.degree(v) == g.degree(best) && v < best)) {
        best = v;
      }
    }
    r = best;
  }
}

std::vector<node_id> perm_from_order(const std::vector<node_id>& order) {
  std::vector<node_id> perm(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    perm[static_cast<std::size_t>(order[i])] = static_cast<node_id>(i);
  }
  return perm;
}

}  // namespace

const char* to_string(vertex_order order) {
  switch (order) {
    case vertex_order::natural: return "natural";
    case vertex_order::bfs: return "bfs";
    case vertex_order::rcm: return "rcm";
  }
  return "unknown";
}

bool parse_vertex_order(const std::string& name, vertex_order& out) {
  if (name == "natural") out = vertex_order::natural;
  else if (name == "bfs") out = vertex_order::bfs;
  else if (name == "rcm") out = vertex_order::rcm;
  else return false;
  return true;
}

std::vector<node_id> bfs_permutation(const graph& g) {
  const node_id n = g.num_nodes();
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<node_id> order;
  order.reserve(static_cast<std::size_t>(n));
  for (node_id v = 0; v < n; ++v) {
    if (!visited[static_cast<std::size_t>(v)]) {
      bfs_component(g, v, visited, order, [](node_id) { return 0; });
    }
  }
  return perm_from_order(order);
}

std::vector<node_id> rcm_permutation(const graph& g) {
  const node_id n = g.num_nodes();
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<node_id> order;
  order.reserve(static_cast<std::size_t>(n));
  for (node_id v = 0; v < n; ++v) {
    if (!visited[static_cast<std::size_t>(v)]) {
      const node_id start = pseudo_peripheral(g, v);
      bfs_component(g, start, visited, order,
                    [&](node_id w) { return g.degree(w); });
    }
  }
  std::reverse(order.begin(), order.end());
  return perm_from_order(order);
}

std::vector<node_id> order_permutation(const graph& g, vertex_order order) {
  switch (order) {
    case vertex_order::bfs: return bfs_permutation(g);
    case vertex_order::rcm: return rcm_permutation(g);
    case vertex_order::natural: break;
  }
  std::vector<node_id> identity(static_cast<std::size_t>(g.num_nodes()));
  for (node_id v = 0; v < g.num_nodes(); ++v) identity[static_cast<std::size_t>(v)] = v;
  return identity;
}

std::vector<node_id> invert_permutation(const std::vector<node_id>& perm) {
  std::vector<node_id> inv(perm.size(), -1);
  for (std::size_t v = 0; v < perm.size(); ++v) {
    const node_id p = perm[v];
    expects(p >= 0 && static_cast<std::size_t>(p) < perm.size(),
            "invert_permutation: entry out of range");
    expects(inv[static_cast<std::size_t>(p)] < 0,
            "invert_permutation: permutation has a repeated entry");
    inv[static_cast<std::size_t>(p)] = static_cast<node_id>(v);
  }
  return inv;
}

}  // namespace pp
