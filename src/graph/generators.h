// Generators for every graph family the paper uses.
//
// Deterministic families: clique, path, cycle, star, complete bipartite,
// binary tree, 2-d grid/torus, hypercube, barbell, lollipop.
// Random families: Erdős–Rényi G(n,p) (§2.1), random regular graphs.
// Lower-bound constructions: the renitent graphs of Lemma 38 (four copies of
// a base graph joined into a ring by long paths) and the Theorem 39 family
// realising any target complexity T(n) between n·log n and n³.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/graph.h"
#include "support/rng.h"

namespace pp {

// Complete graph K_n (the classic population-protocols setting), n >= 2.
graph make_clique(node_id n);

// Path v0 - v1 - ... - v_{n-1}, n >= 2.
graph make_path(node_id n);

// Cycle on n nodes, n >= 3.  Ω(n²)-renitent (Lemma 37).
graph make_cycle(node_id n);

// Star: node 0 is the centre, nodes 1..n-1 are leaves, n >= 2.  Leader
// election is O(1) on stars (Table 1) while broadcast is Θ(n log n).
graph make_star(node_id n);

// Complete bipartite graph K_{a,b}: nodes [0,a) on one side, [a,a+b) on the
// other.
graph make_complete_bipartite(node_id a, node_id b);

// Complete binary tree on n nodes (heap numbering), n >= 2.
graph make_binary_tree(node_id n);

// rows x cols grid; `torus` wraps both dimensions (requires the wrapped
// dimension >= 3 to stay simple).  A √n x √n torus is a standard
// Θ(n^{1+1/2})-renitent 2-dimensional example.
graph make_grid_2d(node_id rows, node_id cols, bool torus);

// 3-d torus on side³ nodes (side >= 3): the k = 3 case of the paper's
// remark (§6.2) that k-dimensional toroidal grids are Ω(n^{1+1/k})-renitent.
graph make_grid_3d(node_id side);

// Hypercube on 2^dim nodes, dim >= 1.
graph make_hypercube(int dim);

// Two cliques K_k joined by a path with `bridge_len` intermediate nodes
// (bridge_len == 0 joins them by a single edge).  Low-conductance example.
graph make_barbell(node_id k, node_id bridge_len);

// Lollipop: clique K_k with a path of `tail_len` nodes attached.  Classic
// worst case for random-walk hitting times (H(G) = Θ(n³)).
graph make_lollipop(node_id k, node_id tail_len);

// Erdős–Rényi G(n,p): each of the n(n-1)/2 possible edges present
// independently with probability p.
graph make_erdos_renyi(node_id n, double p, rng& gen);

// G(n,p) conditioned on connectivity: resamples until connected (throws
// after `max_attempts` failures, so callers notice vanishing-probability
// parameter choices instead of hanging).
graph make_connected_erdos_renyi(node_id n, double p, rng& gen,
                                 int max_attempts = 1000);

// Random d-regular graph via the configuration model with rejection of
// self-loops/multi-edges (retries until simple; requires n*d even, d < n).
graph make_random_regular(node_id n, node_id d, rng& gen, int max_attempts = 2000);

// The renitent construction of Lemma 38: four disjoint copies of `base` whose
// distinguished node `anchor` is joined into a 4-ring by paths of length
// 2*ell (i.e. 2*ell - 1 fresh internal nodes per path).  The result has
// Θ(n) + 8ℓ nodes, Θ(m) + 8ℓ edges, diameter Θ(ℓ + D) and both B(G) and the
// leader-election time are Θ(ℓ·m).
graph make_renitent(const graph& base, node_id anchor, node_id ell);

// Parameters chosen by `theorem39_graph` (exposed for reporting and tests).
struct theorem39_spec {
  bool clique_base = false;  // true: clique base, false: star-plus-edges base
  node_id base_size = 0;     // N in the paper's construction
  node_id ell = 0;           // half path length parameter of Lemma 38
  std::int64_t extra_edges = 0;  // only for the star-based case
};

// The Theorem 39 family: given a target complexity function T with
// N log N <= T(N) <= N³, constructs a graph on Θ(N) nodes in which both
// broadcast time and stable leader election take Θ(T(N)) expected steps.
// For T ∈ ω(N² log N) the base is a clique with ℓ = T/N²; otherwise the base
// is a star plus Θ(T/ℓ) random extra edges with ℓ = log N + T/(N log N).
graph theorem39_graph(node_id n, const std::function<double(double)>& target,
                      rng& gen, theorem39_spec* spec_out = nullptr);

}  // namespace pp
