#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/expects.h"

namespace pp {

std::vector<std::int32_t> bfs_distances(const graph& g, node_id source) {
  expects(source >= 0 && source < g.num_nodes(), "bfs_distances: source out of range");
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()), unreachable);
  std::vector<node_id> frontier{source};
  dist[static_cast<std::size_t>(source)] = 0;
  std::int32_t level = 0;
  std::vector<node_id> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const node_id u : frontier) {
      for (const node_id v : g.neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] == unreachable) {
          dist[static_cast<std::size_t>(v)] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

bool is_connected(const graph& g) {
  if (g.num_nodes() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::int32_t d) { return d == unreachable; });
}

std::int32_t eccentricity(const graph& g, node_id v) {
  const auto dist = bfs_distances(g, v);
  std::int32_t ecc = 0;
  for (const std::int32_t d : dist) {
    expects(d != unreachable, "eccentricity: graph must be connected");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::int32_t diameter(const graph& g) {
  std::int32_t best = 0;
  for (node_id v = 0; v < g.num_nodes(); ++v) {
    best = std::max(best, eccentricity(g, v));
  }
  return best;
}

std::int32_t diameter_lower_bound(const graph& g, int samples, rng& gen) {
  expects(samples >= 1, "diameter_lower_bound: need samples >= 1");
  std::int32_t best = 0;
  for (int s = 0; s < samples; ++s) {
    const auto root = static_cast<node_id>(
        gen.uniform_below(static_cast<std::uint64_t>(g.num_nodes())));
    // Double sweep: BFS from a random root, then BFS again from the farthest
    // node found; the second eccentricity lower-bounds the diameter.
    const auto dist = bfs_distances(g, root);
    node_id far = root;
    for (node_id v = 0; v < g.num_nodes(); ++v) {
      expects(dist[static_cast<std::size_t>(v)] != unreachable,
              "diameter_lower_bound: graph must be connected");
      if (dist[static_cast<std::size_t>(v)] > dist[static_cast<std::size_t>(far)]) far = v;
    }
    best = std::max(best, eccentricity(g, far));
  }
  return best;
}

node_id bandwidth(const graph& g) {
  node_id width = 0;
  for (const edge& e : g.edges()) width = std::max(width, e.v - e.u);
  return width;
}

std::int64_t edge_boundary(const graph& g, const std::vector<bool>& in_set) {
  expects(in_set.size() == static_cast<std::size_t>(g.num_nodes()),
          "edge_boundary: set size must equal node count");
  std::int64_t boundary = 0;
  for (const edge& e : g.edges()) {
    if (in_set[static_cast<std::size_t>(e.u)] != in_set[static_cast<std::size_t>(e.v)]) {
      ++boundary;
    }
  }
  return boundary;
}

double edge_expansion_exact(const graph& g) {
  const node_id n = g.num_nodes();
  expects(n >= 2 && n <= 24, "edge_expansion_exact: requires 2 <= n <= 24");
  // Count boundary edges per subset via bitmask enumeration.
  const std::uint32_t limit = 1u << n;
  double best = static_cast<double>(g.num_edges());
  for (std::uint32_t mask = 1; mask + 1 < limit; ++mask) {
    const int size = __builtin_popcount(mask);
    if (size > n / 2) continue;
    std::int64_t boundary = 0;
    for (const edge& e : g.edges()) {
      const bool in_u = (mask >> e.u) & 1u;
      const bool in_v = (mask >> e.v) & 1u;
      if (in_u != in_v) ++boundary;
    }
    best = std::min(best, static_cast<double>(boundary) / size);
  }
  return best;
}

double edge_expansion_sweep(const graph& g, int samples, rng& gen) {
  expects(samples >= 1, "edge_expansion_sweep: need samples >= 1");
  const node_id n = g.num_nodes();
  expects(n >= 2, "edge_expansion_sweep: need n >= 2");

  double best = static_cast<double>(g.num_edges());
  std::vector<bool> in_set(static_cast<std::size_t>(n), false);
  std::vector<std::int64_t> degree_in(static_cast<std::size_t>(n), 0);

  for (int s = 0; s < samples; ++s) {
    const auto root = static_cast<node_id>(
        gen.uniform_below(static_cast<std::uint64_t>(n)));
    // Grow a BFS ball; after adding each node, the cut can be maintained
    // incrementally: adding v flips deg(v) - 2·(edges from v into the set).
    std::fill(in_set.begin(), in_set.end(), false);
    const auto dist = bfs_distances(g, root);
    std::vector<node_id> order(static_cast<std::size_t>(n));
    for (node_id v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
    std::sort(order.begin(), order.end(), [&](node_id a, node_id b) {
      return dist[static_cast<std::size_t>(a)] < dist[static_cast<std::size_t>(b)];
    });

    std::int64_t cut = 0;
    for (node_id i = 0; i < n; ++i) {
      const node_id v = order[static_cast<std::size_t>(i)];
      std::int64_t inside = 0;
      for (const node_id w : g.neighbors(v)) {
        if (in_set[static_cast<std::size_t>(w)]) ++inside;
      }
      in_set[static_cast<std::size_t>(v)] = true;
      cut += g.degree(v) - 2 * inside;
      const std::int64_t size = i + 1;
      if (size >= 1 && size <= n / 2) {
        best = std::min(best, static_cast<double>(cut) / static_cast<double>(size));
      }
    }
  }
  return best;
}

double conductance_from_expansion(const graph& g, double beta) {
  expects(g.max_degree() > 0, "conductance_from_expansion: graph has no edges");
  return beta / static_cast<double>(g.max_degree());
}

}  // namespace pp
