// Plain-text serialisation of interaction graphs.
//
// Edge-list format (round-trippable):
//   line 1:  "n m"
//   then m lines "u v" with 0 <= u < v < n.
// Comments (# ...) and blank lines are ignored on input.
//
// DOT output renders the graph for graphviz; node labels can carry the
// election outcome (leader double circle) for figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace pp {

// Writes the edge-list representation.
void write_edge_list(std::ostream& out, const graph& g);

// Parses an edge-list; throws std::invalid_argument on malformed input.
graph read_edge_list(std::istream& in);

// Round-trip through strings (convenience for tests and tools).
std::string to_edge_list_string(const graph& g);
graph from_edge_list_string(const std::string& text);

// Graphviz DOT output.  If `leaders` is non-empty it must have one flag per
// node; flagged nodes (elected leaders) are drawn as double circles.
std::string to_dot(const graph& g, const std::vector<bool>& leaders = {});

}  // namespace pp
