// Immutable simple undirected graph in compressed sparse row form.
//
// This is the interaction graph G = (V, E) of the population model (§2.1 of
// the paper): finite, simple and — for every protocol we run — connected.
// Nodes are dense integers [0, n).  The edge list is stored once (u < v) for
// the scheduler, and adjacency is stored sorted per node so membership tests
// are O(log deg).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace pp {

using node_id = std::int32_t;

// An undirected edge with endpoints normalised to u < v.
struct edge {
  node_id u = 0;
  node_id v = 0;

  friend bool operator==(const edge&, const edge&) = default;
};

class graph {
 public:
  // Builds a graph on `n` nodes from an edge list.  Self-loops are rejected;
  // duplicate edges (in either orientation) are collapsed.  Endpoints must be
  // in [0, n).
  static graph from_edges(node_id n, const std::vector<edge>& edges);

  graph() = default;

  node_id num_nodes() const { return n_; }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(edges_.size()); }

  // Neighbours of `v`, sorted ascending.
  std::span<const node_id> neighbors(node_id v) const;

  node_id degree(node_id v) const;
  node_id max_degree() const { return max_degree_; }
  node_id min_degree() const { return min_degree_; }

  // All edges, normalised u < v, sorted lexicographically.  Index into this
  // vector is the canonical edge id used by the scheduler and the dynamics.
  const std::vector<edge>& edges() const { return edges_; }

  // True iff {u, v} is an edge (u != v).  O(log deg).
  bool has_edge(node_id u, node_id v) const;

  // Index of edge {u,v} in edges(), or -1 if absent.
  std::int64_t edge_index(node_id u, node_id v) const;

  // Edge ids incident to `v`, aligned with neighbors(v).
  std::span<const std::int64_t> incident_edge_ids(node_id v) const;

  // The isomorphic graph with node `v` renamed to `perm[v]`.  `perm` must be
  // a permutation of [0, n).  Used with the bandwidth-reducing orders of
  // graph/reorder.h so the engine's two config touches per step share cache
  // lines; note that relabelling re-sorts the edge list, so the scheduler's
  // draw-to-edge mapping (and hence any seeded trajectory) changes.
  graph relabel(const std::vector<node_id>& perm) const;

 private:
  node_id n_ = 0;
  node_id max_degree_ = 0;
  node_id min_degree_ = 0;
  std::vector<edge> edges_;
  std::vector<std::int64_t> row_offsets_;   // size n+1
  std::vector<node_id> adjacency_;          // size 2m, sorted per node
  std::vector<std::int64_t> incident_ids_;  // size 2m, edge id per adjacency slot
};

}  // namespace pp
