// Structural graph metrics used by the paper's bounds (§2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace pp {

// Unreachable marker in BFS distance vectors.
inline constexpr std::int32_t unreachable = -1;

// Single-source BFS distances; `unreachable` for nodes in other components.
std::vector<std::int32_t> bfs_distances(const graph& g, node_id source);

// True iff the graph is connected (n == 1 counts as connected).
bool is_connected(const graph& g);

// Eccentricity of `v`: max distance to any node.  Requires connectivity.
std::int32_t eccentricity(const graph& g, node_id v);

// Exact diameter via all-sources BFS, O(n·m).  Requires connectivity.
std::int32_t diameter(const graph& g);

// Lower bound on the diameter from `samples` random double-sweep BFS probes;
// exact on trees and usually exact in practice.  Requires connectivity.
std::int32_t diameter_lower_bound(const graph& g, int samples, rng& gen);

// Graph bandwidth under the current labelling: max |u - v| over edges (0 for
// an edgeless graph).  The locality figure of merit for the engine's config
// array — the RCM order of graph/reorder.h exists to shrink it.
node_id bandwidth(const graph& g);

// Number of edges with exactly one endpoint in `in_set` (|∂S| in the paper).
std::int64_t edge_boundary(const graph& g, const std::vector<bool>& in_set);

// Exact edge expansion β(G) = min_{0<|S|<=n/2} |∂S|/|S| by exhaustive subset
// enumeration.  Only feasible for small graphs; requires n <= 24.
double edge_expansion_exact(const graph& g);

// Heuristic upper bound on β(G) from BFS sweep cuts (every radius-r ball from
// `samples` random roots plus balanced halves).  Always >= β(G); tight on the
// families we use it for (cycles, grids, barbells).
double edge_expansion_sweep(const graph& g, int samples, rng& gen);

// Conductance-style quantity for regular graphs: φ = β/Δ (the paper's φ).
double conductance_from_expansion(const graph& g, double beta);

}  // namespace pp
