#include "graph/graph.h"

#include <algorithm>

#include "support/expects.h"

namespace pp {

graph graph::from_edges(node_id n, const std::vector<edge>& raw) {
  expects(n >= 1, "graph: need at least one node");

  std::vector<edge> edges;
  edges.reserve(raw.size());
  for (const edge& e : raw) {
    expects(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
            "graph: edge endpoint out of range");
    expects(e.u != e.v, "graph: self-loops are not allowed");
    edges.push_back(e.u < e.v ? e : edge{e.v, e.u});
  }
  std::sort(edges.begin(), edges.end(), [](const edge& a, const edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  graph g;
  g.n_ = n;
  g.edges_ = std::move(edges);

  std::vector<node_id> degree(n, 0);
  for (const edge& e : g.edges_) {
    ++degree[e.u];
    ++degree[e.v];
  }

  g.row_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (node_id v = 0; v < n; ++v) {
    g.row_offsets_[static_cast<std::size_t>(v) + 1] =
        g.row_offsets_[v] + degree[v];
  }

  const auto two_m = static_cast<std::size_t>(2 * g.num_edges());
  g.adjacency_.resize(two_m);
  g.incident_ids_.resize(two_m);
  std::vector<std::int64_t> cursor(g.row_offsets_.begin(), g.row_offsets_.end() - 1);
  for (std::size_t id = 0; id < g.edges_.size(); ++id) {
    const edge& e = g.edges_[id];
    g.adjacency_[static_cast<std::size_t>(cursor[e.u])] = e.v;
    g.incident_ids_[static_cast<std::size_t>(cursor[e.u]++)] =
        static_cast<std::int64_t>(id);
    g.adjacency_[static_cast<std::size_t>(cursor[e.v])] = e.u;
    g.incident_ids_[static_cast<std::size_t>(cursor[e.v]++)] =
        static_cast<std::int64_t>(id);
  }

  // Adjacency built from a lexicographically sorted edge list is sorted for
  // the `u` side but interleaved for the `v` side; sort each row (with its
  // incident edge ids carried along).
  for (node_id v = 0; v < n; ++v) {
    const auto begin = static_cast<std::size_t>(g.row_offsets_[v]);
    const auto end = static_cast<std::size_t>(g.row_offsets_[v + 1]);
    std::vector<std::pair<node_id, std::int64_t>> row;
    row.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      row.emplace_back(g.adjacency_[i], g.incident_ids_[i]);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t i = begin; i < end; ++i) {
      g.adjacency_[i] = row[i - begin].first;
      g.incident_ids_[i] = row[i - begin].second;
    }
  }

  if (n > 0) {
    g.max_degree_ = *std::max_element(degree.begin(), degree.end());
    g.min_degree_ = *std::min_element(degree.begin(), degree.end());
  }
  return g;
}

std::span<const node_id> graph::neighbors(node_id v) const {
  expects(v >= 0 && v < n_, "graph::neighbors: node out of range");
  const auto begin = static_cast<std::size_t>(row_offsets_[v]);
  const auto end = static_cast<std::size_t>(row_offsets_[static_cast<std::size_t>(v) + 1]);
  return {adjacency_.data() + begin, end - begin};
}

node_id graph::degree(node_id v) const {
  expects(v >= 0 && v < n_, "graph::degree: node out of range");
  return static_cast<node_id>(row_offsets_[static_cast<std::size_t>(v) + 1] -
                              row_offsets_[v]);
}

bool graph::has_edge(node_id u, node_id v) const {
  return edge_index(u, v) >= 0;
}

std::int64_t graph::edge_index(node_id u, node_id v) const {
  expects(u >= 0 && u < n_ && v >= 0 && v < n_, "graph::edge_index: node out of range");
  if (u == v) return -1;
  const auto nb = neighbors(u);
  const auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return -1;
  const auto slot = static_cast<std::size_t>(row_offsets_[u] + (it - nb.begin()));
  return incident_ids_[slot];
}

graph graph::relabel(const std::vector<node_id>& perm) const {
  expects(perm.size() == static_cast<std::size_t>(n_),
          "graph::relabel: permutation size must equal node count");
  std::vector<char> hit(static_cast<std::size_t>(n_), 0);
  for (const node_id p : perm) {
    expects(p >= 0 && p < n_, "graph::relabel: permutation entry out of range");
    expects(!hit[static_cast<std::size_t>(p)],
            "graph::relabel: permutation has a repeated entry");
    hit[static_cast<std::size_t>(p)] = 1;
  }
  std::vector<edge> renamed;
  renamed.reserve(edges_.size());
  for (const edge& e : edges_) {
    renamed.push_back({perm[static_cast<std::size_t>(e.u)],
                       perm[static_cast<std::size_t>(e.v)]});
  }
  return from_edges(n_, renamed);
}

std::span<const std::int64_t> graph::incident_edge_ids(node_id v) const {
  expects(v >= 0 && v < n_, "graph::incident_edge_ids: node out of range");
  const auto begin = static_cast<std::size_t>(row_offsets_[v]);
  const auto end = static_cast<std::size_t>(row_offsets_[static_cast<std::size_t>(v) + 1]);
  return {incident_ids_.data() + begin, end - begin};
}

}  // namespace pp
