#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/metrics.h"
#include "support/expects.h"

namespace pp {

graph make_clique(node_id n) {
  expects(n >= 2, "make_clique: need n >= 2");
  std::vector<edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (node_id u = 0; u < n; ++u) {
    for (node_id v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return graph::from_edges(n, edges);
}

graph make_path(node_id n) {
  expects(n >= 2, "make_path: need n >= 2");
  std::vector<edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (node_id v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<node_id>(v + 1)});
  return graph::from_edges(n, edges);
}

graph make_cycle(node_id n) {
  expects(n >= 3, "make_cycle: need n >= 3");
  std::vector<edge> edges;
  edges.reserve(n);
  for (node_id v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<node_id>((v + 1) % n)});
  }
  return graph::from_edges(n, edges);
}

graph make_star(node_id n) {
  expects(n >= 2, "make_star: need n >= 2");
  std::vector<edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (node_id v = 1; v < n; ++v) edges.push_back({0, v});
  return graph::from_edges(n, edges);
}

graph make_complete_bipartite(node_id a, node_id b) {
  expects(a >= 1 && b >= 1, "make_complete_bipartite: need a, b >= 1");
  std::vector<edge> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (node_id u = 0; u < a; ++u) {
    for (node_id v = a; v < a + b; ++v) edges.push_back({u, v});
  }
  return graph::from_edges(a + b, edges);
}

graph make_binary_tree(node_id n) {
  expects(n >= 2, "make_binary_tree: need n >= 2");
  std::vector<edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (node_id v = 1; v < n; ++v) {
    edges.push_back({static_cast<node_id>((v - 1) / 2), v});
  }
  return graph::from_edges(n, edges);
}

graph make_grid_2d(node_id rows, node_id cols, bool torus) {
  expects(rows >= 1 && cols >= 1, "make_grid_2d: need rows, cols >= 1");
  expects(static_cast<std::int64_t>(rows) * cols >= 2, "make_grid_2d: need >= 2 nodes");
  if (torus) {
    expects((rows == 1 || rows >= 3) && (cols == 1 || cols >= 3),
            "make_grid_2d: torus requires wrapped dimensions >= 3");
  }
  const auto at = [cols](node_id r, node_id c) {
    return static_cast<node_id>(r * cols + c);
  };
  std::vector<edge> edges;
  for (node_id r = 0; r < rows; ++r) {
    for (node_id c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back({at(r, c), at(r, c + 1)});
      } else if (torus && cols >= 3) {
        edges.push_back({at(r, 0), at(r, c)});
      }
      if (r + 1 < rows) {
        edges.push_back({at(r, c), at(r + 1, c)});
      } else if (torus && rows >= 3) {
        edges.push_back({at(0, c), at(r, c)});
      }
    }
  }
  return graph::from_edges(rows * cols, edges);
}

graph make_grid_3d(node_id side) {
  expects(side >= 3, "make_grid_3d: need side >= 3 for a simple torus");
  const auto at = [side](node_id x, node_id y, node_id z) {
    return static_cast<node_id>((x * side + y) * side + z);
  };
  std::vector<edge> edges;
  edges.reserve(3 * static_cast<std::size_t>(side) * side * side);
  for (node_id x = 0; x < side; ++x) {
    for (node_id y = 0; y < side; ++y) {
      for (node_id z = 0; z < side; ++z) {
        edges.push_back({at(x, y, z), at(static_cast<node_id>((x + 1) % side), y, z)});
        edges.push_back({at(x, y, z), at(x, static_cast<node_id>((y + 1) % side), z)});
        edges.push_back({at(x, y, z), at(x, y, static_cast<node_id>((z + 1) % side))});
      }
    }
  }
  return graph::from_edges(static_cast<node_id>(side * side * side), edges);
}

graph make_hypercube(int dim) {
  expects(dim >= 1 && dim <= 24, "make_hypercube: dim must be in [1, 24]");
  const node_id n = static_cast<node_id>(1) << dim;
  std::vector<edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * dim / 2);
  for (node_id v = 0; v < n; ++v) {
    for (int b = 0; b < dim; ++b) {
      const node_id u = v ^ (static_cast<node_id>(1) << b);
      if (v < u) edges.push_back({v, u});
    }
  }
  return graph::from_edges(n, edges);
}

graph make_barbell(node_id k, node_id bridge_len) {
  expects(k >= 2, "make_barbell: need clique size >= 2");
  expects(bridge_len >= 0, "make_barbell: bridge length must be >= 0");
  const node_id n = static_cast<node_id>(2 * k + bridge_len);
  std::vector<edge> edges;
  for (node_id u = 0; u < k; ++u) {
    for (node_id v = u + 1; v < k; ++v) edges.push_back({u, v});
  }
  for (node_id u = k; u < 2 * k; ++u) {
    for (node_id v = static_cast<node_id>(u + 1); v < 2 * k; ++v) edges.push_back({u, v});
  }
  // Bridge from node k-1 (first clique) to node k (second clique) through
  // bridge_len fresh nodes 2k, ..., 2k+bridge_len-1.
  node_id prev = k - 1;
  for (node_id i = 0; i < bridge_len; ++i) {
    const node_id mid = static_cast<node_id>(2 * k + i);
    edges.push_back({prev, mid});
    prev = mid;
  }
  edges.push_back({prev, k});
  return graph::from_edges(n, edges);
}

graph make_lollipop(node_id k, node_id tail_len) {
  expects(k >= 2, "make_lollipop: need clique size >= 2");
  expects(tail_len >= 1, "make_lollipop: need tail length >= 1");
  const node_id n = static_cast<node_id>(k + tail_len);
  std::vector<edge> edges;
  for (node_id u = 0; u < k; ++u) {
    for (node_id v = u + 1; v < k; ++v) edges.push_back({u, v});
  }
  node_id prev = k - 1;
  for (node_id i = 0; i < tail_len; ++i) {
    const node_id next = static_cast<node_id>(k + i);
    edges.push_back({prev, next});
    prev = next;
  }
  return graph::from_edges(n, edges);
}

graph make_erdos_renyi(node_id n, double p, rng& gen) {
  expects(n >= 2, "make_erdos_renyi: need n >= 2");
  expects(p >= 0.0 && p <= 1.0, "make_erdos_renyi: p must be in [0, 1]");
  std::vector<edge> edges;
  if (p >= 1.0) return make_clique(n);
  if (p <= 0.0) return graph::from_edges(n, edges);
  // Skip-sampling over the n(n-1)/2 potential edges: the gap to the next
  // present edge is Geometric(p), so the cost is proportional to the number
  // of edges generated rather than to n².
  const std::int64_t total = static_cast<std::int64_t>(n) * (n - 1) / 2;
  std::int64_t idx = static_cast<std::int64_t>(gen.geometric(p)) - 1;
  while (idx < total) {
    // Decode linear index into (u, v), u < v, row-major over u.
    node_id u = 0;
    std::int64_t rem = idx;
    std::int64_t row = n - 1;
    while (rem >= row) {
      rem -= row;
      --row;
      ++u;
    }
    const node_id v = static_cast<node_id>(u + 1 + rem);
    edges.push_back({u, v});
    idx += static_cast<std::int64_t>(gen.geometric(p));
  }
  return graph::from_edges(n, edges);
}

graph make_connected_erdos_renyi(node_id n, double p, rng& gen, int max_attempts) {
  expects(max_attempts >= 1, "make_connected_erdos_renyi: need max_attempts >= 1");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    graph g = make_erdos_renyi(n, p, gen);
    if (is_connected(g)) return g;
  }
  throw std::runtime_error(
      "make_connected_erdos_renyi: no connected sample within attempt budget");
}

graph make_random_regular(node_id n, node_id d, rng& gen, int max_attempts) {
  expects(n >= 2 && d >= 1 && d < n, "make_random_regular: need 1 <= d < n");
  expects(static_cast<std::int64_t>(n) * d % 2 == 0,
          "make_random_regular: n*d must be even");
  expects(max_attempts >= 1, "make_random_regular: need max_attempts >= 1");

  // Configuration model with double-edge-swap repair: rejecting whole
  // pairings has success probability ~exp(-(d²-1)/4), hopeless beyond small
  // d, so instead defective pairs (self-loops / duplicate edges) are fixed by
  // swapping partners with uniformly random other pairs.  The repaired graph
  // is a standard, asymptotically uniform d-regular sample.
  const auto stubs_total = static_cast<std::size_t>(n) * static_cast<std::size_t>(d);
  const auto key_of = [n](node_id u, node_id v) {
    return static_cast<std::int64_t>(std::min(u, v)) * static_cast<std::int64_t>(n) +
           std::max(u, v);
  };

  std::vector<node_id> stubs(stubs_total);
  for (std::size_t i = 0; i < stubs_total; ++i) {
    stubs[i] = static_cast<node_id>(i / static_cast<std::size_t>(d));
  }
  for (std::size_t i = stubs_total - 1; i > 0; --i) {
    const std::size_t j = gen.uniform_below(i + 1);
    std::swap(stubs[i], stubs[j]);
  }

  const std::size_t pairs = stubs_total / 2;
  const auto pair_u = [&](std::size_t p) -> node_id& { return stubs[2 * p]; };
  const auto pair_v = [&](std::size_t p) -> node_id& { return stubs[2 * p + 1]; };

  // `seen` holds the keys of accepted (good) pairs; `good` marks them.
  std::unordered_set<std::int64_t> seen;
  seen.reserve(pairs * 2);
  std::vector<char> good(pairs, 0);
  std::vector<std::size_t> bad;
  const auto acceptable = [&](std::size_t p) {
    return pair_u(p) != pair_v(p) && !seen.contains(key_of(pair_u(p), pair_v(p)));
  };
  for (std::size_t p = 0; p < pairs; ++p) {
    if (acceptable(p)) {
      seen.insert(key_of(pair_u(p), pair_v(p)));
      good[p] = 1;
    } else {
      bad.push_back(p);
    }
  }

  const std::int64_t swap_budget =
      static_cast<std::int64_t>(max_attempts) * static_cast<std::int64_t>(pairs);
  std::int64_t swaps = 0;
  while (!bad.empty()) {
    expects(swaps++ < swap_budget,
            "make_random_regular: repair budget exhausted (graph too small?)");
    const std::size_t p = bad.back();
    if (acceptable(p)) {
      // The conflicting edge was swapped away in the meantime.
      seen.insert(key_of(pair_u(p), pair_v(p)));
      good[p] = 1;
      bad.pop_back();
      continue;
    }
    // Swap one endpoint with a uniformly random good pair; accept only if
    // both resulting pairs are simple and fresh.
    const std::size_t q = gen.uniform_below(pairs);
    if (q == p || !good[q]) continue;
    seen.erase(key_of(pair_u(q), pair_v(q)));
    std::swap(pair_v(p), pair_v(q));
    const bool ok = acceptable(p) && acceptable(q) &&
                    key_of(pair_u(p), pair_v(p)) != key_of(pair_u(q), pair_v(q));
    if (!ok) {
      std::swap(pair_v(p), pair_v(q));  // undo
      seen.insert(key_of(pair_u(q), pair_v(q)));
      continue;
    }
    seen.insert(key_of(pair_u(p), pair_v(p)));
    seen.insert(key_of(pair_u(q), pair_v(q)));
    good[p] = 1;
    bad.pop_back();
  }

  std::vector<edge> edges;
  edges.reserve(pairs);
  for (std::size_t p = 0; p < pairs; ++p) edges.push_back({pair_u(p), pair_v(p)});
  return graph::from_edges(n, edges);
}

graph make_renitent(const graph& base, node_id anchor, node_id ell) {
  expects(anchor >= 0 && anchor < base.num_nodes(),
          "make_renitent: anchor out of range");
  expects(ell >= 1, "make_renitent: need ell >= 1");

  const node_id base_n = base.num_nodes();
  const node_id path_internal = static_cast<node_id>(2 * ell - 1);
  const node_id n = static_cast<node_id>(4 * base_n + 4 * path_internal);

  std::vector<edge> edges;
  edges.reserve(4 * static_cast<std::size_t>(base.num_edges()) +
                4 * static_cast<std::size_t>(2 * ell));
  // Four disjoint copies of the base graph.
  for (int copy = 0; copy < 4; ++copy) {
    const node_id off = static_cast<node_id>(copy * base_n);
    for (const edge& e : base.edges()) {
      edges.push_back({static_cast<node_id>(e.u + off),
                       static_cast<node_id>(e.v + off)});
    }
  }
  // Path P_i of length 2*ell from anchor of copy i to anchor of copy i+1
  // (mod 4); internal path nodes live after the four copies.
  node_id next_fresh = static_cast<node_id>(4 * base_n);
  for (int copy = 0; copy < 4; ++copy) {
    const node_id from = static_cast<node_id>(copy * base_n + anchor);
    const node_id to = static_cast<node_id>(((copy + 1) % 4) * base_n + anchor);
    node_id prev = from;
    for (node_id i = 0; i < path_internal; ++i) {
      edges.push_back({prev, next_fresh});
      prev = next_fresh++;
    }
    edges.push_back({prev, to});
  }
  return graph::from_edges(n, edges);
}

graph theorem39_graph(node_id n, const std::function<double(double)>& target,
                      rng& gen, theorem39_spec* spec_out) {
  expects(n >= 8, "theorem39_graph: need n >= 8");
  const double N = static_cast<double>(n);
  const double T = target(N);
  const double log_n = std::log2(N);
  expects(T >= N * log_n * 0.5 && T <= N * N * N * 2.0,
          "theorem39_graph: target must lie between ~n log n and ~n^3");

  theorem39_spec spec;
  graph base;
  if (T > N * N * log_n) {
    // Dense end: clique base, path length scales the complexity above n² log n.
    spec.clique_base = true;
    spec.base_size = n;
    spec.ell = static_cast<node_id>(std::max(1.0, std::ceil(T / (N * N))));
    base = make_clique(n);
  } else {
    // Sparse-to-moderate end: star plus Θ(T/ell) extra random edges.
    spec.clique_base = false;
    spec.base_size = n;
    spec.ell = static_cast<node_id>(
        std::max(1.0, std::ceil(log_n + T / (N * log_n))));
    const double want = T / static_cast<double>(spec.ell);
    const auto max_extra = static_cast<std::int64_t>(N * (N - 1) / 2 - (N - 1));
    spec.extra_edges = std::min<std::int64_t>(
        max_extra, static_cast<std::int64_t>(std::ceil(want)));

    std::vector<edge> edges;
    for (node_id v = 1; v < n; ++v) edges.push_back({0, v});
    // Add distinct random non-star edges until the quota is met.
    std::unordered_set<std::int64_t> seen;
    std::int64_t added = 0;
    while (added < spec.extra_edges) {
      const auto u = static_cast<node_id>(gen.uniform_below(static_cast<std::uint64_t>(n - 1)) + 1);
      const auto v = static_cast<node_id>(gen.uniform_below(static_cast<std::uint64_t>(n - 1)) + 1);
      if (u == v) continue;
      const auto key = static_cast<std::int64_t>(std::min(u, v)) *
                           static_cast<std::int64_t>(n) + std::max(u, v);
      if (!seen.insert(key).second) continue;
      edges.push_back({u, v});
      ++added;
    }
    base = graph::from_edges(n, edges);
  }
  if (spec_out != nullptr) *spec_out = spec;
  return make_renitent(base, /*anchor=*/0, spec.ell);
}

}  // namespace pp
