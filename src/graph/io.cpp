#include "graph/io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/expects.h"

namespace pp {

void write_edge_list(std::ostream& out, const graph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const edge& e : g.edges()) out << e.u << ' ' << e.v << '\n';
}

graph read_edge_list(std::istream& in) {
  std::string line;
  auto next_content_line = [&]() -> bool {
    while (std::getline(in, line)) {
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      return true;
    }
    return false;
  };

  expects(next_content_line(), "read_edge_list: missing header line");
  std::istringstream header(line);
  std::int64_t n = 0;
  std::int64_t m = 0;
  expects(static_cast<bool>(header >> n >> m), "read_edge_list: malformed header");
  expects(n >= 1 && m >= 0, "read_edge_list: invalid node/edge counts");

  std::vector<edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    expects(next_content_line(), "read_edge_list: truncated edge list");
    std::istringstream row(line);
    std::int64_t u = 0;
    std::int64_t v = 0;
    expects(static_cast<bool>(row >> u >> v), "read_edge_list: malformed edge line");
    expects(u >= 0 && u < n && v >= 0 && v < n && u != v,
            "read_edge_list: edge endpoint out of range");
    edges.push_back({static_cast<node_id>(u), static_cast<node_id>(v)});
  }
  return graph::from_edges(static_cast<node_id>(n), edges);
}

std::string to_edge_list_string(const graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

graph from_edge_list_string(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

std::string to_dot(const graph& g, const std::vector<bool>& leaders) {
  expects(leaders.empty() ||
              leaders.size() == static_cast<std::size_t>(g.num_nodes()),
          "to_dot: leader flags must be empty or one per node");
  std::ostringstream out;
  out << "graph population {\n  node [shape=circle];\n";
  if (!leaders.empty()) {
    for (node_id v = 0; v < g.num_nodes(); ++v) {
      if (leaders[static_cast<std::size_t>(v)]) {
        out << "  " << v << " [shape=doublecircle];\n";
      }
    }
  }
  for (const edge& e : g.edges()) {
    out << "  " << e.u << " -- " << e.v << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace pp
