#include "core/streak_clock.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pp {
namespace {

TEST(StreakClock, TicksAfterHConsecutiveInitiations) {
  streak_clock clock(3);
  EXPECT_FALSE(clock.on_interaction(true));
  EXPECT_FALSE(clock.on_interaction(true));
  EXPECT_TRUE(clock.on_interaction(true));
  EXPECT_EQ(clock.streak(), 0);  // reset after the tick
}

TEST(StreakClock, ResponderResetsStreak) {
  streak_clock clock(3);
  clock.on_interaction(true);
  clock.on_interaction(true);
  EXPECT_FALSE(clock.on_interaction(false));
  EXPECT_EQ(clock.streak(), 0);
  // Needs the full streak again.
  EXPECT_FALSE(clock.on_interaction(true));
  EXPECT_FALSE(clock.on_interaction(true));
  EXPECT_TRUE(clock.on_interaction(true));
}

TEST(StreakClock, HEqualsOneTicksEveryInitiation) {
  streak_clock clock(1);
  EXPECT_TRUE(clock.on_interaction(true));
  EXPECT_FALSE(clock.on_interaction(false));
  EXPECT_TRUE(clock.on_interaction(true));
}

TEST(StreakClock, RejectsBadH) {
  EXPECT_THROW(streak_clock(0), std::invalid_argument);
  EXPECT_THROW(streak_clock(63), std::invalid_argument);
}

TEST(StreakClock, ExpectedInteractionsFormula) {
  // Lemma 27a: E[K] = 2^{h+1} - 2.
  EXPECT_DOUBLE_EQ(streak_clock::expected_interactions_per_tick(1), 2.0);
  EXPECT_DOUBLE_EQ(streak_clock::expected_interactions_per_tick(3), 14.0);
  EXPECT_DOUBLE_EQ(streak_clock::expected_interactions_per_tick(10), 2046.0);
}

TEST(StreakClock, SampledMeanMatchesLemma27a) {
  rng gen(1);
  for (const int h : {1, 2, 3, 4, 5}) {
    const int trials = 40000;
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
      total += static_cast<double>(sample_streak_interactions(h, gen));
    }
    const double expected = streak_clock::expected_interactions_per_tick(h);
    EXPECT_NEAR(total / trials, expected, 0.03 * expected) << "h=" << h;
  }
}

TEST(StreakClock, SamplerAgreesWithClockDynamics) {
  // Driving the clock with fair coin roles reproduces the K distribution.
  rng gen(2);
  const int h = 3;
  const int trials = 30000;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    streak_clock clock(h);
    std::uint64_t interactions = 0;
    for (;;) {
      ++interactions;
      if (clock.on_interaction(gen.coin())) break;
    }
    total += static_cast<double>(interactions);
  }
  const double expected = streak_clock::expected_interactions_per_tick(h);
  EXPECT_NEAR(total / trials, expected, 0.03 * expected);
}

TEST(StreakClock, Lemma26GeometricSandwich) {
  // Geom(2^-h) ⪯ K ⪯ Geom(2^-(h+1)) + h: compare empirical tail
  // probabilities at several thresholds.
  rng gen(3);
  const int h = 3;
  const int trials = 60000;
  std::vector<std::uint64_t> samples(trials);
  for (int t = 0; t < trials; ++t) samples[t] = sample_streak_interactions(h, gen);

  const double ph = std::pow(2.0, -h);
  const double ph1 = std::pow(2.0, -(h + 1));
  for (const std::uint64_t k : {8ull, 16ull, 32ull, 64ull}) {
    double tail = 0.0;
    for (const auto s : samples) {
      if (s >= k) tail += 1.0;
    }
    tail /= trials;
    const double lower = std::pow(1.0 - ph, static_cast<double>(k));        // P[Z0 >= k]
    const double upper = std::pow(1.0 - ph1, static_cast<double>(k - h));   // P[Z1+h >= k]
    EXPECT_GE(tail, lower - 0.01) << "k=" << k;
    EXPECT_LE(tail, upper + 0.01) << "k=" << k;
  }
}

TEST(StreakClock, ExpectedStepsScalesInverselyWithDegree) {
  // Lemma 27b: E[X(d)] = E[K]·m/d.
  const double m = 1000.0;
  EXPECT_DOUBLE_EQ(streak_clock::expected_steps_per_tick(3, 10.0, m), 14.0 * 100.0);
  EXPECT_GT(streak_clock::expected_steps_per_tick(3, 2.0, m),
            streak_clock::expected_steps_per_tick(3, 20.0, m));
}

TEST(StreakClock, ExpectedStepsRejectsBadArgs) {
  EXPECT_THROW(streak_clock::expected_steps_per_tick(3, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(streak_clock::expected_steps_per_tick(3, 20.0, 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pp
