#include "core/majority.h"

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "core/stable_checker.h"
#include "graph/generators.h"
#include "sched/scheduler.h"

namespace pp {
namespace {

using st = majority_protocol::state_type;

std::vector<majority_vote> votes_of(std::initializer_list<int> bits) {
  std::vector<majority_vote> v;
  for (const int b : bits) {
    v.push_back(b != 0 ? majority_vote::plus : majority_vote::minus);
  }
  return v;
}

TEST(Majority, InitialStatesAreStrong) {
  const majority_protocol proto(votes_of({1, 0}));
  EXPECT_EQ(proto.initial_state(0), st::strong_plus);
  EXPECT_EQ(proto.initial_state(1), st::strong_minus);
}

TEST(Majority, OppositeStrongsCancelToWeak) {
  const majority_protocol proto(votes_of({1, 0}));
  st a = st::strong_plus;
  st b = st::strong_minus;
  proto.interact(a, b);
  EXPECT_EQ(a, st::weak_plus);
  EXPECT_EQ(b, st::weak_minus);
}

TEST(Majority, StrongWalksOverWeakAndConvertsIt) {
  const majority_protocol proto(votes_of({1, 0}));
  st a = st::strong_plus;
  st b = st::weak_minus;
  proto.interact(a, b);
  EXPECT_EQ(a, st::weak_plus);    // vacated node keeps the leaning
  EXPECT_EQ(b, st::strong_plus);  // the token moved

  st c = st::weak_plus;
  st d = st::strong_minus;
  proto.interact(c, d);
  EXPECT_EQ(c, st::strong_minus);
  EXPECT_EQ(d, st::weak_minus);
}

TEST(Majority, StrongWalkPreservesOwnLeaningOverFriendlyWeak) {
  const majority_protocol proto(votes_of({1, 0}));
  st a = st::strong_plus;
  st b = st::weak_plus;
  proto.interact(a, b);
  EXPECT_EQ(a, st::weak_plus);
  EXPECT_EQ(b, st::strong_plus);
}

TEST(Majority, SameSignStrongsAndWeakPairsAreNoops) {
  const majority_protocol proto(votes_of({1, 0}));
  for (const auto& [x, y] : {std::pair{st::strong_plus, st::strong_plus},
                            std::pair{st::strong_minus, st::strong_minus},
                            std::pair{st::weak_plus, st::weak_minus},
                            std::pair{st::weak_minus, st::weak_minus}}) {
    st a = x;
    st b = y;
    proto.interact(a, b);
    EXPECT_EQ(a, x);
    EXPECT_EQ(b, y);
  }
}

TEST(Majority, StrongDifferenceIsInvariant) {
  const graph g = make_clique(12);
  rng gen(1);
  const auto votes = random_vote_assignment(12, 7, gen);
  const majority_protocol proto(votes);
  std::vector<st> config(12);
  for (node_id v = 0; v < 12; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);
  majority_protocol::tracker_type tracker(proto, g, config);
  const auto initial_diff = tracker.strong_difference();
  EXPECT_EQ(initial_diff, 2);  // 7 plus - 5 minus

  edge_scheduler sched(g, rng(2));
  for (int step = 0; step < 5000; ++step) {
    const interaction it = sched.next();
    auto& a = config[static_cast<std::size_t>(it.initiator)];
    auto& b = config[static_cast<std::size_t>(it.responder)];
    const auto oa = a;
    const auto ob = b;
    proto.interact(a, b);
    tracker.on_interaction(proto, it.initiator, it.responder, oa, ob, a, b);
    ASSERT_EQ(tracker.strong_difference(), initial_diff);
  }
}

class MajorityOnFamily : public ::testing::TestWithParam<int> {};

TEST_P(MajorityOnFamily, CorrectWinnerOnEveryFamily) {
  const int idx = GetParam();
  std::vector<graph> graphs;
  graphs.push_back(make_clique(15));
  graphs.push_back(make_cycle(15));
  graphs.push_back(make_star(15));
  graphs.push_back(make_path(15));
  graphs.push_back(make_binary_tree(15));
  const graph& g = graphs[static_cast<std::size_t>(idx)];

  rng seed(60 + idx);
  for (const node_id plus : {2, 7, 13}) {  // minority, near-tie, supermajority
    for (int trial = 0; trial < 3; ++trial) {
      rng gen = seed.fork(static_cast<std::uint64_t>(plus) * 100 + trial);
      const auto votes = random_vote_assignment(15, plus, gen);
      const majority_protocol proto(votes);
      const auto r = run_majority(proto, g, gen.fork(999), 200'000'000);
      ASSERT_TRUE(r.stabilized);
      const majority_vote expected =
          plus > 15 - plus ? majority_vote::plus : majority_vote::minus;
      EXPECT_EQ(r.winner, expected) << "plus=" << plus;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, MajorityOnFamily, ::testing::Range(0, 5));

TEST(Majority, UnanimousInputIsImmediatelyStable) {
  const graph g = make_cycle(8);
  const majority_protocol proto(std::vector<majority_vote>(8, majority_vote::plus));
  const auto r = run_majority(proto, g, rng(3));
  EXPECT_TRUE(r.stabilized);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_EQ(r.winner, majority_vote::plus);
}

TEST(Majority, TieNeverStabilizes) {
  const graph g = make_clique(8);
  rng gen(4);
  const auto votes = random_vote_assignment(8, 4, gen);
  const majority_protocol proto(votes);
  const auto r = run_majority(proto, g, rng(5), 200'000);
  EXPECT_FALSE(r.stabilized);
}

TEST(Majority, TrackerMatchesBruteForceOnTinyGraph) {
  const graph g = make_path(3);
  const majority_protocol proto(votes_of({1, 1, 0}));
  std::vector<st> config(3);
  for (node_id v = 0; v < 3; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);
  majority_protocol::tracker_type tracker(proto, g, config);
  edge_scheduler sched(g, rng(6));
  for (int step = 0; step < 200; ++step) {
    const auto report = brute_force_stability(proto, g, config);
    ASSERT_TRUE(report.exhausted);
    EXPECT_EQ(tracker.is_stable(), report.stable) << "step " << step;
    if (report.stable) break;
    const interaction it = sched.next();
    auto& a = config[static_cast<std::size_t>(it.initiator)];
    auto& b = config[static_cast<std::size_t>(it.responder)];
    const auto oa = a;
    const auto ob = b;
    proto.interact(a, b);
    tracker.on_interaction(proto, it.initiator, it.responder, oa, ob, a, b);
  }
}

TEST(Majority, FourStatesOnly) {
  const graph g = make_clique(10);
  rng gen(7);
  const auto votes = random_vote_assignment(10, 6, gen);
  const majority_protocol proto(votes);
  const auto r = run_until_stable(proto, g, rng(8),
                                  {.max_steps = 10'000'000, .state_census = true});
  ASSERT_TRUE(r.stabilized);
  EXPECT_LE(r.distinct_states_used, 4u);
}

TEST(Majority, MinusWinReportsNoLeaderNode) {
  const graph g = make_clique(9);
  rng gen(9);
  const auto votes = random_vote_assignment(9, 2, gen);
  const majority_protocol proto(votes);
  const auto r = run_until_stable(proto, g, rng(10), {.max_steps = 10'000'000});
  ASSERT_TRUE(r.stabilized);
  EXPECT_EQ(r.leader, -1);  // minus wins: nothing outputs the plus role
}

TEST(Majority, VoteAssignmentHelper) {
  rng gen(11);
  const auto votes = random_vote_assignment(20, 13, gen);
  int plus = 0;
  for (const auto v : votes) {
    if (v == majority_vote::plus) ++plus;
  }
  EXPECT_EQ(plus, 13);
  EXPECT_THROW(random_vote_assignment(5, 6, gen), std::invalid_argument);
}

}  // namespace
}  // namespace pp
