#include "support/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pp {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  text_table t({"name", "value"});
  t.add_row({"clique", "128"});
  t.add_row({"cycle", "9"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("clique"), std::string::npos);
  EXPECT_NE(out.find("128"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, PadsShortRows) {
  text_table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, RejectsOverlongRows) {
  text_table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(text_table({}), std::invalid_argument);
}

TEST(TextTable, ColumnsAligned) {
  text_table t({"k", "v"});
  t.add_row({"long-name", "1"});
  t.add_row({"x", "22"});
  const std::string out = t.to_string();
  // Each line has the same length (trailing alignment).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  int checked = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    if (end == std::string::npos) break;
    const auto len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

TEST(FormatNumber, Integers) {
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(1000000.0), "1000000");
}

TEST(FormatNumber, SmallDecimals) {
  EXPECT_EQ(format_number(0.5), "0.5");
  EXPECT_EQ(format_number(3.14159, 3), "3.14");
}

TEST(FormatNumber, LargeUsesScientific) {
  // Integral values print plainly up to 1e15; beyond that, and for large
  // non-integral values, scientific notation kicks in.
  EXPECT_EQ(format_number(1.23456e12).find('e'), std::string::npos);
  EXPECT_NE(format_number(1.5e20).find('e'), std::string::npos);
  EXPECT_NE(format_number(12345678.5).find('e'), std::string::npos);
}

TEST(FormatNumber, NonFinite) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
}

}  // namespace
}  // namespace pp
