#include "dynamics/influence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace pp {
namespace {

TEST(RecordSchedule, LengthAndValidity) {
  const graph g = make_cycle(6);
  const auto sched = record_schedule(g, 500, rng(1));
  ASSERT_EQ(sched.length(), 500u);
  for (std::size_t i = 0; i < sched.length(); ++i) {
    EXPECT_TRUE(g.has_edge(sched.initiators[i], sched.responders[i]));
  }
}

TEST(RecordSchedule, Deterministic) {
  const graph g = make_clique(5);
  const auto a = record_schedule(g, 100, rng(2));
  const auto b = record_schedule(g, 100, rng(2));
  EXPECT_EQ(a.initiators, b.initiators);
  EXPECT_EQ(a.responders, b.responders);
}

TEST(Influencers, EmptyScheduleIsSelf) {
  recorded_schedule sched;
  const auto stats = influencers_of(sched, 5, 3);
  EXPECT_EQ(stats.influencer_count, 1u);
  EXPECT_EQ(stats.internal_interactions, 0u);
}

TEST(Influencers, HandComputedChain) {
  // Schedule (0,1), (1,2) on a path: node 2 is influenced by everyone, node 0
  // only by itself and node 1.
  recorded_schedule sched;
  sched.initiators = {0, 1};
  sched.responders = {1, 2};
  EXPECT_EQ(influencers_of(sched, 3, 2).influencer_count, 3u);
  // The (1,2) interaction happened after (0,1), so node 2 never influences
  // node 0: replayed in reverse, (1,2) is scanned first and misses {0}.
  EXPECT_EQ(influencers_of(sched, 3, 0).influencer_count, 2u);
  // Node 1 exchanged with both neighbours, so everyone influences it.
  EXPECT_EQ(influencers_of(sched, 3, 1).influencer_count, 3u);
}

TEST(Influencers, InternalInteractionCounted) {
  recorded_schedule sched;
  sched.initiators = {0, 0};
  sched.responders = {1, 1};
  const auto stats = influencers_of(sched, 2, 1);
  EXPECT_EQ(stats.influencer_count, 2u);
  EXPECT_EQ(stats.internal_interactions, 1u);
}

TEST(Influencers, CountBoundedByInteractions) {
  const graph g = make_clique(32);
  const auto sched = record_schedule(g, 40, rng(3));
  for (node_id v = 0; v < 32; v += 7) {
    const auto stats = influencers_of(sched, 32, v);
    EXPECT_LE(stats.influencer_count, 41u);  // grows by at most 1 per step
    EXPECT_GE(stats.influencer_count, 1u);
  }
}

TEST(Influencers, Lemma41GrowthIsSlowOnDenseGraphs) {
  // At t = n/4 steps on a clique the average influence set is much smaller
  // than n (each step adds at most one member to one node's set).
  const node_id n = 256;
  const graph g = make_clique(n);
  const auto sched = record_schedule(g, static_cast<std::uint64_t>(n / 4), rng(4));
  double total = 0.0;
  for (node_id v = 0; v < n; v += 16) {
    total += static_cast<double>(influencers_of(sched, n, v).influencer_count);
  }
  EXPECT_LT(total / 16.0, n / 8.0);
}

TEST(Influencers, Lemma44FewInternalInteractions) {
  // For t = 0.2·n·log n on a dense graph, J_t(v) is almost tree-like.
  const node_id n = 128;
  const graph g = make_clique(n);
  const auto t = static_cast<std::uint64_t>(0.2 * n * std::log(n));
  const auto sched = record_schedule(g, t, rng(5));
  std::size_t worst = 0;
  for (node_id v = 0; v < n; v += 8) {
    worst = std::max(worst, influencers_of(sched, n, v).internal_interactions);
  }
  EXPECT_LE(worst, static_cast<std::size_t>(3.0 * std::log(n)));
}

TEST(FirstInteraction, HandComputed) {
  recorded_schedule sched;
  sched.initiators = {0, 1, 0};
  sched.responders = {1, 2, 3};
  const auto first = first_interaction_steps(sched, 5);
  EXPECT_EQ(first[0], 1u);
  EXPECT_EQ(first[1], 1u);
  EXPECT_EQ(first[2], 2u);
  EXPECT_EQ(first[3], 3u);
  EXPECT_EQ(first[4], 0u);  // never interacted
}

TEST(FirstInteraction, NonInteractedCounts) {
  recorded_schedule sched;
  sched.initiators = {0, 1};
  sched.responders = {1, 2};
  const auto first = first_interaction_steps(sched, 4);
  EXPECT_EQ(count_non_interacted(first, 0), 4u);
  EXPECT_EQ(count_non_interacted(first, 1), 2u);  // nodes 2 and 3
  EXPECT_EQ(count_non_interacted(first, 2), 1u);  // node 3
}

TEST(FirstInteraction, Lemma42ManySurvivorsOnDenseGraphs) {
  // After t = 0.1·n·log n steps on a clique, polynomially many nodes have
  // not interacted (each step touches two nodes).
  const node_id n = 256;
  const graph g = make_clique(n);
  const auto t = static_cast<std::uint64_t>(0.1 * n * std::log(n));
  const auto sched = record_schedule(g, t, rng(6));
  const auto first = first_interaction_steps(sched, n);
  const auto survivors = count_non_interacted(first, t);
  EXPECT_GE(survivors, static_cast<std::size_t>(std::pow(n, 0.5)));
}

}  // namespace
}  // namespace pp
