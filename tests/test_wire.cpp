// Shared checked framing (src/fleet/wire.h): every fleet byte stream — pipe
// records, .ppaj journal bodies, socket record streams and the net.h
// handshake — uses this one codec, so its properties are load-bearing for
// all of them: encode/decode round-trips, a torn tail never parses, a
// flipped bit never delivers a payload, and fixed-size streams resync past
// a corrupt frame deterministically.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fleet/wire.h"

namespace pp::fleet {
namespace {

std::vector<std::uint8_t> payload_of(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(salt + i * 37);
  }
  return p;
}

TEST(Wire, FramedSizeAddsExactlyTheOverhead) {
  EXPECT_EQ(wire::framed_size(0), 12u);
  EXPECT_EQ(wire::framed_size(29), 41u);  // the trial-record frame
  EXPECT_EQ(wire::kLengthBytes + wire::kChecksumBytes, 12u);
}

TEST(Wire, RoundTripsPayloadsOfManySizes) {
  for (const std::size_t n : {0ul, 1ul, 2ul, 29ul, 64ul, 1000ul, 65536ul}) {
    const auto payload = payload_of(n, static_cast<std::uint8_t>(n));
    const auto framed =
        wire::encode_frame(payload.data(), static_cast<std::uint32_t>(n));
    ASSERT_EQ(framed.size(), wire::framed_size(n));
    wire::frame_view view;
    const auto status = wire::decode_frame(
        framed.data(), framed.size(),
        {0, static_cast<std::uint32_t>(65536)}, view);
    ASSERT_EQ(status, wire::decode_status::ok) << n << " byte payload";
    ASSERT_EQ(view.payload_length, n);
    EXPECT_EQ(view.frame_bytes, framed.size());
    EXPECT_EQ(std::memcmp(view.payload, payload.data(), n), 0);
  }
}

TEST(Wire, EveryTornPrefixNeedsMore) {
  const auto payload = payload_of(29, 5);
  const auto framed = wire::encode_frame(payload.data(), 29);
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    wire::frame_view view;
    EXPECT_EQ(wire::decode_frame(framed.data(), cut, {29, 29}, view),
              wire::decode_status::need_more)
        << "prefix of " << cut << " bytes";
  }
}

TEST(Wire, EverySingleBitFlipIsRejected) {
  const auto payload = payload_of(29, 11);
  const auto framed = wire::encode_frame(payload.data(), 29);
  // Flipping any bit of the payload or the checksum must yield
  // bad_checksum; flipping the length prefix must yield bad_length for a
  // fixed-size stream (the length no longer matches the only legal size).
  for (std::size_t byte = 0; byte < framed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = framed;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      wire::frame_view view;
      const auto status =
          wire::decode_frame(corrupt.data(), corrupt.size(), {29, 29}, view);
      if (byte < wire::kLengthBytes) {
        EXPECT_EQ(status, wire::decode_status::bad_length)
            << "length byte " << byte << " bit " << bit;
      } else {
        EXPECT_EQ(status, wire::decode_status::bad_checksum)
            << "byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(Wire, GarbagePrefixIsRejectedNotDelivered) {
  // 64 bytes of arbitrary garbage in front of a valid frame: a bounded
  // decoder must either report an illegal length immediately or fail the
  // checksum — never hand the garbage to the caller as a payload.
  const auto payload = payload_of(29, 23);
  const auto framed = wire::encode_frame(payload.data(), 29);
  std::vector<std::uint8_t> stream = payload_of(64, 77);
  stream.insert(stream.end(), framed.begin(), framed.end());
  wire::frame_view view;
  const auto status =
      wire::decode_frame(stream.data(), stream.size(), {29, 29}, view);
  EXPECT_TRUE(status == wire::decode_status::bad_length ||
              status == wire::decode_status::bad_checksum);
  // A fixed-size stream resyncs by skipping exactly one frame width; from
  // offset 64 the real frame decodes cleanly, which is how journal replay
  // counts corrupt records without losing the rest of the file.
  const std::size_t skip = wire::framed_size(29);
  ASSERT_GE(stream.size(), 64u + skip);
  EXPECT_EQ(wire::decode_frame(stream.data() + 64, stream.size() - 64,
                               {29, 29}, view),
            wire::decode_status::ok);
}

TEST(Wire, LengthOutsideTheLimitsIsBadLength) {
  const auto payload = payload_of(16, 3);
  const auto framed = wire::encode_frame(payload.data(), 16);
  wire::frame_view view;
  EXPECT_EQ(wire::decode_frame(framed.data(), framed.size(), {17, 64}, view),
            wire::decode_status::bad_length);
  EXPECT_EQ(wire::decode_frame(framed.data(), framed.size(), {0, 15}, view),
            wire::decode_status::bad_length);
  EXPECT_EQ(wire::decode_frame(framed.data(), framed.size(), {16, 16}, view),
            wire::decode_status::ok);
}

TEST(Wire, ChecksumCoversPayloadNotFraming) {
  // Two frames with equal payloads are byte-identical regardless of what
  // surrounded them on the stream — the checksum is a pure payload digest.
  const auto a = payload_of(29, 9);
  const auto f1 = wire::encode_frame(a.data(), 29);
  const auto f2 = wire::encode_frame(a.data(), 29);
  EXPECT_EQ(f1, f2);
}

}  // namespace
}  // namespace pp::fleet
