// Fleet artifact container (src/fleet/artifact.h): byte-stable round trips,
// header/checksum rejection, and snapshot/validate over the compiled engine.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/star_protocol.h"
#include "dynamics/epidemic.h"
#include "engine/engine.h"
#include "fleet/artifact.h"
#include "graph/generators.h"

namespace pp::fleet {
namespace {

// A small tuned sweep whose reachable space closes (ring + fast protocol).
struct tuned_fixture {
  graph g = make_cycle(200);
  fast_protocol proto;
  tuned_runner<fast_protocol> runner;

  explicit tuned_fixture(engine_tuning tuning = {})
      : proto(fast_params::practical(
            g, estimate_worst_case_broadcast_time(g, 5, 3, rng(3)).value)),
        runner(proto, g, tuning) {}

  sweep_artifact artifact() const {
    return make_tuned_artifact(runner, g, "cycle", fast_desc(proto.params()));
  }
};

TEST(Artifact, TunedRoundTripIsByteStable) {
  const tuned_fixture fx;
  const sweep_artifact a = fx.artifact();
  const auto bytes = artifact_bytes(a);
  const sweep_artifact b = artifact_from_bytes(bytes);
  EXPECT_TRUE(a == b);
  // save(load(x)) must reproduce x byte for byte — the CI round-trip gate.
  EXPECT_EQ(bytes, artifact_bytes(b));
}

TEST(Artifact, FileRoundTrip) {
  const tuned_fixture fx;
  const sweep_artifact a = fx.artifact();
  const std::string path = testing::TempDir() + "/artifact_roundtrip.ppaf";
  save_artifact(a, path);
  const sweep_artifact b = load_artifact(path);
  EXPECT_TRUE(a == b);
  std::remove(path.c_str());
}

TEST(Artifact, ChecksumDetectsPayloadCorruption) {
  const tuned_fixture fx;
  auto bytes = artifact_bytes(fx.artifact());
  ASSERT_GT(bytes.size(), 64u);
  bytes[60] ^= 0x01;  // flip one payload bit past the 40-byte header
  EXPECT_THROW(artifact_from_bytes(bytes), std::invalid_argument);
}

TEST(Artifact, RejectsBadMagicVersionAndEndianness) {
  const tuned_fixture fx;
  const auto good = artifact_bytes(fx.artifact());

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(artifact_from_bytes(bad_magic), std::invalid_argument);

  auto bad_endian = good;
  // Byte-swap the endianness tag: exactly what a foreign-endian writer
  // would have produced.
  std::swap(bad_endian[4], bad_endian[7]);
  std::swap(bad_endian[5], bad_endian[6]);
  EXPECT_THROW(artifact_from_bytes(bad_endian), std::invalid_argument);

  auto bad_version = good;
  bad_version[8] = static_cast<std::uint8_t>(kArtifactVersion + 1);
  EXPECT_THROW(artifact_from_bytes(bad_version), std::invalid_argument);

  // v1 files stay loadable: v2 only added the optional EDGE section, so a
  // version-1 header over the same layout parses (the version byte is
  // outside the checksummed payload).
  auto v1 = good;
  v1[8] = 1;
  EXPECT_NO_THROW(artifact_from_bytes(v1));

  auto truncated = good;
  truncated.resize(truncated.size() - 1);
  EXPECT_THROW(artifact_from_bytes(truncated), std::invalid_argument);

  EXPECT_THROW(artifact_from_bytes({}), std::invalid_argument);
}

TEST(Artifact, TableSnapshotValidatesAndDetectsSkew) {
  const tuned_fixture fx;
  const auto& compiled = fx.runner.compiled();
  table_section t = snapshot_table(compiled);
  EXPECT_NO_THROW(validate_table(t, compiled));
  EXPECT_EQ(t.codes.size(), compiled.num_states());
  EXPECT_EQ(t.entries.size(), compiled.num_states() * compiled.num_states());

  table_section skewed = t;
  skewed.codes[0] ^= 1;  // a producer whose states encode differently
  EXPECT_THROW(validate_table(skewed, compiled), std::invalid_argument);

  table_section wrong_entry = t;
  wrong_entry.entries[1].a2 ^= 1;
  EXPECT_THROW(validate_table(wrong_entry, compiled), std::invalid_argument);
}

TEST(Artifact, PackedSnapshotMatchesResolvedWidth) {
  const tuned_fixture fx;
  const auto& compiled = fx.runner.compiled();
  const int width = fx.runner.pack_bits();
  packed_section p = snapshot_packed(compiled, width);
  EXPECT_EQ(p.width_bits, static_cast<std::uint32_t>(width));
  EXPECT_EQ(p.num_states, compiled.num_states());
  EXPECT_NO_THROW(validate_packed(p, compiled));

  packed_section corrupt = p;
  corrupt.bytes[0] ^= 1;
  EXPECT_THROW(validate_packed(corrupt, compiled), std::invalid_argument);
}

TEST(Artifact, GraphSectionRoundTripsWithPermutation) {
  // RCM order exercises the stored permutation path.
  const tuned_fixture fx({.order = vertex_order::rcm});
  const sweep_artifact a = fx.artifact();
  ASSERT_TRUE(a.graph.has_value());
  EXPECT_EQ(a.graph->old_of_new.size(),
            static_cast<std::size_t>(fx.g.num_nodes()));

  const graph rebuilt = rebuild_graph(*a.graph);
  EXPECT_EQ(rebuilt.num_nodes(), fx.g.num_nodes());
  EXPECT_EQ(rebuilt.num_edges(), fx.g.num_edges());
  EXPECT_TRUE(rebuilt.edges() == fx.g.edges());
  // Snapshot of the rebuilt graph reproduces the section exactly.
  std::vector<node_id> old_of_new(a.graph->old_of_new.begin(),
                                  a.graph->old_of_new.end());
  EXPECT_TRUE(snapshot_graph(rebuilt, vertex_order::rcm, old_of_new) == *a.graph);
}

TEST(Artifact, TunedArtifactValidatesAgainstFreshRebuild) {
  const tuned_fixture fx;
  const sweep_artifact a = fx.artifact();
  // A worker's view: rebuild everything from the artifact alone.
  const fast_protocol proto(fast_params_of(a.protocol));
  const graph g = rebuild_graph(*a.graph);
  const tuned_runner<fast_protocol> rebuilt(proto, g, tuning_of(a));
  EXPECT_NO_THROW(validate_tuned_artifact(a, rebuilt));

  sweep_artifact skewed = a;
  skewed.pack_bits = skewed.pack_bits == 32 ? 16 : 32;
  EXPECT_THROW(validate_tuned_artifact(skewed, rebuilt), std::invalid_argument);
}

// Star fixture: the edge-census protocol on a small cycle (the EDGE-section
// path of the container).
struct star_fixture {
  graph g = make_cycle(120);
  star_protocol proto;
  tuned_runner<star_protocol> runner;

  explicit star_fixture(engine_tuning tuning = {}) : runner(proto, g, tuning) {}

  sweep_artifact artifact() const {
    return make_tuned_artifact(runner, g, "cycle", star_desc());
  }
};

TEST(Artifact, StarArtifactCarriesTheEdgeSectionAndRoundTrips) {
  const star_fixture fx;
  const sweep_artifact a = fx.artifact();
  ASSERT_TRUE(a.edge.has_value());
  EXPECT_EQ(a.edge->num_classes, 2u);
  // Reachable states: undecided (class 0), leader and follower (class 1).
  ASSERT_EQ(a.edge->classes.size(), fx.runner.compiled().num_states());
  EXPECT_EQ(a.edge->classes[0], 0);
  for (std::size_t id = 1; id < a.edge->classes.size(); ++id) {
    EXPECT_EQ(a.edge->classes[id], 1) << "state id " << id;
  }

  const auto bytes = artifact_bytes(a);
  const sweep_artifact b = artifact_from_bytes(bytes);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(bytes, artifact_bytes(b));  // the CI round-trip gate, star flavour

  // Checksum rejection holds for EDGE-bearing artifacts too.
  auto corrupt = bytes;
  corrupt[corrupt.size() - 1] ^= 0x01;
  EXPECT_THROW(artifact_from_bytes(corrupt), std::invalid_argument);
}

TEST(Artifact, StarArtifactValidatesAgainstFreshRebuildAndDetectsSkew) {
  const star_fixture fx({.order = vertex_order::rcm});
  const sweep_artifact a = fx.artifact();
  const graph g = rebuild_graph(*a.graph);
  const tuned_runner<star_protocol> rebuilt(star_protocol{}, g, tuning_of(a));
  EXPECT_NO_THROW(validate_tuned_artifact(a, rebuilt));

  // A producer whose build assigns different edge classes must fail loudly.
  sweep_artifact skewed = a;
  skewed.edge->classes[0] ^= 1;
  EXPECT_THROW(validate_tuned_artifact(skewed, rebuilt), std::invalid_argument);

  // A star artifact stripped of its EDGE section is rejected outright.
  sweep_artifact stripped = a;
  stripped.edge.reset();
  EXPECT_THROW(validate_tuned_artifact(stripped, rebuilt), std::invalid_argument);
}

TEST(Artifact, EdgeSectionClassBoundsAreEnforcedOnParse) {
  const star_fixture fx;
  sweep_artifact a = fx.artifact();
  a.edge->classes[0] = 7;  // beyond num_classes = 2
  EXPECT_THROW(artifact_from_bytes(artifact_bytes(a)), std::invalid_argument);
}

TEST(Artifact, ProtocolDescriptorsRoundTrip) {
  fast_params p;
  p.h = 5;
  p.level_threshold = 11;
  p.max_level = 44;
  const fast_params q = fast_params_of(fast_desc(p));
  EXPECT_EQ(q.h, p.h);
  EXPECT_EQ(q.level_threshold, p.level_threshold);
  EXPECT_EQ(q.max_level, p.max_level);

  EXPECT_EQ(six_population_of(six_desc(1234)), 1234);
  EXPECT_THROW(fast_params_of(six_desc(9)), std::invalid_argument);
  EXPECT_THROW(six_population_of(fast_desc(p)), std::invalid_argument);

  EXPECT_TRUE(star_desc().params.empty());
  EXPECT_NO_THROW(expect_star_desc(star_desc()));
  EXPECT_THROW(expect_star_desc(six_desc(9)), std::invalid_argument);
  EXPECT_THROW(fast_params_of(star_desc()), std::invalid_argument);
}

TEST(Artifact, WellmixedArtifactRoundTripsAndValidates) {
  const beauquier_protocol proto(500);
  const std::uint64_t n = 500;
  const auto initial = initial_multiset(proto, n);
  const sweep_artifact a =
      make_wellmixed_artifact(proto, initial, n, "clique", six_desc(500));
  ASSERT_TRUE(a.wellmixed.has_value());
  EXPECT_EQ(a.wellmixed->population, n);
  // Six states, all candidates with a black token initially: one class.
  EXPECT_EQ(a.wellmixed->classes.size(), 1u);
  EXPECT_TRUE(a.table.has_value());  // |Λ| = 6 closes easily

  const auto bytes = artifact_bytes(a);
  const sweep_artifact b = artifact_from_bytes(bytes);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(bytes, artifact_bytes(b));
  EXPECT_NO_THROW(validate_wellmixed_artifact(b, proto, initial));

  // A different population diverges loudly.
  const auto other = initial_multiset(proto, n - 1);
  EXPECT_THROW(validate_wellmixed_artifact(b, proto, other), std::invalid_argument);
}

TEST(Artifact, HostileElementCountsAreRejectedBeforeAllocating) {
  // Hand-craft a checksummed file whose META section claims 2^32-1 protocol
  // parameters but carries none: the parser must reject it as truncated
  // instead of reserving gigabytes on the attacker-controlled count.
  auto put32 = [](std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto put64 = [](std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  std::vector<std::uint8_t> payload;
  put32(payload, 0x4154454D);  // 'META'
  put32(payload, 0);           // reserved
  put64(payload, 12);          // section length
  put32(payload, 0);           // empty family string
  put32(payload, 1);           // protocol kind = fast
  put32(payload, 0xFFFFFFFF);  // hostile parameter count, no bytes behind it

  std::vector<std::uint8_t> file;
  put32(file, kArtifactMagic);
  put32(file, kArtifactEndianTag);
  put32(file, kArtifactVersion);
  put32(file, 0);  // engine = tuned
  put32(file, 1);  // one section
  put32(file, 0);  // reserved
  put64(file, payload.size());
  put64(file, fnv1a64(payload.data(), payload.size()));
  file.insert(file.end(), payload.begin(), payload.end());
  EXPECT_THROW(artifact_from_bytes(file), std::invalid_argument);
}

TEST(Artifact, FnvVectors) {
  // Classic FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
  const std::uint8_t a = 'a';
  EXPECT_EQ(fnv1a64(&a, 1), 0xaf63dc4c8601ec8cull);
}

}  // namespace
}  // namespace pp::fleet
