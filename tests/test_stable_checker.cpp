#include "core/stable_checker.h"

#include <gtest/gtest.h>

#include "core/beauquier.h"
#include "core/id_election.h"
#include "graph/generators.h"

namespace pp {
namespace {

TEST(StableChecker, InitialAllCandidateConfigurationIsUnstable) {
  const graph g = make_clique(2);
  const beauquier_protocol proto(2);
  std::vector<bq_state> config{proto.initial_state(0), proto.initial_state(1)};
  const auto report = brute_force_stability(proto, g, config);
  EXPECT_TRUE(report.exhausted);
  EXPECT_FALSE(report.stable);
  EXPECT_GT(report.configs_visited, 0u);
}

TEST(StableChecker, FinalConfigurationIsStable) {
  const graph g = make_clique(2);
  const beauquier_protocol proto(2);
  const std::vector<bq_state> config{{true, bq_token::black},
                                     {false, bq_token::none}};
  const auto report = brute_force_stability(proto, g, config);
  EXPECT_TRUE(report.exhausted);
  EXPECT_TRUE(report.stable);
}

TEST(StableChecker, TokenPositionDoesNotAffectStability) {
  // The unique candidate need not hold the black token for stability.
  const graph g = make_path(3);
  const beauquier_protocol proto(3);
  const std::vector<bq_state> config{{true, bq_token::none},
                                     {false, bq_token::black},
                                     {false, bq_token::none}};
  EXPECT_TRUE(brute_force_stability(proto, g, config).stable);
}

TEST(StableChecker, WhiteTokenNearCandidateIsUnstable) {
  const graph g = make_path(3);
  const beauquier_protocol proto(3);
  const std::vector<bq_state> config{{true, bq_token::black},
                                     {false, bq_token::white},
                                     {false, bq_token::none}};
  // The white token can reach the candidate and demote it… but candidates =
  // 1 while black + white = 2: an inconsistent (unreachable) configuration;
  // the checker still answers the reachability question correctly.
  EXPECT_FALSE(brute_force_stability(proto, g, config).stable);
}

TEST(StableChecker, BudgetExhaustionIsReported) {
  // The id protocol with a large k explores a huge tree of partial ids while
  // every output stays "follower", so a small budget must trip before any
  // output change is found.
  const graph g = make_path(2);
  const id_protocol proto(20);
  std::vector<id_protocol::state_type> config{proto.initial_state(0),
                                              proto.initial_state(1)};
  const auto report = brute_force_stability(proto, g, config, /*max_configs=*/50);
  EXPECT_FALSE(report.exhausted);
  EXPECT_FALSE(report.stable);
}

TEST(StableChecker, RejectsSizeMismatch) {
  const graph g = make_clique(3);
  const beauquier_protocol proto(3);
  std::vector<bq_state> config(2);
  EXPECT_THROW(brute_force_stability(proto, g, config), std::invalid_argument);
}

}  // namespace
}  // namespace pp
