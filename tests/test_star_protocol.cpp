#include "core/star_protocol.h"

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "core/stable_checker.h"
#include "graph/generators.h"

namespace pp {
namespace {

using state = star_protocol::state_type;

TEST(StarProtocol, UndecidedPairElectsInitiator) {
  const star_protocol proto;
  state a = state::undecided;
  state b = state::undecided;
  proto.interact(a, b);
  EXPECT_EQ(a, state::leader);
  EXPECT_EQ(b, state::follower);
}

TEST(StarProtocol, UndecidedMeetingDecidedFollows) {
  const star_protocol proto;
  for (const state decided : {state::leader, state::follower}) {
    state a = state::undecided;
    state b = decided;
    proto.interact(a, b);
    EXPECT_EQ(a, state::follower);
    EXPECT_EQ(b, decided);
  }
}

TEST(StarProtocol, DecidedStatesNeverChange) {
  const star_protocol proto;
  state a = state::leader;
  state b = state::follower;
  proto.interact(a, b);
  EXPECT_EQ(a, state::leader);
  EXPECT_EQ(b, state::follower);
  proto.interact(b, a);
  EXPECT_EQ(a, state::leader);
  EXPECT_EQ(b, state::follower);
}

TEST(StarProtocol, StabilizesInOneInteractionOnStars) {
  const star_protocol proto;
  rng seed(1);
  for (const node_id n : {2, 5, 20, 100}) {
    const graph g = make_star(n);
    for (int trial = 0; trial < 10; ++trial) {
      const auto r = run_until_stable(proto, g, seed.fork(
          static_cast<std::uint64_t>(n) * 100 + trial));
      ASSERT_TRUE(r.stabilized);
      EXPECT_EQ(r.steps, 1u) << "n=" << n;
      EXPECT_GE(r.leader, 0);
    }
  }
}

TEST(StarProtocol, UsesThreeStates) {
  const star_protocol proto;
  const graph g = make_star(30);
  const auto r = run_until_stable(proto, g, rng(2), {.state_census = true});
  ASSERT_TRUE(r.stabilized);
  EXPECT_LE(r.distinct_states_used, 3u);
}

TEST(StarProtocol, FirstInteractionConfigurationIsProvablyStable) {
  const star_protocol proto;
  const graph g = make_star(4);
  // Centre decided as follower, one leaf leader, two leaves undecided: the
  // situation after a leaf-initiated first interaction.
  std::vector<state> config{state::follower, state::leader, state::undecided,
                            state::undecided};
  const auto report = brute_force_stability(proto, g, config);
  EXPECT_TRUE(report.exhausted);
  EXPECT_TRUE(report.stable);
}

TEST(StarProtocol, CanFailOnGraphsWithDisjointEdges) {
  // On P_4 the edge pairs {0,1} and {2,3} can elect two leaders; such runs
  // never satisfy the tracker.
  const star_protocol proto;
  const graph g = make_path(4);
  rng seed(3);
  int failures = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto r = run_until_stable(proto, g, seed.fork(t), {.max_steps = 10'000});
    if (!r.stabilized) ++failures;
  }
  EXPECT_GT(failures, 0);        // two-leader deadlocks happen
  EXPECT_LT(failures, trials);   // but single-leader runs happen too
}

TEST(StarProtocol, TwoLeaderConfigurationIsOutputStableButIncorrect) {
  const star_protocol proto;
  const graph g = make_path(4);
  const std::vector<state> config{state::leader, state::follower, state::follower,
                                  state::leader};
  // Output-invariant under every continuation (no undecided nodes remain)…
  const auto report = brute_force_stability(proto, g, config);
  EXPECT_TRUE(report.stable);
  // …but the tracker rightly refuses it: two leaders is not a correct
  // election outcome.
  star_protocol::tracker_type tracker(proto, g, config);
  EXPECT_FALSE(tracker.is_stable());
}

TEST(StarProtocol, TrackerCountsUndecidedEdges) {
  const star_protocol proto;
  const graph g = make_path(3);
  std::vector<state> config(3, state::undecided);
  star_protocol::tracker_type tracker(proto, g, config);
  EXPECT_FALSE(tracker.is_stable());

  // Interaction on edge {0,1}: leader + follower; edge {1,2} stops being
  // undecided-undecided, leaving zero such edges and exactly one leader.
  auto old0 = config[0];
  auto old1 = config[1];
  proto.interact(config[0], config[1]);
  tracker.on_interaction(proto, 0, 1, old0, old1, config[0], config[1]);
  EXPECT_TRUE(tracker.is_stable());
}

}  // namespace
}  // namespace pp
