// Cross-protocol property sweep: for every (protocol, family, seed)
// combination, run a full election and check the end-to-end contract —
// stabilization, a unique leader output, and protocol-specific postcondition
// invariants.  This is the broad-coverage harness complementing the deeper
// single-protocol suites; the parameter grid gives 2 protocols x 7 families
// x 3 seeds plus the two baselines below.
#include <gtest/gtest.h>

#include <tuple>

#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/id_election.h"
#include "core/simulator.h"
#include "dynamics/epidemic.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "sched/scheduler.h"

namespace pp {
namespace {

graph family_instance(int family, std::uint64_t seed) {
  rng gen(1000 + seed);
  switch (family) {
    case 0: return make_clique(14);
    case 1: return make_cycle(14);
    case 2: return make_star(14);
    case 3: return make_grid_2d(4, 4, true);
    case 4: return make_binary_tree(14);
    case 5: return make_connected_erdos_renyi(14, 0.35, gen);
    default: return make_grid_3d(3);
  }
}

template <typename P>
void expect_unique_leader(const P& proto, const graph& g, rng gen) {
  // Re-run manually so the final configuration is inspectable.
  const node_id n = g.num_nodes();
  std::vector<typename P::state_type> config(static_cast<std::size_t>(n));
  for (node_id v = 0; v < n; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);
  typename P::tracker_type tracker(proto, g, config);
  edge_scheduler sched(g, gen);
  while (!tracker.is_stable()) {
    ASSERT_LT(sched.steps(), 100'000'000u) << "did not stabilize";
    const interaction it = sched.next();
    auto& a = config[static_cast<std::size_t>(it.initiator)];
    auto& b = config[static_cast<std::size_t>(it.responder)];
    const auto oa = a;
    const auto ob = b;
    proto.interact(a, b);
    tracker.on_interaction(proto, it.initiator, it.responder, oa, ob, a, b);
  }
  int leaders = 0;
  for (const auto& s : config) {
    if (proto.output(s) == role::leader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

using sweep_param = std::tuple<int /*family*/, int /*seed*/>;

class ProtocolSweep : public ::testing::TestWithParam<sweep_param> {};

TEST_P(ProtocolSweep, FastProtocolElectsExactlyOne) {
  const auto [family, seed] = GetParam();
  const graph g = family_instance(family, static_cast<std::uint64_t>(seed));
  const double b = estimate_broadcast_time(
      g, 0, 20, rng(static_cast<std::uint64_t>(family) * 17 + seed));
  const fast_protocol proto(fast_params::practical(g, b));
  expect_unique_leader(proto, g, rng(static_cast<std::uint64_t>(family) * 31 + seed));
}

TEST_P(ProtocolSweep, IdProtocolElectsExactlyOne) {
  const auto [family, seed] = GetParam();
  const graph g = family_instance(family, static_cast<std::uint64_t>(seed));
  const id_protocol proto(id_protocol::suggested_k(g.num_nodes()));
  expect_unique_leader(proto, g, rng(static_cast<std::uint64_t>(family) * 53 + seed));
}

TEST_P(ProtocolSweep, BeauquierElectsExactlyOne) {
  const auto [family, seed] = GetParam();
  const graph g = family_instance(family, static_cast<std::uint64_t>(seed));
  const beauquier_protocol proto(g.num_nodes());
  expect_unique_leader(proto, g, rng(static_cast<std::uint64_t>(family) * 71 + seed));
}

INSTANTIATE_TEST_SUITE_P(Grid, ProtocolSweep,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(0, 3)));

// Determinism across the whole grid: identical seeds give identical runs.
class DeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismSweep, SameSeedSameElection) {
  const int family = GetParam();
  const graph g = family_instance(family, 0);
  const beauquier_protocol proto(g.num_nodes());
  const auto a = run_until_stable(proto, g, rng(static_cast<std::uint64_t>(family)));
  const auto b = run_until_stable(proto, g, rng(static_cast<std::uint64_t>(family)));
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.leader, b.leader);
}

INSTANTIATE_TEST_SUITE_P(Families, DeterminismSweep, ::testing::Range(0, 7));

// Census sanity across the sweep: every protocol stays within its declared
// state budget on every family.
class CensusSweep : public ::testing::TestWithParam<int> {};

TEST_P(CensusSweep, StateBudgetsHold) {
  const int family = GetParam();
  const graph g = family_instance(family, 1);
  {
    const beauquier_protocol proto(g.num_nodes());
    const auto r = run_until_stable(proto, g, rng(2), {.state_census = true});
    ASSERT_TRUE(r.stabilized);
    EXPECT_LE(r.distinct_states_used, 6u);
  }
  {
    const double b = estimate_broadcast_time(g, 0, 20, rng(3));
    const fast_params params = fast_params::practical(g, b);
    const fast_protocol proto(params);
    const auto r = run_until_stable(proto, g, rng(4),
                                    {.max_steps = 100'000'000, .state_census = true});
    ASSERT_TRUE(r.stabilized);
    EXPECT_LE(r.distinct_states_used, params.state_space_size());
  }
}

INSTANTIATE_TEST_SUITE_P(Families, CensusSweep, ::testing::Range(0, 7));

}  // namespace
}  // namespace pp
