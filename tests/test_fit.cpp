#include "support/fit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/rng.h"

namespace pp {
namespace {

TEST(FitLinear, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (const double xi : x) y.push_back(2.5 * xi - 1.0);
  const auto f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.5, 1e-12);
  EXPECT_NEAR(f.intercept, -1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLineHighR2) {
  rng gen(1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 10.0 + (gen.uniform01() - 0.5));
  }
  const auto f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 3.0, 0.01);
  EXPECT_GT(f.r_squared, 0.999);
}

TEST(FitLinear, ConstantYPerfectFit) {
  const auto f = fit_linear({1, 2, 3}, {4, 4, 4});
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, RejectsDegenerateInputs) {
  EXPECT_THROW(fit_linear({1}, {2}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_linear({2, 2}, {1, 3}), std::invalid_argument);
}

TEST(FitLogLog, RecoversPowerLawExponent) {
  std::vector<double> x;
  std::vector<double> y;
  for (const double n : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    x.push_back(n);
    y.push_back(7.0 * std::pow(n, 1.5));
  }
  const auto f = fit_loglog(x, y);
  EXPECT_NEAR(f.slope, 1.5, 1e-10);
  EXPECT_NEAR(std::exp(f.intercept), 7.0, 1e-8);
}

TEST(FitLogLog, QuadraticVsLinearDistinguishable) {
  std::vector<double> x;
  std::vector<double> quad;
  std::vector<double> lin;
  for (const double n : {32.0, 64.0, 128.0, 256.0}) {
    x.push_back(n);
    quad.push_back(n * n);
    lin.push_back(n * std::log2(n));
  }
  EXPECT_NEAR(fit_loglog(x, quad).slope, 2.0, 1e-10);
  // n log n fits a power law with exponent slightly above 1.
  const double slope = fit_loglog(x, lin).slope;
  EXPECT_GT(slope, 1.0);
  EXPECT_LT(slope, 1.5);
}

TEST(FitLogLog, RejectsNonPositive) {
  EXPECT_THROW(fit_loglog({1, 2}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(fit_loglog({-1, 2}, {1, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace pp
