#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace pp {
namespace {

graph triangle() { return graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(Graph, BasicCounts) {
  const graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_EQ(g.min_degree(), 2);
}

TEST(Graph, NormalisesEdgeOrientation) {
  const graph g = graph::from_edges(3, {{2, 0}, {1, 0}});
  for (const edge& e : g.edges()) EXPECT_LT(e.u, e.v);
}

TEST(Graph, DeduplicatesEdges) {
  const graph g = graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, RejectsSelfLoops) {
  EXPECT_THROW(graph::from_edges(2, {{0, 0}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(graph::from_edges(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(graph::from_edges(2, {{-1, 0}}), std::invalid_argument);
}

TEST(Graph, RejectsEmptyNodeSet) {
  EXPECT_THROW(graph::from_edges(0, {}), std::invalid_argument);
}

TEST(Graph, NeighborsSortedAscending) {
  const graph g = graph::from_edges(5, {{4, 2}, {2, 0}, {2, 3}, {2, 1}});
  const auto nb = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, HasEdgeBothDirections) {
  const graph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, EdgeIndexRoundTrip) {
  const graph g = triangle();
  for (std::size_t id = 0; id < g.edges().size(); ++id) {
    const edge& e = g.edges()[id];
    EXPECT_EQ(g.edge_index(e.u, e.v), static_cast<std::int64_t>(id));
    EXPECT_EQ(g.edge_index(e.v, e.u), static_cast<std::int64_t>(id));
  }
  EXPECT_EQ(graph::from_edges(3, {{0, 1}}).edge_index(1, 2), -1);
}

TEST(Graph, IncidentEdgeIdsMatchNeighbors) {
  const graph g = graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  const auto nb = g.neighbors(0);
  const auto ids = g.incident_edge_ids(0);
  ASSERT_EQ(nb.size(), ids.size());
  for (std::size_t i = 0; i < nb.size(); ++i) {
    const edge& e = g.edges()[static_cast<std::size_t>(ids[i])];
    EXPECT_TRUE((e.u == 0 && e.v == nb[i]) || (e.v == 0 && e.u == nb[i]));
  }
}

TEST(Graph, DegreeSumIsTwiceEdges) {
  const graph g = graph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {1, 4}});
  std::int64_t total = 0;
  for (node_id v = 0; v < g.num_nodes(); ++v) total += g.degree(v);
  EXPECT_EQ(total, 2 * g.num_edges());
}

TEST(Graph, IsolatedNodeAllowed) {
  const graph g = graph::from_edges(3, {{0, 1}});
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_TRUE(g.neighbors(2).empty());
  EXPECT_EQ(g.min_degree(), 0);
}

TEST(Graph, OutOfRangeQueriesThrow) {
  const graph g = triangle();
  EXPECT_THROW(g.neighbors(3), std::invalid_argument);
  EXPECT_THROW(g.degree(-1), std::invalid_argument);
  EXPECT_THROW(g.edge_index(0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace pp
