#include "core/beauquier.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/simulator.h"
#include "core/stable_checker.h"
#include "graph/generators.h"
#include "sched/scheduler.h"
#include "support/stats.h"

namespace pp {
namespace {

std::vector<bq_state> valid_states() {
  // candidate+white resolves instantly and is never produced; the reachable
  // state space has these five states.
  return {
      {false, bq_token::none}, {false, bq_token::black}, {false, bq_token::white},
      {true, bq_token::none},  {true, bq_token::black},
  };
}

TEST(BqInteract, PreservesCandidateTokenInvariant) {
  // For every pair of reachable states, Δcandidates == Δblack + Δwhite.
  for (const bq_state& sa : valid_states()) {
    for (const bq_state& sb : valid_states()) {
      bq_state a = sa;
      bq_state b = sb;
      bq_counts before;
      before.add(a, +1);
      before.add(b, +1);
      bq_interact(a, b);
      bq_counts after;
      after.add(a, +1);
      after.add(b, +1);
      EXPECT_EQ(before.candidates - before.black - before.white,
                after.candidates - after.black - after.white);
    }
  }
}

TEST(BqInteract, NeverProducesCandidateWithWhite) {
  for (const bq_state& sa : valid_states()) {
    for (const bq_state& sb : valid_states()) {
      bq_state a = sa;
      bq_state b = sb;
      bq_interact(a, b);
      EXPECT_FALSE(a.candidate && a.token == bq_token::white);
      EXPECT_FALSE(b.candidate && b.token == bq_token::white);
    }
  }
}

TEST(BqInteract, SwapsTokens) {
  bq_state a{false, bq_token::black};
  bq_state b{false, bq_token::none};
  bq_interact(a, b);
  EXPECT_EQ(a.token, bq_token::none);
  EXPECT_EQ(b.token, bq_token::black);
}

TEST(BqInteract, BlackMeetingBlackWhitensOne) {
  bq_state a{false, bq_token::black};
  bq_state b{false, bq_token::black};
  bq_interact(a, b);
  EXPECT_EQ(a.token, bq_token::black);
  EXPECT_EQ(b.token, bq_token::white);
}

TEST(BqInteract, WhiteKillsCandidate) {
  bq_state a{false, bq_token::white};
  bq_state b{true, bq_token::none};
  bq_interact(a, b);  // white moves to b, which is a candidate
  EXPECT_FALSE(b.candidate);
  EXPECT_EQ(b.token, bq_token::none);  // token destroyed
  EXPECT_EQ(a.token, bq_token::none);
}

TEST(BqInteract, CandidatePairResolvesToOneCandidate) {
  bq_state a{true, bq_token::black};
  bq_state b{true, bq_token::black};
  bq_interact(a, b);
  // Responder's token whitens and immediately kills it.
  EXPECT_TRUE(a.candidate);
  EXPECT_EQ(a.token, bq_token::black);
  EXPECT_FALSE(b.candidate);
  EXPECT_EQ(b.token, bq_token::none);
}

TEST(BqInteract, TokensNeverCreated) {
  for (const bq_state& sa : valid_states()) {
    for (const bq_state& sb : valid_states()) {
      bq_state a = sa;
      bq_state b = sb;
      const int tokens_before = (sa.token != bq_token::none) + (sb.token != bq_token::none);
      bq_interact(a, b);
      const int tokens_after = (a.token != bq_token::none) + (b.token != bq_token::none);
      EXPECT_LE(tokens_after, tokens_before);
    }
  }
}

TEST(BeauquierProtocol, InitialStates) {
  const beauquier_protocol proto(4, {true, false, true, false});
  EXPECT_EQ(proto.initial_state(0), (bq_state{true, bq_token::black}));
  EXPECT_EQ(proto.initial_state(1), (bq_state{false, bq_token::none}));
  EXPECT_EQ(proto.output(proto.initial_state(0)), role::leader);
  EXPECT_EQ(proto.output(proto.initial_state(1)), role::follower);
}

TEST(BeauquierProtocol, RejectsEmptyCandidateSet) {
  EXPECT_THROW(beauquier_protocol(3, {false, false, false}), std::invalid_argument);
  EXPECT_THROW(beauquier_protocol(3, {true, true}), std::invalid_argument);
}

TEST(BeauquierProtocol, EncodingIsInjectiveOnReachableStates) {
  const beauquier_protocol proto(2);
  std::vector<std::uint64_t> codes;
  for (const bq_state& s : valid_states()) codes.push_back(proto.encode(s));
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(std::unique(codes.begin(), codes.end()), codes.end());
}

TEST(BeauquierProtocol, SingleCandidateIsImmediatelyStable) {
  const graph g = make_cycle(8);
  std::vector<bool> cands(8, false);
  cands[3] = true;
  const beauquier_protocol proto(8, cands);
  const auto r = run_until_stable(proto, g, rng(1));
  EXPECT_TRUE(r.stabilized);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_EQ(r.leader, 3);
}

TEST(BeauquierProtocol, BlackTokenCountNeverBelowOne) {
  const graph g = make_clique(10);
  const beauquier_protocol proto(10);
  std::vector<bq_state> config(10);
  for (node_id v = 0; v < 10; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);
  edge_scheduler sched(g, rng(2));
  bq_counts counts;
  for (const auto& s : config) counts.add(s, +1);
  for (int step = 0; step < 3000; ++step) {
    const interaction it = sched.next();
    auto& a = config[static_cast<std::size_t>(it.initiator)];
    auto& b = config[static_cast<std::size_t>(it.responder)];
    counts.add(a, -1);
    counts.add(b, -1);
    bq_interact(a, b);
    counts.add(a, +1);
    counts.add(b, +1);
    EXPECT_GE(counts.black, 1);
    EXPECT_EQ(counts.candidates, counts.black + counts.white);
    EXPECT_GE(counts.candidates, 1);
  }
}

struct family_case {
  std::string name;
  graph g;
};

class BeauquierStabilizes : public ::testing::TestWithParam<int> {};

TEST_P(BeauquierStabilizes, UniqueLeaderOnEveryFamily) {
  const int idx = GetParam();
  rng seed(100 + idx);
  std::vector<family_case> cases;
  cases.push_back({"clique", make_clique(12)});
  cases.push_back({"cycle", make_cycle(12)});
  cases.push_back({"star", make_star(12)});
  cases.push_back({"path", make_path(12)});
  cases.push_back({"torus", make_grid_2d(4, 4, true)});
  cases.push_back({"tree", make_binary_tree(12)});
  const auto& fc = cases[static_cast<std::size_t>(idx)];

  const beauquier_protocol proto(fc.g.num_nodes());
  for (int trial = 0; trial < 5; ++trial) {
    const auto r = run_until_stable(proto, fc.g, seed.fork(trial),
                                    {.max_steps = 30'000'000});
    EXPECT_TRUE(r.stabilized) << fc.name;
    EXPECT_GE(r.leader, 0) << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, BeauquierStabilizes, ::testing::Range(0, 6));

TEST(BeauquierProtocol, OnlyCandidatesCanWin) {
  const graph g = make_clique(9);
  std::vector<bool> cands(9, false);
  cands[2] = cands[5] = cands[7] = true;
  const beauquier_protocol proto(9, cands);
  rng seed(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto r = run_until_stable(proto, g, seed.fork(trial));
    ASSERT_TRUE(r.stabilized);
    EXPECT_TRUE(r.leader == 2 || r.leader == 5 || r.leader == 7);
  }
}

TEST(BeauquierProtocol, UsesAtMostSixStates) {
  const graph g = make_clique(10);
  const beauquier_protocol proto(10);
  const auto r = run_until_stable(proto, g, rng(8), {.state_census = true});
  EXPECT_TRUE(r.stabilized);
  EXPECT_LE(r.distinct_states_used, 6u);
  EXPECT_GE(r.distinct_states_used, 3u);
}

TEST(BeauquierProtocol, TrackerMatchesBruteForceOnTinyGraphs) {
  const graph g = make_path(3);
  const beauquier_protocol proto(3);
  std::vector<bq_state> config(3);
  for (node_id v = 0; v < 3; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);

  beauquier_protocol::tracker_type tracker(proto, g, config);
  edge_scheduler sched(g, rng(9));
  for (int step = 0; step < 200; ++step) {
    const auto report = brute_force_stability(proto, g, config);
    ASSERT_TRUE(report.exhausted);
    EXPECT_EQ(tracker.is_stable(), report.stable) << "step " << step;
    if (report.stable) break;
    const interaction it = sched.next();
    auto& a = config[static_cast<std::size_t>(it.initiator)];
    auto& b = config[static_cast<std::size_t>(it.responder)];
    const auto oa = a;
    const auto ob = b;
    proto.interact(a, b);
    tracker.on_interaction(proto, it.initiator, it.responder, oa, ob, a, b);
  }
}

TEST(BeauquierEventDriven, AgreesWithNaiveInDistribution) {
  const graph g = make_cycle(16);
  const beauquier_protocol proto(16);
  std::vector<double> naive;
  std::vector<double> event;
  rng seed(10);
  for (int t = 0; t < 150; ++t) {
    const auto rn = run_until_stable(proto, g, seed.fork(2 * t));
    const auto re = run_beauquier_event_driven(proto, g, seed.fork(2 * t + 1),
                                               UINT64_MAX);
    ASSERT_TRUE(rn.stabilized);
    ASSERT_TRUE(re.stabilized);
    naive.push_back(static_cast<double>(rn.steps));
    event.push_back(static_cast<double>(re.steps));
  }
  const auto a = summarize(naive);
  const auto b = summarize(event);
  EXPECT_NEAR(a.mean, b.mean, 3 * (a.ci95_halfwidth + b.ci95_halfwidth));
}

TEST(BeauquierEventDriven, RespectsMaxSteps) {
  const graph g = make_cycle(32);
  const beauquier_protocol proto(32);
  const auto r = run_beauquier_event_driven(proto, g, rng(11), 10);
  EXPECT_FALSE(r.stabilized);
  EXPECT_EQ(r.steps, 10u);
}

TEST(BeauquierEventDriven, DeterministicGivenSeed) {
  const graph g = make_star(20);
  const beauquier_protocol proto(20);
  const auto a = run_beauquier_event_driven(proto, g, rng(12), UINT64_MAX);
  const auto b = run_beauquier_event_driven(proto, g, rng(12), UINT64_MAX);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.leader, b.leader);
}

TEST(BeauquierEventDriven, StableConfigurationVerifiedByBruteForce) {
  const graph g = make_path(3);
  const beauquier_protocol proto(3);
  const auto r = run_beauquier_event_driven(proto, g, rng(13), UINT64_MAX);
  ASSERT_TRUE(r.stabilized);
  // Rebuild the stable configuration shape: unique candidate with black token.
  std::vector<bq_state> config(3, bq_state{false, bq_token::none});
  config[static_cast<std::size_t>(r.leader)] = {true, bq_token::black};
  const auto report = brute_force_stability(proto, g, config);
  EXPECT_TRUE(report.exhausted);
  EXPECT_TRUE(report.stable);
}

}  // namespace
}  // namespace pp
