#include "analysis/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/families.h"
#include "graph/generators.h"
#include "graph/metrics.h"

namespace pp {
namespace {

TEST(Families, RegistryContainsTableOneFamilies) {
  const auto& families = standard_families();
  EXPECT_GE(families.size(), 6u);
  EXPECT_NO_THROW(family_by_name("clique"));
  EXPECT_NO_THROW(family_by_name("cycle"));
  EXPECT_NO_THROW(family_by_name("star"));
  EXPECT_NO_THROW(family_by_name("er_dense"));
  EXPECT_THROW(family_by_name("mystery"), std::invalid_argument);
}

TEST(Families, InstancesAreConnectedAndSized) {
  rng gen(1);
  for (const auto& family : standard_families()) {
    rng local = gen.fork(static_cast<std::uint64_t>(family.name.size()));
    const graph g = family.make(36, local);
    EXPECT_TRUE(is_connected(g)) << family.name;
    EXPECT_GE(g.num_nodes(), 25) << family.name;
    EXPECT_LE(g.num_nodes(), 49) << family.name;
  }
}

TEST(Families, ShapesArePositiveAndGrow) {
  rng gen(2);
  for (const auto& family : standard_families()) {
    rng l1 = gen.fork(1);
    rng l2 = gen.fork(2);
    const graph small = family.make(16, l1);
    const graph large = family.make(64, l2);
    EXPECT_GT(family.broadcast_shape(small), 0.0) << family.name;
    EXPECT_GT(family.broadcast_shape(large), family.broadcast_shape(small))
        << family.name;
    EXPECT_GT(family.hitting_shape(large), family.hitting_shape(small))
        << family.name;
  }
}

TEST(MeasureElection, AllTrialsStabilizeAndAreCounted) {
  const graph g = make_clique(10);
  const beauquier_protocol proto(10);
  const auto summary = measure_election(proto, g, 16, rng(3));
  EXPECT_DOUBLE_EQ(summary.stabilized_fraction, 1.0);
  EXPECT_EQ(summary.steps.count, 16u);
  EXPECT_GT(summary.steps.mean, 0.0);
}

TEST(MeasureElection, ReproducibleAcrossThreadCounts) {
  const graph g = make_clique(10);
  const beauquier_protocol proto(10);
  const auto a = measure_election(proto, g, 8, rng(4), {}, 1);
  const auto b = measure_election(proto, g, 8, rng(4), {}, 4);
  EXPECT_DOUBLE_EQ(a.steps.mean, b.steps.mean);
}

TEST(MeasureElection, CapsReportPartialStabilization) {
  const graph g = make_cycle(48);
  const beauquier_protocol proto(48);
  const auto summary = measure_election(proto, g, 8, rng(5), {.max_steps = 10});
  EXPECT_LT(summary.stabilized_fraction, 1.0);
}

TEST(MeasureBeauquierEventDriven, AgreesWithGenericRunner) {
  const graph g = make_cycle(16);
  const beauquier_protocol proto(16);
  const auto generic = measure_election(proto, g, 64, rng(6));
  const auto event = measure_beauquier_event_driven(proto, g, 64, rng(7), UINT64_MAX);
  EXPECT_DOUBLE_EQ(event.stabilized_fraction, 1.0);
  EXPECT_NEAR(event.steps.mean, generic.steps.mean,
              4 * (generic.steps.ci95_halfwidth + event.steps.ci95_halfwidth));
}

TEST(MeasureBroadcast, RatioIsOrderOne) {
  rng gen(8);
  const auto& family = family_by_name("clique");
  rng local = gen.fork(0);
  const graph g = family.make(48, local);
  const auto s = measure_broadcast(g, family, 50, 8, gen.fork(1));
  EXPECT_GT(s.measured, 0.0);
  EXPECT_GT(s.ratio(), 0.2);
  EXPECT_LT(s.ratio(), 5.0);
}

TEST(BenchScale, DefaultsToOne) {
  unsetenv("PP_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  setenv("PP_BENCH_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 2.5);
  setenv("PP_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  unsetenv("PP_BENCH_SCALE");
}

}  // namespace
}  // namespace pp
