// Regression tests for popsim_cli's exit-code contract: every invalid
// invocation must exit nonzero (CI's fleet-determinism and artifact gates
// pipe the binary and rely on failures being loud), and valid fleet
// invocations must reproduce the serial stdout byte for byte.
//
// These tests exec the real binary (path injected by CMake as
// PP_POPSIM_CLI); they are skipped when the examples are not built.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifdef PP_POPSIM_CLI

// Runs `popsim <args>`, returning {exit code, stdout}.  stderr is routed to
// /dev/null: these tests assert *codes*, the messages are for humans.
struct cli_result {
  int code = -1;
  std::string out;
};

cli_result run_cli(const std::string& args) {
  const std::string command =
      std::string(PP_POPSIM_CLI) + " " + args + " 2>/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  cli_result r;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.out.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  r.code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

// As run_cli, but captures *stderr* (stdout goes to /dev/null): for asserting
// on the supervisor's logger output, e.g. the journal replay summary.
cli_result run_cli_stderr(const std::string& args) {
  const std::string command =
      std::string(PP_POPSIM_CLI) + " " + args + " 2>&1 >/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  cli_result r;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.out.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  r.code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

TEST(CliExitCodes, InvalidInvocationsExitNonzero) {
  // Every row is an invalid invocation; a zero exit on any of them would
  // break the CI steps that chain the binary with `&&` and `diff`.
  const char* invalid[] = {
      "",                                        // no arguments
      "clique",                                  // missing n and protocol
      "badfamily 100 fast",                      // unknown family
      "clique 100 badproto",                     // unknown protocol
      "clique 1 fast",                           // n below 2
      "clique 10x fast",                         // trailing garbage in n
      "clique 100 fast --bogus",                 // unknown flag
      "clique 100 fast --trials",                // flag missing its value
      "clique 100 fast --trials 0",              // out-of-range trials
      "clique 100 fast --trials 1e3",            // non-integer trials
      "clique 100 fast --seed -1",               // negative seed
      "clique 100 fast --engine warp",           // unknown engine
      "clique 100 fast --order sideways",        // unknown order
      "clique 100 fast --pack 12",               // unsupported width
      "clique 100 fast --jobs 0",                // out-of-range jobs
      "clique 100 fast --jobs 257",              // out-of-range jobs
      "clique 100 id --jobs 2",                  // fleet needs the engine
      "clique 100 id --save-artifact /tmp/x",    // artifacts need the engine
      "clique 100 id --order bfs",               // tuning needs the engine
      "cycle 100 six --pack 8",                  // tuning needs the engine
      "cycle 100 fast --engine wellmixed",       // wellmixed needs clique
      "clique 100 star --engine wellmixed",      // no multiset star engine
      "clique 100 star --pack 64",               // unsupported width
      "clique 100 six --engine wellmixed --order rcm",  // tuning vs multiset
      "clique 100 fast --load-artifact /nonexistent",   // load + positionals
      "--load-artifact /nonexistent/artifact.ppaf",     // unreadable artifact
      "--trials 5",                              // flag mode without artifact
      "--load-artifact /dev/null",               // not a PPAF file
      "--worker",                                // missing manifest + index
      "--worker /nonexistent/manifest 0",        // unreadable manifest
      "--worker /dev/null 0",                    // not a manifest
      "--worker /dev/null 0 1",                  // base without count
      "clique 100 fast --journal",               // flag missing its value
      "clique 100 fast --resume",                // --resume without --journal
      "clique 100 id --journal /tmp/x.ppaj",     // journal needs the engine
      "clique 100 fast --retries -1",            // negative retry budget
      "clique 100 fast --retries 1001",          // out-of-range retry budget
      "clique 100 fast --worker-timeout-ms 0",   // zero timeout (use no flag)
      "clique 100 fast --worker-timeout-ms 1e3", // non-integer timeout
      "clique 100 fast --inject-fault",          // flag missing its value
      "clique 100 fast --inject-fault vanish:w0",       // unknown fault kind
      "clique 100 fast --inject-fault exit:0",          // slot without w prefix
      "clique 100 fast --inject-fault exit:w0:after",   // after without value
      "clique 100 fast --inject-fault exit:w0,",        // trailing comma
      "clique 100 fast --jobs 2 --inject-fault exit:w5",  // slot beyond fleet
      "clique 100 fast --metrics",               // flag missing its value
      "clique 100 fast --trace",                 // flag missing its value
      "clique 100 id --metrics /tmp/m.json",     // metrics need the engine
      "clique 100 id --trace /tmp/t.json",       // trace needs the engine
      "clique 100 fast --probe-stride 64",       // stride without a recorder
      "clique 100 fast --probe-stride 0 --metrics /tmp/m.json",  // zero stride
      "clique 100 fast --probe-stride 1e3 --metrics /tmp/m.json",  // non-integer
      "clique 100 fast --log-level",             // flag missing its value
      "clique 100 fast --log-level chatty",      // unknown level
      "clique 100 fast --log-level INFO",        // case-sensitive parse
      "clique 100 fast --hosts",                 // flag missing its value
      "clique 100 fast --hosts localhost",       // host without a port
      "clique 100 fast --hosts localhost:0",     // port 0 is reserved
      "clique 100 fast --hosts localhost:65536", // port beyond 16 bits
      "clique 100 fast --hosts a:1,,b:2",        // empty list element
      "clique 100 fast --hosts a:1, ",           // trailing comma
      "clique 100 fast --hosts a:1 --inject-fault exit:w3",  // slot beyond hosts
      "--serve",                                 // flag missing its value
      "--serve 65536",                           // port beyond 16 bits
      "--serve 1e4",                             // non-integer port
      "--serve 0 --hosts a:1",                   // daemon vs client roles
      "--serve 0 --jobs 2",                      // daemon takes no sweep flags
      "--serve 0 --load-artifact /tmp/x.ppaf",   // sweeps arrive by socket
      "clique 100 fast --serve 0",               // daemon takes no positionals
      "--serve 0 --cache-mb 0",                  // below the 1 MB floor
      "--serve 0 --cache-mb 1048577",            // beyond the 1 TB ceiling
      "--serve 0 --cache-mb 1e2",                // non-integer budget
      "--load-artifact /dev/null --cache-mb 64", // --cache-mb needs --serve
      "clique 100 id --progress",                // progress needs the engine
      "--serve 0 --progress",                    // daemon takes no sweep flags
  };
  for (const char* args : invalid) {
    const cli_result r = run_cli(args);
    EXPECT_GT(r.code, 0) << "popsim " << args
                         << " should exit nonzero but exited " << r.code;
  }
}

TEST(CliExitCodes, ValidRunExitsZero) {
  const cli_result r = run_cli("cycle 64 six --trials 2 --seed 3");
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("stabilized"), std::string::npos);
}

TEST(CliExitCodes, StarRunsOnTheTunedEngineWithTuningFlags) {
  // PR 5: protocol star goes through the compiled edge-census engine, so the
  // formerly fast-only tuning flags are now valid star invocations.
  const cli_result plain = run_cli("star 200 star --trials 3 --seed 2");
  EXPECT_EQ(plain.code, 0);
  EXPECT_NE(plain.out.find("engine: order=natural"), std::string::npos);
  EXPECT_NE(plain.out.find("stabilized: 100%"), std::string::npos);

  const cli_result tuned =
      run_cli("star 200 star --trials 3 --seed 2 --order rcm --pack 8");
  EXPECT_EQ(tuned.code, 0);
  EXPECT_NE(tuned.out.find("engine: order=rcm pack=u8"), std::string::npos);
  EXPECT_NE(tuned.out.find("stabilized: 100%"), std::string::npos);
}

// The CLI half of the fleet-determinism gate: a --jobs sweep over a saved
// artifact prints exactly the serial stdout (worker chatter goes to stderr).
TEST(CliFleet, ArtifactSweepStdoutIsIdenticalSerialVsJobs) {
  const std::string dir = testing::TempDir();
  const std::string artifact = dir + "/cli_fleet.ppaf";
  const std::string resaved = dir + "/cli_fleet_resaved.ppaf";

  const cli_result saved =
      run_cli("cycle 400 fast --trials 8 --seed 5 --save-artifact " + artifact);
  ASSERT_EQ(saved.code, 0);

  const std::string sweep_args = "--load-artifact " + artifact + " --trials 8 --seed 5";
  const cli_result serial = run_cli(sweep_args);
  const cli_result fleet = run_cli(sweep_args + " --jobs 3");
  ASSERT_EQ(serial.code, 0);
  ASSERT_EQ(fleet.code, 0);
  EXPECT_EQ(serial.out, fleet.out);
  // The artifact-driven serial sweep also reproduces the classic run.
  EXPECT_EQ(saved.out, serial.out);

  // Round trip: load → re-save must be byte-identical (cmp in CI).
  const cli_result resave = run_cli("--load-artifact " + artifact +
                                    " --trials 1 --save-artifact " + resaved);
  ASSERT_EQ(resave.code, 0);
  std::FILE* a = std::fopen(artifact.c_str(), "rb");
  std::FILE* b = std::fopen(resaved.c_str(), "rb");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  std::string bytes_a, bytes_b;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), a)) > 0) bytes_a.append(buf.data(), got);
  while ((got = fread(buf.data(), 1, buf.size(), b)) > 0) bytes_b.append(buf.data(), got);
  std::fclose(a);
  std::fclose(b);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(artifact.c_str());
  std::remove(resaved.c_str());
}

// Star sweeps shard like fast ones: the artifact carries the EDGE section
// and the fleet stdout is byte-identical to serial.
TEST(CliFleet, StarArtifactSweepStdoutIsIdenticalSerialVsJobs) {
  const std::string dir = testing::TempDir();
  const std::string artifact = dir + "/cli_star.ppaf";
  const std::string resaved = dir + "/cli_star_resaved.ppaf";

  const cli_result saved =
      run_cli("cycle 300 star --trials 9 --seed 6 --save-artifact " + artifact);
  ASSERT_EQ(saved.code, 0);

  const std::string sweep_args = "--load-artifact " + artifact + " --trials 9 --seed 6";
  const cli_result serial = run_cli(sweep_args);
  const cli_result fleet = run_cli(sweep_args + " --jobs 3");
  ASSERT_EQ(serial.code, 0);
  ASSERT_EQ(fleet.code, 0);
  EXPECT_EQ(serial.out, fleet.out);
  EXPECT_EQ(saved.out, serial.out);

  const cli_result resave = run_cli("--load-artifact " + artifact +
                                    " --trials 1 --save-artifact " + resaved);
  ASSERT_EQ(resave.code, 0);
  std::FILE* a = std::fopen(artifact.c_str(), "rb");
  std::FILE* b = std::fopen(resaved.c_str(), "rb");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  std::string bytes_a, bytes_b;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), a)) > 0) bytes_a.append(buf.data(), got);
  while ((got = fread(buf.data(), 1, buf.size(), b)) > 0) bytes_b.append(buf.data(), got);
  std::fclose(a);
  std::fclose(b);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(artifact.c_str());
  std::remove(resaved.c_str());
}

// The CLI half of the crash-recovery gate: a sweep with an injected worker
// crash, and a journaled sweep resumed to completion, both print exactly the
// serial stdout (supervisor chatter goes to stderr).
TEST(CliFleet, FaultInjectedAndResumedSweepsMatchSerialStdout) {
  const std::string journal = testing::TempDir() + "/cli_recovery.ppaj";
  std::remove(journal.c_str());
  const std::string base = "cycle 200 fast --trials 8 --seed 5";

  const cli_result serial = run_cli(base);
  ASSERT_EQ(serial.code, 0);

  // A worker SIGKILLed mid-chunk is respawned; stdout is unchanged.
  const cli_result crashed =
      run_cli(base + " --jobs 3 --inject-fault sigkill:w1:after=1");
  ASSERT_EQ(crashed.code, 0);
  EXPECT_EQ(serial.out, crashed.out);

  // A journaled sweep spools every trial; resuming the complete journal
  // re-runs nothing and prints the same summary.
  const cli_result journaled =
      run_cli(base + " --jobs 2 --journal " + journal);
  ASSERT_EQ(journaled.code, 0);
  EXPECT_EQ(serial.out, journaled.out);
  const cli_result resumed =
      run_cli(base + " --jobs 2 --journal " + journal + " --resume");
  ASSERT_EQ(resumed.code, 0);
  EXPECT_EQ(serial.out, resumed.out);

  // The resume logs a one-line replay summary (records replayed / corrupt
  // skipped / torn tail) through the obs::log helper.
  const cli_result resumed_err =
      run_cli_stderr(base + " --jobs 2 --journal " + journal + " --resume");
  ASSERT_EQ(resumed_err.code, 0);
  EXPECT_NE(resumed_err.out.find(
                "journal replay: 8 record(s) replayed (8/8 trial(s)), "
                "0 corrupt record(s) skipped, torn tail none"),
            std::string::npos)
      << "stderr was: " << resumed_err.out;
  // --log-level error silences the info-level summary.
  const cli_result quiet = run_cli_stderr(base + " --jobs 2 --journal " +
                                          journal + " --resume --log-level error");
  ASSERT_EQ(quiet.code, 0);
  EXPECT_EQ(quiet.out.find("journal replay:"), std::string::npos);

  // Resuming the journal under a different seed is a loud error, not a
  // silently merged pair of unrelated sweeps.
  const cli_result mismatched = run_cli(
      "cycle 200 fast --trials 8 --seed 6 --jobs 2 --journal " + journal +
      " --resume");
  EXPECT_GT(mismatched.code, 0);
  std::remove(journal.c_str());
}

// The flight recorder rides any sweep without changing its stdout, and the
// snapshot files land where the flags point.
TEST(CliFleet, MetricsAndTraceLeaveStdoutUntouched) {
  const std::string dir = testing::TempDir();
  const std::string metrics = dir + "/cli_obs_metrics.json";
  const std::string trace = dir + "/cli_obs_trace.json";
  std::remove(metrics.c_str());
  std::remove(trace.c_str());
  const std::string base = "cycle 200 fast --trials 4 --seed 7";

  const cli_result serial = run_cli(base);
  ASSERT_EQ(serial.code, 0);
  const cli_result recorded = run_cli(base + " --jobs 2 --probe-stride 4096" +
                                      " --metrics " + metrics + " --trace " +
                                      trace);
  ASSERT_EQ(recorded.code, 0);
  EXPECT_EQ(serial.out, recorded.out);

  // Spot-check the snapshots: sorted-JSON metrics with both the fleet.*
  // supervisor counters and the workers' engine.* rollup; a trace document
  // with the supervisor span and merged per-trial worker spans.
  std::ifstream min(metrics);
  ASSERT_TRUE(min.good());
  std::string mjson((std::istreambuf_iterator<char>(min)),
                    std::istreambuf_iterator<char>());
  EXPECT_NE(mjson.find("\"popsim_metrics\": 1"), std::string::npos);
  EXPECT_NE(mjson.find("\"fleet.records_received\": 4"), std::string::npos);
  EXPECT_NE(mjson.find("\"engine.trials\": 4"), std::string::npos);
  EXPECT_NE(mjson.find("engine.steps_per_trial"), std::string::npos);

  std::ifstream tin(trace);
  ASSERT_TRUE(tin.good());
  std::string tjson((std::istreambuf_iterator<char>(tin)),
                    std::istreambuf_iterator<char>());
  EXPECT_NE(tjson.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(tjson.find("\"name\": \"supervise\""), std::string::npos);
  EXPECT_NE(tjson.find("\"name\": \"worker_spawn\""), std::string::npos);
  EXPECT_NE(tjson.find("\"name\": \"trial\""), std::string::npos);
  std::remove(metrics.c_str());
  std::remove(trace.c_str());
}

// --progress is stderr-only: the status line rides any sweep (it routes even
// a --jobs 1 run through the supervisor) without perturbing stdout.
TEST(CliFleet, ProgressLeavesStdoutUntouched) {
  const std::string base = "cycle 200 fast --trials 6 --seed 8";

  const cli_result serial = run_cli(base);
  ASSERT_EQ(serial.code, 0);
  const cli_result progressed = run_cli(base + " --jobs 2 --progress");
  ASSERT_EQ(progressed.code, 0);
  EXPECT_EQ(serial.out, progressed.out);
  const cli_result supervised_serial = run_cli(base + " --progress");
  ASSERT_EQ(supervised_serial.code, 0);
  EXPECT_EQ(serial.out, supervised_serial.out);

  // The final status line lands on stderr: all trials done, no ETA left.
  const cli_result err = run_cli_stderr(base + " --jobs 2 --progress");
  ASSERT_EQ(err.code, 0);
  EXPECT_NE(err.out.find("6/6 trials"), std::string::npos)
      << "stderr was: " << err.out;
  EXPECT_NE(err.out.find("done"), std::string::npos);
}

TEST(CliFleet, WellmixedArtifactSweepIsDeterministic) {
  const std::string artifact = testing::TempDir() + "/cli_wm.ppaf";
  const cli_result saved = run_cli(
      "clique 3000 fast --engine wellmixed --trials 6 --seed 9 --save-artifact " +
      artifact);
  ASSERT_EQ(saved.code, 0);
  const std::string sweep_args = "--load-artifact " + artifact + " --trials 6 --seed 9";
  const cli_result serial = run_cli(sweep_args);
  const cli_result fleet = run_cli(sweep_args + " --jobs 4");
  ASSERT_EQ(serial.code, 0);
  ASSERT_EQ(fleet.code, 0);
  EXPECT_EQ(serial.out, fleet.out);
  EXPECT_EQ(saved.out, serial.out);
  std::remove(artifact.c_str());
}

#else

TEST(CliExitCodes, SkippedWithoutExamples) {
  GTEST_SKIP() << "example_popsim_cli not built (PP_BUILD_EXAMPLES=OFF)";
}

#endif  // PP_POPSIM_CLI

}  // namespace
