#include "core/id_election.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/simulator.h"
#include "core/stable_checker.h"
#include "graph/generators.h"
#include "sched/scheduler.h"

namespace pp {
namespace {

using state = id_protocol::state_type;

TEST(IdProtocol, InitialStateIsUnfinishedFollower) {
  const id_protocol proto(4);
  const state s = proto.initial_state(0);
  EXPECT_EQ(s.id, 1u);
  EXPECT_FALSE(s.backup.candidate);
  EXPECT_EQ(s.backup.token, bq_token::none);
  EXPECT_EQ(proto.output(s), role::follower);
}

TEST(IdProtocol, SuggestedKMatchesTheorem21) {
  EXPECT_EQ(id_protocol::suggested_k(16), 16);   // 4·log2(16)
  EXPECT_EQ(id_protocol::suggested_k(256), 32);  // 4·log2(256)
  EXPECT_EQ(id_protocol::suggested_k(1 << 20), 62);  // capped
}

TEST(IdProtocol, RejectsBadK) {
  EXPECT_THROW(id_protocol(0), std::invalid_argument);
  EXPECT_THROW(id_protocol(63), std::invalid_argument);
}

TEST(IdProtocol, BitAppendingFollowsRoles) {
  const id_protocol proto(3);  // threshold 8
  state a = proto.initial_state(0);
  state b = proto.initial_state(1);
  proto.interact(a, b);  // initiator appends 0, responder appends 1
  EXPECT_EQ(a.id, 2u);
  EXPECT_EQ(b.id, 3u);
  proto.interact(a, b);
  EXPECT_EQ(a.id, 4u);
  EXPECT_EQ(b.id, 7u);
  EXPECT_FALSE(a.backup.candidate);  // still below threshold
  proto.interact(a, b);
  EXPECT_EQ(a.id, 8u);
  EXPECT_EQ(b.id, 15u);
  // Both finished this step and created their own instances.
  EXPECT_TRUE(a.backup.candidate);
  EXPECT_EQ(a.backup.token, bq_token::black);
  EXPECT_TRUE(b.backup.candidate);
}

TEST(IdProtocol, GeneratedIdsLieInRange) {
  const int k = 5;
  const id_protocol proto(k);
  state a = proto.initial_state(0);
  state b = proto.initial_state(1);
  for (int i = 0; i < k; ++i) proto.interact(a, b);
  EXPECT_GE(a.id, proto.id_threshold());
  EXPECT_LT(a.id, 2 * proto.id_threshold());
  EXPECT_GE(b.id, proto.id_threshold());
  EXPECT_LT(b.id, 2 * proto.id_threshold());
}

TEST(IdProtocol, LowerInstanceJoinsHigherAsFollower) {
  const id_protocol proto(3);
  state low{9, bq_init(true)};    // candidate of instance 9 with black token
  state high{12, bq_init(true)};  // candidate of instance 12
  proto.interact(low, high);
  EXPECT_EQ(low.id, 12u);
  // The joining node resets: its token belonged to the dead instance 9.
  // Afterwards the same-id Beauquier step runs: the fresh follower swaps its
  // empty slot with the instance-12 candidate's black token.
  EXPECT_FALSE(low.backup.candidate);
  EXPECT_TRUE(high.backup.candidate);
  const int blacks = (low.backup.token == bq_token::black) +
                     (high.backup.token == bq_token::black);
  EXPECT_EQ(blacks, 1);
}

TEST(IdProtocol, EqualInstancesRunBeauquier) {
  const id_protocol proto(3);
  state a{12, bq_init(true)};
  state b{12, bq_init(true)};
  proto.interact(a, b);
  // Black-black meeting: responder whitens and self-kills.
  EXPECT_TRUE(a.backup.candidate);
  EXPECT_FALSE(b.backup.candidate);
}

TEST(IdProtocol, CrossInstanceTokensDoNotMix) {
  const id_protocol proto(3);
  state a{9, {false, bq_token::black}};   // stray instance-9 token
  state b{12, {true, bq_token::black}};   // instance-12 candidate
  proto.interact(a, b);
  // a joins instance 12 as a follower; its stray token is destroyed before
  // the in-instance step, so instance 12 still has exactly one black token.
  EXPECT_EQ(a.id, 12u);
  const int blacks = (a.backup.token == bq_token::black) +
                     (b.backup.token == bq_token::black);
  EXPECT_EQ(blacks, 1);
  EXPECT_TRUE(a.backup.candidate || b.backup.candidate);
}

TEST(IdProtocol, UnfinishedNodeAdoptsFinishedInstance) {
  // Rule 2 applies to generating nodes as well (Lemma 23: a node either
  // executes Rule 1 k times or satisfies the Rule 2 condition).
  const id_protocol proto(3);
  state a{12, bq_init(true)};
  state b = proto.initial_state(1);  // id 1, unfinished
  proto.interact(a, b);
  EXPECT_EQ(a.id, 12u);
  EXPECT_EQ(b.id, 12u);  // appended a bit, then abandoned generation
  EXPECT_FALSE(b.backup.candidate);
  // Same instance afterwards, so the Beauquier swap ran: a's black token
  // moved to the fresh follower.
  EXPECT_TRUE(a.backup.candidate);
  EXPECT_EQ(a.backup.token, bq_token::none);
  EXPECT_EQ(b.backup.token, bq_token::black);
}

TEST(IdProtocol, FinishedNodeIgnoresLowerUnfinishedPartner) {
  const id_protocol proto(3);
  state a{12, bq_init(true)};
  state b{3, bq_init(false)};  // unfinished, pre-id 3
  proto.interact(b, a);        // b initiates
  // b: appends 0 -> 6, still < 8, then adopts 12.
  EXPECT_EQ(b.id, 12u);
  EXPECT_FALSE(b.backup.candidate);
  // a keeps its instance: partner's pre-interaction id was below threshold.
  EXPECT_EQ(a.id, 12u);
  EXPECT_TRUE(a.backup.candidate);
}

class IdElectsOnFamily : public ::testing::TestWithParam<int> {};

TEST_P(IdElectsOnFamily, UniqueLeaderAndMaxIdWins) {
  const int idx = GetParam();
  std::vector<graph> graphs;
  graphs.push_back(make_clique(12));
  graphs.push_back(make_cycle(12));
  graphs.push_back(make_star(12));
  graphs.push_back(make_grid_2d(4, 4, true));
  graphs.push_back(make_binary_tree(12));
  const graph& g = graphs[static_cast<std::size_t>(idx)];
  const id_protocol proto(id_protocol::suggested_k(g.num_nodes()));

  rng seed(50 + idx);
  for (int trial = 0; trial < 5; ++trial) {
    const auto r = run_until_stable(proto, g, seed.fork(trial),
                                    {.max_steps = 50'000'000});
    EXPECT_TRUE(r.stabilized);
    EXPECT_GE(r.leader, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, IdElectsOnFamily, ::testing::Range(0, 5));

TEST(IdProtocol, ForcedCollisionsResolvedByBackup) {
  // k = 1 gives only two possible identifiers, so collisions are guaranteed
  // for n > 2; the embedded Beauquier instance must finish the election.
  const graph g = make_clique(8);
  const id_protocol proto(1);
  rng seed(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto r = run_until_stable(proto, g, seed.fork(trial),
                                    {.max_steps = 10'000'000});
    EXPECT_TRUE(r.stabilized);
  }
}

TEST(IdProtocol, CollisionProbabilityRespectsLemma22) {
  // Lemma 22: two fixed nodes generate the same identifier with probability
  // at most 2^-k.  On a 2-clique both nodes always generate their own ids
  // (neither can adopt while unfinished), and they do so while interacting
  // with each other — the hardest case for independence.  Two nodes that
  // interact while generating always differ (case 1 of the lemma), so the
  // collision count here must be zero; the bound is checked non-trivially on
  // a path through non-interacting generators below.
  const int k = 8;
  const id_protocol proto(k);
  rng seed(4);
  int collisions = 0;
  const int trials = 1000;
  const graph pair_graph = make_clique(2);
  for (int t = 0; t < trials; ++t) {
    std::vector<state> cfg(2);
    for (node_id v = 0; v < 2; ++v) cfg[static_cast<std::size_t>(v)] = proto.initial_state(v);
    edge_scheduler sched(pair_graph, seed.fork(t));
    while (cfg[0].id < proto.id_threshold() || cfg[1].id < proto.id_threshold()) {
      const interaction it = sched.next();
      proto.interact(cfg[static_cast<std::size_t>(it.initiator)],
                     cfg[static_cast<std::size_t>(it.responder)]);
    }
    if (cfg[0].id == cfg[1].id) ++collisions;
  }
  EXPECT_EQ(collisions, 0);

  // Ends of a path P_3 never interact directly; their bits come from
  // separate interactions with the middle node (Lemma 22 cases 2-3).  Track
  // the raw role-bit generation process (no adoption) and count collisions:
  // the bound is 2^-k ~ 0.4%.
  const graph path = make_path(3);
  collisions = 0;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t gen_id[3] = {1, 1, 1};
    edge_scheduler sched(path, seed.fork(100'000 + t));
    while (gen_id[0] < proto.id_threshold() || gen_id[2] < proto.id_threshold()) {
      const interaction it = sched.next();
      if (gen_id[it.initiator] < proto.id_threshold()) {
        gen_id[it.initiator] = 2 * gen_id[it.initiator];
      }
      if (gen_id[it.responder] < proto.id_threshold()) {
        gen_id[it.responder] = 2 * gen_id[it.responder] + 1;
      }
    }
    if (gen_id[0] == gen_id[2]) ++collisions;
  }
  EXPECT_LE(collisions, trials / 25);
}

TEST(IdProtocol, TrackerMatchesBruteForceOnTinyGraph) {
  const graph g = make_path(2);
  const id_protocol proto(2);
  std::vector<state> config(2);
  for (node_id v = 0; v < 2; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);
  id_protocol::tracker_type tracker(proto, g, config);
  edge_scheduler sched(g, rng(5));
  for (int step = 0; step < 100; ++step) {
    const auto report = brute_force_stability(proto, g, config);
    ASSERT_TRUE(report.exhausted);
    EXPECT_EQ(tracker.is_stable(), report.stable) << "step " << step;
    if (report.stable) break;
    const interaction it = sched.next();
    auto& a = config[static_cast<std::size_t>(it.initiator)];
    auto& b = config[static_cast<std::size_t>(it.responder)];
    const auto oa = a;
    const auto ob = b;
    proto.interact(a, b);
    tracker.on_interaction(proto, it.initiator, it.responder, oa, ob, a, b);
  }
}

TEST(IdProtocol, LeaderHoldsMaximumId) {
  const graph g = make_clique(10);
  const id_protocol proto(id_protocol::suggested_k(10));
  // Reconstruct the final configuration by stepping manually.
  std::vector<state> config(10);
  for (node_id v = 0; v < 10; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);
  id_protocol::tracker_type tracker(proto, g, config);
  edge_scheduler sched(g, rng(6));
  while (!tracker.is_stable()) {
    const interaction it = sched.next();
    auto& a = config[static_cast<std::size_t>(it.initiator)];
    auto& b = config[static_cast<std::size_t>(it.responder)];
    const auto oa = a;
    const auto ob = b;
    proto.interact(a, b);
    tracker.on_interaction(proto, it.initiator, it.responder, oa, ob, a, b);
    ASSERT_LT(sched.steps(), 10'000'000u);
  }
  std::uint64_t max_id = 0;
  for (const auto& s : config) max_id = std::max(max_id, s.id);
  for (const auto& s : config) {
    EXPECT_EQ(s.id, max_id);  // everyone adopted the maximum
    if (s.backup.candidate) {
      EXPECT_EQ(s.id, max_id);
    }
  }
}

TEST(IdProtocol, StateCensusScalesWithK) {
  const graph g = make_clique(8);
  const id_protocol proto(6);
  const auto r = run_until_stable(proto, g, rng(7),
                                  {.max_steps = 10'000'000, .state_census = true});
  ASSERT_TRUE(r.stabilized);
  // At least n distinct states (unique ids w.h.p.), at most ~6·2^{k+1}.
  EXPECT_GE(r.distinct_states_used, 8u);
  EXPECT_LE(r.distinct_states_used, 6u * (1u << 7));
}

}  // namespace
}  // namespace pp
