#include "support/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace pp {
namespace {

TEST(RunningStats, MeanAndVariance) {
  running_stats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance = 4 * 8/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MinMax) {
  running_stats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, SingleObservation) {
  running_stats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, EmptyThrows) {
  running_stats s;
  EXPECT_THROW(s.mean(), std::invalid_argument);
  EXPECT_THROW(s.min(), std::invalid_argument);
}

TEST(QuantileSorted, Median) {
  EXPECT_DOUBLE_EQ(quantile_sorted({1.0, 2.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(QuantileSorted, Extremes) {
  const std::vector<double> v{1.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 9.0);
}

TEST(QuantileSorted, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
}

TEST(QuantileSorted, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.3), 7.0);
}

TEST(QuantileSorted, RejectsBadArgs) {
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted({1.0}, 1.5), std::invalid_argument);
}

TEST(Summarize, BasicFields) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_GT(s.ci95_halfwidth, 0.0);
}

TEST(Summarize, QuantilesOrdered) {
  std::vector<double> v;
  for (int i = 0; i < 101; ++i) v.push_back(static_cast<double>(i));
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.q10, 10.0);
  EXPECT_DOUBLE_EQ(s.q90, 90.0);
  EXPECT_LE(s.q10, s.median);
  EXPECT_LE(s.median, s.q90);
}

TEST(Summarize, ConfidenceIntervalShrinks) {
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 10; ++i) small.push_back(i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.push_back(i % 2 ? 1.0 : -1.0);
  EXPECT_GT(summarize(small).ci95_halfwidth, summarize(large).ci95_halfwidth);
}

TEST(Summarize, EmptyThrows) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

}  // namespace
}  // namespace pp
