// Edge-census engine subsystem (src/engine/edgecensus/):
//
//   * seeded engine/reference equivalence for star_protocol — the compiled,
//     packed and tuned paths must reproduce the reference simulator's steps,
//     leader, stabilization flag and state census for the same seed on
//     star / cycle / grid / Erdős–Rényi graphs (stability is declared on
//     byte-identical scheduler steps to star_protocol::tracker_type);
//   * the incremental pair-counter invariant — after any sequence of class
//     flips (random, or driven by real interaction prefixes) the counters
//     equal a from-scratch recount of the current class vector;
//   * packed_csr / class_pair_index plumbing.
#include "engine/edgecensus/edgecensus.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "core/simulator.h"
#include "core/star_protocol.h"
#include "engine/edgecensus/census.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "sched/scheduler.h"

namespace pp {
namespace {

// ----------------------------------------------------------- pair indexing

TEST(ClassPairIndex, IsABijectionOverUnorderedPairs) {
  std::set<int> seen;
  for (int a = 0; a < kMaxEdgeClasses; ++a) {
    for (int b = a; b < kMaxEdgeClasses; ++b) {
      const int i = class_pair_index(a, b);
      EXPECT_EQ(i, class_pair_index(b, a));  // unordered
      EXPECT_GE(i, 0);
      EXPECT_LT(i, kMaxClassPairs);
      seen.insert(i);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), kMaxClassPairs);
  EXPECT_EQ(class_pair_index(0, 0), 0);
}

// ------------------------------------------------------------- packed_csr

TEST(PackedCsr, MirrorsGraphAdjacency) {
  rng gen(5);
  const graph g = make_connected_erdos_renyi(60, 0.1, gen);
  const packed_csr<std::uint16_t> csr(g);
  ASSERT_EQ(csr.offsets.size(), static_cast<std::size_t>(g.num_nodes()) + 1);
  ASSERT_EQ(csr.neighbors.size(), 2 * static_cast<std::size_t>(g.num_edges()));
  for (node_id v = 0; v < g.num_nodes(); ++v) {
    const auto row = csr.row(static_cast<std::size_t>(v));
    const auto ref = g.neighbors(v);
    ASSERT_EQ(row.size(), ref.size()) << "node " << v;
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(static_cast<node_id>(row[i]), ref[i]);
    }
  }
}

TEST(PackedCsr, RejectsNodeIdsBeyondTheWordWidth) {
  // A graph of 70000 nodes cannot be viewed at u16 node width.  Keep it a
  // path so construction stays cheap.
  const graph g = make_path(70000);
  EXPECT_THROW(packed_csr<std::uint16_t>{g}, std::invalid_argument);
  EXPECT_NO_THROW(packed_csr<std::uint32_t>{g});
}

// ------------------------------------------- incremental counter invariant

// From-scratch recount of the unordered class-pair counters.
std::array<std::int64_t, kMaxClassPairs> recount(
    const graph& g, std::span<const std::uint8_t> cls) {
  std::array<std::int64_t, kMaxClassPairs> pairs{};
  for (const edge& e : g.edges()) {
    ++pairs[static_cast<std::size_t>(
        class_pair_index(cls[static_cast<std::size_t>(e.u)],
                         cls[static_cast<std::size_t>(e.v)]))];
  }
  return pairs;
}

void expect_counts_match(const edge_class_census& census, const graph& g,
                         const std::string& context) {
  const auto expected = recount(g, census.classes());
  for (int p = 0; p < kMaxClassPairs; ++p) {
    ASSERT_EQ(census.pairs()[p], expected[static_cast<std::size_t>(p)])
        << context << " pair " << p;
  }
}

TEST(EdgeClassCensus, RandomFlipsEqualRecountOnBothAdjacencyViews) {
  rng gen(17);
  const graph g = make_connected_erdos_renyi(50, 0.12, gen);
  const packed_csr<std::uint16_t> csr(g);
  const graph_rows rows{&g};

  std::vector<std::uint8_t> cls(static_cast<std::size_t>(g.num_nodes()));
  for (auto& c : cls) c = static_cast<std::uint8_t>(gen.uniform_below(4));
  edge_class_census via_csr;
  edge_class_census via_graph;
  via_csr.reset(cls, g.edges());
  via_graph.reset(cls, g.edges());
  expect_counts_match(via_csr, g, "initial");

  for (int step = 0; step < 2000; ++step) {
    const auto v = static_cast<std::size_t>(
        gen.uniform_below(static_cast<std::uint64_t>(g.num_nodes())));
    const auto c = static_cast<std::uint8_t>(gen.uniform_below(4));
    const bool moved_csr = via_csr.reclass(csr, v, c);
    const bool moved_graph = via_graph.reclass(rows, v, c);
    ASSERT_EQ(moved_csr, moved_graph);
    if (step % 97 == 0) {
      expect_counts_match(via_csr, g, "csr step " + std::to_string(step));
      expect_counts_match(via_graph, g, "graph step " + std::to_string(step));
    }
  }
  expect_counts_match(via_csr, g, "final csr");
  expect_counts_match(via_graph, g, "final graph");
}

// The ISSUE's property test: drive the census with *real* star-protocol
// interaction prefixes (initiator settled before responder, as in the
// engine's hot loop) and compare against the recount after every prefix.
TEST(EdgeClassCensus, InteractionPrefixesEqualRecount) {
  const star_protocol proto;
  rng graph_gen(23);
  const std::vector<std::pair<std::string, graph>> families = {
      {"star", make_star(40)},
      {"cycle", make_cycle(37)},
      {"er", make_connected_erdos_renyi(44, 0.15, graph_gen)},
  };
  for (const auto& [name, g] : families) {
    const graph_rows rows{&g};
    for (std::uint64_t trial = 0; trial < 4; ++trial) {
      std::vector<star_protocol::state_type> config(
          static_cast<std::size_t>(g.num_nodes()));
      for (node_id v = 0; v < g.num_nodes(); ++v) {
        config[static_cast<std::size_t>(v)] = proto.initial_state(v);
      }
      std::vector<std::uint8_t> cls(config.size());
      for (std::size_t v = 0; v < config.size(); ++v) {
        cls[v] = static_cast<std::uint8_t>(
            edge_census_traits<star_protocol>::class_of(proto, config[v]));
      }
      edge_class_census census;
      census.reset(cls, g.edges());

      edge_scheduler sched(g, rng(900 + trial));
      for (int step = 0; step < 400; ++step) {
        const interaction it = sched.next();
        auto& a = config[static_cast<std::size_t>(it.initiator)];
        auto& b = config[static_cast<std::size_t>(it.responder)];
        proto.interact(a, b);
        census.reclass(rows, static_cast<std::size_t>(it.initiator),
                       static_cast<std::uint8_t>(
                           edge_census_traits<star_protocol>::class_of(proto, a)));
        census.reclass(rows, static_cast<std::size_t>(it.responder),
                       static_cast<std::uint8_t>(
                           edge_census_traits<star_protocol>::class_of(proto, b)));
        if (step % 37 == 0) {
          expect_counts_match(census, g, name + " prefix " + std::to_string(step));
        }
      }
      expect_counts_match(census, g, name + " full prefix");
    }
  }
}

// --------------------------------------------- engine/reference equivalence

std::vector<std::pair<std::string, graph>> equivalence_families() {
  rng gen(7);
  std::vector<std::pair<std::string, graph>> fams;
  fams.emplace_back("star", make_star(64));
  fams.emplace_back("cycle", make_cycle(48));
  fams.emplace_back("grid", make_grid_2d(6, 6, false));
  fams.emplace_back("erdos-renyi", make_connected_erdos_renyi(40, 0.15, gen));
  return fams;
}

void expect_star_equivalent(const sim_options& options, std::uint64_t seed_base) {
  const star_protocol proto;
  for (const auto& [name, g] : equivalence_families()) {
    rng seed(seed_base);
    for (std::uint64_t t = 0; t < 6; ++t) {
      const auto ref = run_until_stable(proto, g, seed.fork(t), options);
      const auto fast = run_until_stable_fast(proto, g, seed.fork(t), options);
      ASSERT_EQ(ref.stabilized, fast.stabilized) << name << " trial " << t;
      ASSERT_EQ(ref.steps, fast.steps) << name << " trial " << t;
      ASSERT_EQ(ref.leader, fast.leader) << name << " trial " << t;
      ASSERT_EQ(ref.distinct_states_used, fast.distinct_states_used)
          << name << " trial " << t;
      for (const int bits : {8, 16, 32}) {
        const tuned_runner<star_protocol> runner(proto, g,
                                                 {vertex_order::natural, bits});
        const auto packed = runner.run(seed.fork(t), options);
        ASSERT_EQ(ref.stabilized, packed.stabilized)
            << name << " trial " << t << " u" << bits;
        ASSERT_EQ(ref.steps, packed.steps) << name << " trial " << t << " u" << bits;
        ASSERT_EQ(ref.leader, packed.leader)
            << name << " trial " << t << " u" << bits;
        ASSERT_EQ(ref.distinct_states_used, packed.distinct_states_used)
            << name << " trial " << t << " u" << bits;
      }
    }
  }
}

TEST(EdgeCensusEquivalence, StarAcrossFamilies) {
  // max_steps caps the non-stabilizing runs (two-leader deadlocks on general
  // graphs); equivalence must hold at the cap too.
  expect_star_equivalent({.max_steps = 20000}, 31);
}

TEST(EdgeCensusEquivalence, StarAcrossFamiliesWithCensus) {
  expect_star_equivalent({.max_steps = 20000, .state_census = true}, 32);
}

TEST(EdgeCensusEquivalence, StarStabilizesInOneStepOnStarsInTheEngine) {
  const star_protocol proto;
  rng seed(1);
  for (const node_id n : {2, 5, 100, 3000}) {
    const graph g = make_star(n);
    const tuned_runner<star_protocol> runner(proto, g);
    for (std::uint64_t t = 0; t < 5; ++t) {
      const auto r = runner.run(seed.fork(static_cast<std::uint64_t>(n) * 10 + t));
      ASSERT_TRUE(r.stabilized);
      EXPECT_EQ(r.steps, 1u) << "n=" << n;
      EXPECT_GE(r.leader, 0);
    }
  }
}

TEST(EdgeCensusEquivalence, MeasureElectionFastMatchesReferenceSummary) {
  rng gen(41);
  const graph g = make_connected_erdos_renyi(32, 0.2, gen);
  const star_protocol proto;
  const sim_options options{.max_steps = 50000};
  const auto ref = measure_election(proto, g, 12, rng(42), options);
  const auto fast = measure_election_fast(proto, g, 12, rng(42), options);
  EXPECT_DOUBLE_EQ(ref.steps.mean, fast.steps.mean);
  EXPECT_DOUBLE_EQ(ref.stabilized_fraction, fast.stabilized_fraction);
}

// -------------------------------------------------------- reordered layout

TEST(EdgeCensusTuned, ReorderedRunsElectOneLeaderOnStars) {
  // Reordered runs trade per-seed equality for process isomorphism; on a
  // star the one-interaction stabilization is order-independent, so every
  // reorder must still elect in exactly one step with a valid original id.
  const star_protocol proto;
  const graph g = make_star(500);
  for (const auto order : {vertex_order::bfs, vertex_order::rcm}) {
    const tuned_runner<star_protocol> runner(proto, g, {order, 0});
    EXPECT_EQ(runner.pack_bits(), 8);  // 3 states, nibble-safe deltas
    rng seed(77);
    for (std::uint64_t t = 0; t < 6; ++t) {
      const auto r = runner.run(seed.fork(t));
      ASSERT_TRUE(r.stabilized);
      EXPECT_EQ(r.steps, 1u);
      EXPECT_GE(r.leader, 0);
      EXPECT_LT(r.leader, 500);
    }
  }
}

TEST(EdgeCensusTuned, WorkingSetAccountsForTheCsrView) {
  const star_protocol proto;
  const graph g = make_cycle(1000);
  const tuned_runner<star_protocol> runner(proto, g);
  // The accounting must cover at least the CSR adjacency ((n+1) u32 offsets
  // + 2m u16 neighbours on a 1000-node cycle) plus the class byte per node —
  // the arrays the edge-census flip walks actually touch.
  const std::size_t n = 1000;
  const std::size_t m = 1000;
  const std::size_t csr_bytes = (n + 1) * 4 + 2 * m * 2;
  EXPECT_GE(runner.working_set_bytes(), csr_bytes + n);
}

}  // namespace
}  // namespace pp
