// Tests for the well-mixed multiset batch engine (src/engine/wellmixed/).
//
// The engine intentionally breaks per-seed equivalence with the
// per-interaction simulators (there are no edges to seed), so the contract
// tested here is: exact samplers, valid configurations at every scale,
// determinism for a fixed seed, and *statistical* agreement of stabilization
// times with the compiled engine at overlapping n.
#include "engine/wellmixed/wellmixed.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/experiment.h"
#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/majority.h"
#include "engine/wellmixed/sampling.h"
#include "graph/generators.h"
#include "stat_gate.h"

namespace pp {
namespace {

// ----------------------------------------------------------------- samplers

TEST(Sampling, BinomialEdgeCases) {
  rng gen(1);
  EXPECT_EQ(sample_binomial(gen, 0, 0.5), 0u);
  EXPECT_EQ(sample_binomial(gen, 100, 0.0), 0u);
  EXPECT_EQ(sample_binomial(gen, 100, 1.0), 100u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(sample_binomial(gen, 7, 0.3), 7u);
  }
  EXPECT_THROW(sample_binomial(gen, 10, -0.1), std::invalid_argument);
  EXPECT_THROW(sample_binomial(gen, 10, 1.1), std::invalid_argument);
}

TEST(Sampling, BinomialMomentsSmallRegime) {
  // n·p = 5, safely below the dispatch threshold of 10: the geometric-skip
  // inversion path.  (50 · 0.2 would evaluate just *above* 10.0 in floating
  // point and silently test BTRS instead.)
  rng gen(2);
  const std::uint64_t n = 50;
  const double p = 0.1;
  const int draws = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < draws; ++i) {
    const double x = static_cast<double>(sample_binomial(gen, n, p));
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / draws;
  const double var = sumsq / draws - mean * mean;
  EXPECT_NEAR(mean, n * p, 0.05);            // exact mean 5
  EXPECT_NEAR(var, n * p * (1 - p), 0.15);   // exact variance 4.5
}

TEST(Sampling, BinomialMomentsBulkRegime) {
  // n·p >= 30: the BTRS rejection path.
  rng gen(3);
  const std::uint64_t n = 10000;
  const double p = 0.37;
  const int draws = 100000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < draws; ++i) {
    const auto k = sample_binomial(gen, n, p);
    ASSERT_LE(k, n);
    const double x = static_cast<double>(k);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / draws;
  const double var = sumsq / draws - mean * mean;
  const double se_mean = std::sqrt(n * p * (1 - p) / draws);
  EXPECT_NEAR(mean, n * p, 5 * se_mean);
  EXPECT_NEAR(var / (n * p * (1 - p)), 1.0, 0.05);
}

TEST(Sampling, HypergeometricSupportAndMean) {
  rng gen(4);
  const std::uint64_t total = 1000, marked = 300, draws = 200;
  const int reps = 50000;
  double sum = 0;
  for (int i = 0; i < reps; ++i) {
    const auto k = sample_hypergeometric(gen, total, marked, draws);
    ASSERT_LE(k, std::min(marked, draws));
    ASSERT_GE(k + (total - marked), draws);  // k >= draws - unmarked
    sum += static_cast<double>(k);
  }
  // E[K] = draws·marked/total = 60; sd of the estimate is ~0.03.
  EXPECT_NEAR(sum / reps, 60.0, 0.5);
}

TEST(Sampling, HypergeometricDegenerateCases) {
  rng gen(5);
  EXPECT_EQ(sample_hypergeometric(gen, 10, 0, 5), 0u);
  EXPECT_EQ(sample_hypergeometric(gen, 10, 10, 5), 5u);
  EXPECT_EQ(sample_hypergeometric(gen, 10, 5, 0), 0u);
  EXPECT_EQ(sample_hypergeometric(gen, 10, 5, 10), 5u);
  EXPECT_THROW(sample_hypergeometric(gen, 10, 11, 5), std::invalid_argument);
  EXPECT_THROW(sample_hypergeometric(gen, 10, 5, 11), std::invalid_argument);
}

// ------------------------------------------------------------- run_wellmixed

fast_params small_fast_params(std::uint64_t n) {
  return fast_params::practical_clique(n);
}

TEST(WellMixed, InitialMultisetPartitionsThePopulation) {
  const std::uint64_t n = 100;
  rng votes_gen(7);
  const auto votes = random_vote_assignment(static_cast<node_id>(n), 60, votes_gen);
  const majority_protocol proto(votes);
  const auto classes = initial_multiset(proto, n);
  ASSERT_EQ(classes.size(), 2u);  // strong_plus and strong_minus
  std::uint64_t mass = 0;
  for (const auto& [state, k] : classes) mass += k;
  EXPECT_EQ(mass, n);
}

TEST(WellMixed, StabilizesAndElectsOnSmallClique) {
  const std::uint64_t n = 64;
  const fast_protocol proto(small_fast_params(n));
  const auto r = run_wellmixed(proto, n, rng(11), {.state_census = true});
  EXPECT_TRUE(r.stabilized);
  EXPECT_GT(r.steps, 0u);
  EXPECT_EQ(r.leader, 0);  // exchangeable representative
  EXPECT_GE(r.distinct_states_used, 2u);
}

TEST(WellMixed, DeterministicForFixedSeed) {
  const std::uint64_t n = 256;
  const fast_protocol proto(small_fast_params(n));
  const auto a = run_wellmixed(proto, n, rng(21));
  const auto b = run_wellmixed(proto, n, rng(21));
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.stabilized, b.stabilized);
  const auto c = run_wellmixed(proto, n, rng(22));
  EXPECT_NE(a.steps, c.steps);  // different seed, different trajectory
}

TEST(WellMixed, TwoAgentPopulation) {
  const beauquier_protocol proto(2);
  const auto r = run_wellmixed(proto, 2, rng(5));
  EXPECT_TRUE(r.stabilized);
  EXPECT_EQ(r.leader, 0);
}

TEST(WellMixed, RespectsMaxSteps) {
  const std::uint64_t n = 1 << 16;
  const fast_protocol proto(small_fast_params(n));
  const auto r = run_wellmixed(proto, n, rng(3), {.max_steps = 1000});
  EXPECT_FALSE(r.stabilized);
  EXPECT_EQ(r.steps, 1000u);
}

TEST(WellMixed, ExplicitBatchSizeMatchesContract) {
  // A forced B = 1 batch runs the exact per-interaction multiset chain; the
  // run must still stabilize and stay deterministic.
  const std::uint64_t n = 48;
  const fast_protocol proto(small_fast_params(n));
  const sim_options exact{.wellmixed_batch = 1};
  const auto a = run_wellmixed(proto, n, rng(9), exact);
  const auto b = run_wellmixed(proto, n, rng(9), exact);
  EXPECT_TRUE(a.stabilized);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(WellMixed, OversizedBatchKnobIsClamped) {
  // A batch knob past n clamps to n (pick counts must fit the u32 pair
  // matrix); the run must stay valid and deterministic.
  const std::uint64_t n = 512;
  const fast_protocol proto(small_fast_params(n));
  const sim_options huge{.wellmixed_batch = 5'000'000'000ull};
  const auto a = run_wellmixed(proto, n, rng(33), huge);
  const auto b = run_wellmixed(proto, n, rng(33),
                               sim_options{.wellmixed_batch = n});
  EXPECT_TRUE(a.stabilized);
  EXPECT_EQ(a.steps, b.steps);  // clamped knob == explicit B = n
}

TEST(WellMixed, MajorityConsensusMatchesVoteMajority) {
  const std::uint64_t n = 200;
  rng votes_gen(13);
  const auto votes = random_vote_assignment(static_cast<node_id>(n), 140, votes_gen);
  const majority_protocol proto(votes);
  const auto r = run_wellmixed(proto, n, rng(17));
  EXPECT_TRUE(r.stabilized);
}

// 3σ agreement of mean stabilization steps between the per-interaction
// compiled engine and the well-mixed batch engine on the same protocol and
// population.  This is the engine's core statistical-correctness contract
// (the batching approximation must be invisible at this resolution); the
// threshold itself lives in tests/stat_gate.h, shared with the reorder and
// silent-scheduler suites.
template <typename P>
void expect_agreement(const P& proto, std::uint64_t n, int trials,
                      std::uint64_t seed) {
  const graph g = make_clique(static_cast<node_id>(n));
  const auto engine = measure_election_fast(proto, g, trials, rng(seed));
  const auto wm = measure_election_wellmixed(proto, n, trials, rng(seed + 1));
  stat_gate::expect_step_agreement(engine, wm, "wellmixed vs engine");
}

TEST(WellMixed, AgreesWithEngineFastProtocol) {
  const std::uint64_t n = 256;
  expect_agreement(fast_protocol(small_fast_params(n)), n, 32, 1001);
}

TEST(WellMixed, AgreesWithEngineMajorityProtocol) {
  const std::uint64_t n = 512;
  rng votes_gen(29);
  const auto votes = random_vote_assignment(static_cast<node_id>(n), 320, votes_gen);
  expect_agreement(majority_protocol(votes), n, 32, 2002);
}

TEST(WellMixed, FullElectionAtSixtyFourThousand) {
  // A complete election at n = 2^16 — a clique whose edge list (~2·10⁹
  // pairs) the per-interaction engines could no longer hold comfortably —
  // with the step count in the Θ(n · 2^h · L) shape of the waiting phase.
  const std::uint64_t n = 65'536;
  const fast_protocol proto(fast_params::practical_clique(n));
  const auto r = run_wellmixed(proto, n, rng(42));
  EXPECT_TRUE(r.stabilized);
  EXPECT_EQ(r.leader, 0);
  EXPECT_GT(r.steps, n * 10);
  EXPECT_LT(r.steps, n * 100'000);
}

TEST(WellMixed, MillionAgentBatchesInMultisetMemory) {
  // n = 10⁶ on a clique: the per-interaction engine would need ~8 TB of
  // endpoint arrays; the multiset engine needs O(|Λ|) counters.  A bounded
  // budget keeps the test fast while still driving the engine through
  // thousands of batches of the real large-n regime.
  const std::uint64_t n = 1'000'000;
  const fast_protocol proto(fast_params::practical_clique(n));
  const auto r = run_wellmixed(proto, n, rng(42), {.max_steps = 100'000'000});
  EXPECT_FALSE(r.stabilized);  // an election needs ~2000n steps, budget is 100n
  EXPECT_EQ(r.steps, 100'000'000u);
}

}  // namespace
}  // namespace pp
