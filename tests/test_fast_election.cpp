#include "core/fast_election.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.h"
#include "core/stable_checker.h"
#include "dynamics/epidemic.h"
#include "graph/generators.h"
#include "sched/scheduler.h"

namespace pp {
namespace {

using state = fast_protocol::state_type;

fast_params tiny_params() {
  fast_params p;
  p.h = 1;
  p.level_threshold = 1;
  p.max_level = 2;
  return p;
}

TEST(FastParams, PaperAndPracticalShapes) {
  const graph g = make_clique(64);
  const double b = estimate_broadcast_time(g, 0, 50, rng(1));
  const fast_params paper = fast_params::paper(g, b);
  const fast_params practical = fast_params::practical(g, b);
  EXPECT_EQ(paper.h, practical.h + 6);  // offsets 8 vs 2
  EXPECT_EQ(paper.level_threshold, 12);  // ceil(2·log2 64)
  EXPECT_EQ(practical.level_threshold, 12);
  EXPECT_EQ(paper.max_level, 8 * paper.level_threshold);
  EXPECT_EQ(practical.max_level, 4 * practical.level_threshold);
}

TEST(FastParams, TauScalesThreshold) {
  const graph g = make_clique(32);
  const fast_params t1 = fast_params::paper(g, 200.0, 1.0);
  const fast_params t2 = fast_params::paper(g, 200.0, 2.0);
  EXPECT_EQ(t2.level_threshold, 2 * t1.level_threshold);
}

TEST(FastParams, StateSpaceSizeIsPolylog) {
  // O(log² n): for n = 1024 with practical constants well under 10⁴ states.
  const graph g = make_clique(1024);
  const fast_params p = fast_params::practical(g, 1024.0 * 10.0);
  EXPECT_LT(p.state_space_size(), 10'000u);
  EXPECT_EQ(p.state_space_size(),
            static_cast<std::uint64_t>(p.h + 1) * (p.max_level + 1) * 2 + 6);
}

TEST(FastProtocol, InitialStateIsWaitingLeader) {
  const fast_protocol proto(tiny_params());
  const state s = proto.initial_state(0);
  EXPECT_TRUE(s.leader);
  EXPECT_FALSE(s.in_backup);
  EXPECT_EQ(s.level, 0);
  EXPECT_EQ(proto.output(s), role::leader);
}

TEST(FastProtocol, ResponderStreakResets) {
  fast_params p;
  p.h = 3;
  p.level_threshold = 2;
  p.max_level = 8;
  const fast_protocol proto(p);
  state a = proto.initial_state(0);
  state b = proto.initial_state(1);
  proto.interact(a, b);
  EXPECT_EQ(a.streak, 1);
  EXPECT_EQ(b.streak, 0);
  proto.interact(b, a);  // roles swap
  EXPECT_EQ(a.streak, 0);
  EXPECT_EQ(b.streak, 1);
}

TEST(FastProtocol, Rule1LeaderLevelsUpOnCompletedStreak) {
  fast_params p;
  p.h = 2;
  p.level_threshold = 5;
  p.max_level = 10;
  const fast_protocol proto(p);
  state a = proto.initial_state(0);
  state b = proto.initial_state(1);
  proto.interact(a, b);
  EXPECT_EQ(a.level, 0);
  proto.interact(a, b);  // second consecutive initiation completes the streak
  EXPECT_EQ(a.level, 1);
  EXPECT_EQ(a.streak, 0);
}

TEST(FastProtocol, FollowersDoNotLevelUp) {
  fast_params p;
  p.h = 1;
  p.level_threshold = 5;
  p.max_level = 10;
  const fast_protocol proto(p);
  state a = proto.initial_state(0);
  a.leader = false;
  state b = proto.initial_state(1);
  proto.interact(a, b);  // a completes a streak (h = 1) but is a follower
  EXPECT_EQ(a.level, 0);
}

TEST(FastProtocol, Rule2DemotesLowerLevelNode) {
  fast_params p;
  p.h = 4;
  p.level_threshold = 2;
  p.max_level = 8;
  const fast_protocol proto(p);
  state low = proto.initial_state(0);
  state high = proto.initial_state(1);
  high.level = 3;  // >= L
  proto.interact(low, high);
  EXPECT_FALSE(low.leader);
  EXPECT_EQ(low.level, 3);  // Rule 3 adoption
  EXPECT_TRUE(high.leader);
}

TEST(FastProtocol, BelowThresholdLevelsDoNotSpreadOrDemote) {
  fast_params p;
  p.h = 4;
  p.level_threshold = 5;
  p.max_level = 20;
  const fast_protocol proto(p);
  state low = proto.initial_state(0);
  state mid = proto.initial_state(1);
  mid.level = 3;  // < L: waiting phase is silent
  proto.interact(low, mid);
  EXPECT_TRUE(low.leader);
  EXPECT_EQ(low.level, 0);
}

TEST(FastProtocol, EqualLevelsDoNotDemote) {
  fast_params p;
  p.h = 4;
  p.level_threshold = 1;
  p.max_level = 8;
  const fast_protocol proto(p);
  state a = proto.initial_state(0);
  state b = proto.initial_state(1);
  a.level = 3;
  b.level = 3;
  proto.interact(a, b);
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
}

TEST(FastProtocol, BackupEntryAsCandidateViaOwnClimb) {
  fast_params p;
  p.h = 1;
  p.level_threshold = 1;
  p.max_level = 2;
  const fast_protocol proto(p);
  state a = proto.initial_state(0);
  state b = proto.initial_state(1);
  b.leader = false;
  proto.interact(a, b);  // a ticks (h=1): level 1
  EXPECT_EQ(a.level, 1);
  proto.interact(a, b);  // a ticks again: level 2 == max -> backup candidate
  EXPECT_TRUE(a.in_backup);
  EXPECT_TRUE(a.backup.candidate);
  EXPECT_EQ(a.backup.token, bq_token::black);
  EXPECT_EQ(proto.output(a), role::leader);
}

TEST(FastProtocol, BackupEntryAsFollowerViaAdoption) {
  const fast_protocol proto(tiny_params());
  state joiner = proto.initial_state(0);
  state incumbent = proto.initial_state(1);
  incumbent.in_backup = true;
  incumbent.level = 2;
  incumbent.backup = bq_init(true);
  proto.interact(joiner, incumbent);
  // joiner: demoted by Rule 2 (level 0 < 2 >= L), adopts max level, enters
  // backup as follower without a token.
  EXPECT_TRUE(joiner.in_backup);
  EXPECT_FALSE(joiner.backup.candidate);
  EXPECT_EQ(joiner.backup.token, bq_token::none);
  EXPECT_EQ(proto.output(joiner), role::follower);
  // No token exchange on the entry interaction.
  EXPECT_EQ(incumbent.backup.token, bq_token::black);
}

TEST(FastProtocol, BackupPairRunsBeauquier) {
  const fast_protocol proto(tiny_params());
  state a = proto.initial_state(0);
  state b = proto.initial_state(1);
  for (state* s : {&a, &b}) {
    s->in_backup = true;
    s->level = 2;
    s->backup = bq_init(true);
  }
  proto.interact(a, b);
  // Black-black: responder whitens and self-kills.
  EXPECT_TRUE(a.backup.candidate);
  EXPECT_FALSE(b.backup.candidate);
  EXPECT_EQ(proto.output(b), role::follower);
}

TEST(FastProtocol, RunInvariantsHoldThroughoutExecution) {
  // (1) at least one output leader; (2) leader count never increases;
  // (3) some globally-maximal-level node outputs leader; (4) within the
  // backup population: candidates = black + white and black >= 1.
  for (const auto& g : {make_clique(12), make_cycle(12), make_star(12)}) {
    const double b_est = estimate_broadcast_time(g, 0, 30, rng(2));
    const fast_protocol proto(fast_params::practical(g, b_est));
    const node_id n = g.num_nodes();
    std::vector<state> config(static_cast<std::size_t>(n));
    for (node_id v = 0; v < n; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);
    edge_scheduler sched(g, rng(static_cast<std::uint64_t>(n) * 31));

    std::int64_t prev_leaders = n;
    for (int step = 0; step < 60000; ++step) {
      const interaction it = sched.next();
      proto.interact(config[static_cast<std::size_t>(it.initiator)],
                     config[static_cast<std::size_t>(it.responder)]);

      std::int64_t leaders = 0;
      std::int64_t backup_candidates = 0;
      std::int64_t black = 0;
      std::int64_t white = 0;
      int max_level = 0;
      bool max_has_leader = false;
      for (const state& s : config) {
        max_level = std::max(max_level, static_cast<int>(s.level));
      }
      for (const state& s : config) {
        const bool is_leader = proto.output(s) == role::leader;
        if (is_leader) ++leaders;
        if (static_cast<int>(s.level) == max_level && is_leader) max_has_leader = true;
        if (s.in_backup) {
          if (s.backup.candidate) ++backup_candidates;
          if (s.backup.token == bq_token::black) ++black;
          if (s.backup.token == bq_token::white) ++white;
        }
      }
      ASSERT_GE(leaders, 1) << "step " << step;
      ASSERT_LE(leaders, prev_leaders) << "step " << step;
      ASSERT_TRUE(max_has_leader) << "step " << step;
      ASSERT_EQ(backup_candidates, black + white) << "step " << step;
      if (backup_candidates > 0) {
        ASSERT_GE(black, 1) << "step " << step;
      }
      prev_leaders = leaders;
    }
  }
}

class FastElectsOnFamily : public ::testing::TestWithParam<int> {};

TEST_P(FastElectsOnFamily, UniqueLeaderEverywhere) {
  const int idx = GetParam();
  std::vector<graph> graphs;
  graphs.push_back(make_clique(16));
  graphs.push_back(make_cycle(16));
  graphs.push_back(make_star(16));
  graphs.push_back(make_grid_2d(4, 4, true));
  graphs.push_back(make_binary_tree(16));
  graphs.push_back(make_path(16));
  const graph& g = graphs[static_cast<std::size_t>(idx)];

  const double b_est = estimate_broadcast_time(g, 0, 30, rng(20 + idx));
  const fast_protocol proto(fast_params::practical(g, b_est));
  rng seed(200 + idx);
  for (int trial = 0; trial < 4; ++trial) {
    const auto r = run_until_stable(proto, g, seed.fork(trial),
                                    {.max_steps = 50'000'000});
    EXPECT_TRUE(r.stabilized);
    EXPECT_GE(r.leader, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FastElectsOnFamily, ::testing::Range(0, 6));

TEST(FastProtocol, HighDegreeNodeWinsOnStar) {
  // Theorem 24 guarantees the winner has degree Θ(Δ) w.h.p.; on a star that
  // means the centre.
  const graph g = make_star(32);
  const double b_est = estimate_broadcast_time(g, 0, 30, rng(3));
  const fast_protocol proto(fast_params::practical(g, b_est));
  rng seed(4);
  int centre_wins = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto r = run_until_stable(proto, g, seed.fork(t),
                                    {.max_steps = 50'000'000});
    ASSERT_TRUE(r.stabilized);
    if (r.leader == 0) ++centre_wins;
  }
  EXPECT_GE(centre_wins, trials * 8 / 10);
}

TEST(FastProtocol, ForcedBackupPathStillElects) {
  // Tiny parameters make the fast path fail constantly; the Beauquier
  // backup must still deliver a unique leader.
  const graph g = make_clique(10);
  const fast_protocol proto(tiny_params());
  rng seed(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto r = run_until_stable(proto, g, seed.fork(trial),
                                    {.max_steps = 20'000'000});
    EXPECT_TRUE(r.stabilized);
  }
}

TEST(FastProtocol, TrackerMatchesBruteForceOnTinyGraph) {
  const graph g = make_path(2);
  const fast_protocol proto(tiny_params());
  std::vector<state> config(2);
  for (node_id v = 0; v < 2; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);
  fast_protocol::tracker_type tracker(proto, g, config);
  edge_scheduler sched(g, rng(6));
  for (int step = 0; step < 120; ++step) {
    const auto report = brute_force_stability(proto, g, config);
    ASSERT_TRUE(report.exhausted);
    EXPECT_EQ(tracker.is_stable(), report.stable) << "step " << step;
    if (report.stable) break;
    const interaction it = sched.next();
    auto& a = config[static_cast<std::size_t>(it.initiator)];
    auto& b = config[static_cast<std::size_t>(it.responder)];
    const auto oa = a;
    const auto ob = b;
    proto.interact(a, b);
    tracker.on_interaction(proto, it.initiator, it.responder, oa, ob, a, b);
  }
}

TEST(FastProtocol, CensusStaysWithinTheoreticalStateSpace) {
  const graph g = make_clique(24);
  const double b_est = estimate_broadcast_time(g, 0, 30, rng(7));
  const fast_params params = fast_params::practical(g, b_est);
  const fast_protocol proto(params);
  const auto r = run_until_stable(proto, g, rng(8),
                                  {.max_steps = 50'000'000, .state_census = true});
  ASSERT_TRUE(r.stabilized);
  EXPECT_LE(r.distinct_states_used, params.state_space_size());
  EXPECT_GE(r.distinct_states_used, 4u);
}

TEST(FastProtocol, RejectsInvalidParams) {
  fast_params bad_level = tiny_params();
  bad_level.max_level = bad_level.level_threshold;
  EXPECT_THROW(fast_protocol{bad_level}, std::invalid_argument);
  fast_params bad_h = tiny_params();
  bad_h.h = 0;
  EXPECT_THROW(fast_protocol{bad_h}, std::invalid_argument);
}

}  // namespace
}  // namespace pp
