#include "analysis/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pp {
namespace {

TEST(Bounds, BroadcastUpperDiameter) {
  // m·max{6 ln n, D} + 2 with D dominating.
  EXPECT_DOUBLE_EQ(bounds::broadcast_upper_diameter(10, 4, 100), 1002.0);
  // 6 ln n dominating.
  EXPECT_NEAR(bounds::broadcast_upper_diameter(10, 1000, 1),
              10 * 6 * std::log(1000.0) + 2, 1e-9);
}

TEST(Bounds, BroadcastUpperExpansion) {
  EXPECT_NEAR(bounds::broadcast_upper_expansion(100, 64, 2.0),
              4.0 * 50.0 * std::log(64.0), 1e-9);
}

TEST(Bounds, BroadcastLower) {
  EXPECT_NEAR(bounds::broadcast_lower(100, 4, 65), 25.0 * std::log(64.0), 1e-9);
}

TEST(Bounds, BoundedDegreeShape) {
  EXPECT_DOUBLE_EQ(bounds::broadcast_shape_bounded_degree(64, 32), 64.0 * 32.0);
  EXPECT_DOUBLE_EQ(bounds::broadcast_shape_bounded_degree(64, 3), 64.0 * 6.0);
}

TEST(Bounds, HittingAndMeetingChain) {
  EXPECT_DOUBLE_EQ(bounds::population_hitting_upper(10, 7), 1890.0);
  EXPECT_DOUBLE_EQ(bounds::meeting_upper(50), 100.0);
  EXPECT_DOUBLE_EQ(bounds::theorem16_shape(4, 8), 4.0 * 8.0 * 3.0);
}

TEST(Bounds, Theorem21Shapes) {
  EXPECT_DOUBLE_EQ(bounds::theorem21_shape(100, 8), 100.0 + 24.0);
  EXPECT_EQ(bounds::theorem21_bits(16, false), 16);
  EXPECT_EQ(bounds::theorem21_bits(16, true), 12);
  EXPECT_EQ(bounds::theorem21_bits(1e18, false), 62);  // capped
}

TEST(Bounds, IdGenerationBounds) {
  EXPECT_DOUBLE_EQ(bounds::id_collision_upper(10), 1.0 / 1024.0);
  EXPECT_DOUBLE_EQ(bounds::id_settling_upper(4, 100, 50), 500.0);
  EXPECT_THROW(bounds::id_collision_upper(0), std::invalid_argument);
}

TEST(Bounds, Theorem24Parameters) {
  EXPECT_DOUBLE_EQ(bounds::theorem24_shape(200, 16), 800.0);
  // B·Δ/m = 32 -> log2 = 5 -> 8 + 5 (paper offset).
  EXPECT_EQ(bounds::theorem24_streak_length(320, 10, 100), 13);
  EXPECT_EQ(bounds::theorem24_streak_length(320, 10, 100, 2), 7);
  // Ratio below 1 clamps at the offset.
  EXPECT_EQ(bounds::theorem24_streak_length(5, 1, 100), 8);
  EXPECT_EQ(bounds::theorem24_level_threshold(256), 16);
  EXPECT_EQ(bounds::theorem24_level_threshold(256, 2.0), 32);
}

TEST(Bounds, ClockFormulas) {
  EXPECT_DOUBLE_EQ(bounds::clock_interactions_per_tick(3), 14.0);
  EXPECT_DOUBLE_EQ(bounds::clock_steps_per_tick(3, 7, 70), 140.0);
}

TEST(Bounds, LowerBoundShapes) {
  EXPECT_DOUBLE_EQ(bounds::renitent_shape(8, 100), 800.0);
  EXPECT_DOUBLE_EQ(bounds::dense_lower_shape(16), 64.0);
  EXPECT_DOUBLE_EQ(bounds::constant_state_lower_shape(100), 10000.0);
}

TEST(Bounds, Corollary25Shapes) {
  // φ = 1: n·log² n.
  EXPECT_DOUBLE_EQ(bounds::corollary25_shape(16, 1.0), 16.0 * 16.0);
  // Halving φ doubles the time shape.
  EXPECT_DOUBLE_EQ(bounds::corollary25_shape(16, 0.5),
                   2.0 * bounds::corollary25_shape(16, 1.0));
  // State shape grows as log(1/φ).
  EXPECT_GT(bounds::corollary25_state_shape(256, 0.01),
            bounds::corollary25_state_shape(256, 0.5));
  EXPECT_THROW(bounds::corollary25_shape(16, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace pp
