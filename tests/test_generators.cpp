#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/metrics.h"

namespace pp {
namespace {

TEST(Clique, SizeAndDegrees) {
  const graph g = make_clique(7);
  EXPECT_EQ(g.num_nodes(), 7);
  EXPECT_EQ(g.num_edges(), 21);
  EXPECT_EQ(g.min_degree(), 6);
  EXPECT_EQ(g.max_degree(), 6);
  EXPECT_TRUE(is_connected(g));
}

TEST(Path, Structure) {
  const graph g = make_path(6);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(3), 2);
  EXPECT_EQ(diameter(g), 5);
}

TEST(Cycle, Structure) {
  const graph g = make_cycle(8);
  EXPECT_EQ(g.num_edges(), 8);
  EXPECT_EQ(g.min_degree(), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_EQ(diameter(g), 4);
}

TEST(Cycle, MinimumSize) {
  EXPECT_NO_THROW(make_cycle(3));
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Star, CentreAndLeaves) {
  const graph g = make_star(10);
  EXPECT_EQ(g.num_edges(), 9);
  EXPECT_EQ(g.degree(0), 9);
  for (node_id v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1);
  EXPECT_EQ(diameter(g), 2);
}

TEST(CompleteBipartite, Structure) {
  const graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_nodes(), 7);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(g.degree(0), 4);
  EXPECT_EQ(g.degree(3), 3);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 5));
}

TEST(BinaryTree, Structure) {
  const graph g = make_binary_tree(7);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_EQ(g.degree(6), 1);
}

TEST(Grid, NonTorus) {
  const graph g = make_grid_2d(3, 4, false);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_EQ(diameter(g), 5);
}

TEST(Grid, TorusIsRegular) {
  const graph g = make_grid_2d(4, 4, true);
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(Grid, TorusRejectsWrapOfTwo) {
  EXPECT_THROW(make_grid_2d(2, 5, true), std::invalid_argument);
}

TEST(Grid3d, TorusIsSixRegular) {
  const graph g = make_grid_3d(4);
  EXPECT_EQ(g.num_nodes(), 64);
  EXPECT_EQ(g.num_edges(), 3 * 64);
  EXPECT_EQ(g.min_degree(), 6);
  EXPECT_EQ(g.max_degree(), 6);
  EXPECT_TRUE(is_connected(g));
}

TEST(Grid3d, DiameterIsThreeHalfSides) {
  EXPECT_EQ(diameter(make_grid_3d(4)), 6);
  EXPECT_EQ(diameter(make_grid_3d(5)), 6);  // 3 * floor(5/2)
}

TEST(Grid3d, RejectsTinySides) {
  EXPECT_THROW(make_grid_3d(2), std::invalid_argument);
}

TEST(Hypercube, Structure) {
  const graph g = make_hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_EQ(diameter(g), 4);
}

TEST(Barbell, Structure) {
  const graph g = make_barbell(5, 3);
  EXPECT_EQ(g.num_nodes(), 13);
  EXPECT_TRUE(is_connected(g));
  // Two K_5's plus a 4-edge bridge through 3 nodes.
  EXPECT_EQ(g.num_edges(), 10 + 10 + 4);
}

TEST(Barbell, DirectJoin) {
  const graph g = make_barbell(3, 0);
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(Lollipop, Structure) {
  const graph g = make_lollipop(6, 4);
  EXPECT_EQ(g.num_nodes(), 10);
  EXPECT_EQ(g.num_edges(), 15 + 4);
  EXPECT_EQ(g.degree(9), 1);
  EXPECT_TRUE(is_connected(g));
}

TEST(ErdosRenyi, EdgeCountConcentrates) {
  rng gen(1);
  const node_id n = 100;
  const double p = 0.2;
  const graph g = make_erdos_renyi(n, p, gen);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 4 * std::sqrt(expected));
}

TEST(ErdosRenyi, ExtremesMatch) {
  rng gen(2);
  EXPECT_EQ(make_erdos_renyi(10, 1.0, gen).num_edges(), 45);
  EXPECT_EQ(make_erdos_renyi(10, 0.0, gen).num_edges(), 0);
}

TEST(ErdosRenyi, DifferentSeedsDifferentGraphs) {
  rng g1(3);
  rng g2(4);
  const graph a = make_erdos_renyi(50, 0.3, g1);
  const graph b = make_erdos_renyi(50, 0.3, g2);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(ConnectedErdosRenyi, IsConnected) {
  rng gen(5);
  for (int i = 0; i < 5; ++i) {
    const graph g = make_connected_erdos_renyi(40, 0.15, gen);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(ConnectedErdosRenyi, HopelessParametersThrow) {
  rng gen(6);
  EXPECT_THROW(make_connected_erdos_renyi(50, 0.0, gen, 3), std::runtime_error);
}

TEST(RandomRegular, DegreesExact) {
  rng gen(7);
  for (const node_id d : {2, 4, 8}) {
    const graph g = make_random_regular(64, d, gen);
    EXPECT_EQ(g.min_degree(), d);
    EXPECT_EQ(g.max_degree(), d);
    EXPECT_EQ(g.num_edges(), 64 * d / 2);
  }
}

TEST(RandomRegular, RejectsOddProduct) {
  rng gen(8);
  EXPECT_THROW(make_random_regular(5, 3, gen), std::invalid_argument);
}

TEST(RandomRegular, ConnectedWithHighProbability) {
  rng gen(9);
  // d >= 3 random regular graphs are connected w.h.p.; check a few samples.
  int connected = 0;
  for (int i = 0; i < 5; ++i) {
    if (is_connected(make_random_regular(50, 4, gen))) ++connected;
  }
  EXPECT_GE(connected, 4);
}

TEST(Renitent, NodeAndEdgeCounts) {
  const graph base = make_clique(6);
  const node_id ell = 5;
  const graph g = make_renitent(base, 0, ell);
  // 4 copies + 4 paths of 2*ell-1 internal nodes each.
  EXPECT_EQ(g.num_nodes(), 4 * 6 + 4 * (2 * ell - 1));
  EXPECT_EQ(g.num_edges(), 4 * base.num_edges() + 4 * 2 * ell);
  EXPECT_TRUE(is_connected(g));
}

TEST(Renitent, DiameterScalesWithEll) {
  const graph base = make_clique(4);
  const graph small = make_renitent(base, 0, 2);
  const graph large = make_renitent(base, 0, 8);
  // Opposite copies are two paths of length 2*ell apart.
  EXPECT_GT(diameter(large), diameter(small) + 10);
  EXPECT_GE(diameter(large), 2 * 8);
}

TEST(Renitent, FourIsomorphicCopies) {
  const graph base = make_cycle(5);
  const graph g = make_renitent(base, 2, 3);
  // Every base node keeps its base degree except the four anchors (+2 path
  // endpoints each).
  for (int copy = 0; copy < 4; ++copy) {
    for (node_id v = 0; v < 5; ++v) {
      const node_id mapped = static_cast<node_id>(copy * 5 + v);
      const node_id expected = v == 2 ? 4 : 2;
      EXPECT_EQ(g.degree(mapped), expected);
    }
  }
}

TEST(Theorem39, CliqueBaseForSuperQuadraticTargets) {
  rng gen(10);
  theorem39_spec spec;
  const auto target = [](double n) { return n * n * n / 4.0; };  // Θ(n³)
  const graph g = theorem39_graph(32, target, gen, &spec);
  EXPECT_TRUE(spec.clique_base);
  EXPECT_GE(spec.ell, 1);
  EXPECT_TRUE(is_connected(g));
}

TEST(Theorem39, StarBaseForNearLinearTargets) {
  rng gen(11);
  theorem39_spec spec;
  const auto target = [](double n) { return n * std::log2(n) * 4.0; };
  const graph g = theorem39_graph(64, target, gen, &spec);
  EXPECT_FALSE(spec.clique_base);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(spec.extra_edges, 0);
}

TEST(Theorem39, RejectsOutOfRangeTargets) {
  rng gen(12);
  EXPECT_THROW(theorem39_graph(64, [](double) { return 1.0; }, gen),
               std::invalid_argument);
}

}  // namespace
}  // namespace pp
