#include "support/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "engine/block_rng.h"

namespace pp {
namespace {

TEST(Rng, SameSeedSameStream) {
  rng a(42);
  rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1);
  rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkIsDeterministic) {
  rng base(7);
  rng f1 = base.fork(3);
  rng f2 = rng(7).fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f1(), f2());
}

TEST(Rng, ForksAreDistinctStreams) {
  rng base(7);
  rng f1 = base.fork(0);
  rng f2 = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (f1() == f2()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkDiffersFromParent) {
  rng base(9);
  rng forked = base.fork(0);
  rng parent(9);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == forked()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformBelowInRange) {
  rng gen(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.uniform_below(17), 17u);
  }
}

TEST(Rng, UniformBelowOneIsZero) {
  rng gen(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowRejectsZeroBound) {
  rng gen(3);
  EXPECT_THROW(gen.uniform_below(0), std::invalid_argument);
}

TEST(Rng, UniformBelowIsApproximatelyUniform) {
  rng gen(11);
  const int buckets = 10;
  const int draws = 100000;
  std::vector<int> count(buckets, 0);
  for (int i = 0; i < draws; ++i) {
    ++count[gen.uniform_below(buckets)];
  }
  // Chi-square with 9 dof: 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(draws) / buckets;
  for (const int c : count) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 30.0);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  rng gen(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, Uniform01InUnitInterval) {
  rng gen(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  rng gen(17);
  double total = 0.0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) total += gen.uniform01();
  EXPECT_NEAR(total / draws, 0.5, 0.005);
}

TEST(Rng, BernoulliMatchesProbability) {
  rng gen(19);
  const int draws = 100000;
  int hits = 0;
  for (int i = 0; i < draws; ++i) {
    if (gen.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  rng gen(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.bernoulli(0.0));
    EXPECT_TRUE(gen.bernoulli(1.0));
  }
}

TEST(Rng, GeometricMeanMatches) {
  rng gen(23);
  const double p = 0.05;
  const int draws = 100000;
  double total = 0.0;
  for (int i = 0; i < draws; ++i) total += static_cast<double>(gen.geometric(p));
  EXPECT_NEAR(total / draws, 1.0 / p, 0.4);
}

TEST(Rng, GeometricSupportsOne) {
  rng gen(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(gen.geometric(0.9), 1u);
}

TEST(Rng, GeometricPOneIsAlwaysOne) {
  rng gen(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.geometric(1.0), 1u);
}

TEST(Rng, GeometricTailDecays) {
  rng gen(37);
  const double p = 0.5;
  const int draws = 100000;
  int above_10 = 0;
  for (int i = 0; i < draws; ++i) {
    if (gen.geometric(p) > 10) ++above_10;
  }
  // P[G > 10] = 2^-10 ~ 1e-3.
  EXPECT_NEAR(static_cast<double>(above_10) / draws, std::pow(0.5, 10), 5e-4);
}

TEST(Rng, GeometricRejectsInvalidP) {
  rng gen(41);
  EXPECT_THROW(gen.geometric(0.0), std::invalid_argument);
  EXPECT_THROW(gen.geometric(1.5), std::invalid_argument);
  EXPECT_THROW(gen.geometric(-0.1), std::invalid_argument);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- block_rng
//
// The engine's bit-identical-to-reference guarantee rests on block_rng
// replicating rng::uniform_below draw-for-draw, so the edge cases of the
// shared Lemire kernel get dedicated coverage here: degenerate bound 1,
// non-power-of-two bounds (nonzero rejection threshold), bounds near 2^63
// (threshold close to bound, rejections frequent), and streams that cross
// the 1024-word refill boundary.

TEST(BlockRng, BoundOneIsAlwaysZero) {
  rng reference(71);
  block_rng buffered(rng(71));
  // 3000 draws cross two refill boundaries; bound 1 consumes one raw draw
  // each, exactly like rng::uniform_below.
  for (int i = 0; i < 3000; ++i) {
    ASSERT_EQ(buffered.uniform_below(1), 0u);
    ASSERT_EQ(reference.uniform_below(1), 0u);
  }
  // The two generators consumed the same number of raw draws.
  EXPECT_EQ(reference(), buffered.next());
}

TEST(BlockRng, NonPowerOfTwoBoundsMatchRng) {
  rng reference(72);
  block_rng buffered(rng(72));
  const std::uint64_t bounds[] = {3, 5, 7, 10, 1000003, 6700417, (1ull << 40) - 27};
  for (int round = 0; round < 2000; ++round) {
    for (const std::uint64_t bound : bounds) {
      ASSERT_EQ(reference.uniform_below(bound), buffered.uniform_below(bound));
    }
  }
}

TEST(BlockRng, HugeBoundsNearTwoToSixtyThree) {
  // For bound > 2^63 the Lemire rejection threshold (2^64 mod bound) is
  // bound-sized, so nearly half of all raw draws are rejected — the loop
  // actually exercises its retry path here.
  rng reference(73);
  block_rng buffered(rng(73));
  const std::uint64_t bounds[] = {(1ull << 63) - 1, (1ull << 63) + 1,
                                  (1ull << 63) + (1ull << 62),
                                  UINT64_MAX - 1, UINT64_MAX};
  for (int round = 0; round < 2000; ++round) {
    for (const std::uint64_t bound : bounds) {
      const std::uint64_t expected = reference.uniform_below(bound);
      ASSERT_EQ(expected, buffered.uniform_below(bound));
      ASSERT_LT(expected, bound);
    }
  }
}

TEST(BlockRng, EquivalenceAcrossBlockBoundaries) {
  // Mixed bound sizes for > 3 * 1024 raw draws: every refill boundary is
  // crossed mid-rejection-loop at some point, and the streams must still
  // agree draw-for-draw.
  rng reference(74);
  block_rng buffered(rng(74));
  std::uint64_t mix = 0x2545f4914f6cdd1dull;
  for (int i = 0; i < 5000; ++i) {
    mix ^= mix << 13;
    mix ^= mix >> 7;
    mix ^= mix << 17;
    const std::uint64_t bound = (mix % 3 == 0) ? (1ull << 63) + (mix >> 3)
                                : (mix % 3 == 1) ? (mix % 97) + 1
                                                 : (mix % 1000003) + 1;
    ASSERT_EQ(reference.uniform_below(bound), buffered.uniform_below(bound))
        << "diverged at draw " << i << " with bound " << bound;
  }
}

TEST(BlockRng, Uniform01MirrorsRng) {
  rng reference(75);
  block_rng buffered(rng(75));
  for (int i = 0; i < 3000; ++i) {
    ASSERT_DOUBLE_EQ(reference.uniform01(), buffered.uniform01());
  }
}

TEST(BlockRng, GeometricMirrorsRng) {
  rng reference(76);
  block_rng buffered(rng(76));
  for (int i = 0; i < 3000; ++i) {
    ASSERT_EQ(reference.geometric(0.125), buffered.geometric(0.125));
  }
  EXPECT_THROW(buffered.geometric(0.0), std::invalid_argument);
  EXPECT_THROW(buffered.geometric(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace pp
