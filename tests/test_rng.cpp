#include "support/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace pp {
namespace {

TEST(Rng, SameSeedSameStream) {
  rng a(42);
  rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1);
  rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkIsDeterministic) {
  rng base(7);
  rng f1 = base.fork(3);
  rng f2 = rng(7).fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f1(), f2());
}

TEST(Rng, ForksAreDistinctStreams) {
  rng base(7);
  rng f1 = base.fork(0);
  rng f2 = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (f1() == f2()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkDiffersFromParent) {
  rng base(9);
  rng forked = base.fork(0);
  rng parent(9);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == forked()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformBelowInRange) {
  rng gen(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.uniform_below(17), 17u);
  }
}

TEST(Rng, UniformBelowOneIsZero) {
  rng gen(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowRejectsZeroBound) {
  rng gen(3);
  EXPECT_THROW(gen.uniform_below(0), std::invalid_argument);
}

TEST(Rng, UniformBelowIsApproximatelyUniform) {
  rng gen(11);
  const int buckets = 10;
  const int draws = 100000;
  std::vector<int> count(buckets, 0);
  for (int i = 0; i < draws; ++i) {
    ++count[gen.uniform_below(buckets)];
  }
  // Chi-square with 9 dof: 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(draws) / buckets;
  for (const int c : count) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 30.0);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  rng gen(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, Uniform01InUnitInterval) {
  rng gen(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  rng gen(17);
  double total = 0.0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) total += gen.uniform01();
  EXPECT_NEAR(total / draws, 0.5, 0.005);
}

TEST(Rng, BernoulliMatchesProbability) {
  rng gen(19);
  const int draws = 100000;
  int hits = 0;
  for (int i = 0; i < draws; ++i) {
    if (gen.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  rng gen(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.bernoulli(0.0));
    EXPECT_TRUE(gen.bernoulli(1.0));
  }
}

TEST(Rng, GeometricMeanMatches) {
  rng gen(23);
  const double p = 0.05;
  const int draws = 100000;
  double total = 0.0;
  for (int i = 0; i < draws; ++i) total += static_cast<double>(gen.geometric(p));
  EXPECT_NEAR(total / draws, 1.0 / p, 0.4);
}

TEST(Rng, GeometricSupportsOne) {
  rng gen(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(gen.geometric(0.9), 1u);
}

TEST(Rng, GeometricPOneIsAlwaysOne) {
  rng gen(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.geometric(1.0), 1u);
}

TEST(Rng, GeometricTailDecays) {
  rng gen(37);
  const double p = 0.5;
  const int draws = 100000;
  int above_10 = 0;
  for (int i = 0; i < draws; ++i) {
    if (gen.geometric(p) > 10) ++above_10;
  }
  // P[G > 10] = 2^-10 ~ 1e-3.
  EXPECT_NEAR(static_cast<double>(above_10) / draws, std::pow(0.5, 10), 5e-4);
}

TEST(Rng, GeometricRejectsInvalidP) {
  rng gen(41);
  EXPECT_THROW(gen.geometric(0.0), std::invalid_argument);
  EXPECT_THROW(gen.geometric(1.5), std::invalid_argument);
  EXPECT_THROW(gen.geometric(-0.1), std::invalid_argument);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace pp
