#include "engine/engine.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/majority.h"
#include "core/simulator.h"
#include "engine/block_rng.h"
#include "graph/generators.h"

namespace pp {
namespace {

// ---------------------------------------------------------------- block_rng

TEST(BlockRng, MatchesRngDrawForDraw) {
  // Same seed, same bound sequence: block_rng must replicate
  // rng::uniform_below exactly, including Lemire rejections.
  rng reference(42);
  block_rng buffered(rng(42));
  const std::uint64_t bounds[] = {2, 3, 7, 1ull << 33, 6, 12345, 2 * 977};
  for (int round = 0; round < 5000; ++round) {
    for (const std::uint64_t bound : bounds) {
      ASSERT_EQ(reference.uniform_below(bound), buffered.uniform_below(bound));
    }
  }
}

// ------------------------------------------------------- compiled_protocol

TEST(CompiledProtocol, ClosureOfBeauquierFindsAllSixStates) {
  const beauquier_protocol proto(8);
  compiled_protocol<beauquier_protocol> compiled(proto);
  for (node_id v = 0; v < 8; ++v) compiled.intern(proto.initial_state(v));
  ASSERT_TRUE(compiled.close(64));
  EXPECT_TRUE(compiled.closed());
  // All candidates initially: reachable space is 5 of the 6 states (a
  // candidate holding a white token resolves instantly and is never
  // observable between interactions).
  EXPECT_GE(compiled.num_states(), 4u);
  EXPECT_LE(compiled.num_states(), 6u);
}

TEST(CompiledProtocol, TransitionsMatchDirectInteract) {
  fast_params params;  // small default space: closes quickly
  const fast_protocol proto(params);
  compiled_protocol<fast_protocol> compiled(proto);
  compiled.intern(proto.initial_state(0));
  ASSERT_TRUE(compiled.close(kEngineClosureBudget));

  const auto k = static_cast<std::uint32_t>(compiled.num_states());
  for (std::uint32_t a = 0; a < k; ++a) {
    for (std::uint32_t b = 0; b < k; ++b) {
      auto sa = compiled.decode(a);
      auto sb = compiled.decode(b);
      proto.interact(sa, sb);
      const auto e = compiled.transition(a, b);
      ASSERT_EQ(proto.encode(compiled.decode(e.a2)), proto.encode(sa));
      ASSERT_EQ(proto.encode(compiled.decode(e.b2)), proto.encode(sb));
      // The entry's census delta is consistent with the per-state
      // contributions it was derived from.
      for (int c = 0; c < census_traits<fast_protocol>::kCounters; ++c) {
        const auto i = static_cast<std::size_t>(c);
        ASSERT_EQ(static_cast<int>(e.delta[i]),
                  compiled.contribution(e.a2)[i] + compiled.contribution(e.b2)[i] -
                      compiled.contribution(a)[i] - compiled.contribution(b)[i]);
      }
    }
  }
}

TEST(CompiledProtocol, InternIsStableAndDense) {
  const beauquier_protocol proto(4);
  compiled_protocol<beauquier_protocol> compiled(proto);
  const auto a = compiled.intern(bq_init(true));
  const auto b = compiled.intern(bq_init(false));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(compiled.intern(bq_init(true)), a);
  EXPECT_EQ(compiled.num_states(), 2u);
  EXPECT_EQ(compiled.output(a), role::leader);
  EXPECT_EQ(compiled.output(b), role::follower);
}

// -------------------------------------------------- engine <-> reference

// The graph families every protocol is cross-checked on.
std::vector<std::pair<std::string, graph>> test_families() {
  rng gen(7);
  std::vector<std::pair<std::string, graph>> fams;
  fams.emplace_back("clique", make_clique(24));
  fams.emplace_back("cycle", make_cycle(33));
  fams.emplace_back("grid", make_grid_2d(5, 6, false));
  fams.emplace_back("erdos-renyi", make_connected_erdos_renyi(40, 0.15, gen));
  return fams;
}

// `make_proto` builds the protocol for a given node count (beauquier and
// majority are sized by their input assignment).
template <typename MakeProto>
void expect_equivalent(const MakeProto& make_proto, const sim_options& options,
                       std::uint64_t seed_base) {
  for (const auto& [name, g] : test_families()) {
    const auto proto = make_proto(g.num_nodes());
    rng seed(seed_base);
    for (std::uint64_t t = 0; t < 6; ++t) {
      const auto ref = run_until_stable(proto, g, seed.fork(t), options);
      const auto fast = run_until_stable_fast(proto, g, seed.fork(t), options);
      ASSERT_EQ(ref.stabilized, fast.stabilized) << name << " trial " << t;
      ASSERT_EQ(ref.steps, fast.steps) << name << " trial " << t;
      ASSERT_EQ(ref.leader, fast.leader) << name << " trial " << t;
      ASSERT_EQ(ref.distinct_states_used, fast.distinct_states_used)
          << name << " trial " << t;
    }
  }
}

TEST(EngineEquivalence, FastProtocolAcrossFamilies) {
  expect_equivalent([](node_id) { return fast_protocol(fast_params{}); }, {}, 11);
}

TEST(EngineEquivalence, FastProtocolWithCensus) {
  expect_equivalent([](node_id) { return fast_protocol(fast_params{}); },
                    {.state_census = true}, 12);
}

TEST(EngineEquivalence, BeauquierAcrossFamilies) {
  expect_equivalent([](node_id n) { return beauquier_protocol(n); }, {}, 13);
}

TEST(EngineEquivalence, BeauquierWithCensus) {
  expect_equivalent([](node_id n) { return beauquier_protocol(n); },
                    {.state_census = true}, 14);
}

TEST(EngineEquivalence, MajorityAcrossFamilies) {
  expect_equivalent(
      [](node_id n) {
        rng votes_gen(15);
        return majority_protocol(random_vote_assignment(n, (2 * n) / 3, votes_gen));
      },
      {}, 16);
}

TEST(EngineEquivalence, MaxStepsCapMatchesReference) {
  const graph g = make_cycle(48);
  const beauquier_protocol proto(48);
  const sim_options options{.max_steps = 500, .state_census = true};
  const auto ref = run_until_stable(proto, g, rng(17), options);
  const auto fast = run_until_stable_fast(proto, g, rng(17), options);
  EXPECT_FALSE(fast.stabilized);
  EXPECT_EQ(ref.steps, fast.steps);
  EXPECT_EQ(fast.steps, 500u);
  EXPECT_EQ(ref.leader, fast.leader);
  EXPECT_EQ(ref.distinct_states_used, fast.distinct_states_used);
}

TEST(EngineEquivalence, SizeMismatchedProtocolIsRejected)
{
  // Protocol sized for 8 nodes, graph with 9: initial_state must throw before
  // the engine runs (same contract as the reference simulator).
  const graph g = make_grid_2d(3, 3, false);
  const beauquier_protocol proto(8);
  EXPECT_THROW(run_until_stable_fast(proto, g, rng(1)), std::exception);
}

// --------------------------------------------------------- shared tables

TEST(EngineSharing, ClosedTableSharedAcrossRunsMatchesLazyTables) {
  const graph g = make_clique(16);
  const beauquier_protocol proto(16);

  compiled_protocol<beauquier_protocol> shared(proto);
  for (node_id v = 0; v < 16; ++v) shared.intern(proto.initial_state(v));
  ASSERT_TRUE(shared.close(64));
  const edge_endpoints edges(g);

  rng seed(19);
  for (std::uint64_t t = 0; t < 8; ++t) {
    const auto lazy = run_until_stable_fast(proto, g, seed.fork(t));
    const auto closed = run_compiled(shared, edges, g, seed.fork(t));
    ASSERT_EQ(lazy.steps, closed.steps);
    ASSERT_EQ(lazy.leader, closed.leader);
  }
}

TEST(EngineSharing, MeasureElectionFastMatchesMeasureElection) {
  rng gen(21);
  const graph g = make_connected_erdos_renyi(32, 0.2, gen);
  const beauquier_protocol proto(32);
  const auto ref = measure_election(proto, g, 12, rng(22));
  const auto fast = measure_election_fast(proto, g, 12, rng(22));
  EXPECT_DOUBLE_EQ(ref.steps.mean, fast.steps.mean);
  EXPECT_DOUBLE_EQ(ref.stabilized_fraction, fast.stabilized_fraction);
}

TEST(EngineSharing, MeasureElectionFastFallsBackWhenClosureExceedsBudget) {
  // A fast protocol with a large level range blows the closure budget; the
  // sweep must silently fall back to per-trial lazy tables and still match
  // the reference summary.
  const graph g = make_clique(12);
  fast_params params;
  params.h = 8;
  params.level_threshold = 600;
  params.max_level = 60000;  // |Λ| far beyond kEngineClosureBudget
  const fast_protocol proto(params);
  const sim_options options{.max_steps = 20000};
  const auto ref = measure_election(proto, g, 4, rng(23), options);
  const auto fast = measure_election_fast(proto, g, 4, rng(23), options);
  EXPECT_DOUBLE_EQ(ref.stabilized_fraction, fast.stabilized_fraction);
  EXPECT_DOUBLE_EQ(ref.steps.mean, fast.steps.mean);
}

}  // namespace
}  // namespace pp
