#include "support/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pp {
namespace {

TEST(ParallelFor, VisitsEveryIndexOnce) {
  const std::size_t count = 10000;
  std::vector<std::atomic<int>> visits(count);
  parallel_for(count, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  const std::size_t count = 1000;
  auto run = [&](std::size_t threads) {
    std::vector<double> out(count);
    parallel_for(count, [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
                 threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_DOUBLE_EQ(run(1), run(4));
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(hardware_threads(), 1u); }

}  // namespace
}  // namespace pp
