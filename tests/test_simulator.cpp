#include "core/simulator.h"

#include <gtest/gtest.h>

#include "core/beauquier.h"
#include "graph/generators.h"

namespace pp {
namespace {

TEST(Simulator, DeterministicGivenSeed) {
  const graph g = make_clique(8);
  const beauquier_protocol proto(8);
  const auto a = run_until_stable(proto, g, rng(1));
  const auto b = run_until_stable(proto, g, rng(1));
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.leader, b.leader);
}

TEST(Simulator, DifferentSeedsExploreDifferentRuns) {
  const graph g = make_clique(8);
  const beauquier_protocol proto(8);
  rng seed(2);
  std::set<std::uint64_t> steps;
  for (int t = 0; t < 10; ++t) {
    steps.insert(run_until_stable(proto, g, seed.fork(t)).steps);
  }
  EXPECT_GT(steps.size(), 1u);
}

TEST(Simulator, MaxStepsCapsRun) {
  const graph g = make_cycle(64);
  const beauquier_protocol proto(64);
  const auto r = run_until_stable(proto, g, rng(3), {.max_steps = 5});
  EXPECT_FALSE(r.stabilized);
  EXPECT_EQ(r.steps, 5u);
  EXPECT_EQ(r.leader, -1);
}

TEST(Simulator, CensusDisabledReportsZero) {
  const graph g = make_clique(6);
  const beauquier_protocol proto(6);
  const auto r = run_until_stable(proto, g, rng(4));
  EXPECT_TRUE(r.stabilized);
  EXPECT_EQ(r.distinct_states_used, 0u);
}

TEST(Simulator, CensusCountsInitialStates) {
  const graph g = make_clique(6);
  std::vector<bool> cands(6, false);
  cands[0] = true;
  const beauquier_protocol proto(6, cands);
  // Immediately stable: census sees exactly the two initial state kinds.
  const auto r = run_until_stable(proto, g, rng(5), {.state_census = true});
  EXPECT_TRUE(r.stabilized);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_EQ(r.distinct_states_used, 2u);
}

TEST(Simulator, LeaderIsAlwaysAValidNode) {
  const graph g = make_grid_2d(3, 3, false);
  const beauquier_protocol proto(9);
  rng seed(6);
  for (int t = 0; t < 10; ++t) {
    const auto r = run_until_stable(proto, g, seed.fork(t));
    ASSERT_TRUE(r.stabilized);
    EXPECT_GE(r.leader, 0);
    EXPECT_LT(r.leader, 9);
  }
}

}  // namespace
}  // namespace pp
