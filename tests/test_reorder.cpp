// Property tests for graph/reorder.h and graph::relabel: the orders are
// permutations, relabelling preserves structure, RCM does not increase
// bandwidth on the families the engine targets, and reordered elections
// agree with natural-order elections statistically (3σ) — the contract
// reordered engine runs trade per-seed equivalence for.
#include "graph/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/beauquier.h"
#include "core/majority.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "stat_gate.h"

namespace pp {
namespace {

std::vector<std::pair<std::string, graph>> property_families() {
  rng gen(91);
  std::vector<std::pair<std::string, graph>> fams;
  fams.emplace_back("path", make_path(17));
  fams.emplace_back("cycle", make_cycle(40));
  fams.emplace_back("grid", make_grid_2d(6, 7, false));
  fams.emplace_back("torus", make_grid_2d(5, 5, true));
  fams.emplace_back("star", make_star(12));
  fams.emplace_back("erdos-renyi", make_connected_erdos_renyi(48, 0.12, gen));
  fams.emplace_back("regular", make_random_regular(40, 4, gen));
  return fams;
}

bool is_permutation_of_range(const std::vector<node_id>& perm, node_id n) {
  if (perm.size() != static_cast<std::size_t>(n)) return false;
  std::vector<char> hit(static_cast<std::size_t>(n), 0);
  for (const node_id p : perm) {
    if (p < 0 || p >= n || hit[static_cast<std::size_t>(p)]) return false;
    hit[static_cast<std::size_t>(p)] = 1;
  }
  return true;
}

// A uniformly random relabelling (the adversarial starting point for the
// bandwidth properties: natural labels on the library's generators are
// already friendly).
std::vector<node_id> random_permutation(node_id n, rng& gen) {
  std::vector<node_id> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (node_id i = n - 1; i > 0; --i) {
    const auto j = static_cast<node_id>(
        gen.uniform_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

TEST(Reorder, BfsAndRcmArePermutations) {
  for (const auto& [name, g] : property_families()) {
    EXPECT_TRUE(is_permutation_of_range(bfs_permutation(g), g.num_nodes())) << name;
    EXPECT_TRUE(is_permutation_of_range(rcm_permutation(g), g.num_nodes())) << name;
  }
}

TEST(Reorder, NaturalOrderIsIdentity) {
  const graph g = make_grid_2d(4, 5, false);
  const auto perm = order_permutation(g, vertex_order::natural);
  for (node_id v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(perm[static_cast<std::size_t>(v)], v);
  }
}

TEST(Reorder, InvertPermutationRoundtrip) {
  for (const auto& [name, g] : property_families()) {
    const auto perm = rcm_permutation(g);
    const auto inv = invert_permutation(perm);
    for (node_id v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])], v)
          << name;
    }
    // Relabelling by perm then by its inverse restores the edge list.
    const graph round = g.relabel(perm).relabel(inv);
    EXPECT_EQ(round.edges(), g.edges()) << name;
  }
}

TEST(Reorder, RelabelPreservesStructure) {
  for (const auto& [name, g] : property_families()) {
    const auto perm = rcm_permutation(g);
    const graph h = g.relabel(perm);
    ASSERT_EQ(h.num_nodes(), g.num_nodes()) << name;
    ASSERT_EQ(h.num_edges(), g.num_edges()) << name;
    EXPECT_EQ(is_connected(h), is_connected(g)) << name;

    // Degree sequence is preserved as a multiset, and node-for-node under
    // the permutation.
    std::vector<node_id> dg, dh;
    for (node_id v = 0; v < g.num_nodes(); ++v) {
      dg.push_back(g.degree(v));
      dh.push_back(h.degree(v));
      EXPECT_EQ(h.degree(perm[static_cast<std::size_t>(v)]), g.degree(v)) << name;
    }
    std::sort(dg.begin(), dg.end());
    std::sort(dh.begin(), dh.end());
    EXPECT_EQ(dg, dh) << name;

    // Every original edge exists under the renaming (and counts match, so
    // the edge sets correspond exactly).
    for (const edge& e : g.edges()) {
      EXPECT_TRUE(h.has_edge(perm[static_cast<std::size_t>(e.u)],
                             perm[static_cast<std::size_t>(e.v)]))
          << name;
    }
  }
}

TEST(Reorder, RelabelRejectsInvalidPermutations) {
  const graph g = make_cycle(6);
  EXPECT_THROW(g.relabel({0, 1, 2}), std::invalid_argument);           // short
  EXPECT_THROW(g.relabel({0, 1, 2, 3, 4, 7}), std::invalid_argument);  // range
  EXPECT_THROW(g.relabel({0, 1, 2, 3, 4, 4}), std::invalid_argument);  // dup
}

TEST(Reorder, RcmBandwidthNonIncreasingOnEngineFamilies) {
  // On the families the tuned engine targets (and their adversarially
  // shuffled relabellings), RCM never increases the bandwidth — usually it
  // collapses it.  RCM is a heuristic, so this is asserted for the concrete
  // deterministic instances the engine cares about, not for all graphs: the
  // star is excluded, since any BFS-shaped order pins the centre near one
  // end of the range while the optimum (and a lucky shuffle) centres it.
  rng gen(17);
  for (auto& [name, g] : property_families()) {
    if (name == "star") continue;
    const graph shuffled = g.relabel(random_permutation(g.num_nodes(), gen));
    for (const graph* instance : {static_cast<const graph*>(&g), &shuffled}) {
      const node_id before = bandwidth(*instance);
      const node_id after = bandwidth(instance->relabel(rcm_permutation(*instance)));
      EXPECT_LE(after, before) << name;
    }
  }
}

TEST(Reorder, RcmCollapsesBandwidthOnMeshes) {
  // The headline cases: a cycle's wrap edge spans n-1 naturally but 2 after
  // RCM; a shuffled grid recovers O(side) bandwidth.
  const graph cyc = make_cycle(64);
  EXPECT_EQ(bandwidth(cyc), 63);
  EXPECT_EQ(bandwidth(cyc.relabel(rcm_permutation(cyc))), 2);

  rng gen(23);
  const graph grid = make_grid_2d(12, 12, false);
  const graph shuffled = grid.relabel(random_permutation(grid.num_nodes(), gen));
  const node_id shuffled_bw = bandwidth(shuffled);
  const node_id rcm_bw = bandwidth(shuffled.relabel(rcm_permutation(shuffled)));
  EXPECT_GT(shuffled_bw, 100);  // random labels are terrible
  EXPECT_LE(rcm_bw, 26);        // ~2x the optimal 12 leaves heuristic slack
}

// Reordered tuned elections agree with natural-order elections within 3σ of
// the combined standard errors — the statistical contract that replaces
// per-seed equivalence once the draw-to-edge mapping changes.
template <typename P>
void expect_3sigma_agreement(const P& proto, const graph& g, int trials,
                             std::uint64_t seed, vertex_order order) {
  const auto natural =
      measure_election_tuned(proto, g, trials, rng(seed));
  const auto reordered = measure_election_tuned(proto, g, trials, rng(seed + 1),
                                                {}, {order, 0});
  stat_gate::expect_step_agreement(natural, reordered, to_string(order));
}

TEST(Reorder, BeauquierElectionTimeAgreesUnderRcm) {
  const graph g = make_grid_2d(6, 6, false);
  const beauquier_protocol proto(36);
  expect_3sigma_agreement(proto, g, 24, 1234, vertex_order::rcm);
  expect_3sigma_agreement(proto, g, 24, 1834, vertex_order::bfs);
}

TEST(Reorder, MajorityWithAsymmetricInputRidesTheRelabelling) {
  // majority's initial states depend on the node id; the engine must assign
  // initial_state(old id) to the relabelled node, making the reordered run
  // the exact original process under an isomorphism — so even this
  // node-asymmetric input agrees within 3σ.
  const graph g = make_cycle(31);
  rng votes_gen(55);
  const majority_protocol proto(random_vote_assignment(31, 21, votes_gen));
  expect_3sigma_agreement(proto, g, 24, 4321, vertex_order::rcm);
}

}  // namespace
}  // namespace pp
